"""Table 1 reproduction: measured complexity of every implemented approach.

The paper's Table 1 is an asymptotic comparison.  We regenerate it
empirically: each algorithm's operation count is measured over a size sweep
and fitted against candidate growth models; the printed table reports the
best-fit model next to the paper's claimed complexity, plus the static
assumptions column.  Who-wins ordering is also asserted.
"""

from __future__ import annotations

import time

from repro.analysis.complexity import best_fit
from repro.analysis.counts import total_comparisons_exact
from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.opaque_join import opaque_pkfk_join
from repro.core.join import oblivious_join
from repro.core.stats import JoinCounters
from repro.memory.tracer import CountSink, Tracer
from repro.vector.baseline import vector_sort_merge_join
from repro.vector.join import vector_oblivious_join
from repro.workloads.generators import balanced_output, pk_fk

from bench_common import SCALE, fmt_table, report

SWEEP = [256 * SCALE, 512 * SCALE, 1024 * SCALE, 2048 * SCALE, 4096 * SCALE]
NESTED_SWEEP = [16, 32, 64, 128]


def _count_events(run) -> int:
    sink = CountSink()
    run(Tracer(sink))
    return sink.total


def _ours_counts():
    counts = []
    for n in SWEEP:
        w = balanced_output(n, seed=n)
        counters = JoinCounters()
        result = oblivious_join(w.left, w.right, counters=counters)
        counts.append(total_comparisons_exact(w.n1, w.n2, result.m))
    return counts


def _nested_counts():
    counts = []
    for n in NESTED_SWEEP:
        w = balanced_output(n, seed=n)
        counts.append(
            _count_events(lambda t, w=w: nested_loop_join(w.left, w.right, tracer=t))
        )
    return counts


def _opaque_counts():
    counts = []
    for n in SWEEP:
        w = pk_fk(n // 2, n // 2, seed=n)
        counts.append(
            _count_events(lambda t, w=w: opaque_pkfk_join(w.left, w.right, tracer=t))
        )
    return counts


def _sort_merge_times():
    times = []
    for n in SWEEP:
        w = balanced_output(n * 8, seed=n)
        start = time.perf_counter()
        vector_sort_merge_join(w.left, w.right)
        times.append(time.perf_counter() - start)
    return times


def test_table1_complexity_table(benchmark):
    ours = best_fit(SWEEP, _ours_counts())
    nested = best_fit(NESTED_SWEEP, _nested_counts())
    opaque = best_fit(SWEEP, _opaque_counts())

    rows = [
        ["Standard sort-merge join", "O(m' log m')", "(runtime-fit)", "not oblivious"],
        ["Agrawal et al. / nested-loop", "O(n1 n2)", nested.model, "quadratic"],
        ["Opaque / ObliDB", "O(n log^2 (n/t))", opaque.model, "PK-FK joins only"],
        ["Ours (Algorithm 1)", "O(n log^2 n + m log m)", ours.model, "none"],
    ]
    text = fmt_table(
        ["Algorithm", "paper complexity", "measured best fit", "limitations"], rows
    )
    text += (
        f"\n\nloglog slopes: ours={ours.loglog_slope:.2f}, "
        f"nested={nested.loglog_slope:.2f}, opaque={opaque.loglog_slope:.2f}"
    )
    report("table1_complexity", text)

    # The paper's ordering claims, asserted:
    assert nested.model in ("n^2", "n^1.5")
    assert ours.model in ("n log n", "n log^2 n")
    assert opaque.model in ("n log n", "n log^2 n")
    assert nested.loglog_slope > ours.loglog_slope

    w = balanced_output(1024, seed=0)
    benchmark(lambda: vector_oblivious_join(w.left, w.right))


def test_table1_crossover_nested_vs_ours(benchmark):
    """The quadratic baseline must lose to Algorithm 1 well below n=10^3."""
    w = balanced_output(128, seed=7)

    nested_ops = _count_events(
        lambda t: nested_loop_join(w.left, w.right, tracer=t)
    )
    ours_ops = _count_events(
        lambda t: oblivious_join(w.left, w.right, tracer=t)
    )
    report(
        "table1_crossover",
        f"n=128 public-memory accesses: nested-loop={nested_ops}, ours={ours_ops}"
        f" (ratio {nested_ops / ours_ops:.1f}x)",
    )
    assert ours_ops < nested_ops
    benchmark(lambda: oblivious_join(w.left, w.right))
