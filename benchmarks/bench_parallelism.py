"""§6.2's parallelism remark, quantified: circuit depth of the join.

The paper: "almost all parts of our algorithm are amenable to
parallelization since they heavily rely on sorting networks, whose depth is
O(log^2 n).  The only exception is the sequence of O(m log m) operations
[the routing scans]... these operations account for a negligibly small
fraction of the total runtime."  This bench computes the critical path of
Algorithm 1 across sizes and checks both halves of the claim: sort depth
grows polylogarithmically, and the sequential remainder is exactly the
routing + linear scans.
"""

from __future__ import annotations

import math

from repro.analysis.counts import total_comparisons_exact
from repro.analysis.depth import depth_series, join_depth

from bench_common import fmt_table, report

SIZES = [2**10, 2**14, 2**18, 2**20]


def test_parallel_depth_profile(benchmark):
    rows = []
    for n, breakdown in depth_series(SIZES):
        work = total_comparisons_exact(n // 2, n // 2, n // 2)
        rows.append(
            [
                n,
                breakdown.sort_depth,
                breakdown.routing_depth + breakdown.scan_depth,
                f"{breakdown.parallel_fraction:.1%}",
                f"{work / breakdown.total:.1f}",
            ]
        )
    text = (
        fmt_table(
            ["n", "sort depth (parallel)", "sequential depth",
             "parallel share of path", "work / critical path"],
            rows,
        )
        + "\n\n(sort depth is O(log^2 n); the sequential tail is the routing"
        "\n scans + linear passes the paper calls 'negligibly small' in work"
        "\n — Table 3 confirms the work share; this table gives the depth view)"
    )
    report("parallelism_depth", text)

    # Sort depth must grow ~log^2 n while sequential depth grows ~n.
    first = join_depth(SIZES[0] // 2, SIZES[0] // 2, SIZES[0] // 2)
    last = join_depth(SIZES[-1] // 2, SIZES[-1] // 2, SIZES[-1] // 2)
    size_ratio = SIZES[-1] / SIZES[0]
    log_ratio = (math.log2(SIZES[-1]) / math.log2(SIZES[0])) ** 2
    assert last.sort_depth / first.sort_depth < 2 * log_ratio
    assert last.scan_depth / first.scan_depth > size_ratio / 2

    benchmark(lambda: depth_series(SIZES))
