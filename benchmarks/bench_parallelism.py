"""§6.2's parallelism remark, quantified — in theory and on real processes.

The paper: "almost all parts of our algorithm are amenable to
parallelization since they heavily rely on sorting networks, whose depth is
O(log^2 n).  The only exception is the sequence of O(m log m) operations
[the routing scans]... these operations account for a negligibly small
fraction of the total runtime."  Two views:

* the *depth* bench below computes the critical path of Algorithm 1 across
  sizes and checks both halves of the claim;
* the *scaling* sweep (``python benchmarks/bench_parallelism.py --n 16384
  --workers 1 2 4``) measures the sharded engine's wall-clock as worker
  processes are added, against the single-process vector engine baseline —
  the paper's parallelism remark made concrete.  Every row reports which
  *executor* ran the shard tasks, the payload transport the dispatch
  actually took (``none`` for in-process calls, ``shared_memory`` for the
  pool/async column transport), and the **merge phase** seconds — the
  reassembly tail left after grid results stream into the tournament,
  which is the cost the streaming merge exists to shrink.  ``--executor``
  sweeps executors explicitly (``--executor inline pool async``); without
  it each worker count uses the default rule (inline at 1, shared-memory
  pool above).  ``--json PATH`` writes one machine-readable record per
  sharded row (total *and* merge-phase seconds, normalised by the vector
  baseline measured in the same run) — the ``BENCH_parallelism.json`` CI
  artifact that ``check_bench_regression.py`` gates, so a regression in
  the reassembly phase fails CI even when the end-to-end time hides it.
  Speedup requires real cores: the sweep reports ``os.cpu_count()``
  alongside so a flat curve on a 1-core box reads as hardware, not a
  regression.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import time

from repro.analysis.counts import total_comparisons_exact
from repro.analysis.depth import depth_series, join_depth
from repro.engines import ShardedEngine, get_engine
from repro.plan.executors import available_executors, resolve_executor, warm_pool
from repro.shard.join import sharded_oblivious_join
from repro.vector.join import vector_oblivious_join
from repro.workloads.generators import balanced_output

from bench_common import fmt_table, report

SIZES = [2**10, 2**14, 2**18, 2**20]

SCALING_HEADER = [
    "engine", "shards", "workers", "executor", "transport", "join", "merge",
    "vs vector",
]


def run_scaling(
    n: int,
    workers_list: list[int],
    shards: int | None,
    seed: int,
    executors: list[str] | None = None,
    records: list[dict] | None = None,
) -> list[list]:
    """Time the sharded join per (executor, workers) against the vector engine.

    ``executors=None`` uses the default rule per worker count; naming
    executors sweeps each of them at every worker count.  When ``records``
    is given, one machine-readable dict per sharded row is appended (the
    ``BENCH_parallelism.json`` artifact): total seconds, merge-phase
    seconds, and the vector baseline as ``reference_seconds`` so the
    regression gate can normalise out machine speed.
    """
    w = balanced_output(n, seed=seed)

    start = time.perf_counter()
    expected, _ = vector_oblivious_join(w.left, w.right)
    t_vector = time.perf_counter() - start

    rows = [["vector", "-", "-", "-", "-", f"{t_vector:.3f}s", "-", "1.00x"]]
    for name in executors if executors else [None]:
        for workers in workers_list:
            k = shards if shards is not None else max(2, workers)
            warm_pool(workers)  # measure steady state, not process start-up
            executor = resolve_executor(name, workers=workers)
            start = time.perf_counter()
            pairs, stats = sharded_oblivious_join(
                w.left, w.right, shards=k, workers=workers, executor=executor
            )
            t_sharded = time.perf_counter() - start
            assert pairs.tolist() == expected.tolist(), "sharded diverges from vector"
            t_merge = stats.seconds_by_phase.get("merge", 0.0)
            rows.append(
                [
                    "sharded",
                    k,
                    workers,
                    executor.name,
                    executor.transport,
                    f"{t_sharded:.3f}s",
                    f"{t_merge:.3f}s",
                    f"{t_vector / t_sharded:.2f}x",
                ]
            )
            if records is not None:
                records.append(
                    {
                        "engine": "sharded",
                        "workload": "join",
                        "padding": "revealed",
                        "n": n,
                        "seed": seed,
                        "shards": k,
                        "workers": workers,
                        "executor": executor.name,
                        "transport": executor.transport,
                        "seconds": t_sharded,
                        "merge_seconds": t_merge,
                        "reference_seconds": t_vector,
                    }
                )
    return rows


EXPAND_HEADER = [
    "engine", "shards", "workers", "segments", "executor", "join", "expand",
    "vs vector",
]


def skewed_tables(n: int) -> tuple[list, list]:
    """One hot key holding half of each side: a single grid cell owns
    almost all of the padded output, which is exactly the shape whose
    whole-cell expansion serialises the join."""
    hot = max(n // 2, 1)
    left = [(0, i) for i in range(hot)] + [(1 + i, i) for i in range(n - hot)]
    right = [(0, n + i) for i in range(hot)] + [(1 + i, n + i) for i in range(n - hot)]
    return left, right


def run_expand_segments(
    n: int,
    workers_list: list[int],
    shards: int | None,
    segments_list: list[int],
    records: list[dict] | None = None,
) -> list[list]:
    """Time the padded skewed-cell join per (workers, expand_segments).

    The workload is one maximally skewed cell (``skewed_tables``) run under
    ``worst_case`` padding, so the distribute-expand dominates; the sweep
    shows what splitting it into ``expand_segment`` tasks buys.  Rows (and
    the ``BENCH_parallelism.json`` records, ``padding=worst_case`` with a
    ``segments`` key and the ``expand_seconds`` phase — the grid-task time
    of the segmented expansion) are normalised by the padded vector join
    measured in the same run.
    """
    left, right = skewed_tables(n)
    target = len(left) * len(right)

    start = time.perf_counter()
    expected, _ = vector_oblivious_join(left, right, target_m=target)
    t_vector = time.perf_counter() - start

    baseline_pairs = None
    rows = [["vector", "-", "-", "-", "-", f"{t_vector:.3f}s", "-", "1.00x"]]
    for workers in workers_list:
        k = shards if shards is not None else max(2, workers)
        warm_pool(workers)
        executor = resolve_executor(None, workers=workers)
        for segments in segments_list:
            start = time.perf_counter()
            pairs, stats = sharded_oblivious_join(
                left,
                right,
                shards=k,
                workers=workers,
                executor=executor,
                target_m=target,
                expand_segments=segments,
            )
            t_sharded = time.perf_counter() - start
            if baseline_pairs is None:
                baseline_pairs = pairs
            assert pairs.tolist() == baseline_pairs.tolist(), (
                "segmented expansion diverges across segment counts"
            )
            t_expand = stats.seconds_by_phase.get("tasks", 0.0)
            rows.append(
                [
                    "sharded",
                    k,
                    workers,
                    segments,
                    executor.name,
                    f"{t_sharded:.3f}s",
                    f"{t_expand:.3f}s",
                    f"{t_vector / t_sharded:.2f}x",
                ]
            )
            if records is not None:
                records.append(
                    {
                        "engine": "sharded",
                        "workload": "join",
                        "padding": "worst_case",
                        "n": n,
                        "seed": 0,
                        "shards": k,
                        "workers": workers,
                        "executor": executor.name,
                        "transport": executor.transport,
                        "segments": segments,
                        "seconds": t_sharded,
                        "expand_seconds": t_expand,
                        "reference_seconds": t_vector,
                    }
                )
    return rows


PIPELINE_HEADER = [
    "engine", "shards", "workers", "chain", "streamed edges", "seconds",
    "vs vector",
]


def run_pipeline(
    n: int,
    workers_list: list[int],
    shards: int | None,
    seed: int,
    records: list[dict] | None = None,
) -> list[list]:
    """Time the streamed filter -> join -> group_by chain end to end.

    The whole chain compiles into one plan and the sharded engine streams
    the inter-operator edges; the vector engine running the same chain
    operator-at-a-time is the same-run baseline (``reference_seconds``),
    so the artifact row gates the *streaming schedule*, not machine speed.
    """
    w = balanced_output(n, seed=seed)
    mask = [index % 3 != 0 for index in range(len(w.left))]
    stages = [
        ("source", w.left), ("filter", mask), ("join", w.right), ("group_by",),
    ]

    start = time.perf_counter()
    expected = get_engine("vector").pipeline(stages)
    t_vector = time.perf_counter() - start

    chain = "filter>join>group_by"
    rows = [["vector", "-", "-", chain, "-", f"{t_vector:.3f}s", "1.00x"]]
    for workers in workers_list:
        k = shards if shards is not None else max(2, workers)
        warm_pool(workers)
        engine = ShardedEngine(shards=k, workers=workers)
        start = time.perf_counter()
        result = engine.pipeline(stages)
        t_streamed = time.perf_counter() - start
        assert result.groups == expected.groups, "streamed diverges from vector"
        assert result.sizes == expected.sizes
        edges = ",".join(edge for _, edge in result.stats.streamed_edges)
        rows.append(
            [
                "sharded",
                k,
                workers,
                chain,
                edges,
                f"{t_streamed:.3f}s",
                f"{t_vector / t_streamed:.2f}x",
            ]
        )
        if records is not None:
            records.append(
                {
                    "engine": "sharded",
                    "workload": "pipeline",
                    "padding": "revealed",
                    "n": n,
                    "seed": seed,
                    "shards": k,
                    "workers": workers,
                    "chain": chain,
                    "streamed_edges": edges,
                    "seconds": t_streamed,
                    "reference_seconds": t_vector,
                }
            )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="sharded-engine scaling sweep (workers/executors vs wall-clock)"
    )
    parser.add_argument(
        "--n", type=int, default=2**14, help="rows per input table (default: 2^14)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="worker counts to sweep (default: 1 2 4)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partitions per input (default: max(2, workers) per point)",
    )
    parser.add_argument(
        "--executor",
        nargs="+",
        default=None,
        choices=available_executors(),
        help="executors to sweep at every worker count (default: the "
        "worker-derived rule — inline at 1, shared-memory pool above); "
        "e.g. --executor inline pool async",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write one machine-readable record per sharded row to "
        "PATH (the BENCH_parallelism.json CI artifact: total + merge-phase "
        "seconds, vector baseline as reference_seconds)",
    )
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help="also time the streamed filter>join>group_by chain end to end "
        "(one whole-DAG row per worker count, workload=pipeline in the "
        "JSON artifact)",
    )
    parser.add_argument(
        "--expand-segments",
        type=int,
        nargs="+",
        default=None,
        dest="expand_segments",
        metavar="SEGMENTS",
        help="also sweep the padded skewed-cell join at these per-cell "
        "expansion segment counts (e.g. --expand-segments 1 4; emits "
        "padding=worst_case records with an expand_seconds phase column)",
    )
    parser.add_argument(
        "--expand-n",
        type=int,
        default=256,
        dest="expand_n",
        help="rows per input for the --expand-segments sweep (default: 256 "
        "— the worst_case bound is quadratic, so this stays small)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    args = parser.parse_args(argv)
    records: list[dict] | None = [] if args.json else None
    rows = run_scaling(
        args.n, args.workers, args.shards, args.seed, args.executor,
        records=records,
    )
    header = SCALING_HEADER[:5] + [f"join n={args.n}", "merge", "vs vector"]
    text = (
        fmt_table(header, rows)
        + f"\n\n(host reports {os.cpu_count()} cpu core(s); speedup over the"
        "\n single-worker sharded row needs at least that many real cores;"
        "\n transport: none = in-process calls, shared_memory = columns"
        "\n written once per dispatch and attached zero-copy; merge = the"
        "\n reassembly tail after grid results stream into the tournament)"
    )
    report("parallelism_scaling", text)
    if args.expand_segments:
        expand_rows = run_expand_segments(
            args.expand_n, args.workers, args.shards, args.expand_segments,
            records=records,
        )
        report(
            "parallelism_expand_segments",
            fmt_table(
                EXPAND_HEADER[:5] + [f"join n={args.expand_n}", "expand", "vs vector"],
                expand_rows,
            )
            + "\n\n(one maximally skewed cell under worst_case padding; the"
            "\n expand column is the grid-task phase — the distribute-expand"
            "\n split into plan-bounded expand_segment tasks — whose segment"
            "\n windows are pure functions of (n1, n2, k, target))",
        )
    if args.pipeline:
        pipeline_rows = run_pipeline(
            args.n, args.workers, args.shards, args.seed, records=records
        )
        report(
            "parallelism_pipeline",
            fmt_table(PIPELINE_HEADER, pipeline_rows)
            + "\n\n(one compiled DAG per chain; the sharded rows stream the"
            "\n inter-operator edges — downstream shard tasks dispatch as"
            "\n upstream blocks complete — against the vector engine running"
            "\n the same chain operator-at-a-time)",
        )
    if args.json:
        payload = {
            "bench": "parallelism",
            "n": args.n,
            "seed": args.seed,
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "records": records,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {len(records)} records to {args.json}")
    return 0


def test_parallel_depth_profile(benchmark):
    rows = []
    for n, breakdown in depth_series(SIZES):
        work = total_comparisons_exact(n // 2, n // 2, n // 2)
        rows.append(
            [
                n,
                breakdown.sort_depth,
                breakdown.routing_depth + breakdown.scan_depth,
                f"{breakdown.parallel_fraction:.1%}",
                f"{work / breakdown.total:.1f}",
            ]
        )
    text = (
        fmt_table(
            ["n", "sort depth (parallel)", "sequential depth",
             "parallel share of path", "work / critical path"],
            rows,
        )
        + "\n\n(sort depth is O(log^2 n); the sequential tail is the routing"
        "\n scans + linear passes the paper calls 'negligibly small' in work"
        "\n — Table 3 confirms the work share; this table gives the depth view)"
    )
    report("parallelism_depth", text)

    # Sort depth must grow ~log^2 n while sequential depth grows ~n.
    first = join_depth(SIZES[0] // 2, SIZES[0] // 2, SIZES[0] // 2)
    last = join_depth(SIZES[-1] // 2, SIZES[-1] // 2, SIZES[-1] // 2)
    size_ratio = SIZES[-1] / SIZES[0]
    log_ratio = (math.log2(SIZES[-1]) / math.log2(SIZES[0])) ** 2
    assert last.sort_depth / first.sort_depth < 2 * log_ratio
    assert last.scan_depth / first.scan_depth > size_ratio / 2

    benchmark(lambda: depth_series(SIZES))


def test_sharded_scaling_smoke(benchmark):
    """The scaling sweep runs end to end and the engines agree (tiny n)."""
    records: list[dict] = []
    rows = run_scaling(256, [1, 2], shards=None, seed=1, records=records)
    assert len(rows) == 3
    assert rows[1][3:5] == ["inline", "none"]
    assert rows[2][3:5] == ["pool", "shared_memory"]
    # Every sharded record carries the merge phase and the vector baseline.
    assert all(
        r["merge_seconds"] >= 0 and r["reference_seconds"] > 0 for r in records
    )
    report("parallelism_scaling_smoke", fmt_table(
        SCALING_HEADER[:5] + ["join n=256", "merge", "vs vector"], rows))

    benchmark(lambda: sharded_oblivious_join(
        balanced_output(256, seed=1).left, balanced_output(256, seed=1).right,
        shards=2, workers=1))


def test_expand_segments_sweep_mode():
    """--expand-segments sweeps the padded skewed-cell join: identical
    output at every segment count, and each artifact record carries the
    expand_seconds phase plus the segments key the gate disambiguates on."""
    records: list[dict] = []
    rows = run_expand_segments(64, [1, 2], shards=2, segments_list=[1, 3], records=records)
    assert len(rows) == 1 + 2 * 2 and rows[0][0] == "vector"
    assert [row[3] for row in rows[1:]] == [1, 3, 1, 3]
    assert all(
        r["padding"] == "worst_case"
        and r["expand_seconds"] >= 0
        and r["reference_seconds"] > 0
        and r["segments"] in (1, 3)
        for r in records
    )
    report("parallelism_expand_smoke", fmt_table(
        EXPAND_HEADER[:5] + ["join n=64", "expand", "vs vector"], rows))


def test_pipeline_smoke_mode():
    """--pipeline emits one end-to-end chain row per worker count, streamed
    against the vector engine running the same chain, and its artifact
    records carry workload=pipeline with the same-run reference."""
    records: list[dict] = []
    rows = run_pipeline(256, [1, 2], shards=None, seed=3, records=records)
    assert len(rows) == 3 and rows[0][0] == "vector"
    assert all(row[4] == "filter->join" for row in rows[1:])
    assert all(
        r["workload"] == "pipeline" and r["reference_seconds"] > 0
        for r in records
    )
    report("parallelism_pipeline_smoke", fmt_table(PIPELINE_HEADER, rows))


def test_executor_sweep_mode():
    """--executor sweeps every named executor and labels the transport the
    dispatches actually used (not the configured intent)."""
    rows = run_scaling(
        128, [1, 2], shards=2, seed=2, executors=["inline", "pool", "async"]
    )
    got = {(row[3], row[4]) for row in rows[1:]}
    # pool/async report the real path: nothing crosses at 1 worker; the
    # shared-memory column transport above (async no longer pickles).
    assert got == {
        ("inline", "none"),
        ("pool", "none"),
        ("pool", "shared_memory"),
        ("async", "none"),
        ("async", "shared_memory"),
    }


if __name__ == "__main__":
    raise SystemExit(main())
