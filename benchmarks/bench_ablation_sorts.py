"""Ablation: bitonic vs odd-even mergesort as the network primitive.

The paper standardises on bitonic sorters (§3.5) and notes O(n log n)
networks are impractical.  Batcher's odd-even mergesort is the natural
middle ground — same O(n log^2 n) class with a lower-order-term saving in
comparators (~20% at n=8, shrinking as n grows since both share the
n log^2 n / 4 leading term).  This ablation quantifies what switching
would actually buy — notably less than folklore suggests.
"""

from __future__ import annotations

import time

from repro.memory.public import PublicArray
from repro.obliv.bitonic import bitonic_sort, comparison_count as bitonic_count
from repro.obliv.compare import identity_key, spec
from repro.obliv.network import NetworkStats
from repro.obliv.oddeven import comparison_count as oddeven_count, oddeven_sort
from repro.workloads.generators import balanced_output

from bench_common import SCALE, fmt_table, report

IDENTITY = spec(identity_key())
SIZES = [256, 1024, 4096 * SCALE]


def test_sort_network_ablation(benchmark):
    rows = []
    for n in SIZES:
        values = [(i * 2654435761) % 2**20 for i in range(n)]
        stats_b, stats_o = NetworkStats(), NetworkStats()

        a = PublicArray(list(values), name="B")
        start = time.perf_counter()
        bitonic_sort(a, IDENTITY, stats=stats_b)
        t_b = time.perf_counter() - start

        b = PublicArray(list(values), name="O")
        start = time.perf_counter()
        oddeven_sort(b, IDENTITY, stats=stats_o)
        t_o = time.perf_counter() - start

        assert a.snapshot() == b.snapshot() == sorted(values)
        rows.append(
            [
                n,
                stats_b.comparisons,
                stats_o.comparisons,
                f"{stats_b.comparisons / stats_o.comparisons:.2f}x",
                f"{t_b:.3f}s",
                f"{t_o:.3f}s",
            ]
        )
    text = fmt_table(
        ["n", "bitonic cmps", "odd-even cmps", "saving", "bitonic t", "odd-even t"],
        rows,
    )
    report("ablation_sorts", text)

    for n in SIZES:
        assert oddeven_count(n) < bitonic_count(n)

    values = [(i * 7919) % 1024 for i in range(1024)]
    benchmark(lambda: bitonic_sort(PublicArray(list(values), name="X"), IDENTITY))


def test_join_cost_with_cheaper_network_estimate(benchmark):
    """Estimated end-to-end saving if every sort in Algorithm 1 switched to
    odd-even: both networks share the n log^2 n / 4 leading term, so the
    saving is the lower-order n log n term — ~14% at n=512 and shrinking
    with n.  (Folklore says "half"; the networks say otherwise.)"""
    from repro.analysis.counts import table3_analytic
    from repro.obliv.bitonic import next_power_of_two

    n1 = n2 = m = 512 * SCALE
    rows = table3_analytic(n1, n2, m)
    bitonic_total = sum(r.exact for r in rows)

    def oddeven_equiv(size: int) -> int:
        return oddeven_count(next_power_of_two(size)) if size > 1 else 0

    oddeven_total = (
        2 * oddeven_equiv(n1 + n2)
        + oddeven_equiv(max(n1, m))
        + oddeven_equiv(max(n2, m))
        + next((r.exact for r in rows if "route" in r.component))
        + oddeven_equiv(m)
    )
    saving = 1 - oddeven_total / bitonic_total
    report(
        "ablation_sorts_join_estimate",
        f"join comparators at n1=n2=m={n1}: bitonic={bitonic_total}, "
        f"odd-even={oddeven_total} ({saving:.0%} saved)",
    )
    assert 0.05 < saving < 0.45

    w = balanced_output(512, seed=0)
    from repro.core.join import oblivious_join

    benchmark(lambda: oblivious_join(w.left, w.right))
