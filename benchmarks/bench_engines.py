"""Ablation: traced reference engine vs vectorised engine, per workload.

Quantifies the cost of per-access tracing (the security apparatus) against
the numpy engine across *every* workload — binary join, multiway cascade,
grouped aggregation — and verifies the engines emit identical outputs: the
justification for benchmarking on the vector engine while proving security
properties on the traced one.

Runs three ways:

* ``pytest benchmarks/bench_engines.py`` — the regression benchmarks below;
* ``python benchmarks/bench_engines.py --engine vector --n 4096`` — a
  script sweep that times the selected engine against the traced baseline
  and reports the speedup per workload (the CI smoke run uses ``--n 64``);
* ``python benchmarks/bench_engines.py --n 256 --json BENCH_engines.json``
  — the CI perf artifact: every engine x padding mode x workload, one JSON
  record each, so the performance trajectory is tracked run over run.
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro.cli import check_padding_args, engine_options
from repro.core.join import oblivious_join
from repro.core.padding import PADDING_MODES, compact_pairs
from repro.engines import available_engines, get_engine
from repro.memory.tracer import HashSink, NullSink, Tracer
from repro.vector.join import vector_oblivious_join
from repro.workloads.generators import balanced_output

from bench_common import SCALE, fmt_table, report

SIZES = [128, 512, 2048 * SCALE]


def _chain(n: int):
    """A 3-table 1-1 chain with n rows per table (intermediate sizes = n)."""
    t1 = [(k, k) for k in range(n)]
    t2 = [(k, 100_000 + k) for k in range(n)]
    t3 = [(100_000 + k, k) for k in range(n)]
    return [t1, t2, t3], [(0, 0), (3, 0)]


def _workloads(n: int, seed: int = 0):
    """(name, runner) per workload; runner(engine) returns a comparable result.

    Every random workload derives from ``seed`` so cross-engine bench
    comparisons are reproducible run to run.
    """
    w = balanced_output(n, seed=seed)
    tables, keys = _chain(n)
    agg_left = [(k % max(n // 4, 1), k) for k in range(n)]
    agg_right = [(k % max(n // 4, 1), 2 * k) for k in range(n)]
    tracer = Tracer(NullSink())
    return [
        ("join", lambda e: e.join(w.left, w.right, tracer=tracer).pairs),
        ("multiway", lambda e: e.multiway_join(tables, keys, tracer=tracer).rows),
        ("aggregate", lambda e: e.aggregate(agg_left, agg_right, tracer=tracer)),
    ]


def run_sweep(
    engine_name: str,
    n: int,
    seed: int = 0,
    options: dict | None = None,
    records: list[dict] | None = None,
    baseline_cache: dict | None = None,
) -> list[list]:
    """Time ``engine_name`` against the traced baseline on every workload.

    ``options`` may include ``padding``/``bound`` — padded results are
    compacted before the divergence check, so the sweep doubles as a
    padded-vs-unpadded bit-identity check.  When ``records`` is given,
    one machine-readable dict per workload is appended to it (the
    ``BENCH_engines.json`` artifact).  ``baseline_cache`` (keyed by
    ``(workload, n, seed)``) lets the JSON matrix reuse one traced
    baseline run per workload instead of re-timing the slowest engine
    once per combo.
    """
    options = options or {}
    baseline = get_engine("traced")
    engine = get_engine(engine_name, **options)
    padding = options.get("padding", "revealed")
    rows = []
    for workload, runner in _workloads(n, seed=seed):
        cache_key = (workload, n, seed)
        if baseline_cache is not None and cache_key in baseline_cache:
            expected, t_traced = baseline_cache[cache_key]
        else:
            start = time.perf_counter()
            expected = runner(baseline)
            t_traced = time.perf_counter() - start
            if baseline_cache is not None:
                baseline_cache[cache_key] = (expected, t_traced)
        start = time.perf_counter()
        got = runner(engine)
        t_engine = time.perf_counter() - start
        if workload == "join" and padding != "revealed":
            got = compact_pairs(got)
        assert got == expected, f"{engine_name} diverges from traced on {workload}"
        rows.append(
            [
                workload,
                n,
                f"{t_traced:.3f}s",
                f"{t_engine:.4f}s",
                f"{t_traced / t_engine:.1f}x",
            ]
        )
        if records is not None:
            records.append(
                {
                    "engine": engine_name,
                    "workload": workload,
                    "padding": padding,
                    "n": n,
                    "seed": seed,
                    "seconds": t_engine,
                    "traced_seconds": t_traced,
                    "speedup": t_traced / t_engine,
                }
            )
    return rows


#: worst_case pads the 3-table chain to n^3 rows at step 2, so its sweep
#: sizes are capped per engine (traced pays ~10^3x per row on top).
_WORST_CASE_CAPS = {"traced": 16}
_WORST_CASE_DEFAULT_CAP = 64


def collect_json_records(n: int, seed: int = 0) -> dict:
    """The ``BENCH_engines.json`` payload: every engine x padding mode.

    ``bounded`` uses the chain's true intermediate size ``n`` as its public
    cap — the best-case padding cost; ``worst_case`` runs at a capped size
    (each record carries its own ``n``, so the artifact stays honest).
    """
    records: list[dict] = []
    baseline_cache: dict = {}
    for engine_name in available_engines():
        for padding in PADDING_MODES:
            options: dict = {}
            n_run = n
            if padding != "revealed":
                options["padding"] = padding
            if padding == "bounded":
                options["bound"] = n
            if padding == "worst_case":
                n_run = min(
                    n, _WORST_CASE_CAPS.get(engine_name, _WORST_CASE_DEFAULT_CAP)
                )
            run_sweep(
                engine_name,
                n_run,
                seed=seed,
                options=options,
                records=records,
                baseline_cache=baseline_cache,
            )
    return {
        "bench": "engines",
        "n": n,
        "seed": seed,
        "scale": SCALE,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "records": records,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="traced-vs-engine throughput sweep over all workloads"
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=available_engines(),
        help="engine under test; the traced baseline always runs alongside "
        "for the speedup column (default: vector; not valid with --json, "
        "which sweeps every engine)",
    )
    parser.add_argument(
        "--n", type=int, default=4096, help="rows per input table (default: 4096)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="RNG seed for the random workloads (default: 0); fixing it makes "
        "cross-engine comparisons reproducible",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sharded engine: process-pool size",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="sharded engine: partitions per input (default: workers, min 2)",
    )
    parser.add_argument(
        "--padding",
        default="revealed",
        choices=PADDING_MODES,
        help="padded execution for the engine under test (default: revealed)",
    )
    parser.add_argument(
        "--bound",
        type=int,
        default=None,
        help="public bound for --padding bounded",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="instead of a single sweep, run every engine x padding mode and "
        "write the machine-readable records to PATH (the BENCH_engines.json "
        "CI artifact); worst_case sweeps run at capped sizes",
    )
    args = parser.parse_args(argv)
    if args.json:
        # The JSON matrix fixes its own engine/padding grid; accepting (and
        # ignoring) the single-sweep knobs would record a configuration the
        # operator never ran.
        if (
            args.engine is not None
            or args.workers is not None
            or args.shards is not None
            or args.padding != "revealed"
            or args.bound is not None
        ):
            parser.error(
                "--json sweeps every engine x padding mode; "
                "--engine/--workers/--shards/--padding/--bound do not apply"
            )
        payload = collect_json_records(args.n, seed=args.seed)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {len(payload['records'])} records to {args.json}")
        return 0
    check_padding_args(args.padding, args.bound)
    engine_name = args.engine or "vector"
    rows = run_sweep(engine_name, args.n, seed=args.seed, options=engine_options(args))
    report(
        f"engines_{engine_name}_sweep",
        fmt_table(["workload", "n", "traced", engine_name, "speedup"], rows),
    )
    return 0


# -- pytest benchmarks -------------------------------------------------------


def test_engine_throughput_comparison(benchmark):
    rows = []
    for n in SIZES:
        w = balanced_output(n, seed=n)

        start = time.perf_counter()
        traced = oblivious_join(w.left, w.right, tracer=Tracer(NullSink()))
        t_traced = time.perf_counter() - start

        start = time.perf_counter()
        oblivious_join(w.left, w.right, tracer=Tracer(HashSink()))
        t_hashed = time.perf_counter() - start

        start = time.perf_counter()
        vec_pairs, _ = vector_oblivious_join(w.left, w.right)
        t_vector = time.perf_counter() - start

        assert traced.pairs == [tuple(p) for p in vec_pairs.tolist()]
        rows.append(
            [
                n,
                f"{t_traced:.3f}s",
                f"{t_hashed:.3f}s",
                f"{t_vector:.4f}s",
                f"{t_traced / t_vector:.0f}x",
            ]
        )
    text = fmt_table(
        ["n", "traced (null sink)", "traced (sha256)", "vector", "speedup"], rows
    )
    report("engines", text)

    w = balanced_output(SIZES[-1], seed=0)
    start = time.perf_counter()
    oblivious_join(w.left, w.right)
    t_traced = time.perf_counter() - start
    start = time.perf_counter()
    vector_oblivious_join(w.left, w.right)
    t_vector = time.perf_counter() - start
    assert t_vector < t_traced

    small = balanced_output(512, seed=1)
    benchmark(lambda: vector_oblivious_join(small.left, small.right))


def test_all_workloads_sweep_vector_vs_traced(benchmark):
    """The multiway/aggregate fast paths must beat traced by a wide margin."""
    n = 256 * SCALE
    rows = run_sweep("vector", n)
    report(
        "engines_workloads",
        fmt_table(["workload", "n", "traced", "vector", "speedup"], rows),
    )
    tables, keys = _chain(n)
    benchmark(lambda: get_engine("vector").multiway_join(tables, keys))


def test_json_artifact(tmp_path):
    """The CI artifact must cover every engine x padding combination."""
    path = tmp_path / "BENCH_engines.json"
    assert main(["--n", "16", "--json", str(path)]) == 0
    payload = json.loads(path.read_text(encoding="utf-8"))
    combos = {(r["engine"], r["padding"]) for r in payload["records"]}
    assert len(combos) == len(available_engines()) * len(PADDING_MODES)
    assert all(r["seconds"] > 0 for r in payload["records"])


def test_hash_sink_overhead(benchmark):
    """The §6.1 hashing apparatus must not distort measurements beyond ~10x."""
    w = balanced_output(512, seed=2)

    def run_hashed():
        oblivious_join(w.left, w.right, tracer=Tracer(HashSink()))

    benchmark(run_hashed)


if __name__ == "__main__":
    raise SystemExit(main())
