"""Ablation: traced reference engine vs vectorised engine throughput.

Quantifies the cost of per-access tracing (the security apparatus) against
the numpy engine, and verifies both engines emit identical outputs — the
justification for benchmarking on the vector engine while proving security
properties on the traced one.
"""

from __future__ import annotations

import time

from repro.core.join import oblivious_join
from repro.memory.tracer import HashSink, NullSink, Tracer
from repro.vector.join import vector_oblivious_join
from repro.workloads.generators import balanced_output

from conftest import SCALE, fmt_table, report

SIZES = [128, 512, 2048 * SCALE]


def test_engine_throughput_comparison(benchmark):
    rows = []
    for n in SIZES:
        w = balanced_output(n, seed=n)

        start = time.perf_counter()
        traced = oblivious_join(w.left, w.right, tracer=Tracer(NullSink()))
        t_traced = time.perf_counter() - start

        start = time.perf_counter()
        oblivious_join(w.left, w.right, tracer=Tracer(HashSink()))
        t_hashed = time.perf_counter() - start

        start = time.perf_counter()
        vec_pairs, _ = vector_oblivious_join(w.left, w.right)
        t_vector = time.perf_counter() - start

        assert traced.pairs == [tuple(p) for p in vec_pairs.tolist()]
        rows.append(
            [
                n,
                f"{t_traced:.3f}s",
                f"{t_hashed:.3f}s",
                f"{t_vector:.4f}s",
                f"{t_traced / t_vector:.0f}x",
            ]
        )
    text = fmt_table(
        ["n", "traced (null sink)", "traced (sha256)", "vector", "speedup"], rows
    )
    report("engines", text)

    w = balanced_output(SIZES[-1], seed=0)
    start = time.perf_counter()
    oblivious_join(w.left, w.right)
    t_traced = time.perf_counter() - start
    start = time.perf_counter()
    vector_oblivious_join(w.left, w.right)
    t_vector = time.perf_counter() - start
    assert t_vector < t_traced

    small = balanced_output(512, seed=1)
    benchmark(lambda: vector_oblivious_join(small.left, small.right))


def test_hash_sink_overhead(benchmark):
    """The §6.1 hashing apparatus must not distort measurements beyond ~10x."""
    w = balanced_output(512, seed=2)

    def run_hashed():
        oblivious_join(w.left, w.right, tracer=Tracer(HashSink()))

    benchmark(run_hashed)
