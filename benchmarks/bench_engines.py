"""Ablation: traced reference engine vs vectorised engine, per workload.

Quantifies the cost of per-access tracing (the security apparatus) against
the numpy engine across *every* workload — binary join, multiway cascade,
grouped aggregation — and verifies the engines emit identical outputs: the
justification for benchmarking on the vector engine while proving security
properties on the traced one.

Runs three ways:

* ``pytest benchmarks/bench_engines.py`` — the regression benchmarks below;
* ``python benchmarks/bench_engines.py --engine vector --n 4096`` — a
  script sweep that times the selected engine against the traced baseline
  and reports the speedup per workload (the CI smoke run uses ``--n 64``);
* ``python benchmarks/bench_engines.py --n 256 --json BENCH_engines.json``
  — the CI perf artifact: every engine x padding mode x workload, one JSON
  record each, so the performance trajectory is tracked run over run.

A fourth mode, ``--join-tree``, sweeps the Yannakakis-style join tree
against the binary cascade on 3- and 4-table skewed queries: per engine
and padding mode it times both and — on the bounded records — carries the
headline comparison (one final-output bound vs compounded per-step bounds,
and the matching merge-comparator counts), asserted strictly in the tree's
favour.  ``--join-tree --json BENCH_join_tree.json`` writes the CI
artifact gated by ``check_bench_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro.cli import check_padding_args, engine_options
from repro.core.join import oblivious_join
from repro.core.padding import PADDING_MODES, compact_pairs
from repro.engines import available_engines, get_engine
from repro.memory.tracer import HashSink, NullSink, Tracer
from repro.vector.join import vector_oblivious_join
from repro.workloads.generators import balanced_output

from bench_common import SCALE, fmt_table, report

SIZES = [128, 512, 2048 * SCALE]


def _chain(n: int):
    """A 3-table 1-1 chain with n rows per table (intermediate sizes = n)."""
    t1 = [(k, k) for k in range(n)]
    t2 = [(k, 100_000 + k) for k in range(n)]
    t3 = [(100_000 + k, k) for k in range(n)]
    return [t1, t2, t3], [(0, 0), (3, 0)]


def _workloads(n: int, seed: int = 0):
    """(name, runner) per workload; runner(engine) returns a comparable result.

    Every random workload derives from ``seed`` so cross-engine bench
    comparisons are reproducible run to run.
    """
    w = balanced_output(n, seed=seed)
    tables, keys = _chain(n)
    agg_left = [(k % max(n // 4, 1), k) for k in range(n)]
    agg_right = [(k % max(n // 4, 1), 2 * k) for k in range(n)]
    tracer = Tracer(NullSink())
    return [
        ("join", lambda e: e.join(w.left, w.right, tracer=tracer).pairs),
        ("multiway", lambda e: e.multiway_join(tables, keys, tracer=tracer).rows),
        ("aggregate", lambda e: e.aggregate(agg_left, agg_right, tracer=tracer)),
    ]


def run_sweep(
    engine_name: str,
    n: int,
    seed: int = 0,
    options: dict | None = None,
    records: list[dict] | None = None,
    baseline_cache: dict | None = None,
) -> list[list]:
    """Time ``engine_name`` against the traced baseline on every workload.

    ``options`` may include ``padding``/``bound`` — padded results are
    compacted before the divergence check, so the sweep doubles as a
    padded-vs-unpadded bit-identity check.  When ``records`` is given,
    one machine-readable dict per workload is appended to it (the
    ``BENCH_engines.json`` artifact).  ``baseline_cache`` (keyed by
    ``(workload, n, seed)``) lets the JSON matrix reuse one traced
    baseline run per workload instead of re-timing the slowest engine
    once per combo.
    """
    options = options or {}
    baseline = get_engine("traced")
    engine = get_engine(engine_name, **options)
    padding = options.get("padding", "revealed")
    rows = []
    for workload, runner in _workloads(n, seed=seed):
        cache_key = (workload, n, seed)
        if baseline_cache is not None and cache_key in baseline_cache:
            expected, t_traced = baseline_cache[cache_key]
        else:
            start = time.perf_counter()
            expected = runner(baseline)
            t_traced = time.perf_counter() - start
            if baseline_cache is not None:
                baseline_cache[cache_key] = (expected, t_traced)
        start = time.perf_counter()
        got = runner(engine)
        t_engine = time.perf_counter() - start
        if workload == "join" and padding != "revealed":
            got = compact_pairs(got)
        assert got == expected, f"{engine_name} diverges from traced on {workload}"
        rows.append(
            [
                workload,
                n,
                f"{t_traced:.3f}s",
                f"{t_engine:.4f}s",
                f"{t_traced / t_engine:.1f}x",
            ]
        )
        if records is not None:
            records.append(
                {
                    "engine": engine_name,
                    "workload": workload,
                    "padding": padding,
                    "n": n,
                    "seed": seed,
                    "seconds": t_engine,
                    "traced_seconds": t_traced,
                    "speedup": t_traced / t_engine,
                }
            )
    return rows


#: worst_case pads the 3-table chain to n^3 rows at step 2, so its sweep
#: sizes are capped per engine (traced pays ~10^3x per row on top).
_WORST_CASE_CAPS = {"traced": 16}
_WORST_CASE_DEFAULT_CAP = 64


def _tree_query(n: int, tables_count: int):
    """The canonical skewed acyclic query of the join-tree bench.

    Keys ``k % 3`` on the wide tables, every row of the hot child in the
    heaviest group — the worst shape for the cascade's compounded
    per-step padding.  Returns ``(tables, tree edges, cascade keys)``
    expressing the identical star query both ways.
    """
    t0 = [(k % 3, k) for k in range(n)]
    t1 = [(k % 3, k) for k in range(n)]
    t2 = [(0, k) for k in range(max(n // 2, 1))]
    tables = [t0, t1, t2]
    edges = [(0, 1, 0, 0), (0, 2, 0, 0)]
    keys = [(0, 0), (0, 0)]
    if tables_count == 4:
        tables.append([(k % 3, k) for k in range(max(n // 2, 1))])
        edges.append((0, 3, 0, 0))
        keys.append((0, 0))
    return tables, edges, keys


def collect_join_tree_records(n: int, seed: int = 0) -> dict:
    """The ``BENCH_join_tree.json`` payload: join tree vs binary cascade.

    One record per engine x padding x query (3- and 4-table, keyed as
    workloads ``join_tree3`` / ``join_tree4`` so the regression checker's
    record keys stay unique).  The ``bounded`` cap is the query's true
    output size — the tightest public bound that cannot abort — and those
    records carry the headline comparison fields, asserted strictly in
    the tree's favour before anything is written:
    ``padded_rows_tree`` < ``padded_rows_cascade`` (one target vs the sum
    of compounded step bounds) and ``merge_comparators_tree`` <
    ``merge_comparators_cascade`` (both pure functions of the public
    schedules, measured on the sharded path).
    """
    from repro.shard.join_tree import ShardedJoinTreeStats, sharded_join_tree
    from repro.shard.multiway import ShardedMultiwayStats, sharded_multiway_join

    records: list[dict] = []
    for tables_count in (3, 4):
        tables, edges, keys = _tree_query(n, tables_count)
        workload = f"join_tree{tables_count}"
        oracle = sorted(get_engine("vector").multiway_join(tables, keys).rows)
        bound = max(len(oracle), 1)

        tree_stats = ShardedJoinTreeStats()
        _, tree_stats = sharded_join_tree(
            tables, edges, shards=2, stats=tree_stats,
            padding="bounded", bound=bound,
        )
        cascade_stats = ShardedMultiwayStats()
        cascade = sharded_multiway_join(
            tables, keys, shards=2, stats=cascade_stats,
            padding="bounded", bound=bound,
        )
        comparison = {
            "padded_rows_tree": tree_stats.target,
            "padded_rows_cascade": cascade.total_padded_rows,
            "merge_comparators_tree": tree_stats.merge_comparisons,
            "merge_comparators_cascade": sum(
                s.merge_comparisons for s in cascade_stats.step_stats
            ),
        }
        assert comparison["padded_rows_tree"] < comparison["padded_rows_cascade"], (
            f"{workload}: tree target {comparison['padded_rows_tree']} not "
            f"below cascade total {comparison['padded_rows_cascade']}"
        )
        assert (
            comparison["merge_comparators_tree"]
            < comparison["merge_comparators_cascade"]
        ), f"{workload}: tree merges not below cascade merges"

        for padding in ("revealed", "bounded"):
            options: dict = (
                {} if padding == "revealed" else {"padding": padding, "bound": bound}
            )
            start = time.perf_counter()
            expected = get_engine("traced", **options).join_tree(tables, edges)
            t_traced = time.perf_counter() - start
            assert sorted(expected.rows) == oracle, (
                f"traced join tree diverges from the cascade on {workload}"
            )
            for engine_name in available_engines():
                engine = get_engine(engine_name, **options)
                start = time.perf_counter()
                result = engine.join_tree(tables, edges)
                t_engine = time.perf_counter() - start
                assert result.rows == expected.rows, (
                    f"{engine_name} join tree diverges on {workload}/{padding}"
                )
                record = {
                    "engine": engine_name,
                    "workload": workload,
                    "padding": padding,
                    "n": n,
                    "seed": seed,
                    "seconds": t_engine,
                    "traced_seconds": t_traced,
                    "speedup": t_traced / t_engine,
                }
                if padding == "bounded":
                    record.update(comparison)
                records.append(record)
    return {
        "bench": "join_tree",
        "n": n,
        "seed": seed,
        "scale": SCALE,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "records": records,
    }


def collect_json_records(n: int, seed: int = 0) -> dict:
    """The ``BENCH_engines.json`` payload: every engine x padding mode.

    ``bounded`` uses the chain's true intermediate size ``n`` as its public
    cap — the best-case padding cost; ``worst_case`` runs at a capped size
    (each record carries its own ``n``, so the artifact stays honest).
    """
    records: list[dict] = []
    baseline_cache: dict = {}
    for engine_name in available_engines():
        for padding in PADDING_MODES:
            options: dict = {}
            n_run = n
            if padding != "revealed":
                options["padding"] = padding
            if padding == "bounded":
                options["bound"] = n
            if padding == "worst_case":
                n_run = min(
                    n, _WORST_CASE_CAPS.get(engine_name, _WORST_CASE_DEFAULT_CAP)
                )
            run_sweep(
                engine_name,
                n_run,
                seed=seed,
                options=options,
                records=records,
                baseline_cache=baseline_cache,
            )
    return {
        "bench": "engines",
        "n": n,
        "seed": seed,
        "scale": SCALE,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "records": records,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="traced-vs-engine throughput sweep over all workloads"
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=available_engines(),
        help="engine under test; the traced baseline always runs alongside "
        "for the speedup column (default: vector; not valid with --json, "
        "which sweeps every engine)",
    )
    parser.add_argument(
        "--n", type=int, default=4096, help="rows per input table (default: 4096)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="RNG seed for the random workloads (default: 0); fixing it makes "
        "cross-engine comparisons reproducible",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sharded engine: process-pool size",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="sharded engine: partitions per input (default: workers, min 2)",
    )
    parser.add_argument(
        "--padding",
        default="revealed",
        choices=PADDING_MODES,
        help="padded execution for the engine under test (default: revealed)",
    )
    parser.add_argument(
        "--bound",
        type=int,
        default=None,
        help="public bound for --padding bounded",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="instead of a single sweep, run every engine x padding mode and "
        "write the machine-readable records to PATH (the BENCH_engines.json "
        "CI artifact); worst_case sweeps run at capped sizes",
    )
    parser.add_argument(
        "--join-tree",
        action="store_true",
        dest="join_tree",
        help="run the join-tree-vs-cascade sweep instead: 3- and 4-table "
        "skewed queries per engine x padding, with the tree's padded rows "
        "and merge comparators asserted strictly below the cascade's; "
        "with --json, writes the BENCH_join_tree.json CI artifact",
    )
    args = parser.parse_args(argv)
    if args.join_tree:
        # The join-tree sweep fixes its own query/engine/padding grid too.
        if (
            args.engine is not None
            or args.workers is not None
            or args.shards is not None
            or args.padding != "revealed"
            or args.bound is not None
        ):
            parser.error(
                "--join-tree sweeps every engine over its own query grid; "
                "--engine/--workers/--shards/--padding/--bound do not apply"
            )
        payload = collect_join_tree_records(args.n, seed=args.seed)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            print(f"wrote {len(payload['records'])} records to {args.json}")
            return 0
        rows = [
            [
                r["workload"],
                r["engine"],
                r["padding"],
                r["n"],
                f"{r['traced_seconds']:.3f}s",
                f"{r['seconds']:.4f}s",
                f"{r['speedup']:.1f}x",
                r.get("padded_rows_tree", "-"),
                r.get("padded_rows_cascade", "-"),
                r.get("merge_comparators_tree", "-"),
                r.get("merge_comparators_cascade", "-"),
            ]
            for r in payload["records"]
        ]
        report(
            "join_tree_sweep",
            fmt_table(
                [
                    "workload", "engine", "padding", "n", "traced", "engine_s",
                    "speedup", "pad_tree", "pad_cascade", "mrg_tree",
                    "mrg_cascade",
                ],
                rows,
            ),
        )
        return 0
    if args.json:
        # The JSON matrix fixes its own engine/padding grid; accepting (and
        # ignoring) the single-sweep knobs would record a configuration the
        # operator never ran.
        if (
            args.engine is not None
            or args.workers is not None
            or args.shards is not None
            or args.padding != "revealed"
            or args.bound is not None
        ):
            parser.error(
                "--json sweeps every engine x padding mode; "
                "--engine/--workers/--shards/--padding/--bound do not apply"
            )
        payload = collect_json_records(args.n, seed=args.seed)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {len(payload['records'])} records to {args.json}")
        return 0
    check_padding_args(args.padding, args.bound)
    engine_name = args.engine or "vector"
    rows = run_sweep(engine_name, args.n, seed=args.seed, options=engine_options(args))
    report(
        f"engines_{engine_name}_sweep",
        fmt_table(["workload", "n", "traced", engine_name, "speedup"], rows),
    )
    return 0


# -- pytest benchmarks -------------------------------------------------------


def test_engine_throughput_comparison(benchmark):
    rows = []
    for n in SIZES:
        w = balanced_output(n, seed=n)

        start = time.perf_counter()
        traced = oblivious_join(w.left, w.right, tracer=Tracer(NullSink()))
        t_traced = time.perf_counter() - start

        start = time.perf_counter()
        oblivious_join(w.left, w.right, tracer=Tracer(HashSink()))
        t_hashed = time.perf_counter() - start

        start = time.perf_counter()
        vec_pairs, _ = vector_oblivious_join(w.left, w.right)
        t_vector = time.perf_counter() - start

        assert traced.pairs == [tuple(p) for p in vec_pairs.tolist()]
        rows.append(
            [
                n,
                f"{t_traced:.3f}s",
                f"{t_hashed:.3f}s",
                f"{t_vector:.4f}s",
                f"{t_traced / t_vector:.0f}x",
            ]
        )
    text = fmt_table(
        ["n", "traced (null sink)", "traced (sha256)", "vector", "speedup"], rows
    )
    report("engines", text)

    w = balanced_output(SIZES[-1], seed=0)
    start = time.perf_counter()
    oblivious_join(w.left, w.right)
    t_traced = time.perf_counter() - start
    start = time.perf_counter()
    vector_oblivious_join(w.left, w.right)
    t_vector = time.perf_counter() - start
    assert t_vector < t_traced

    small = balanced_output(512, seed=1)
    benchmark(lambda: vector_oblivious_join(small.left, small.right))


def test_all_workloads_sweep_vector_vs_traced(benchmark):
    """The multiway/aggregate fast paths must beat traced by a wide margin."""
    n = 256 * SCALE
    rows = run_sweep("vector", n)
    report(
        "engines_workloads",
        fmt_table(["workload", "n", "traced", "vector", "speedup"], rows),
    )
    tables, keys = _chain(n)
    benchmark(lambda: get_engine("vector").multiway_join(tables, keys))


def test_json_artifact(tmp_path):
    """The CI artifact must cover every engine x padding combination."""
    path = tmp_path / "BENCH_engines.json"
    assert main(["--n", "16", "--json", str(path)]) == 0
    payload = json.loads(path.read_text(encoding="utf-8"))
    combos = {(r["engine"], r["padding"]) for r in payload["records"]}
    assert len(combos) == len(available_engines()) * len(PADDING_MODES)
    assert all(r["seconds"] > 0 for r in payload["records"])


def test_join_tree_artifact(tmp_path):
    """The join-tree artifact must carry the tree-vs-cascade comparison on
    every bounded record, with the tree strictly ahead on both counts."""
    path = tmp_path / "BENCH_join_tree.json"
    assert main(["--n", "12", "--join-tree", "--json", str(path)]) == 0
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["bench"] == "join_tree"
    workloads = {r["workload"] for r in payload["records"]}
    assert workloads == {"join_tree3", "join_tree4"}
    assert all(r["seconds"] > 0 for r in payload["records"])
    bounded = [r for r in payload["records"] if r["padding"] == "bounded"]
    assert bounded
    for record in bounded:
        assert record["padded_rows_tree"] < record["padded_rows_cascade"]
        assert record["merge_comparators_tree"] < record["merge_comparators_cascade"]


def test_hash_sink_overhead(benchmark):
    """The §6.1 hashing apparatus must not distort measurements beyond ~10x."""
    w = balanced_output(512, seed=2)

    def run_hashed():
        oblivious_join(w.left, w.right, tracer=Tracer(HashSink()))

    benchmark(run_hashed)


if __name__ == "__main__":
    raise SystemExit(main())
