"""Ablation: traced reference engine vs vectorised engine, per workload.

Quantifies the cost of per-access tracing (the security apparatus) against
the numpy engine across *every* workload — binary join, multiway cascade,
grouped aggregation — and verifies the engines emit identical outputs: the
justification for benchmarking on the vector engine while proving security
properties on the traced one.

Runs two ways:

* ``pytest benchmarks/bench_engines.py`` — the regression benchmarks below;
* ``python benchmarks/bench_engines.py --engine vector --n 4096`` — a
  script sweep that times the selected engine against the traced baseline
  and reports the speedup per workload (the CI smoke run uses ``--n 64``).
"""

from __future__ import annotations

import argparse
import time

from repro.cli import engine_options
from repro.core.join import oblivious_join
from repro.engines import available_engines, get_engine
from repro.memory.tracer import HashSink, NullSink, Tracer
from repro.vector.join import vector_oblivious_join
from repro.workloads.generators import balanced_output

from bench_common import SCALE, fmt_table, report

SIZES = [128, 512, 2048 * SCALE]


def _chain(n: int):
    """A 3-table 1-1 chain with n rows per table (intermediate sizes = n)."""
    t1 = [(k, k) for k in range(n)]
    t2 = [(k, 100_000 + k) for k in range(n)]
    t3 = [(100_000 + k, k) for k in range(n)]
    return [t1, t2, t3], [(0, 0), (3, 0)]


def _workloads(n: int, seed: int = 0):
    """(name, runner) per workload; runner(engine) returns a comparable result.

    Every random workload derives from ``seed`` so cross-engine bench
    comparisons are reproducible run to run.
    """
    w = balanced_output(n, seed=seed)
    tables, keys = _chain(n)
    agg_left = [(k % max(n // 4, 1), k) for k in range(n)]
    agg_right = [(k % max(n // 4, 1), 2 * k) for k in range(n)]
    tracer = Tracer(NullSink())
    return [
        ("join", lambda e: e.join(w.left, w.right, tracer=tracer).pairs),
        ("multiway", lambda e: e.multiway_join(tables, keys, tracer=tracer).rows),
        ("aggregate", lambda e: e.aggregate(agg_left, agg_right, tracer=tracer)),
    ]


def run_sweep(
    engine_name: str, n: int, seed: int = 0, options: dict | None = None
) -> list[list]:
    """Time ``engine_name`` against the traced baseline on every workload."""
    baseline = get_engine("traced")
    engine = get_engine(engine_name, **(options or {}))
    rows = []
    for workload, runner in _workloads(n, seed=seed):
        start = time.perf_counter()
        expected = runner(baseline)
        t_traced = time.perf_counter() - start
        start = time.perf_counter()
        got = runner(engine)
        t_engine = time.perf_counter() - start
        assert got == expected, f"{engine_name} diverges from traced on {workload}"
        rows.append(
            [
                workload,
                n,
                f"{t_traced:.3f}s",
                f"{t_engine:.4f}s",
                f"{t_traced / t_engine:.1f}x",
            ]
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="traced-vs-engine throughput sweep over all workloads"
    )
    parser.add_argument(
        "--engine",
        default="vector",
        choices=available_engines(),
        help="engine under test; the traced baseline always runs alongside "
        "for the speedup column (default: vector)",
    )
    parser.add_argument(
        "--n", type=int, default=4096, help="rows per input table (default: 4096)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="RNG seed for the random workloads (default: 0); fixing it makes "
        "cross-engine comparisons reproducible",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sharded engine: process-pool size",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="sharded engine: partitions per input (default: workers, min 2)",
    )
    args = parser.parse_args(argv)
    rows = run_sweep(args.engine, args.n, seed=args.seed, options=engine_options(args))
    report(
        f"engines_{args.engine}_sweep",
        fmt_table(["workload", "n", "traced", args.engine, "speedup"], rows),
    )
    return 0


# -- pytest benchmarks -------------------------------------------------------


def test_engine_throughput_comparison(benchmark):
    rows = []
    for n in SIZES:
        w = balanced_output(n, seed=n)

        start = time.perf_counter()
        traced = oblivious_join(w.left, w.right, tracer=Tracer(NullSink()))
        t_traced = time.perf_counter() - start

        start = time.perf_counter()
        oblivious_join(w.left, w.right, tracer=Tracer(HashSink()))
        t_hashed = time.perf_counter() - start

        start = time.perf_counter()
        vec_pairs, _ = vector_oblivious_join(w.left, w.right)
        t_vector = time.perf_counter() - start

        assert traced.pairs == [tuple(p) for p in vec_pairs.tolist()]
        rows.append(
            [
                n,
                f"{t_traced:.3f}s",
                f"{t_hashed:.3f}s",
                f"{t_vector:.4f}s",
                f"{t_traced / t_vector:.0f}x",
            ]
        )
    text = fmt_table(
        ["n", "traced (null sink)", "traced (sha256)", "vector", "speedup"], rows
    )
    report("engines", text)

    w = balanced_output(SIZES[-1], seed=0)
    start = time.perf_counter()
    oblivious_join(w.left, w.right)
    t_traced = time.perf_counter() - start
    start = time.perf_counter()
    vector_oblivious_join(w.left, w.right)
    t_vector = time.perf_counter() - start
    assert t_vector < t_traced

    small = balanced_output(512, seed=1)
    benchmark(lambda: vector_oblivious_join(small.left, small.right))


def test_all_workloads_sweep_vector_vs_traced(benchmark):
    """The multiway/aggregate fast paths must beat traced by a wide margin."""
    n = 256 * SCALE
    rows = run_sweep("vector", n)
    report(
        "engines_workloads",
        fmt_table(["workload", "n", "traced", "vector", "speedup"], rows),
    )
    tables, keys = _chain(n)
    benchmark(lambda: get_engine("vector").multiway_join(tables, keys))


def test_hash_sink_overhead(benchmark):
    """The §6.1 hashing apparatus must not distort measurements beyond ~10x."""
    w = balanced_output(512, seed=2)

    def run_hashed():
        oblivious_join(w.left, w.right, tracer=Tracer(HashSink()))

    benchmark(run_hashed)


if __name__ == "__main__":
    raise SystemExit(main())
