"""CI gate: fail when ``BENCH_engines.json`` regresses vs the committed baseline.

Usage::

    python benchmarks/check_bench_regression.py BENCH_engines.json \
        [--baseline benchmarks/BENCH_engines.baseline.json] [--factor 2.0]

Every record in the artifact carries both the engine-under-test seconds and
the traced-baseline seconds *measured in the same run*, so the comparison
metric is the **relative cost** ``seconds / traced_seconds`` — normalising
out machine speed, which is what makes a committed baseline from one box
meaningful on another.  A record regresses when its relative cost grows by
more than ``--factor`` (default 2x, per the CI contract) against the
baseline record with the same ``(engine, workload, padding, n)`` key.

Sub-5ms timings are too noisy to judge at the smoke sizes CI runs; such
records are reported as skipped rather than gated.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Engine timings below this are measurement noise at smoke sizes.
MIN_SECONDS = 0.005


def record_key(record: dict) -> tuple:
    return (record["engine"], record["workload"], record["padding"], record["n"])


def relative_cost(record: dict) -> float:
    return record["seconds"] / record["traced_seconds"]


def compare(current: dict, baseline: dict, factor: float) -> tuple[list, list]:
    """Returns ``(regressions, rows)``; rows describe every comparison."""
    baseline_by_key = {record_key(r): r for r in baseline["records"]}
    regressions, rows = [], []
    for record in current["records"]:
        key = record_key(record)
        base = baseline_by_key.get(key)
        if base is None:
            rows.append((key, None, relative_cost(record), "new"))
            continue
        ratio = relative_cost(record) / relative_cost(base)
        # Both the engine seconds and the traced-seconds denominator must
        # be above the noise floor for the ratio to mean anything.
        noisy = (
            record["seconds"] < MIN_SECONDS and base["seconds"] < MIN_SECONDS
        ) or min(record["traced_seconds"], base["traced_seconds"]) < MIN_SECONDS
        if noisy:
            rows.append((key, ratio, relative_cost(record), "skipped (sub-5ms)"))
            continue
        status = "ok"
        if ratio > factor:
            status = f"REGRESSION (> {factor:.1f}x)"
            regressions.append(key)
        rows.append((key, ratio, relative_cost(record), status))
    return regressions, rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when the engine bench regresses vs the committed baseline"
    )
    parser.add_argument("artifact", help="freshly generated BENCH_engines.json")
    parser.add_argument(
        "--baseline",
        default="benchmarks/BENCH_engines.baseline.json",
        help="committed baseline (default: benchmarks/BENCH_engines.baseline.json)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="maximum allowed relative-cost growth (default: 2.0)",
    )
    args = parser.parse_args(argv)
    with open(args.artifact, encoding="utf-8") as handle:
        current = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)

    regressions, rows = compare(current, baseline, args.factor)
    for key, ratio, cost, status in rows:
        engine, workload, padding, n = key
        ratio_text = "  new" if ratio is None else f"{ratio:5.2f}"
        print(
            f"{engine:8s} {workload:9s} {padding:10s} n={n:<6d} "
            f"cost={cost:8.3f}x traced  vs-baseline={ratio_text}  {status}"
        )
    if regressions:
        print(f"\n{len(regressions)} regression(s): {regressions}", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.factor:.1f}x (of {len(rows)} records)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
