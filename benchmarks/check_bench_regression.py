"""CI gate: fail when a bench artifact regresses vs its committed baseline.

Usage::

    python benchmarks/check_bench_regression.py BENCH_engines.json \
        [--baseline benchmarks/BENCH_engines.baseline.json] [--factor 2.0]

    python benchmarks/check_bench_regression.py BENCH_parallelism.json \
        --baseline benchmarks/BENCH_parallelism.baseline.json

Every record in an artifact carries both the engine-under-test seconds and
a reference engine's seconds *measured in the same run* (``traced_seconds``
in the engines artifact, ``reference_seconds`` — the vector baseline — in
the parallelism artifact), so the comparison metric is the **relative
cost** ``seconds / reference`` — normalising out machine speed, which is
what makes a committed baseline from one box meaningful on another.  A
record regresses when its relative cost grows by more than ``--factor``
(default 2x, per the CI contract) against the baseline record with the
same key — ``(engine, workload, padding, n)`` plus, when present, the
``(executor, workers)`` pair the parallelism sweep varies.

Records carrying ``merge_seconds`` (the parallelism artifact since the
streaming-merge change) are additionally gated on the **merge phase**
alone: a reassembly-tail regression fails CI even when faster grid tasks
hide it in the end-to-end number.

Service records (``BENCH_service.json``, keyed additionally by
``(mode, concurrency)``) are also checked for the structural warm-path
invariant: on ``warm_gate`` rows at concurrency 1 the warm per-query
latency must be strictly below the cold one *within the current
artifact* — the caches' reason to exist — independent of any baseline
ratio.

Storage records (``BENCH_storage.json``) carry their own structural
invariant on ``storage_gate`` rows: an in-budget block-aligned
file-backed join must stay within 1.5x of the same-run resident join —
the paged path's overhead is a bounded constant, independent of any
baseline ratio.

Sub-5ms timings are too noisy to judge at the smoke sizes CI runs; such
records are reported as skipped rather than gated.  A phase whose
*current* value is sub-noise is skipped; a phase whose *baseline* is
sub-noise gates against a floor of 5ms, so a genuine reassembly blow-up
fails CI while jitter around the floor passes.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Engine timings below this are measurement noise at smoke sizes.
MIN_SECONDS = 0.005


def record_key(record: dict) -> tuple:
    key = (
        record["engine"],
        record["workload"],
        record.get("padding", "revealed"),
        record["n"],
    )
    if "executor" in record or "workers" in record:
        key += (record.get("executor", "-"), record.get("workers", "-"))
    if "segments" in record:
        key += (record["segments"],)
    if "mode" in record or "concurrency" in record:
        # Service records: the same query measured cold vs warm, and the
        # warm path again under concurrent admission.
        key += (record.get("mode", "-"), record.get("concurrency", 1))
    return key


def service_warm_regressions(current: dict) -> list:
    """The service artifact's structural invariant: warm beats cold.

    The whole point of the service layer is that a warm engine answers a
    repeated query faster than a cold one; if that inverts, the caches
    regressed even when every relative cost stayed under the factor.
    Compared per (engine, workload, n) at concurrency 1, current artifact
    only (the invariant must hold per run, not vs a baseline).  Only
    records the bench marks ``warm_gate`` are bound: those are the
    configurations whose margin is structural (pool fork, shm publish,
    plan compile) rather than timing jitter; ungated rows (plain vector,
    whose only cacheable setup is the key scan) are context only.
    """
    by_mode: dict[tuple, dict[str, float]] = {}
    for record in current.get("records", []):
        if "mode" not in record or record.get("concurrency", 1) != 1:
            continue
        if not record.get("warm_gate", True):
            continue
        group = (record["engine"], record["workload"], record["n"])
        by_mode.setdefault(group, {})[record["mode"]] = record["seconds"]
    violations = []
    for group, modes in sorted(by_mode.items()):
        if "cold" in modes and "warm" in modes and modes["warm"] >= modes["cold"]:
            violations.append(
                group + (f"warm {modes['warm']:.4f}s >= cold {modes['cold']:.4f}s",)
            )
    return violations


#: The storage artifact's structural bound: in-budget file-backed joins
#: within this factor of the same-run resident join (mirrors
#: bench_storage.GATE_FACTOR).
STORAGE_FACTOR = 1.5


def storage_regressions(current: dict) -> list:
    """The storage artifact's structural invariant: paging is bounded.

    ``bench_storage.py`` marks ``storage_gate`` on the plaintext
    file-backed rows whose table fits the trusted-memory budget: for
    those, the block path adds only constant per-block bookkeeping, so
    the join must land within ``STORAGE_FACTOR`` of the same-run
    resident median.  Enforced on the current artifact alone (the bound
    is structural, not a baseline ratio); resident references under the
    noise floor are skipped — at CI smoke sizes a ratio over jitter
    means nothing.
    """
    violations = []
    for record in current.get("records", []):
        if not record.get("storage_gate"):
            continue
        reference = record.get("reference_seconds") or 0.0
        if reference < MIN_SECONDS:
            continue
        if record["seconds"] > STORAGE_FACTOR * reference:
            violations.append((
                record["engine"],
                record["workload"],
                record["n"],
                record["mode"],
                f"{record['seconds']:.4f}s > {STORAGE_FACTOR}x "
                f"resident {reference:.4f}s",
            ))
    return violations


def reference_seconds(record: dict) -> float:
    """The same-run reference denominator, whichever artifact shape."""
    return record.get("reference_seconds", record.get("traced_seconds"))


def record_metrics(record: dict) -> list[tuple[str, float]]:
    """The gated ``(phase, seconds)`` pairs of one record."""
    metrics = [("total", record["seconds"])]
    if "merge_seconds" in record:
        metrics.append(("merge", record["merge_seconds"]))
    if "expand_seconds" in record:
        metrics.append(("expand", record["expand_seconds"]))
    return metrics


def compare(
    current: dict, baseline: dict, factor: float, cpus_match: bool = True
) -> tuple[list, list]:
    """Returns ``(regressions, rows)``; rows describe every comparison.

    ``cpus_match=False`` records that the artifact was measured on a
    different core count than the committed baseline.  Worker-scaling rows
    (``workers != 1``) then shift for structural reasons — a 1-core box
    serialises pool/async overlap that a multi-core box genuinely runs in
    parallel — so their per-phase gates are skipped outright and their
    total gate is softened to ``2 * factor`` (catching order-of-magnitude
    blow-ups while tolerating the structural shift).  Single-worker rows
    stay fully gated: relative cost already normalises out per-core speed.
    """
    baseline_by_key = {record_key(r): r for r in baseline["records"]}
    regressions, rows = [], []
    for record in current["records"]:
        key = record_key(record)
        base = baseline_by_key.get(key)
        reference = reference_seconds(record)
        scaling_row = not cpus_match and record.get("workers", 1) != 1
        for phase, seconds in record_metrics(record):
            phase_key = key + (phase,)
            cost = seconds / reference
            if base is None:
                rows.append((phase_key, None, cost, "new"))
                continue
            if scaling_row and phase != "total":
                rows.append((phase_key, None, cost, "skipped (cpus mismatch)"))
                continue
            base_metrics = dict(record_metrics(base))
            base_seconds = base_metrics.get(phase)
            base_reference = reference_seconds(base)
            if base_seconds is None:
                rows.append((phase_key, None, cost, "new phase"))
                continue
            # The reference denominators must clear the noise floor for
            # any ratio to mean anything.  For the total, the historical
            # rule stands: gate unless both sides are sub-noise (so a
            # 1ms -> 100ms blow-up is still caught).  Phase metrics
            # (merge) are fractions of already-small totals: a sub-noise
            # *current* phase is skipped (jitter, and improvements need
            # no gate), while a sub-noise *baseline* phase is floored at
            # MIN_SECONDS — jitter around the floor stays under the
            # factor, but a genuine 0.3ms -> 30ms reassembly blow-up
            # still fails even when the end-to-end total hides it.
            base_effective = base_seconds
            if phase == "total":
                noisy = seconds < MIN_SECONDS and base_seconds < MIN_SECONDS
            else:
                noisy = seconds < MIN_SECONDS
                base_effective = max(base_seconds, MIN_SECONDS)
            noisy = noisy or min(reference, base_reference) < MIN_SECONDS
            base_cost = base_effective / base_reference
            if noisy:
                rows.append((phase_key, None, cost, "skipped (sub-5ms)"))
                continue
            if base_cost == 0:
                rows.append((phase_key, None, cost, "skipped (zero baseline)"))
                continue
            ratio = cost / base_cost
            gate = 2 * factor if scaling_row else factor
            status = "ok" if not scaling_row else "ok (softened: cpus mismatch)"
            if ratio > gate:
                status = f"REGRESSION (> {gate:.1f}x)"
                regressions.append(phase_key)
            rows.append((phase_key, ratio, cost, status))
    return regressions, rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a bench artifact regresses vs its committed baseline"
    )
    parser.add_argument("artifact", help="freshly generated bench JSON artifact")
    parser.add_argument(
        "--baseline",
        default="benchmarks/BENCH_engines.baseline.json",
        help="committed baseline (default: benchmarks/BENCH_engines.baseline.json)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="maximum allowed relative-cost growth (default: 2.0)",
    )
    args = parser.parse_args(argv)
    with open(args.artifact, encoding="utf-8") as handle:
        current = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)

    # Relative costs normalise out single-core speed, but not *core
    # count*: parallelism records measured on a different number of CPUs
    # than the committed baseline shift for structural reasons (real
    # pool/async overlap vs none).  Worker-scaling rows therefore get
    # their per-phase gates skipped and their total gate softened when
    # provenance differs (see compare()), on top of the loud warning.
    current_cpus, baseline_cpus = current.get("cpus"), baseline.get("cpus")
    cpus_match = current_cpus == baseline_cpus
    if not cpus_match:
        print(
            f"WARNING: artifact measured on cpus={current_cpus} but baseline "
            f"was recorded on cpus={baseline_cpus}; per-phase gates on "
            "worker-scaling rows are skipped and their total gate softened",
            file=sys.stderr,
        )

    regressions, rows = compare(current, baseline, args.factor, cpus_match)
    for violation in service_warm_regressions(current):
        print(
            f"WARM-PATH REGRESSION: {violation}",
            file=sys.stderr,
        )
        regressions.append(violation)
    for violation in storage_regressions(current):
        print(
            f"STORAGE-GATE REGRESSION: {violation}",
            file=sys.stderr,
        )
        regressions.append(violation)
    for phase_key, ratio, cost, status in rows:
        key, phase = phase_key[:-1], phase_key[-1]
        label = " ".join(str(part) for part in key)
        ratio_text = "  new" if ratio is None else f"{ratio:5.2f}"
        print(
            f"{label:44s} {phase:6s} cost={cost:8.3f}x ref  "
            f"vs-baseline={ratio_text}  {status}"
        )
    if regressions:
        print(f"\n{len(regressions)} regression(s): {regressions}", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.factor:.1f}x (of {len(rows)} comparisons)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
