"""The service layer's reason to exist, measured: cold vs warm, and QPS.

A *cold* query pays the full shape-determined setup — dictionary-encoding
the key columns, building the pairs arrays, compiling plans/schedules,
and (sharded) partitioning, publishing columns to shared memory, and
forking a pool.  A *warm* query on the same :class:`ServiceEngine` hits
the cross-query caches for all of it and pays only the oblivious operator
itself.  This bench measures both, per engine configuration, against the
same-run direct-engine reference, plus a throughput sweep: QPS through
``ServiceEngine.submit`` at admission concurrency 1 / 4 / 16 (queries
serialize on the engine — obliviousness is per-schedule — so concurrency
buys admission overlap, not operator parallelism).

For pooled configurations cold is *true* cold: the process-global pools
are shut down before each cold repetition, so the fork + worker attach
are inside the timing — exactly the cost every query pays without the
service layer, and the bulk of what the warm pool amortises.  The
sharded/pool configuration is the gated one (``warm_gate``): its
warm-vs-cold margin is structural (pool fork, shm publish, plans) and
stays decisive on a noisy box.  The vector rows are reported for context
but not gated — a plain vector join's only cacheable setup is the key
scan, a few percent of the operator, within timing jitter on 1 CPU.

``--json PATH`` writes the ``BENCH_service.json`` CI artifact:
per-query latency records keyed by ``(engine, mode, concurrency)`` with
the same-run ``reference_seconds`` denominator, gated by
``check_bench_regression.py`` — which additionally enforces the
structural invariant that on ``warm_gate`` rows the warm path is
strictly faster than the cold one at concurrency 1.  The same invariant
is asserted in-bench, so a cache regression fails the bench run itself,
baseline or not.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import random
import statistics
import time

from repro.db.query import ObliviousEngine
from repro.db.table import DBTable
from repro.plan.executors import shutdown_pools, shutdown_warm_executors
from repro.service import ServiceEngine

from bench_common import fmt_table, report

HEADER = [
    "engine", "n", "mode", "conc", "latency", "qps", "vs direct",
]

JOIN_SPEC = {"op": "join", "left": "l", "right": "r", "on": ["k", "k"]}

#: ``(engine, options, warm_gate)`` configurations the latency sweep
#: measures.  The sharded/pool row is the gated one — it has the full warm
#: story (pool fork, worker attach caches, parent-published pinned columns
#: all persist across queries) and therefore a structural margin; the
#: vector row is context only (see module docstring).
CONFIGS = [
    ("vector", {}, False),
    ("sharded", {"shards": 2, "workers": 2, "executor": "pool"}, True),
]


def make_tables(n: int, seed: int) -> tuple[DBTable, DBTable]:
    """Two str-keyed tables with a sparse join (setup-dominated shapes)."""
    rng = random.Random(seed)
    keys = [f"key_{value:06d}" for value in range(4 * n)]
    left = DBTable.from_rows(
        ["k:str", "v:int"], [(rng.choice(keys), i) for i in range(n)]
    )
    right = DBTable.from_rows(
        ["k:str", "w:int"], [(rng.choice(keys), i) for i in range(n)]
    )
    return left, right


def direct_reference(left: DBTable, right: DBTable, reps: int) -> float:
    """Same-run denominator: the plain vector engine running the join."""
    times = []
    for _ in range(reps):
        engine = ObliviousEngine(engine="vector")
        started = time.perf_counter()
        engine.join(left, right, ("k", "k"))
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def cold_latency(engine: str, options: dict, tables, reps: int) -> float:
    """Best per-query latency with a *fresh* service per query.

    Fresh caches every time, and the process-global executor pools are
    shut down before each repetition, so a pooled config's fork + worker
    attach land inside the timing — cold means "first query of a cold
    service process", which is the state every query pays without the
    service layer.  The minimum over reps is the comparison statistic for
    both paths: warm does a strict subset of cold's work, so best-observed
    latencies separate even when scheduler noise blurs the medians.
    """
    left, right = tables
    times = []
    for _ in range(reps):
        shutdown_warm_executors()
        shutdown_pools()
        with ServiceEngine(engine=engine, **options) as service:
            service.register_table("l", left)
            service.register_table("r", right)
            started = time.perf_counter()
            service.query(JOIN_SPEC)
            times.append(time.perf_counter() - started)
    return min(times)


def warm_latency(engine: str, options: dict, tables, reps: int) -> float:
    """Best per-query latency on one service after a warm-up query."""
    left, right = tables
    with ServiceEngine(engine=engine, **options) as service:
        service.register_table("l", left)
        service.register_table("r", right)
        result = service.query(JOIN_SPEC)  # warm-up: populate the caches
        assert not result.stats.warm or result.stats.plan_cache["misses"] == 0
        times = []
        for _ in range(reps):
            started = time.perf_counter()
            result = service.query(JOIN_SPEC)
            times.append(time.perf_counter() - started)
        assert result.stats.warm, "warm sweep never hit the caches"
    return min(times)


def warm_qps(
    engine: str, options: dict, tables, concurrency: int, batch: int
) -> tuple[float, float]:
    """(queries/second, mean per-query wall) at bounded admission concurrency."""
    left, right = tables

    async def drive(service: ServiceEngine) -> float:
        gate = asyncio.Semaphore(concurrency)

        async def one() -> None:
            async with gate:
                await service.submit(JOIN_SPEC)

        started = time.perf_counter()
        await asyncio.gather(*(one() for _ in range(batch)))
        return time.perf_counter() - started

    with ServiceEngine(engine=engine, **options) as service:
        service.register_table("l", left)
        service.register_table("r", right)
        service.query(JOIN_SPEC)  # warm-up
        elapsed = asyncio.run(drive(service))
    return batch / elapsed, elapsed / batch


def run_bench(
    n: int, reps: int, batch: int, seed: int, records: list | None
) -> list[list]:
    tables = make_tables(n, seed)
    reference = direct_reference(*tables, reps=reps)
    rows = []

    def record(engine, mode, concurrency, seconds, qps, warm_gate=False):
        rows.append([
            engine, n, mode, concurrency, f"{seconds * 1e3:8.2f} ms",
            "-" if qps is None else f"{qps:7.1f}",
            f"{seconds / reference:5.2f}x",
        ])
        if records is not None:
            records.append({
                "engine": engine,
                "workload": "service_join",
                "padding": "revealed",
                "n": n,
                "seed": seed,
                "mode": mode,
                "concurrency": concurrency,
                "seconds": seconds,
                "qps": qps,
                "reference_seconds": reference,
                "warm_gate": warm_gate,
            })

    for engine, options, warm_gate in CONFIGS:
        cold = cold_latency(engine, options, tables, reps)
        warm = warm_latency(engine, options, tables, reps)
        record(engine, "cold", 1, cold, None, warm_gate)
        record(engine, "warm", 1, warm, None, warm_gate)
        # The in-bench gate: if warm is not strictly faster, the caches
        # are broken — fail here, no baseline needed.
        assert not warm_gate or warm < cold, (
            f"warm path must beat cold ({engine}: "
            f"warm {warm * 1e3:.2f} ms >= cold {cold * 1e3:.2f} ms)"
        )
    for concurrency in (1, 4, 16):
        qps, seconds = warm_qps("vector", {}, tables, concurrency, batch)
        record("vector", "warm", concurrency, seconds, qps)
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=2048, help="rows per table")
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument(
        "--batch", type=int, default=32, help="queries per QPS measurement"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=None, help="write the CI artifact here")
    args = parser.parse_args(argv)

    records: list | None = [] if args.json else None
    rows = run_bench(args.n, args.reps, args.batch, args.seed, records)
    report(
        "service",
        fmt_table(HEADER, rows)
        + "\n\n(cold = first query of a cold service process — caches empty,"
        "\n pools not yet forked; warm = repeat query on one service —"
        "\n plan/encoding caches hot, executor pool warm; conc > 1 ="
        "\n admission concurrency through ServiceEngine.submit,"
        f"\n best of {args.reps} reps vs the direct vector engine)",
    )
    if args.json:
        payload = {
            "bench": "service",
            "n": args.n,
            "seed": args.seed,
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "records": records,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {len(records)} records to {args.json}")
    return 0


def test_service_bench_smoke(benchmark=None):
    """Tier-2 smoke: tiny sweep, records well-formed, warm beats cold."""
    records: list = []
    run_bench(256, 3, 8, 0, records)
    modes = {(r["engine"], r["mode"], r["concurrency"]) for r in records}
    assert ("vector", "cold", 1) in modes and ("vector", "warm", 1) in modes
    assert any(r["warm_gate"] for r in records), "no gated warm/cold pair"
    assert all(r["reference_seconds"] > 0 for r in records)


if __name__ == "__main__":
    raise SystemExit(main())
