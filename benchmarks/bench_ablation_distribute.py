"""Ablation: deterministic vs probabilistic Oblivious-Distribute (§5.2).

The paper implements the deterministic routing network and argues the
PRP-based probabilistic variant is more expensive in practice (PRP
evaluations per element) and adds a cryptographic assumption.  This
ablation measures both on identical inputs.
"""

from __future__ import annotations

import time

from repro.core.distribute import ext_oblivious_distribute, probabilistic_distribute
from repro.core.entry import Entry
from repro.memory.public import PublicArray
from repro.memory.tracer import CountSink, Tracer
from repro.obliv.permute import FeistelPRP

from bench_common import SCALE, fmt_table, report

SIZES = [(64, 128), (256, 512), (1024 * SCALE, 2048 * SCALE)]


def _entries(n, m, seed=1):
    import random

    rng = random.Random(seed)
    targets = sorted(rng.sample(range(m), n))
    return [Entry(j=0, d=i, f=t) for i, t in enumerate(targets)]


def _run(variant, n, m):
    tracer = Tracer(CountSink())
    array = PublicArray(_entries(n, m), name="X", tracer=tracer)
    start = time.perf_counter()
    if variant == "deterministic":
        out = ext_oblivious_distribute(array, m, tracer, validate=False)
    else:
        out = probabilistic_distribute(
            array, m, tracer, prp=FeistelPRP(m, key=b"bench"), validate=False
        )
    elapsed = time.perf_counter() - start
    return elapsed, tracer.sink.total, out


def test_distribute_variant_ablation(benchmark):
    rows = []
    for n, m in SIZES:
        t_det, ops_det, out_det = _run("deterministic", n, m)
        t_prob, ops_prob, out_prob = _run("probabilistic", n, m)
        assert [(e.f, e.null) for e in out_det] == [(e.f, e.null) for e in out_prob]
        rows.append(
            [
                f"{n}->{m}",
                f"{t_det:.3f}s",
                f"{t_prob:.3f}s",
                ops_det,
                ops_prob,
                f"{t_prob / t_det:.1f}x",
            ]
        )
    text = (
        fmt_table(
            ["n->m", "determ. t", "prob. t", "determ. ops", "prob. ops", "slowdown"],
            rows,
        )
        + "\n\n(the PRP variant pays two PRP evaluations per cell plus a"
        "\n full-width sort; the paper's choice of the deterministic network"
        "\n is also what makes trace equality empirically testable)"
    )
    report("ablation_distribute", text)

    # The paper's practicality argument, stated structurally (wall time at
    # small sizes is noise-dominated): the probabilistic variant performs
    # n + m PRP evaluations — cryptographic work the deterministic network
    # avoids entirely — and still needs a full-width bitonic sort.
    n, m = SIZES[-1]
    _, ops_det, _ = _run("deterministic", n, m)
    _, ops_prob, _ = _run("probabilistic", n, m)
    prp_evaluations = n + m
    assert prp_evaluations > 0 and ops_prob > 0 and ops_det > 0

    benchmark(lambda: _run("deterministic", 256, 512))


def test_probabilistic_scatter_is_uniform(benchmark):
    """The security requirement of the §5.2 variant: scatter positions are a
    random-looking n-subset.  Chi-square-lite: bucket occupancy across keys
    should not concentrate."""
    m = 512
    hits = [0] * m
    for key in range(64):
        prp = FeistelPRP(m, key=key.to_bytes(4, "little"))
        for f in range(0, m, 8):
            hits[prp.forward(f)] += 1
    occupied = sum(1 for h in hits if h)
    assert occupied > m * 0.8  # spread over most of the domain

    benchmark(lambda: FeistelPRP(m, key=b"x").forward(7))
