"""Out-of-core storage, measured: resident vs file-backed vs encrypted.

The block store's promise is that a sharded join over a table *larger
than trusted memory* still runs — streaming plan-named blocks through a
byte-budgeted cache — and that for tables which do fit, the paged path
costs almost nothing over the resident one.  This bench measures both
claims:

* **size sweep** — the same sharded join at growing ``n`` with a fixed
  trusted-memory budget, as resident arrays (``resident``), a plaintext
  ``FileStore`` (``file``), and an encrypted one (``encrypted``).  The
  largest sizes exceed the budget, so the file rows page (the bench
  asserts evictions actually happened — a sweep that never spills is
  not measuring the out-of-core path).
* **cache sweep** — one in-budget size across trusted-memory budgets
  from one block to the whole table, showing the miss-rate/latency
  knee the :class:`~repro.enclave.epc.EPCModel` prices.

Every record carries the same-run ``resident`` median as
``reference_seconds``, so the committed baseline gates *relative* cost.
``storage_gate`` marks the structural-invariant rows: at small
(in-budget) ``n`` the block-aligned file-backed join must stay within
**1.5x** of resident — the block path's overhead is a bounded constant,
not a rewrite of the join.  ``check_bench_regression.py`` enforces the
invariant on the artifact itself (no baseline needed), and the bench
asserts it in-run as well.

``--json PATH`` writes the ``BENCH_storage.json`` CI artifact, gated by
``check_bench_regression.py --baseline
benchmarks/BENCH_storage.baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import time

import numpy as np

from repro.shard.join import sharded_oblivious_join
from repro.store import FileStore, StorePairs, adopt, detach_all, stats_snapshot
from repro.store.columns import write_int_column

from bench_common import SCALE, fmt_table, report

HEADER = ["mode", "n", "cache", "latency", "vs resident", "evictions"]

#: Store layout for every file-backed row: 4 KiB blocks (one EPC page).
BLOCK_BYTES = 4096

#: Trusted-memory budget of the size sweep: 16 KiB = 4 blocks, far below
#: the largest swept table, so the big rows must page.
SWEEP_CACHE_BYTES = 4 * BLOCK_BYTES

#: The structural gate's bound: in-budget file-backed joins within 1.5x
#: of resident (mirrored in check_bench_regression.storage_regressions).
GATE_FACTOR = 1.5

SHARDS = 4


def make_pairs(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    left = np.stack(
        [rng.integers(0, n, n), np.arange(n)], axis=1
    ).astype(np.int64)
    right = np.stack(
        [rng.integers(0, n, n), np.arange(n)], axis=1
    ).astype(np.int64)
    return left, right


def store_inputs(
    root: str, tag: str, left: np.ndarray, right: np.ndarray,
    key: bytes | None, cache_bytes: int,
) -> tuple[StorePairs, StorePairs]:
    store = FileStore(os.path.join(root, tag), BLOCK_BYTES, key)
    write_int_column(store, "L/j", left[:, 0])
    write_int_column(store, "L/d", left[:, 1])
    write_int_column(store, "R/j", right[:, 0])
    write_int_column(store, "R/d", right[:, 1])
    store.flush()
    spec = adopt(store, cache_bytes=cache_bytes)
    n1, n2 = len(left), len(right)
    return (
        StorePairs(spec, n1, "L/j", "L/d"),
        StorePairs(spec, n2, "R/j", "R/d"),
    )


def timed_join(left, right, reps: int) -> tuple[float, np.ndarray]:
    times, out = [], None
    for _ in range(reps):
        started = time.perf_counter()
        out, _ = sharded_oblivious_join(
            left, right, shards=SHARDS, executor="inline"
        )
        times.append(time.perf_counter() - started)
    return statistics.median(times), out


def run_bench(
    sizes: list[int], reps: int, seed: int, root: str, records: list | None
) -> list[list]:
    rows = []

    def record(mode, n, cache_bytes, seconds, reference, evictions, gate):
        rows.append([
            mode, n,
            "-" if cache_bytes is None else f"{cache_bytes // 1024} KiB",
            f"{seconds * 1e3:8.2f} ms",
            f"{seconds / reference:5.2f}x",
            "-" if evictions is None else evictions,
        ])
        if records is not None:
            records.append({
                "engine": "sharded",
                "workload": "storage_join",
                "padding": "revealed",
                "n": n,
                "seed": seed,
                "mode": mode,
                "cache_bytes": cache_bytes,
                "seconds": seconds,
                "reference_seconds": reference,
                "evictions": evictions,
                "storage_gate": gate,
            })

    spilled = False
    gate_pairs: list[tuple[float, float, int]] = []
    for n in sizes:
        left, right = make_pairs(n, seed)
        resident_seconds, expected = timed_join(left, right, reps)
        record("resident", n, None, resident_seconds, resident_seconds,
               None, False)
        # One column = n * 8 bytes; 4 columns stream through the cache.
        footprint = 4 * n * 8
        in_budget = footprint <= SWEEP_CACHE_BYTES
        for mode, key in (("file", None), ("encrypted", b"bench-key-16byte")):
            detach_all()
            pairs = store_inputs(
                root, f"{mode}-{n}", left, right, key, SWEEP_CACHE_BYTES
            )
            seconds, out = timed_join(*pairs, reps=reps)
            assert np.array_equal(out, expected), (
                f"{mode} join diverged from resident at n={n}"
            )
            evictions = stats_snapshot()["evictions"]
            spilled = spilled or evictions > 0
            gate = mode == "file" and in_budget
            record(mode, n, SWEEP_CACHE_BYTES, seconds, resident_seconds,
                   evictions, gate)
            if gate:
                gate_pairs.append((seconds, resident_seconds, n))
    assert spilled, (
        "size sweep never evicted: raise the sizes or shrink the budget"
    )
    # The in-run structural gate (the checker re-enforces it on the
    # artifact): in-budget block-aligned joins within GATE_FACTOR of
    # resident, judged above the noise floor only.
    for seconds, reference, n in gate_pairs:
        assert seconds <= GATE_FACTOR * reference or reference < 0.005, (
            f"file-backed join at n={n} took {seconds * 1e3:.2f} ms, over "
            f"{GATE_FACTOR}x the resident {reference * 1e3:.2f} ms"
        )

    # Cache sweep at the largest size: budget from one block to the table.
    n = sizes[-1]
    left, right = make_pairs(n, seed)
    resident_seconds, expected = timed_join(left, right, reps)
    footprint = 4 * n * 8
    for budget in (BLOCK_BYTES, footprint // 4, 2 * footprint):
        detach_all()
        pairs = store_inputs(
            root, f"cachesweep-{budget}", left, right, None, budget
        )
        seconds, out = timed_join(*pairs, reps=reps)
        assert np.array_equal(out, expected)
        record(
            f"file[cache={budget // 1024}KiB]", n, budget, seconds,
            resident_seconds, stats_snapshot()["evictions"], False,
        )
    detach_all()
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+",
        default=[s * SCALE for s in (512, 2048, 8192)],
        help="table sizes to sweep (the last ones should exceed the budget)",
    )
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--root", default=None,
        help="directory for the bench stores (default: a temp dir)",
    )
    parser.add_argument("--json", default=None, help="write the CI artifact here")
    args = parser.parse_args(argv)

    records: list | None = [] if args.json else None
    if args.root is None:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-bench-storage-") as root:
            rows = run_bench(args.sizes, args.reps, args.seed, root, records)
    else:
        rows = run_bench(args.sizes, args.reps, args.seed, args.root, records)
    report(
        "storage",
        fmt_table(HEADER, rows)
        + "\n\n(resident = ndarray inputs; file/encrypted = StorePairs over"
        "\n a FileStore with a "
        f"{SWEEP_CACHE_BYTES // 1024} KiB trusted-memory budget; evictions"
        "\n count cache spills — non-zero rows ran out-of-core;"
        f"\n median of {args.reps} reps, shards={SHARDS}, inline executor)",
    )
    if args.json:
        payload = {
            "bench": "storage",
            "sizes": args.sizes,
            "seed": args.seed,
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "records": records,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {len(records)} records to {args.json}")
    return 0


def test_storage_bench_smoke():
    """Tier-2 smoke: tiny sweep, records well-formed, gate rows present."""
    import tempfile

    records: list = []
    with tempfile.TemporaryDirectory() as root:
        run_bench([256, 1024, 4096], 1, 0, root, records)
    modes = {r["mode"] for r in records}
    assert {"resident", "file", "encrypted"} <= modes
    assert any(r["storage_gate"] for r in records), "no gated in-budget row"
    assert any((r["evictions"] or 0) > 0 for r in records), "never spilled"
    assert all(r["reference_seconds"] > 0 for r in records)


if __name__ == "__main__":
    raise SystemExit(main())
