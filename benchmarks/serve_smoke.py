"""CI smoke for the service layer: boot ``repro serve``, prove the warm hit.

Spawns ``python -m repro serve --port 0`` as a real subprocess, parses the
``listening on HOST:PORT`` line it prints, registers two tables through
:class:`ServiceClient`, and runs the same join three times.  The contract
under test is the service layer's reason to exist: the first query is
cold (plan + encoding caches miss), the second and third report
``warm: true`` with zero plan-cache misses — and all three return
byte-identical rows, because caching must be invisible in every output.

Exits non-zero (assertion) on any violation; the server is torn down via
the protocol's ``shutdown`` op so the clean-exit path is exercised too.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

from repro.db.table import DBTable
from repro.service import ServiceClient


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--engine", default="vector", help="serve --engine")
    args = parser.parse_args(argv)

    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0", "--engine", args.engine,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        banner = proc.stdout.readline().strip()
        assert banner.startswith("listening on "), f"unexpected banner: {banner!r}"
        host, _, port = banner.removeprefix("listening on ").rpartition(":")

        left = DBTable.from_rows(
            ["k:str", "v:int"],
            [("apple", 1), ("pear", 2), ("apple", 3), ("plum", 4)],
        )
        right = DBTable.from_rows(
            ["k:str", "w:int"], [("apple", 10), ("plum", 20), ("quince", 30)]
        )
        spec = {"op": "join", "left": "l", "right": "r", "on": ["k", "k"]}

        with ServiceClient(host, int(port)) as client:
            assert client.ping(), "ping failed"
            client.register_table("l", left)
            client.register_table("r", right)
            results = [client.query(spec) for _ in range(3)]

        rows = [table.rows for table, _ in results]
        assert rows[0] == rows[1] == rows[2], "repeat queries changed the output"
        stats = [s for _, s in results]
        assert not stats[0]["warm"], f"first query reported warm: {stats[0]}"
        for which, stat in enumerate(stats[1:], start=2):
            assert stat["warm"], f"query {which} was not a warm hit: {stat}"
            assert stat["plan_cache"]["misses"] == 0, (
                f"query {which} recompiled a plan: {stat}"
            )

        with ServiceClient(host, int(port)) as client:
            totals = client.stats()
            assert totals["queries"] == 3, f"server counted {totals['queries']}"
            client.shutdown()
        proc.wait(timeout=30)
        assert proc.returncode == 0, f"server exited {proc.returncode}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    print(
        f"serve smoke ok ({args.engine}): 3 queries, "
        f"warm hits on 2 and 3, {len(rows[0])} joined rows"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
