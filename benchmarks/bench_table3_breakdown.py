"""Table 3 reproduction: per-component comparison counts and runtime share.

Regenerates both columns of the paper's Table 3:

* comparison counts — the paper's closed forms evaluated at its n = 10^6
  next to our exact network counts and the *measured* counts of an
  instrumented run (exact and measured must agree comparator-for-
  comparator);
* runtime share — measured on this machine with the vector engine at the
  largest size the sweep allows, compared against the paper's 60/25/3/12
  percent split.
"""

from __future__ import annotations

from repro.analysis.counts import table3_analytic
from repro.core.join import oblivious_join
from repro.core.stats import TABLE3_GROUPS, JoinCounters
from repro.vector.join import vector_oblivious_join
from repro.workloads.generators import balanced_output

from bench_common import SCALE, fmt_table, report

#: Paper-reported runtime shares at n = 10^6 (m ~ n1 = n2).
PAPER_SHARES = {
    "initial sorts on TC": 0.60,
    "o.d. on T1, T2 (sort)": 0.25,
    "o.d. on T1, T2 (route)": 0.03,
    "align sort on S2": 0.12,
}

_PHASES = {
    "initial sorts on TC": ("augment_sort1", "augment_sort2"),
    "o.d. on T1, T2 (sort)": ("expand1_sort", "expand2_sort"),
    "o.d. on T1, T2 (route)": ("expand1_route", "expand2_route"),
    "align sort on S2": ("align_sort",),
}


def test_table3_counts_paper_vs_exact_vs_measured(benchmark):
    n = 512 * SCALE
    w = balanced_output(n, seed=n)
    counters = JoinCounters()
    result = oblivious_join(w.left, w.right, counters=counters)

    analytic = table3_analytic(w.n1, w.n2, result.m)
    rows = []
    for row in analytic:
        measured = sum(
            counters.comparisons(p) for p in TABLE3_GROUPS[row.component]
        )
        rows.append([row.component, f"{row.paper_estimate:.0f}", row.exact, measured])
        assert measured == row.exact, row.component

    paper_scale = table3_analytic(500_000, 500_000, 500_000)
    text = (
        f"measured at n={n} (m~n1=n2):\n"
        + fmt_table(["component", "paper formula", "exact network", "measured"], rows)
        + "\n\npaper's n=10^6 analytic counts (comparisons):\n"
        + fmt_table(
            ["component", "paper formula", "exact network"],
            [[r.component, f"{r.paper_estimate:.3g}", f"{r.exact:.3g}"] for r in paper_scale],
        )
    )
    report("table3_counts", text)
    benchmark(lambda: oblivious_join(w.left, w.right))


def test_table3_runtime_share(benchmark):
    n = 2**15 * SCALE
    w = balanced_output(n, seed=1)
    _, stats = vector_oblivious_join(w.left, w.right)

    sort_total = sum(
        stats.seconds_by_phase[p] for group in _PHASES.values() for p in group
    )
    rows = []
    for component, phases in _PHASES.items():
        seconds = sum(stats.seconds_by_phase[p] for p in phases)
        share = seconds / sort_total
        rows.append(
            [component, f"{share:5.1%}", f"{PAPER_SHARES[component]:5.1%}"]
        )
    text = (
        f"vector engine, n={n} (m~n1=n2), share of component time:\n"
        + fmt_table(["component", "measured share", "paper share"], rows)
    )
    report("table3_runtime_share", text)

    shares = {
        comp: sum(stats.seconds_by_phase[p] for p in phases) / sort_total
        for comp, phases in _PHASES.items()
    }
    # Shape assertions: the initial sorts dominate; routing is the smallest.
    assert shares["initial sorts on TC"] == max(shares.values())
    assert shares["o.d. on T1, T2 (route)"] == min(shares.values())

    small = balanced_output(2**12, seed=2)
    benchmark(lambda: vector_oblivious_join(small.left, small.right))
