"""Figure 8 reproduction: runtime vs input size, all four series.

Two complementary regenerations:

1. **Measured on this machine** — the vector engine (our "prototype") vs
   the vectorised insecure sort-merge join over a size sweep; reported with
   the oblivious-overhead factor per size.
2. **Simulated SGX** — the calibrated enclave cost model evaluated at the
   paper's sizes (10^5..10^6), printing all four series next to the
   paper's endpoint values and checking the series ordering and ratios.
"""

from __future__ import annotations

import time

from repro.enclave.costmodel import PAPER_RUNTIME_AT_1M, EnclaveCostModel
from repro.vector.baseline import vector_sort_merge_join
from repro.vector.join import vector_oblivious_join
from repro.workloads.generators import balanced_output

from bench_common import SCALE, fmt_table, report

MEASURED_SWEEP = [2**12, 2**13, 2**14, 2**15, 2**16 * SCALE]
PAPER_SWEEP = [100_000, 250_000, 500_000, 750_000, 1_000_000]


def _measure(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_fig8_measured_series(benchmark):
    rows = []
    for n in MEASURED_SWEEP:
        w = balanced_output(n, seed=n)
        t_obliv = _measure(lambda: vector_oblivious_join(w.left, w.right))
        t_insecure = _measure(lambda: vector_sort_merge_join(w.left, w.right))
        rows.append(
            [n, f"{t_obliv:.3f}", f"{t_insecure:.4f}", f"{t_obliv / t_insecure:.0f}x"]
        )
    text = "vector engine (this machine):\n" + fmt_table(
        ["n", "oblivious join (s)", "insecure merge (s)", "overhead"], rows
    )
    report("fig8_measured", text)

    # Shape: the oblivious join must be polylog-factor slower, not asymptotically
    # worse: overhead at the top size stays within a constant*log^2 band.
    w = balanced_output(MEASURED_SWEEP[-1], seed=0)
    slow = _measure(lambda: vector_oblivious_join(w.left, w.right))
    fast = _measure(lambda: vector_sort_merge_join(w.left, w.right))
    assert 5 < slow / fast < 5000

    small = balanced_output(2**13, seed=1)
    benchmark(lambda: vector_oblivious_join(small.left, small.right))


def test_fig8_simulated_sgx_series(benchmark):
    model = EnclaveCostModel()
    series = model.figure8_series(PAPER_SWEEP)
    rows = []
    for i, n in enumerate(PAPER_SWEEP):
        rows.append(
            [
                n,
                f"{series['insecure_sort_merge'][i]:.3f}",
                f"{series['prototype'][i]:.2f}",
                f"{series['sgx'][i]:.2f}",
                f"{series['sgx_transformed'][i]:.2f}",
            ]
        )
    point = model.figure8_point(10**6)
    comparison = fmt_table(
        ["series", "paper @1e6 (s)", "model @1e6 (s)"],
        [
            [k, PAPER_RUNTIME_AT_1M[k], f"{point[k]:.2f}"]
            for k in ("insecure_sort_merge", "prototype", "sgx", "sgx_transformed")
        ],
    )
    text = (
        "calibrated enclave model (paper sizes):\n"
        + fmt_table(["n", "insecure", "prototype", "sgx", "sgx transformed"], rows)
        + "\n\npaper-vs-model endpoints:\n"
        + comparison
        + f"\n\nEPC paging knee at n ~ {model.epc_knee_input_size():,}"
    )
    report("fig8_simulated_sgx", text)

    for i in range(len(PAPER_SWEEP)):
        assert (
            series["insecure_sort_merge"][i]
            < series["prototype"][i]
            < series["sgx"][i]
            < series["sgx_transformed"][i]
        )
    ratio = point["sgx"] / point["prototype"]
    paper_ratio = PAPER_RUNTIME_AT_1M["sgx"] / PAPER_RUNTIME_AT_1M["prototype"]
    assert abs(ratio - paper_ratio) / paper_ratio < 0.05

    benchmark(lambda: model.figure8_series(PAPER_SWEEP))
