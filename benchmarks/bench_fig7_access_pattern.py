"""Figure 7 reproduction: the visualised input-independent access pattern.

Joins two size-4 tables into 8 output rows (the paper's exact setting),
renders the full memory trace as a time x index raster (text + PGM saved
under benchmarks/out/), and re-runs the §6.1 experiment: around 5 manually
constructed test classes whose members must produce byte-identical logs.
"""

from __future__ import annotations

from repro.analysis.viz import rasterize, render_text, write_pgm
from repro.core.join import oblivious_join
from repro.memory.monitor import run_logged, verify_oblivious

from bench_common import OUT_DIR, report

#: Five test classes for n1 = n2 = 4 (as in §6.1: "around 5" classes for
#: small n).  Members of a class share (n1, n2, m); classes differ in m.
CLASSES = {
    "m=8 (4 groups of 1x2)": [
        ([(k, k) for k in range(4)], [(k, v) for k in range(4) for v in (0, 1)]),
        ([(k, 9) for k in range(4)], [(k, v) for k in range(4) for v in (7, 8)]),
    ],
    # NOTE: "four 1x1 groups" and "one 2x2 group + fill" have the SAME class
    # parameters (n1, n2, m) = (4, 4, 4), so per the paper's definition they
    # belong to ONE class and must trace identically — the strongest form of
    # the experiment, since their group structure differs completely.
    "m=4 (1x1 groups AND one 2x2 group)": [
        ([(k, 0) for k in range(4)], [(k, 1) for k in range(4)]),
        ([(k + 10, 5) for k in range(4)], [(k + 10, 6) for k in range(4)]),
        ([(0, 1), (0, 2), (8, 0), (9, 0)], [(0, 3), (0, 4), (18, 0), (19, 0)]),
        ([(5, 9), (5, 8), (1, 0), (2, 0)], [(5, 7), (5, 6), (11, 0), (12, 0)]),
    ],
    "m=16 (one 4x4 group)": [
        ([(0, d) for d in range(4)], [(0, d) for d in range(4)]),
        ([(3, d + 9) for d in range(4)], [(3, d) for d in range(4)]),
    ],
    "m=0 (disjoint keys)": [
        ([(k, 0) for k in range(4)], [(k + 100, 0) for k in range(4)]),
        ([(k + 50, 3) for k in range(4)], [(k + 200, 1) for k in range(4)]),
    ],
}


def test_fig7_render_and_trace_equality(benchmark):
    left = [(0, 1), (1, 2), (2, 3), (3, 4)]
    right = [(0, 5), (0, 6), (1, 7), (1, 8)]  # m = 4... widen to m=8:
    right = [(k, v) for k in range(4) for v in (0, 1)]  # m = 8
    events, result = run_logged(
        lambda t: oblivious_join(left, right, tracer=t)
    )
    assert result.m == 8
    raster = rasterize(events, width=100, height=40)
    text = render_text(raster)
    write_pgm(raster, str(OUT_DIR / "fig7_access_pattern.pgm"))
    report(
        "fig7_access_pattern",
        f"join of 4x4 tables into m=8, {len(events)} public accesses\n"
        "(time ->, memory v; '░'=read, '█'=write)\n\n" + text,
    )

    for name, members in CLASSES.items():
        logs = [
            run_logged(lambda t, lr=lr: oblivious_join(lr[0], lr[1], tracer=t))[0]
            for lr in members
        ]
        assert all(log == logs[0] for log in logs[1:]), name

    benchmark(lambda: run_logged(lambda t: oblivious_join(left, right, tracer=t)))


def test_fig7_classes_with_different_m_diverge(benchmark):
    """Sanity for the experiment design: traces are a function of the class,
    so classes with different m must NOT share a trace."""
    digests = {}
    for name, members in CLASSES.items():
        program = lambda t, lr=members[0]: oblivious_join(lr[0], lr[1], tracer=t)
        from repro.memory.monitor import run_hashed

        digests[name], _, _ = run_hashed(program)
    assert len(set(digests.values())) == len(digests)

    inputs = CLASSES["m=8 (4 groups of 1x2)"]
    benchmark(
        lambda: verify_oblivious(
            lambda t, lr: oblivious_join(lr[0], lr[1], tracer=t), inputs, require=True
        )
    )
