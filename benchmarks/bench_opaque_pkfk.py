"""§6.2's Opaque comparison, on equal footing.

The paper notes Opaque's SGX implementation runs ~5x slower than theirs at
n = 10^6 despite solving only the PK-FK special case (and on better
hardware).  A like-for-like hardware comparison is impossible here, so this
bench asks the question our substrate *can* answer: inside one engine, what
does the general Algorithm 1 cost versus the Opaque-style PK-FK join on the
workloads Opaque supports?  (Opaque-style wins modestly — it exploits the
PK-FK restriction — which makes the paper's measured 5x *deficit* for the
real Opaque system the notable result.)
"""

from __future__ import annotations

import time

from repro.baselines.opaque_join import opaque_pkfk_join
from repro.core.join import oblivious_join
from repro.enclave.costmodel import PAPER_OPAQUE_SLOWDOWN
from repro.memory.tracer import CountSink, Tracer
from repro.workloads.generators import pk_fk

from bench_common import SCALE, fmt_table, report

SWEEP = [128, 256, 512, 1024 * SCALE]


def _events(run) -> int:
    sink = CountSink()
    run(Tracer(sink))
    return sink.total


def test_opaque_comparison(benchmark):
    rows = []
    for n in SWEEP:
        w = pk_fk(n // 2, n // 2, seed=n)
        ours_ops = _events(lambda t, w=w: oblivious_join(w.left, w.right, tracer=t))
        opaque_ops = _events(
            lambda t, w=w: opaque_pkfk_join(w.left, w.right, tracer=t)
        )
        start = time.perf_counter()
        ours_result = oblivious_join(w.left, w.right)
        ours_time = time.perf_counter() - start
        start = time.perf_counter()
        opaque_result = opaque_pkfk_join(w.left, w.right)
        opaque_time = time.perf_counter() - start
        assert sorted(ours_result.pairs) == sorted(opaque_result)
        rows.append(
            [
                n,
                ours_ops,
                opaque_ops,
                f"{ours_ops / opaque_ops:.2f}x",
                f"{ours_time:.3f}s",
                f"{opaque_time:.3f}s",
            ]
        )
    text = (
        "PK-FK workload (the only case Opaque supports):\n"
        + fmt_table(
            ["n", "ours (accesses)", "opaque-style", "ratio", "ours t", "opaque t"],
            rows,
        )
        + f"\n\npaper's measured result: real Opaque is ~{PAPER_OPAQUE_SLOWDOWN:.0f}x"
        " SLOWER than the paper's general join at n=1e6 —\n"
        "algorithmically the PK-FK specialisation is cheaper (above), so the"
        " 5x is implementation overhead, not asymptotics."
    )
    report("opaque_pkfk", text)

    # In-engine shape: the specialised join does at most ~2x fewer accesses,
    # same asymptotic class — consistent with Table 1's identical rows.
    w = pk_fk(256, 256, seed=1)
    ours_ops = _events(lambda t: oblivious_join(w.left, w.right, tracer=t))
    opaque_ops = _events(lambda t: opaque_pkfk_join(w.left, w.right, tracer=t))
    assert 1.0 < ours_ops / opaque_ops < 4.0

    benchmark(lambda: opaque_pkfk_join(w.left, w.right))


def test_opaque_loses_generality_not_speed(benchmark):
    """Outside PK-FK, Opaque's algorithm is simply inapplicable — the
    restriction in Table 1's limitations column."""
    import pytest

    from repro.errors import InputError

    general = [(1, 1), (1, 2)], [(1, 5), (1, 6)]
    result = oblivious_join(*general)
    assert result.m == 4
    with pytest.raises(InputError):
        opaque_pkfk_join(*general)
    benchmark(lambda: oblivious_join(*general))
