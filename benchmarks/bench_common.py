"""Shared benchmark helpers.

Every bench prints the table/figure it regenerates and also writes it to
``benchmarks/out/<name>.txt`` as a stable, citable artifact.
``REPRO_BENCH_SCALE`` (default 1) multiplies sweep sizes for beefier runs.

(Deliberately *not* named ``conftest.py``: a module by that name here used
to shadow ``tests/conftest.py`` on ``sys.path`` and break the tier-1 suite.)
"""

from __future__ import annotations

import os
import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1"))


def report(name: str, text: str) -> None:
    """Print a bench report and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def fmt_table(headers: list[str], rows: list[list], widths: list[int] | None = None) -> str:
    """Plain-text table formatting used by all bench reports."""
    cells = [[str(c) for c in row] for row in rows]
    widths = widths or [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(items):
        return "  ".join(str(x).ljust(w) for x, w in zip(items, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in cells)
    return "\n".join(out)
