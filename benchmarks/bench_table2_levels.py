"""Table 2 reproduction: the obliviousness-level taxonomy, regenerated.

Table 2 is a classification, not a measurement; this bench regenerates the
matrix from the security model, classifies every algorithm in the repo, and
benchmarks the empirical level-II verification (the trace-hash experiment)
that backs the classification of Algorithm 1.
"""

from __future__ import annotations

from repro.core.join import oblivious_join
from repro.memory.monitor import run_hashed
from repro.security import KNOWN_PROFILES, Level, render_table2
from repro.workloads.generators import matched_class

from bench_common import fmt_table, report


def test_table2_matrix_and_classification(benchmark):
    rows = [
        [name, str(profile.level()) if profile.level() else "not oblivious"]
        for name, profile in sorted(KNOWN_PROFILES.items())
    ]
    text = render_table2()
    text += "\n\nAlgorithm classification:\n"
    text += fmt_table(["program", "level"], rows)
    report("table2_levels", text)

    assert KNOWN_PROFILES["oblivious_join"].level() is Level.II
    assert KNOWN_PROFILES["oblivious_join_transformed"].level() is Level.III
    assert KNOWN_PROFILES["sort_merge_join"].level() is None

    benchmark(render_table2)


def test_table2_level2_verification_cost(benchmark):
    """Benchmark the §6.1 experiment that justifies the level-II cell."""
    inputs = matched_class(8, 8, seed=2)

    def verify():
        hashes = {
            run_hashed(lambda t, w=w: oblivious_join(w.left, w.right, tracer=t))[0]
            for w in inputs
        }
        assert len(hashes) == 1
        return hashes

    benchmark(verify)
