"""Algorithm 4: oblivious expansion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entry import Entry
from repro.core.expand import assign_first_slots, fill_down, oblivious_expand
from repro.errors import InputError
from repro.memory.monitor import verify_oblivious
from repro.memory.public import PublicArray
from repro.memory.tracer import Tracer


def _expand(counts):
    tracer = Tracer()
    entries = [Entry(j=0, d=i, a1=c) for i, c in enumerate(counts)]
    array = PublicArray(entries, name="X", tracer=tracer)
    expanded, m = oblivious_expand(array, lambda e: e.a1, tracer)
    return [e.d for e in expanded], m


def test_figure4_example():
    """g = (2, 3, 0, 2, 1) from the paper's Figure 4."""
    values, m = _expand([2, 3, 0, 2, 1])
    assert m == 8
    assert values == [0, 0, 1, 1, 1, 3, 3, 4]


def test_all_zero_counts():
    values, m = _expand([0, 0, 0])
    assert m == 0 and values == []


def test_single_element_large_count():
    values, m = _expand([5])
    assert m == 5 and values == [0] * 5


@given(st.lists(st.integers(min_value=0, max_value=6), max_size=14))
@settings(max_examples=70, deadline=None)
def test_expansion_multiplicities(counts):
    values, m = _expand(counts)
    assert m == sum(counts)
    expected = [i for i, c in enumerate(counts) for _ in range(c)]
    assert values == expected


def test_negative_count_rejected():
    tracer = Tracer()
    array = PublicArray([Entry(j=0, d=0, a1=-1)], name="X", tracer=tracer)
    with pytest.raises(InputError, match="negative"):
        oblivious_expand(array, lambda e: e.a1, tracer)


def test_assign_first_slots_prefix_sums():
    array = PublicArray([Entry(d=0, a1=2), Entry(d=1, a1=0), Entry(d=2, a1=3)], name="X")
    m = assign_first_slots(array, lambda e: e.a1)
    snapshot = array.snapshot()
    assert m == 5
    assert snapshot[0].f == 0
    assert snapshot[1].null
    assert snapshot[2].f == 2


def test_assign_first_slots_preserves_preexisting_nulls():
    array = PublicArray([Entry(d=0, a1=2), Entry.make_null()], name="X")
    m = assign_first_slots(array, lambda e: e.a1)
    assert m == 2
    assert array.snapshot()[1].null


def test_fill_down_duplicates_last_real_entry():
    cells = [Entry(d=7), Entry.make_null(), Entry.make_null(), Entry(d=9), Entry.make_null()]
    array = PublicArray(cells, name="A")
    fill_down(array)
    assert [e.d for e in array.snapshot()] == [7, 7, 7, 9, 9]


def test_expand_trace_is_input_independent():
    def program(tracer, counts):
        entries = [Entry(j=0, d=i, a1=c) for i, c in enumerate(counts)]
        array = PublicArray(entries, name="X", tracer=tracer)
        oblivious_expand(array, lambda e: e.a1, tracer)

    # Same n and same m=6, different count structure.
    report = verify_oblivious(
        program, [[2, 2, 2, 0], [6, 0, 0, 0], [1, 1, 1, 3]], require=True
    )
    assert report.oblivious


def test_expand_trace_differs_only_with_m():
    """Trace depends on (n, m) and nothing else (m is deliberately public)."""
    from repro.memory.monitor import run_hashed

    def run(counts):
        def program(tracer):
            entries = [Entry(j=0, d=i, a1=c) for i, c in enumerate(counts)]
            array = PublicArray(entries, name="X", tracer=tracer)
            oblivious_expand(array, lambda e: e.a1, tracer)
        return run_hashed(program)[0]

    assert run([3, 1]) == run([2, 2])
    assert run([3, 1]) != run([3, 2])  # different m
