"""The sharded engine: differential equivalence and schedule obliviousness.

The cross-engine property suite (``test_engine_properties.py``) already
fuzzes the sharded engine's outputs; this module pins the parts specific to
sharding — the partition plan and primitive schedules being functions of
``(n1, n2, k)`` (plus deliberately revealed sizes) only, the knobs, and the
db/CLI integration.
"""

from __future__ import annotations

import csv
import random

import pytest

from repro.cli import main
from repro.db.query import ObliviousEngine
from repro.db.table import DBTable
from repro.engines import ShardedEngine, get_engine
from repro.errors import InputError
from repro.shard.aggregate import ShardedAggregateStats, sharded_join_aggregate
from repro.shard.join import ShardedJoinStats, sharded_oblivious_join
from repro.shard.multiway import ShardedMultiwayStats, sharded_multiway_join
from repro.vector.join import vector_oblivious_join


def _matched_pair(n, key_shift, data_seed):
    """Same-shape inputs: n 1-1-matched keys, arbitrary payloads.

    For a fixed ``n`` every instance has the same partition plan, the same
    per-task ``m_ij`` grid (keys are position-aligned), hence — if the
    engine is schedule-oblivious — the same schedule.
    """
    rng = random.Random(data_seed)
    left = [(key_shift + k, rng.randrange(1 << 20)) for k in range(n)]
    right = [(key_shift + k, rng.randrange(1 << 20)) for k in range(n)]
    return left, right


# -- bit identity at scale knobs --------------------------------------------


@pytest.mark.parametrize("shards", [1, 2, 3, 4, 9])
def test_sharded_join_matches_vector_for_any_shard_count(shards):
    rng = random.Random(shards)
    left = [(rng.randrange(5), rng.randrange(4)) for _ in range(23)]
    right = [(rng.randrange(5), rng.randrange(4)) for _ in range(17)]
    expected, _ = vector_oblivious_join(left, right)
    pairs, stats = sharded_oblivious_join(left, right, shards=shards)
    assert pairs.tolist() == expected.tolist()
    assert stats.m == len(expected)
    assert len(stats.task_m) == shards * shards


def test_sharded_pool_output_equals_inline():
    left, right = _matched_pair(12, key_shift=0, data_seed=3)
    inline, _ = sharded_oblivious_join(left, right, shards=2, workers=1)
    pooled, _ = sharded_oblivious_join(left, right, shards=2, workers=2)
    assert pooled.tolist() == inline.tolist()


# -- schedule obliviousness (the satellite contract) -------------------------


def test_join_partition_plan_depends_only_on_sizes():
    # Wildly different data — all-duplicate vs all-distinct keys — but the
    # partition plan and presort schedule must not move at all.
    dup = sharded_oblivious_join([(0, 0)] * 11, [(0, 1)] * 7, shards=3)[1]
    distinct = sharded_oblivious_join(
        [(i, i) for i in range(11)], [(100 + i, i) for i in range(7)], shards=3
    )[1]
    assert dup.schedule[0] == distinct.schedule[0]  # partition plans
    assert dup.schedule[1] == distinct.schedule[1]  # presort comparators


def test_join_schedule_depends_only_on_shape():
    schedules = []
    for key_shift, data_seed in ((0, 1), (900, 2)):
        left, right = _matched_pair(12, key_shift, data_seed)
        stats = ShardedJoinStats()
        sharded_oblivious_join(left, right, shards=3, stats=stats)
        schedules.append(stats.schedule)
    assert schedules[0] == schedules[1]


def test_join_schedule_changes_with_sizes_and_shards():
    def schedule(n, k):
        left, right = _matched_pair(n, 0, data_seed=n)
        return sharded_oblivious_join(left, right, shards=k)[1].schedule

    assert schedule(8, 2) != schedule(12, 2)  # function *of* n
    assert schedule(8, 2) != schedule(8, 4)  # and of k


def test_aggregate_schedule_depends_only_on_shape():
    schedules = []
    for key_shift, data_seed in ((0, 5), (400, 6)):
        left, right = _matched_pair(10, key_shift, data_seed)
        stats = ShardedAggregateStats()
        sharded_join_aggregate(left, right, shards=2, stats=stats)
        schedules.append(stats.schedule)
    assert schedules[0] == schedules[1]
    assert len(schedules[0][1]) == 2  # one comparator record per shard task


def test_multiway_schedule_depends_only_on_shape():
    def chain(key_shift, data_seed):
        rng = random.Random(data_seed)
        t1 = [(key_shift + k, rng.randrange(1 << 20)) for k in range(8)]
        t2 = [(key_shift + k, 100 + k) for k in range(8)]
        t3 = [(100 + k, rng.randrange(1 << 20)) for k in range(8)]
        return [t1, t2, t3], [(0, 0), (3, 0)]

    schedules = []
    for key_shift, data_seed in ((0, 1), (500, 2)):
        tables, keys = chain(key_shift, data_seed)
        stats = ShardedMultiwayStats()
        result = sharded_multiway_join(tables, keys, shards=2, stats=stats)
        assert result.intermediate_sizes == [8, 8]
        schedules.append(stats.schedule)
    assert schedules[0] == schedules[1]


def test_stats_expose_revealed_sizes():
    stats = ShardedJoinStats()
    sharded_oblivious_join([(0, 1), (1, 2)], [(0, 3), (2, 4)], shards=2, stats=stats)
    assert stats.m == 1
    assert sum(stats.task_m) == 1
    assert stats.total_comparisons > 0
    assert stats.partition == (((1, (1, 1))), ((1, (1, 1))))


# -- knobs -------------------------------------------------------------------


def test_shards_default_tracks_workers():
    assert ShardedEngine().shards == 2
    assert ShardedEngine(workers=4).shards == 4
    assert ShardedEngine(shards=3, workers=4).shards == 3


def test_get_engine_forwards_options():
    engine = get_engine("sharded", shards=5, workers=2)
    assert (engine.shards, engine.workers) == (5, 2)
    # The registered instance is never mutated.
    assert get_engine("sharded").shards == 2


def test_engine_option_validation():
    with pytest.raises(InputError, match="options are padding, bound"):
        get_engine("vector", workers=2)
    with pytest.raises(InputError, match="shards"):
        get_engine("sharded", gpu=True)
    with pytest.raises(InputError):
        ShardedEngine(shards=0)
    with pytest.raises(InputError):
        ShardedEngine(workers=0)


# -- db layer and CLI --------------------------------------------------------


def test_db_layer_rides_sharded_engine():
    orders = DBTable.from_rows(
        ["oid:int", "cid:int", "total:int"],
        [(1, 7, 30), (2, 7, 30), (3, 9, 5), (4, 8, 12), (5, 7, 1)],
    )
    customers = DBTable.from_rows(["cid:int", "name:str"], [(7, "ana"), (9, "bo")])
    reference = ObliviousEngine()
    sharded = ObliviousEngine(engine="sharded", shards=3)
    assert sharded.engine.shards == 3
    for op in (
        lambda e: e.join(customers, orders, on=("cid", "cid")).rows,
        lambda e: e.group_by(orders, key="cid", value="total").rows,
        lambda e: e.join_aggregate(
            customers, orders, on=("cid", "cid"), values=("cid", "total")
        ).rows,
        lambda e: e.filter(orders, lambda row: row[2] >= 12).rows,
        lambda e: e.order_by(orders, [("total", False), ("oid", True)]).rows,
        lambda e: e.order_by(customers, [("name", True)]).rows,
    ):
        assert op(sharded) == op(reference)


def test_order_by_is_stable_on_ties():
    table = DBTable.from_rows(
        ["k:int", "tag:str"], [(1, "first"), (0, "x"), (1, "second"), (1, "third")]
    )
    for name in ("traced", "vector", "sharded"):
        ordered = ObliviousEngine(engine=name).order_by(table, [("k", True)])
        assert [row[1] for row in ordered.rows] == ["x", "first", "second", "third"]


def test_cli_sharded_engine_matches_traced(tmp_path):
    left = tmp_path / "left.csv"
    right = tmp_path / "right.csv"
    left.write_text("pid,name\n1,ana\n2,bo\n3,cy\n")
    right.write_text("pid,drug\n1,aspirin\n1,statin\n3,insulin\n")
    outputs = {}
    for engine, extra in (("traced", []), ("sharded", ["--workers", "1", "--shards", "2"])):
        out = tmp_path / f"{engine}.csv"
        code = main(
            ["join", str(left), str(right), "--left-on", "pid", "--right-on", "pid",
             "--engine", engine, "--output", str(out)] + extra
        )
        assert code == 0
        outputs[engine] = list(csv.reader(out.open()))
    assert outputs["traced"] == outputs["sharded"]
