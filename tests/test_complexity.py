"""Complexity model fitting used by the Table 1 bench."""

import numpy as np

from repro.analysis.complexity import MODELS, best_fit, fit_model, loglog_slope


def _series(model_name, sizes, scale=3.0):
    model = MODELS[model_name]
    return (scale * model(np.asarray(sizes, dtype=float))).tolist()


SIZES = [2**k for k in range(6, 14)]


def test_identifies_linear():
    assert best_fit(SIZES, _series("n", SIZES)).model == "n"


def test_identifies_nlogn():
    assert best_fit(SIZES, _series("n log n", SIZES)).model == "n log n"


def test_identifies_nlog2n():
    assert best_fit(SIZES, _series("n log^2 n", SIZES)).model == "n log^2 n"


def test_identifies_quadratic():
    assert best_fit(SIZES, _series("n^2", SIZES)).model == "n^2"


def test_fit_recovers_scale():
    scale, error = fit_model(SIZES, _series("n", SIZES, scale=7.0), MODELS["n"])
    assert abs(scale - 7.0) < 1e-9
    assert error < 1e-12


def test_fit_tolerates_noise():
    rng = np.random.default_rng(1)
    values = np.asarray(_series("n log^2 n", SIZES))
    noisy = values * rng.uniform(0.95, 1.05, size=len(values))
    assert best_fit(SIZES, noisy.tolist()).model == "n log^2 n"


def test_loglog_slope():
    assert abs(loglog_slope(SIZES, _series("n", SIZES)) - 1.0) < 0.01
    assert abs(loglog_slope(SIZES, _series("n^2", SIZES)) - 2.0) < 0.01
    slope_nlog2 = loglog_slope(SIZES, _series("n log^2 n", SIZES))
    assert 1.1 < slope_nlog2 < 1.5


def test_best_fit_reports_error_and_slope():
    fit = best_fit(SIZES, _series("n log n", SIZES))
    assert fit.relative_error < 1e-9
    assert fit.scale > 0
    assert 1.0 < fit.loglog_slope < 1.4
