"""The streaming parallel merge: runs fold into the tournament as their
producing tasks complete, pairwise merges run as worker tasks, and neither
the output bits nor the comparator schedule may depend on arrival order.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from conftest import shm_segments

from repro.engines import get_engine
from repro.errors import BoundError, InputError
from repro.plan.executors import (
    AsyncExecutor,
    InlineExecutor,
    PoolExecutor,
    ShuffleExecutor,
)
from repro.plan.ir import tournament_schedule
from repro.shard.join import MERGE_KEYS, ShardedJoinStats, sharded_oblivious_join
from repro.shard.merge import (
    StreamingTournament,
    merge_comparator_count,
    oblivious_merge_runs,
)
from repro.shard.relational import sharded_order_permutation
from repro.vector.join import vector_oblivious_join

KEYS = [("a", True), ("b", True)]


def _random_runs(rng, count, max_len=7):
    runs = []
    for _ in range(count):
        length = rng.randrange(0, max_len)
        runs.append(
            {
                "a": np.array(
                    sorted(rng.randrange(10) for _ in range(length)), dtype=np.int64
                ),
                "b": np.arange(length, dtype=np.int64),
            }
        )
    return runs


# -- the public bracket (tournament_schedule) ---------------------------------


def test_schedule_pairs_in_order_and_carries_odd_tails():
    nodes = tournament_schedule(5, [3, 1, 4, 1, 5], truncate=4)
    # Round 1: (0,1), (2,3), carry 4; round 2: pair + carry; round 3: root.
    assert [(n.round, n.slot, n.left, n.right) for n in nodes] == [
        (1, 0, 0, 1), (1, 1, 2, 3), (1, 2, 4, None),
        (2, 0, 0, 1), (2, 1, 2, None),
        (3, 0, 0, 1),
    ]
    # Lengths truncate on the way in and after every merge.
    assert [n.rows for n in nodes] == [4, 4, 4, 4, 4, 4]
    assert nodes[0].left_rows == 3 and nodes[0].right_rows == 1
    assert nodes[2].is_carry and nodes[2].left_rows == 4


def test_schedule_is_pure_in_count_lengths_and_truncate():
    assert tournament_schedule(6, [2] * 6) == tournament_schedule(6, [2] * 6)
    assert tournament_schedule(6) != tournament_schedule(7)
    assert tournament_schedule(0) == () and tournament_schedule(1, [9]) == ()
    with pytest.raises(InputError, match="run lengths"):
        tournament_schedule(3, [1, 2])
    with pytest.raises(InputError, match="non-negative"):
        tournament_schedule(-1)


# -- streaming tournament == barrier tournament -------------------------------


@pytest.mark.parametrize(
    "executor",
    [
        pytest.param(None, id="no-executor"),
        pytest.param(InlineExecutor(), id="inline"),
        pytest.param(ShuffleExecutor(seed=5), id="shuffle"),
        pytest.param(PoolExecutor(workers=2), id="pool"),
        pytest.param(AsyncExecutor(workers=2), id="async"),
    ],
)
@pytest.mark.parametrize("truncate", [None, 3])
def test_streaming_matches_barrier_bit_for_bit(executor, truncate):
    rng = random.Random(17)
    for trial in range(12):
        runs = _random_runs(rng, rng.randrange(0, 8))
        reference_counter = [0]
        reference = oblivious_merge_runs(
            runs, KEYS, counter=reference_counter, truncate=truncate
        )
        counter = [0]
        tournament = StreamingTournament(
            len(runs), KEYS, executor=executor, counter=counter, truncate=truncate
        )
        order = list(range(len(runs)))
        rng.shuffle(order)
        for index in order:
            tournament.add(index, runs[index])
        merged = tournament.result()
        assert sorted(merged) == sorted(reference)
        for name in reference:
            assert np.array_equal(merged[name], reference[name]), (trial, name)
        # The worker-side tournament executes the same comparator total as
        # the single-process path, and both equal the pure schedule count.
        assert counter[0] == reference_counter[0]
        assert counter[0] == merge_comparator_count(
            [len(run["a"]) for run in runs], truncate=truncate
        )


def test_tournament_validates_indices_and_completeness():
    tournament = StreamingTournament(2, KEYS)
    with pytest.raises(InputError, match="leaf index"):
        tournament.add(2, {"a": np.zeros(0, dtype=np.int64)})
    tournament.add(0, {"a": np.arange(2, dtype=np.int64)})
    with pytest.raises(InputError, match="already added"):
        tournament.add(0, {"a": np.arange(2, dtype=np.int64)})
    with pytest.raises(InputError, match="expected 2 runs"):
        tournament.result()


# -- arrival-order independence of the full drivers ---------------------------


def _join_fixture():
    rng = random.Random(3)
    left = [(rng.randrange(6), rng.randrange(5)) for _ in range(21)]
    right = [(rng.randrange(6), rng.randrange(5)) for _ in range(19)]
    return left, right


@pytest.mark.parametrize("target", [None, 21 * 19])
def test_join_is_bit_identical_under_adversarial_completion_orders(target):
    """The acceptance pin: shuffled completion orders change nothing —
    not the output bytes, not the schedule, not the executed plan bytes."""
    left, right = _join_fixture()
    reference, _ = sharded_oblivious_join(left, right, shards=3, target_m=target)
    outputs, schedules, plans = set(), set(), set()
    for seed in range(5):
        stats = ShardedJoinStats()
        pairs, stats = sharded_oblivious_join(
            left,
            right,
            shards=3,
            stats=stats,
            target_m=target,
            executor=ShuffleExecutor(seed=seed),
        )
        outputs.add(pairs.tobytes())
        schedules.add(stats.schedule)
        plans.add(stats.plan.serialize())
    assert outputs == {reference.tobytes()}
    assert len(schedules) == 1
    assert len(plans) == 1


def test_worker_side_tournament_matches_inline_join():
    left, right = _join_fixture()
    reference, reference_stats = sharded_oblivious_join(left, right, shards=3)
    for executor in (PoolExecutor(workers=2), AsyncExecutor(workers=2)):
        stats = ShardedJoinStats()
        pairs, stats = sharded_oblivious_join(
            left, right, shards=3, stats=stats, executor=executor
        )
        assert pairs.tobytes() == reference.tobytes()
        # Same comparator totals: the merges moved to workers, the
        # schedule did not move at all.
        assert stats.merge_comparisons == reference_stats.merge_comparisons
        assert stats.schedule == reference_stats.schedule


def test_order_permutation_streams_identically():
    rng = random.Random(11)
    values = [rng.randrange(4) for _ in range(23)]
    columns = [(values, True)]
    reference = sharded_order_permutation(columns, len(values), shards=3)
    for executor in (
        ShuffleExecutor(seed=2),
        PoolExecutor(workers=2),
        AsyncExecutor(workers=2),
    ):
        assert (
            sharded_order_permutation(
                columns, len(values), shards=3, executor=executor
            )
            == reference
        )


def test_padded_join_streams_identically_across_substrates():
    left, right = _join_fixture()
    target = len(left) * len(right)
    expected, _ = vector_oblivious_join(left, right, target_m=target)
    for executor in ("shuffle", "pool", "async"):
        engine = get_engine(
            "sharded", shards=2, workers=2, executor=executor, padding="worst_case"
        )
        assert engine.join(left, right).pairs == [
            tuple(pair) for pair in expected.tolist()
        ]


@pytest.mark.parametrize("expand_segments", [None, 2])
def test_bounded_abort_still_raises_while_merges_are_in_flight(
    expand_segments, shm_leak_guard
):
    """The bound check counts untruncated grid outputs, so a too-small
    bound aborts even though the streaming merge already started; the
    tournament's close() path reclaims the in-flight worker merges AND
    the published expand-segment leaf runs — a BoundError mid-grid must
    not leak the sub-runs workers parked in shared memory."""
    left = [(0, value) for value in range(8)]
    right = [(0, value) for value in range(8)]
    for executor in (ShuffleExecutor(seed=0), PoolExecutor(workers=2)):
        before = shm_segments()
        with pytest.raises(BoundError, match="exceeds the public padding bound"):
            sharded_oblivious_join(
                left,
                right,
                shards=2,
                target_m=16,
                executor=executor,
                expand_segments=expand_segments,
            )
        leaked = shm_segments() - before
        assert not leaked, (executor.name, expand_segments, leaked)


def test_merge_keys_are_the_documented_total_order():
    assert MERGE_KEYS == [("j", True), ("d1", True), ("d2", True)]
