"""Service-layer tests: plan/encoding caches, warm pools, the serve protocol.

The load-bearing property is that caching is *invisible* in every output:
a plan-cache hit is byte-identical to a fresh compile (plan bytes are the
obliviousness contract), an encoding-cache hit changes no result row, and
a warm engine answers exactly what a cold one would — across engines,
executors, and concurrent admission.
"""

from __future__ import annotations

import asyncio
import threading

import pytest
from conftest import shm_segments
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.encoding_cache import EncodingCache
from repro.db.query import ObliviousEngine
from repro.db.table import DBTable
from repro.errors import BoundError, InputError
from repro.plan.compile import compile_pipeline, compile_workload
from repro.plan.executors import executor_stats
from repro.plan.ir import tournament_schedule
from repro.plan.memo import active_plan_memo, set_plan_memo
from repro.plan.partition import partition_plan
from repro.service import (
    PlanCache,
    QueryServer,
    ServiceClient,
    ServiceEngine,
    ServiceError,
)


@pytest.fixture
def plan_memo():
    """Install a fresh PlanCache as the process memo; restore after."""
    memo = PlanCache()
    previous = set_plan_memo(memo)
    yield memo
    set_plan_memo(previous)


def _tables():
    left = DBTable.from_rows(
        ["k:str", "v:int"],
        [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5), ("d", 6)],
    )
    right = DBTable.from_rows(
        ["k:str", "w:int"],
        [("a", 10), ("c", 20), ("a", 30), ("e", 40)],
    )
    return left, right


# -- plan cache --------------------------------------------------------------


@st.composite
def workload_cases(draw):
    """Adversarial (workload, engine, shapes) compile arguments."""
    workload = draw(
        st.sampled_from(["join", "multiway", "join_tree", "filter", "order_by"])
    )
    engine = draw(st.sampled_from(["traced", "vector", "sharded"]))
    kwargs = {"shards": draw(st.integers(2, 4))} if engine == "sharded" else {}
    padding = draw(st.sampled_from([None, "revealed", "worst_case", "bounded"]))
    if padding == "bounded":
        kwargs["bound"] = draw(st.integers(0, 64))
    if padding is not None:
        kwargs["padding"] = padding
    if workload == "join":
        kwargs["n1"] = draw(st.integers(0, 48))
        kwargs["n2"] = draw(st.integers(0, 48))
    elif workload == "multiway":
        kwargs["sizes"] = draw(st.lists(st.integers(1, 12), min_size=2, max_size=4))
    elif workload == "join_tree":
        count = draw(st.integers(2, 3))
        kwargs["sizes"] = draw(
            st.lists(st.integers(1, 12), min_size=count, max_size=count)
        )
        kwargs["edges"] = [
            (parent, parent + 1, 0, 0, draw(st.integers(0, 2)))
            for parent in range(count - 1)
        ]
    else:
        kwargs["n"] = draw(st.integers(0, 48))
    return workload, engine, kwargs


@settings(max_examples=60, deadline=None)
@given(case=workload_cases())
def test_plan_cache_hit_is_byte_identical_to_fresh_compile(case):
    workload, engine, kwargs = case
    memo = PlanCache()
    previous = set_plan_memo(memo)
    try:
        try:
            first = compile_workload(workload, engine, **kwargs)
            second = compile_workload(workload, engine, **kwargs)
        except InputError:
            return  # adversarial shapes may be legitimately rejected
    finally:
        set_plan_memo(previous)
    # With the memo uninstalled, the same call compiles from scratch.
    fresh = compile_workload(workload, engine, **kwargs)
    assert second.serialize() == fresh.serialize()
    assert second.digest() == fresh.digest()
    assert memo.stats["hits"] > 0


def test_pipeline_plan_cache_hit_is_byte_identical(plan_memo):
    ops = [
        ("source", {"n": 24}),
        ("filter", {}),
        ("join", {"n2": 16}),
        ("group_by", {}),
    ]
    first = compile_pipeline(ops, "sharded", shards=3)
    second = compile_pipeline(ops, "sharded", shards=3)
    assert first is second  # the memo returns the cached object
    set_plan_memo(None)
    fresh = compile_pipeline(ops, "sharded", shards=3)
    assert second.serialize() == fresh.serialize()


def test_schedule_functions_ride_the_memo(plan_memo):
    assert partition_plan(17, 3) == partition_plan(17, 3)
    assert tournament_schedule(5) is tournament_schedule(5)
    assert plan_memo.stats["hits"] > 0
    assert active_plan_memo() is plan_memo


def test_plan_cache_bypasses_unfreezable_arguments():
    memo = PlanCache()
    calls = []

    def fn(value):
        calls.append(value)
        return len(calls)

    token = object()
    assert memo.get_or_compute("plan", fn, (token,), {}) == 1
    assert memo.get_or_compute("plan", fn, (token,), {}) == 2  # never cached
    assert memo.stats["uncacheable"] == 2
    assert memo.stats["hits"] == 0


def test_plan_cache_evicts_lru():
    memo = PlanCache(max_entries=2)

    def fn(n):
        return n * 2

    for n in (1, 2, 3):
        memo.get_or_compute("plan", fn, (n,), {})
    assert len(memo) == 2
    memo.get_or_compute("plan", fn, (1,), {})  # evicted: recomputes
    assert memo.stats["hits"] == 0
    assert memo.stats["misses"] == 4


# -- encoding cache ----------------------------------------------------------


def test_multiway_prewarm_pass_runs_once_across_calls():
    """Satellite fix: the encoder pre-warm pass used to re-scan every base
    table on every multiway call; now it runs once per table version."""
    tables = [
        DBTable.from_rows(["k:str", "a:int"], [("x", 1), ("y", 2), ("z", 3)]),
        DBTable.from_rows(["k:str", "b:int"], [("x", 4), ("y", 5)]),
        DBTable.from_rows(["k:str", "c:int"], [("y", 6), ("w", 7)]),
    ]
    on = [("k", "k"), ("t0.k", "k")]
    engine = ObliviousEngine()
    first = engine.multiway_join(tables, on)
    cold_passes = engine.encoding.stats["encode_passes"]
    second = engine.multiway_join(tables, on)
    warm_passes = engine.encoding.stats["encode_passes"] - cold_passes
    assert first.rows == second.rows
    # The three base-table pre-warm scans are cached; only the cascade's
    # per-step intermediate encodings (fresh tables each call) remain.
    assert warm_passes < cold_passes


def test_join_tree_adds_zero_encode_passes_when_warm():
    tables = [
        DBTable.from_rows(["k:str", "a:int"], [("x", 1), ("y", 2)]),
        DBTable.from_rows(["k:str", "b:int"], [("x", 3), ("y", 4), ("x", 5)]),
    ]
    tree = [(0, 1, "k", "k")]
    engine = ObliviousEngine(engine="vector")
    first = engine.join_tree(tables, tree)
    cold_passes = engine.encoding.stats["encode_passes"]
    assert cold_passes > 0
    second = engine.join_tree(tables, tree)
    assert engine.encoding.stats["encode_passes"] == cold_passes
    assert first.rows == second.rows


def test_padded_multiway_adds_zero_encode_passes_when_warm():
    tables = [
        DBTable.from_rows(["k:str", "a:int"], [("x", 1), ("y", 2)]),
        DBTable.from_rows(["k:str", "b:int"], [("x", 3), ("y", 4)]),
    ]
    engine = ObliviousEngine(engine="vector", padding="worst_case")
    first = engine.multiway_join(tables, [("k", "k")])
    cold_passes = engine.encoding.stats["encode_passes"]
    second = engine.multiway_join(tables, [("k", "k")])
    assert engine.encoding.stats["encode_passes"] == cold_passes
    assert first.rows == second.rows


def test_table_mutation_invalidates_cached_encodings():
    cache = EncodingCache()
    engine = ObliviousEngine(encoding_cache=cache)
    table = DBTable.from_rows(["k:str", "v:int"], [("a", 1), ("b", 2)])
    assert engine._encode_key(table, "k") == engine._encode_key(table, "k")
    passes = cache.stats["encode_passes"]
    table.append_row(("c", 3))
    keys = engine._encode_key(table, "k")
    assert len(keys) == 3
    assert cache.stats["encode_passes"] == passes + 1  # re-scanned once


def test_encoding_cache_keys_by_table_version_not_contents():
    cache = EncodingCache()
    encoder = ObliviousEngine().encoder
    table = DBTable.from_rows(["k:str"], [("a",), ("b",)])
    first = cache.key_handle_pairs(table, "k", encoder)
    again = cache.key_handle_pairs(table, "k", encoder)
    assert first is again  # identity: this is what keys the parts cache
    table.touch()
    assert cache.key_handle_pairs(table, "k", encoder) is not first


# -- the service engine ------------------------------------------------------


SERVICE_CONFIGS = [
    ("traced", {}),
    ("vector", {}),
    ("sharded", {"shards": 3}),
    ("sharded", {"shards": 2, "workers": 2, "executor": "pool"}),
]


@pytest.mark.parametrize("engine,options", SERVICE_CONFIGS)
def test_service_warm_results_bit_identical_to_cold(engine, options):
    left, right = _tables()
    reference = ObliviousEngine(engine=engine, **options).join(
        left, right, ("k", "k")
    )
    spec = {"op": "join", "left": "l", "right": "r", "on": ["k", "k"]}
    with ServiceEngine(engine=engine, **options) as service:
        service.register_table("l", left)
        service.register_table("r", right)
        cold = service.query(spec)
        warm = service.query(spec)
    assert cold.table.schema == reference.schema
    assert cold.table.rows == reference.rows  # exact order: bit-identical
    assert warm.table.rows == reference.rows
    assert warm.stats.warm
    assert warm.stats.encoding_cache["encode_passes"] == 0


def test_service_ops_match_direct_engine_calls():
    left, right = _tables()
    direct = ObliviousEngine(engine="vector")
    with ServiceEngine(engine="vector") as service:
        service.register_table("l", left)
        service.register_table("r", right)
        cases = [
            (
                {"op": "group_by", "table": "l", "key": "k", "value": "v"},
                direct.group_by(left, "k", "v"),
            ),
            (
                {
                    "op": "join_aggregate",
                    "left": "l",
                    "right": "r",
                    "on": ["k", "k"],
                    "values": ["v", "w"],
                },
                direct.join_aggregate(left, right, ("k", "k"), ("v", "w")),
            ),
            (
                {
                    "op": "order_by",
                    "table": "l",
                    "columns": [["v", False]],
                },
                direct.order_by(left, [("v", False)]),
            ),
            (
                {
                    "op": "filter",
                    "table": "l",
                    "column": "v",
                    "cmp": "gt",
                    "value": 2,
                },
                direct.filter(left, lambda row: row[1] > 2),
            ),
            (
                {
                    "op": "multiway_join",
                    "tables": ["l", "r"],
                    "on": [["k", "k"]],
                },
                direct.multiway_join([left, right], [("k", "k")]),
            ),
            (
                {
                    "op": "join_tree",
                    "tables": ["l", "r"],
                    "tree": [[0, 1, "k", "k"]],
                },
                direct.join_tree([left, right], [(0, 1, "k", "k")]),
            ),
        ]
        for spec, expected in cases:
            result = service.query(spec)
            assert result.table.rows == expected.rows, spec["op"]


def test_service_rejects_unknown_ops_and_tables():
    with ServiceEngine() as service:
        with pytest.raises(InputError, match="unknown query op"):
            service.query({"op": "drop_table"})
        with pytest.raises(InputError, match="unknown table"):
            service.query(
                {"op": "join", "left": "l", "right": "r", "on": ["k", "k"]}
            )


def test_concurrent_submissions_bit_identical_to_serial():
    left, right = _tables()
    specs = [
        {"op": "join", "left": "l", "right": "r", "on": ["k", "k"]},
        {"op": "group_by", "table": "l", "key": "k", "value": "v"},
        {"op": "order_by", "table": "r", "columns": [["w", True]]},
        {"op": "filter", "table": "l", "column": "v", "cmp": "le", "value": 3},
    ] * 3
    with ServiceEngine(engine="vector") as service:
        service.register_table("l", left)
        service.register_table("r", right)
        serial = [service.query(spec).table.rows for spec in specs]

    with ServiceEngine(engine="vector") as service:
        service.register_table("l", left)
        service.register_table("r", right)

        async def fan_out():
            return await asyncio.gather(
                *(service.submit(spec) for spec in specs)
            )

        concurrent = asyncio.run(fan_out())
        assert service.queries == len(specs)
    assert [result.table.rows for result in concurrent] == serial


def test_warm_pool_survives_bound_abort_without_leaking(shm_leak_guard):
    """Satellite fix: a BoundError between publish and tournament adoption
    must return the warm pool to a clean, reusable state — no residual
    /dev/shm segments, and the very next query on the same pool succeeds."""
    overlap = [("a", value) for value in range(8)]
    left = DBTable.from_rows(["k:str", "v:int"], overlap)
    right = DBTable.from_rows(["k:str", "w:int"], overlap)
    spec = {"op": "join", "left": "l", "right": "r", "on": ["k", "k"]}
    with ServiceEngine(
        engine="sharded",
        shards=2,
        workers=2,
        executor="pool",
        padding="bounded",
        bound=4,
    ) as service:
        service.register_table("l", left)
        service.register_table("r", right)
        with pytest.raises(BoundError):
            service.query(spec)  # 64 matches >> bound of 4
        small = DBTable.from_rows(["k:str", "v:int"], [("a", 1), ("b", 2)])
        service.register_table("l", small)
        service.register_table("r", small)
        result = service.query(spec)
        assert sorted(result.table.rows) == [
            ("a", 1, "a", 1),
            ("b", 2, "b", 2),
        ]
    # close() unpublished every pinned column segment
    assert not (shm_segments() - shm_leak_guard)


def test_sharded_service_pins_published_columns_until_close():
    left, right = _tables()
    spec = {"op": "join", "left": "l", "right": "r", "on": ["k", "k"]}
    baseline = executor_stats()["pinned_segments"]
    with ServiceEngine(
        engine="sharded", shards=2, workers=2, executor="pool"
    ) as service:
        service.register_table("l", left)
        service.register_table("r", right)
        service.query(spec)
        assert executor_stats()["pinned_segments"] > baseline
        warm = service.query(spec)
        assert warm.stats.warm
    assert executor_stats()["pinned_segments"] == baseline


# -- the server/client protocol ----------------------------------------------


class _ServerThread:
    """Run a QueryServer on a private event loop in a daemon thread."""

    def __init__(self, service: ServiceEngine) -> None:
        self.service = service
        self.port = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main():
            server = await QueryServer(self.service, port=0).start()
            self.port = server.port
            self._ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        assert self._ready.wait(timeout=30), "server never came up"
        return self

    def __exit__(self, *exc) -> None:
        self._thread.join(timeout=30)


def test_server_roundtrip_with_warm_hit_on_second_query():
    left, right = _tables()
    spec = {"op": "join", "left": "l", "right": "r", "on": ["k", "k"]}
    reference = ObliviousEngine(engine="vector").join(left, right, ("k", "k"))
    with _ServerThread(ServiceEngine(engine="vector")) as server:
        with ServiceClient(port=server.port) as client:
            assert client.ping()
            client.register_table("l", left)
            client.register_table("r", right)
            assert client.tables() == ["l", "r"]
            cold_table, cold_stats = client.query(spec)
            warm_table, warm_stats = client.query(spec)
            assert cold_table.rows == reference.rows
            assert warm_table.rows == reference.rows
            assert not cold_stats["warm"]
            assert warm_stats["warm"]
            stats = client.stats()
            assert stats["queries"] == 2
            with pytest.raises(ServiceError, match="unknown table"):
                client.query({"op": "join", "left": "nope", "right": "r",
                              "on": ["k", "k"]})
            client.shutdown()


def test_server_registration_replaces_and_invalidates():
    left, right = _tables()
    spec = {"op": "join", "left": "l", "right": "r", "on": ["k", "k"]}
    with _ServerThread(ServiceEngine(engine="vector")) as server:
        with ServiceClient(port=server.port) as client:
            client.register_table("l", left)
            client.register_table("r", right)
            first, _ = client.query(spec)
            assert len(first) > 0
            empty = DBTable.from_rows(["k:str", "v:int"], [])
            client.register_table("l", empty)
            second, _ = client.query(spec)
            assert len(second) == 0
            client.shutdown()


def test_service_reports_store_io_for_stored_tables(tmp_path):
    from repro.store.runtime import detach_all

    detach_all()
    try:
        left, right = _tables()
        stored = left.to_store(str(tmp_path / "db"), "l", key=b"k" * 16)
        right.to_store(stored, "r")
        sleft = DBTable.open(stored, "l", cache_bytes=2048)
        sright = DBTable.open(stored, "r", cache_bytes=2048)
        spec = {"op": "join", "left": "l", "right": "r", "on": ["k", "k"]}
        with ServiceEngine(engine="sharded", shards=2) as resident_service:
            resident_service.register_table("l", left)
            resident_service.register_table("r", right)
            expected = resident_service.query(spec).table
        with ServiceEngine(engine="sharded", shards=2) as service:
            service.register_table("l", sleft)
            service.register_table("r", sright)
            result = service.query(spec)
            # Bit-identical to the resident service, with store IO on the
            # query's stats delta and residency in the service stats.
            assert result.table.rows == expected.rows
            assert result.stats.store["reads"] > 0
            assert result.stats.store["decryptions"] > 0
            assert result.stats.to_dict()["store"]["reads"] > 0
            stats = service.service_stats()
            assert stats["store"]["reads"] >= result.stats.store["reads"]
            residency = stats["store_residency"]
            assert len(residency) == 1
            assert residency[0]["kind"] == "file"
            assert residency[0]["budget_bytes"] == 2048
        with ServiceEngine(engine="vector") as vector_service:
            # Non-sharded engines take the resident fall-back and still
            # produce the same table.
            vector_service.register_table("l", sleft)
            vector_service.register_table("r", sright)
            assert vector_service.query(spec).table.rows == expected.rows
    finally:
        detach_all()
