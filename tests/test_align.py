"""Algorithm 5: table alignment (including the paper's formula erratum)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.align import align_table, compute_alignment_indices
from repro.core.entry import Entry
from repro.memory.public import PublicArray
from repro.memory.tracer import Tracer


def _s2_block(a1: int, a2: int, key: int = 0):
    """An expanded S2 group block: a2 distinct entries, each a1 copies."""
    entries = []
    for rank in range(a2):
        for _copy in range(a1):
            entries.append(Entry(j=key, d=rank, a1=a1, a2=a2))
    return entries


def test_figure5_example():
    """α1=2 entries in T1, α2=3 in T2: aligned S2 = u1,u2,u3,u1,u2,u3."""
    array = PublicArray(_s2_block(a1=2, a2=3), name="S2")
    align_table(array, array.tracer)
    assert [e.d for e in array.snapshot()] == [0, 1, 2, 0, 1, 2]


def test_erratum_formula_direction():
    """The printed Alg. 5 formula (α1/α2 swapped) would produce a wrong
    interleaving for asymmetric groups; ours must match the Cartesian
    product against S1's layout."""
    # a1=3 (T1 entries), a2=2 (T2 entries): S1 = [A,A,B,B,C,C] (each a2=2x).
    # Aligned S2 must be [u,v,u,v,u,v].
    array = PublicArray(_s2_block(a1=3, a2=2), name="S2")
    align_table(array, array.tracer)
    assert [e.d for e in array.snapshot()] == [0, 1, 0, 1, 0, 1]


def test_alignment_indices_transpose_blocks():
    array = PublicArray(_s2_block(a1=2, a2=3), name="S2")
    compute_alignment_indices(array)
    # copies of entry r at in-block q = r*a1 + k get ii = r + k*a2
    snapshot = array.snapshot()
    expected_ii = [0, 3, 1, 4, 2, 5]
    assert [e.ii for e in snapshot] == expected_ii


def test_multiple_groups_align_independently():
    entries = _s2_block(a1=1, a2=2, key=0) + _s2_block(a1=2, a2=1, key=1)
    array = PublicArray(entries, name="S2")
    align_table(array, array.tracer)
    snapshot = array.snapshot()
    assert [e.d for e in snapshot[:2]] == [0, 1]  # group 0: 1x2
    assert [e.d for e in snapshot[2:]] == [0, 0]  # group 1: 2x1


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=1, max_value=4),
        ),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=50, deadline=None)
def test_aligned_s2_matches_cartesian_product(dims):
    """For any group dimensions, zipping S1 and aligned S2 must enumerate
    each group's full Cartesian product in lexicographic order."""
    s1_entries = []
    s2_entries = []
    for key, (a1, a2) in enumerate(dims):
        # S1: a1 distinct T1 entries, each a2 contiguous copies.
        for rank in range(a1):
            s1_entries.extend(Entry(j=key, d=rank, a1=a1, a2=a2) for _ in range(a2))
        s2_entries.extend(_s2_block(a1, a2, key=key))
    array = PublicArray(s2_entries, name="S2")
    align_table(array, array.tracer)
    zipped = [
        (e1.j, e1.d, e2.d) for e1, e2 in zip(s1_entries, array.snapshot())
    ]
    expected = []
    for key, (a1, a2) in enumerate(dims):
        expected.extend((key, r1, r2) for r1 in range(a1) for r2 in range(a2))
    assert zipped == expected


def test_align_trace_is_input_independent():
    from repro.memory.monitor import run_hashed

    def run(dims):
        def program(tracer):
            entries = []
            for key, (a1, a2) in enumerate(dims):
                entries.extend(_s2_block(a1, a2, key=key))
            array = PublicArray(entries, name="S2", tracer=tracer)
            align_table(array, tracer)
        return run_hashed(program)[0]

    # Same m = 8, different group structure.
    assert run([(2, 4)]) == run([(4, 2)]) == run([(2, 2), (2, 2)])
