"""The paged block store: substrate, runtime, tables, and the e2e path.

Covers the out-of-core storage layer bottom-up:

* block store units (round-trip, padding, errors, FileStore persistence);
* encryption integration — fresh nonce at rest, unlinkable rewrites,
  the live ``ProbabilisticEncryptor`` wiring (not a mock);
* the trusted-memory ``BlockCache`` and the ``EPCModel`` slowdown curve
  as the store runtime actually drives it;
* block-aligned partition plans as pure functions of public shapes;
* ``StoredTable`` / ``DBTable.open`` round-trips;
* the acceptance end-to-end: a sharded join over an encrypted FileStore
  with a trusted-memory budget smaller than the table runs bit-identical
  to the resident path, with evictions, while every worker faults in
  only its plan-named blocks — and the plan bytes stay pure functions of
  the public shapes.
"""

import numpy as np
import pytest

from repro.db.table import DBTable
from repro.enclave.epc import EPCModel
from repro.errors import CapacityError, InputError, SchemaError
from repro.memory.encryption import ProbabilisticEncryptor
from repro.plan.partition import (
    block_aligned_partition_plan,
    block_count,
    partition_plan,
    shard_block_ids,
)
from repro.security import LEAKAGE_PROFILES, STORE_LEAKAGE
from repro.shard.join import sharded_oblivious_join
from repro.store import (
    BlockCache,
    FileStore,
    InMemoryStore,
    StorePairs,
    adopt,
    attach,
    detach_all,
    stats_snapshot,
    trace_faults,
)
from repro.store.blockstore import NONCE_BYTES
from repro.store.columns import (
    column_key,
    read_str_block,
    write_int_column,
    write_str_column,
)
from repro.store.runtime import StoreBlocksRef, residency_snapshot, resolve_blocks


@pytest.fixture(autouse=True)
def fresh_handles():
    detach_all()
    yield
    trace_faults(False)
    detach_all()


# -- block store units --------------------------------------------------------


@pytest.mark.parametrize("key", [None, b"0123456789abcdef"])
def test_block_round_trip_and_padding(key):
    store = InMemoryStore(block_bytes=32, key=key)
    store.write_block("c", 0, b"hello")
    assert store.read_block("c", 0) == b"hello".ljust(32, b"\x00")


def test_block_store_rejects_bad_sizes():
    with pytest.raises(InputError):
        InMemoryStore(block_bytes=4)
    store = InMemoryStore(block_bytes=16)
    with pytest.raises(InputError):
        store.write_block("c", 0, b"x" * 17)
    with pytest.raises(InputError):
        store.write_block("c", -1, b"x")
    with pytest.raises(InputError):
        store.read_block("missing", 0)


def test_generation_bumps_on_write_and_meta():
    store = InMemoryStore(block_bytes=16)
    g0 = store.generation
    store.write_block("c", 0, b"a")
    assert store.generation > g0
    g1 = store.generation
    store.put_meta("t", {"n": 1})
    assert store.generation > g1
    assert store.get_meta("t")["n"] == 1


def test_file_store_persists_and_reopens(tmp_path):
    path = str(tmp_path / "db")
    store = FileStore(path, block_bytes=64)
    write_int_column(store, "t/x", list(range(20)))
    store.put_meta("t", {"n": 20})
    reopened = FileStore(path)
    assert reopened.block_bytes == 64
    assert reopened.keys() == ["t/x"]
    assert reopened.get_meta("t")["n"] == 20
    got = np.frombuffer(reopened.read_block("t/x", 1), dtype=np.int64)
    assert list(got) == list(range(8, 16))


def test_file_store_config_mismatches_fail_loudly(tmp_path):
    path = str(tmp_path / "db")
    FileStore(path, block_bytes=64, key=b"k" * 16)
    with pytest.raises(InputError):
        FileStore(path, block_bytes=128, key=b"k" * 16)
    with pytest.raises(InputError):
        FileStore(path)  # encrypted store opened without a key


def test_str_column_round_trip_and_capacity():
    store = InMemoryStore(block_bytes=64)
    values = ["a", "bee", "", "längère"]
    write_str_column(store, "t/s", values)
    assert read_str_block(store.read_block, "t/s", 0, len(values)) == values
    with pytest.raises(CapacityError):
        write_str_column(InMemoryStore(block_bytes=8), "t/s", ["x" * 100])


# -- encryption integration (live ProbabilisticEncryptor wiring) --------------


def test_encrypted_slots_hold_ciphertext_with_fresh_nonces(tmp_path):
    store = FileStore(str(tmp_path / "db"), block_bytes=32, key=b"k" * 16)
    store.write_block("c", 0, b"secret")
    first = store.raw_slot("c", 0)
    assert len(first) == 32 + NONCE_BYTES
    assert b"secret" not in first
    # Rewriting the identical plaintext draws a fresh nonce: the at-rest
    # bytes are unlinkable, but the plaintext still round-trips.
    store.write_block("c", 0, b"secret")
    second = store.raw_slot("c", 0)
    assert second != first
    assert second[:NONCE_BYTES] != first[:NONCE_BYTES]
    assert store.read_block("c", 0) == b"secret".ljust(32, b"\x00")
    assert store.stats["encryptions"] == 2
    assert store.stats["decryptions"] >= 1


def test_store_decrypts_with_the_same_scheme_as_the_encryptor():
    # The store's at-rest format is nonce || ciphertext from the shared
    # ProbabilisticEncryptor — decryptable by an independent instance
    # holding the same key (the worker-as-enclave contract).
    key = b"s" * 32
    store = InMemoryStore(block_bytes=16, key=key)
    store.write_block("c", 0, b"payload!")
    slot = store.raw_slot("c", 0)
    from repro.memory.encryption import Ciphertext

    outside = ProbabilisticEncryptor(key)
    plain = outside.decrypt(
        Ciphertext(nonce=slot[:NONCE_BYTES], payload=slot[NONCE_BYTES:])
    )
    assert plain == b"payload!".ljust(16, b"\x00")


# -- trusted-memory cache and the EPC slowdown curve --------------------------


def test_block_cache_lru_budget_and_counters():
    cache = BlockCache(budget_bytes=64)
    cache.put(("c", 0), b"x" * 32)
    cache.put(("c", 1), b"x" * 32)
    assert cache.get(("c", 0)) is not None  # refresh 0 -> 1 is LRU
    cache.put(("c", 2), b"x" * 32)  # over budget: evicts 1
    assert cache.get(("c", 1)) is None
    assert cache.get(("c", 0)) is not None
    assert cache.stats["evictions"] == 1
    assert cache.cached_bytes == 64
    # A single oversized entry is kept (the cache never wedges empty).
    cache.clear()
    cache.put(("c", 9), b"y" * 100)
    assert len(cache) == 1


def test_handle_miss_rate_drives_the_epc_model(tmp_path):
    store = FileStore(str(tmp_path / "db"), block_bytes=64)
    write_int_column(store, "t/x", list(range(64)))  # 8 blocks
    store.flush()
    spec = adopt(store, cache_bytes=128)  # trusted memory: 2 blocks
    handle = attach(spec)
    assert handle.modeled_slowdown() == 1.0  # no traffic yet
    for index in range(8):
        handle.read_int_block("t/x", index)
    assert handle.cache.stats["misses"] == 8
    assert handle.cache.stats["evictions"] > 0
    # All-miss traffic prices at the EPC model's full penalty...
    assert handle.modeled_slowdown() == pytest.approx(1.0 + handle.epc.penalty)
    # ...and re-reading resident blocks pulls the modeled slowdown down,
    # the same monotone shape as EPCModel.slowdown over footprints.
    for _ in range(40):
        handle.read_int_block("t/x", 7)
    assert 1.0 < handle.modeled_slowdown() < 1.0 + handle.epc.penalty
    curve = [handle.epc_slowdown(f) for f in (64, 128, 256, 512)]
    assert curve[0] == curve[1] == 1.0  # inside the budget: flat
    assert curve[1] < curve[2] < curve[3]  # beyond it: growing penalty
    model = EPCModel(capacity_bytes=128)
    assert curve[3] == model.slowdown(512)


def test_residency_snapshot_reports_attached_stores(tmp_path):
    store = FileStore(str(tmp_path / "db"), block_bytes=64)
    write_int_column(store, "t/x", list(range(16)))
    store.flush()
    spec = adopt(store, cache_bytes=1024)
    attach(spec).read_int_block("t/x", 0)
    report = residency_snapshot()
    assert len(report) == 1
    entry = report[0]
    assert entry["kind"] == "file"
    assert entry["cached_blocks"] == 1
    assert entry["cached_bytes"] == 64
    assert entry["modeled_slowdown"] > 1.0  # one miss, zero hits


# -- block-aligned partition plans (pure functions of public shapes) ----------


def test_block_aligned_plan_assigns_whole_blocks():
    capacity, counts = block_aligned_partition_plan(100, 3, 8)
    ids = shard_block_ids(100, 3, 8)
    assert sum(counts) == 100
    assert sum(len(b) for b in ids) == block_count(100, 8) == 13
    # Every shard boundary except the table end falls on a block boundary.
    offset = 0
    for real, blocks in zip(counts, ids):
        assert real <= len(blocks) * 8
        assert offset % 8 == 0
        offset += real
    assert capacity == max(counts)


def test_block_aligned_plan_matches_row_plan_when_blocks_are_rows():
    # block_rows=1 degenerates to the standard row-aligned plan.
    assert block_aligned_partition_plan(17, 4, 1) == partition_plan(17, 4)


def test_store_pairs_shard_parts_name_exactly_the_plan_blocks(tmp_path):
    store = FileStore(str(tmp_path / "db"), block_bytes=64)
    write_int_column(store, "t/j", list(range(50)))
    store.flush()
    spec = adopt(store, cache_bytes=4096)
    pairs = StorePairs(spec, 50, "t/j")
    ids = shard_block_ids(50, 3, 8)
    parts = pairs.shard_parts(3)
    assert [p[0].blocks for p in parts] == list(ids)
    # d-side refs are virtual row handles: no blocks faulted, ever.
    assert all(p[1].arange_base is not None and p[1].blocks == () for p in parts)
    # Resolving a j ref yields the padded rows of exactly those blocks.
    j0 = resolve_blocks(parts[0][0])
    real0 = parts[0][2]
    assert list(j0[:real0]) == list(range(real0))
    assert all(v == 0 for v in j0[real0:])


def test_store_pairs_materialises_and_reduces(tmp_path):
    store = FileStore(str(tmp_path / "db"), block_bytes=64)
    values = [5, 1, 9, 4, 9, 0, 3]
    write_int_column(store, "t/j", values)
    store.flush()
    spec = adopt(store, cache_bytes=4096)
    pairs = StorePairs(spec, len(values), "t/j")
    assert len(pairs) == 7
    assert list(pairs) == [(v, i) for i, v in enumerate(values)]
    assert pairs[2] == (9, 2)
    assert np.asarray(pairs).shape == (7, 2)
    assert pairs.max_j() == 9
    assert pairs.min_d() == 0


# -- stored tables ------------------------------------------------------------


def table_fixture():
    return DBTable.from_rows(
        ["id:int", "name:str", "age:int"],
        [(i, f"p{i}", 20 + i % 7) for i in range(30)],
    )


def test_stored_table_round_trip(tmp_path):
    table = table_fixture()
    table.to_store(str(tmp_path / "db"), "people")
    opened = DBTable.open(str(tmp_path / "db"), "people")
    assert opened.schema == table.schema
    assert len(opened) == len(table)
    assert opened.column("name") == table.column("name")
    assert opened == table  # rows fall back bit-identically
    assert opened.rows == table.rows


def test_stored_table_encrypted_round_trip(tmp_path):
    table = table_fixture()
    table.to_store(str(tmp_path / "db"), "people", key=b"k" * 16)
    opened = DBTable.open(str(tmp_path / "db"), "people", key=b"k" * 16)
    assert opened == table


def test_stored_table_is_read_only(tmp_path):
    table = table_fixture()
    table.to_store(str(tmp_path / "db"), "people")
    opened = DBTable.open(str(tmp_path / "db"), "people")
    for mutate in (
        lambda: opened.append_row((99, "x", 1)),
        lambda: opened.extend_rows([(99, "x", 1)]),
        opened.touch,
    ):
        with pytest.raises(InputError):
            mutate()


def test_stored_table_schema_assertion_and_missing_table(tmp_path):
    table = table_fixture()
    store = table.to_store(str(tmp_path / "db"), "people")
    with pytest.raises(SchemaError):
        DBTable.open(store, "people", specs=["id:int"])
    with pytest.raises(InputError):
        DBTable.open(store, "nobody")


def test_stored_table_store_pairs_rejects_str_columns(tmp_path):
    table = table_fixture()
    table.to_store(str(tmp_path / "db"), "people")
    opened = DBTable.open(str(tmp_path / "db"), "people")
    pairs = opened.store_pairs("id")
    assert isinstance(pairs, StorePairs)
    with pytest.raises(SchemaError):
        opened.store_pairs("name")


def test_store_generation_invalidates_encoding_cache(tmp_path):
    from repro.db.encoding_cache import EncodingCache
    from repro.db.encoding import DictionaryEncoder

    table = table_fixture()
    store = table.to_store(str(tmp_path / "db"), "people")
    opened = DBTable.open(store, "people")
    cache = EncodingCache()
    encoder = DictionaryEncoder()
    cache.encoded_keys(opened, "id", encoder)
    cache.encoded_keys(opened, "id", encoder)
    assert cache.stats["hits"] == 1
    # Rewrite the store: the generation bump must invalidate the entry.
    write_int_column(store, column_key("people", "id"), list(range(100, 130)))
    store.put_meta("people", store.get_meta("people"))
    opened._columns.clear()
    keys = cache.encoded_keys(opened, "id", encoder)
    assert cache.stats["hits"] == 1  # miss, not a stale hit
    assert keys == list(range(100, 130))


# -- the acceptance end-to-end ------------------------------------------------


def _store_inputs(tmp_path, lj, rj, key=None, cache_bytes=256):
    store = FileStore(str(tmp_path / "db"), block_bytes=64, key=key)
    write_int_column(store, "L/j", list(lj))
    write_int_column(store, "R/j", list(rj))
    store.flush()
    spec = adopt(store, cache_bytes=cache_bytes)
    return (
        StorePairs(spec, len(lj), "L/j"),
        StorePairs(spec, len(rj), "R/j"),
    )


@pytest.mark.parametrize("target_m", [None, 4000])
def test_sharded_join_over_encrypted_file_store_is_bit_identical(
    tmp_path, target_m
):
    rng = np.random.default_rng(13)
    n1, n2 = 130, 170
    lj = rng.integers(0, 18, n1)
    rj = rng.integers(0, 18, n2)
    left = np.stack([lj, np.arange(n1)], axis=1).astype(np.int64)
    right = np.stack([rj, np.arange(n2)], axis=1).astype(np.int64)
    expected, _ = sharded_oblivious_join(
        left, right, shards=3, executor="inline", target_m=target_m
    )
    # Trusted memory (256 B = 4 blocks) far below the table footprint.
    sleft, sright = _store_inputs(tmp_path, lj, rj, key=b"e" * 16)
    faults = trace_faults(True)
    got, stats = sharded_oblivious_join(
        sleft, sright, shards=3, executor="inline", target_m=target_m
    )
    trace_faults(False)
    assert np.array_equal(expected, got)
    snapshot = stats_snapshot()
    assert snapshot["evictions"] > 0
    assert snapshot["decryptions"] > 0
    # Every fault names a (column, block id) the plan's partition nodes
    # declared: workers touch plan-named blocks and nothing else.
    named = {
        index
        for node in stats.plan.nodes
        for shard_blocks in (node.attr("blocks") or ())
        for index in shard_blocks
    }
    assert {index for _, index in faults} <= named
    # And the plan records the store layout as public shape state.
    assert stats.plan.shape("block_rows") == (8, 8)


def test_store_backed_plan_bytes_are_pure_functions_of_shapes(tmp_path):
    rng = np.random.default_rng(3)
    n1, n2 = 61, 83
    _, stats_a = sharded_oblivious_join(
        *_store_inputs(
            tmp_path / "a", rng.integers(0, 9, n1), rng.integers(0, 9, n2)
        ),
        shards=2,
        executor="inline",
    )
    _, stats_b = sharded_oblivious_join(
        *_store_inputs(
            tmp_path / "b",
            rng.integers(100, 900, n1),
            rng.integers(100, 900, n2),
        ),
        shards=2,
        executor="inline",
    )
    assert stats_a.plan.serialize() == stats_b.plan.serialize()
    # Resident inputs at the same sizes compile *without* block shapes —
    # the historical plan bytes are untouched by the store layer.
    resident_left = np.stack(
        [rng.integers(0, 9, n1), np.arange(n1)], axis=1
    ).astype(np.int64)
    resident_right = np.stack(
        [rng.integers(0, 9, n2), np.arange(n2)], axis=1
    ).astype(np.int64)
    _, stats_r = sharded_oblivious_join(
        resident_left, resident_right, shards=2, executor="inline"
    )
    assert stats_r.plan.shape("block_rows") is None
    assert "block_rows" not in dict(stats_r.plan.shapes)


def test_mixed_resident_and_store_inputs_join_identically(tmp_path):
    rng = np.random.default_rng(5)
    n1, n2 = 40, 55
    lj = rng.integers(0, 8, n1)
    rj = rng.integers(0, 8, n2)
    left = np.stack([lj, np.arange(n1)], axis=1).astype(np.int64)
    right = np.stack([rj, np.arange(n2)], axis=1).astype(np.int64)
    expected, _ = sharded_oblivious_join(left, right, shards=2, executor="inline")
    sleft, sright = _store_inputs(tmp_path, lj, rj)
    got, stats = sharded_oblivious_join(
        sleft, right, shards=2, executor="inline"
    )
    assert np.array_equal(expected, got)
    assert stats.plan.shape("block_rows") == (8, None)


def test_sharded_join_over_store_on_process_pool(tmp_path):
    rng = np.random.default_rng(23)
    n1, n2 = 70, 90
    lj = rng.integers(0, 12, n1)
    rj = rng.integers(0, 12, n2)
    left = np.stack([lj, np.arange(n1)], axis=1).astype(np.int64)
    right = np.stack([rj, np.arange(n2)], axis=1).astype(np.int64)
    expected, _ = sharded_oblivious_join(
        left, right, shards=2, executor="inline", target_m=3000
    )
    sleft, sright = _store_inputs(tmp_path, lj, rj, key=b"p" * 16)
    got, _ = sharded_oblivious_join(
        sleft, sright, shards=2, workers=2, executor="pool", target_m=3000
    )
    assert np.array_equal(expected, got)


# -- leakage bookkeeping ------------------------------------------------------


def test_sharded_profiles_declare_block_symbols():
    for padding in ("revealed", "bounded", "worst_case"):
        profile = LEAKAGE_PROFILES[("sharded", padding)]
        assert "block_rows" in profile and "block_ids" in profile
    for engine in ("traced", "vector"):
        for padding in ("revealed", "bounded", "worst_case"):
            assert "block_rows" not in LEAKAGE_PROFILES[(engine, padding)]


def test_store_leakage_documented():
    with open("docs/leakage.md", encoding="utf-8") as handle:
        text = handle.read()
    for symbol in STORE_LEAKAGE:
        assert f"`{symbol}`" in text, (
            f"STORE_LEAKAGE symbol {symbol!r} missing from docs/leakage.md"
        )
    assert "Block-access patterns" in text
