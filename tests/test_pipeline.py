"""Cross-engine differential suite for streaming pipeline execution.

The streamed query-DAG path (:mod:`repro.shard.pipeline`) must be
*bit-identical* to running the operators one at a time on any engine —
including when blocks complete in adversarial order (the ``shuffle``
executor) and when they travel between workers through shared memory (the
``pool``/``async`` executors).  Hypothesis drives whole chains —
filter -> join, join -> group_by, filter -> multiway -> order_by — through
every engine x executor configuration against the traced reference, and a
seed sweep pins that the shuffled completion order changes neither the
output nor the compiled plan.

``REPRO_ENGINES`` / ``REPRO_EXECUTORS`` restrict the configuration list
exactly as in ``test_engine_properties.py`` — the CI matrix reuses them to
parametrise the pipeline differential job per (engine, executor).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.engines import ShardedEngine, available_engines, get_engine
from repro.plan import ShuffleExecutor, available_executors

ENGINES = [
    name
    for name in available_engines()
    if name in os.environ.get("REPRO_ENGINES", ",".join(available_engines())).split(",")
]

EXECUTORS = [
    name
    for name in available_executors()
    if name
    in os.environ.get("REPRO_EXECUTORS", ",".join(available_executors())).split(",")
]

REFERENCE = "traced"

#: Registry defaults, a lopsided shard count, one sharded configuration per
#: non-default executor, and a padded configuration exercising the
#: operator-at-a-time fallback ShardedEngine.pipeline takes outside
#: revealed mode.
CONFIGURATIONS = ENGINES + (
    [
        pytest.param(ShardedEngine(shards=5), id="sharded[shards=5]"),
        pytest.param(
            ShardedEngine(shards=3, padding="worst_case"),
            id="sharded[padding=worst_case]",
        ),
    ]
    + [
        pytest.param(
            ShardedEngine(shards=3, workers=2, executor=name),
            id=f"sharded[executor={name}]",
        )
        for name in EXECUTORS
        if name != "inline"
    ]
    if "sharded" in ENGINES
    else []
)


@st.composite
def masked_table(draw, max_rows: int = 16):
    """A (j, d) table plus a same-length filter mask, biased nasty.

    Tiny key/payload spaces force duplicate rows and heavy groups; the
    mask is drawn independently so all-kept, all-dropped and ragged
    survivor patterns (including survivor-free shard blocks) all occur.
    """
    key_space = draw(st.sampled_from([1, 2, 3, 40]))
    data_space = draw(st.sampled_from([2, 5, 1000]))
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=key_space - 1),
                st.integers(min_value=0, max_value=data_space - 1),
            ),
            max_size=max_rows,
        )
    )
    mask = draw(
        st.lists(st.booleans(), min_size=len(rows), max_size=len(rows))
    )
    return rows, mask


@st.composite
def table(draw, max_rows: int = 16):
    key_space = draw(st.sampled_from([1, 2, 3, 40]))
    data_space = draw(st.sampled_from([2, 5, 1000]))
    return draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=key_space - 1),
                st.integers(min_value=0, max_value=data_space - 1),
            ),
            max_size=max_rows,
        )
    )


def _assert_pipelines_agree(configuration, stages):
    engine = get_engine(configuration)
    reference = get_engine(REFERENCE).pipeline(stages)
    result = engine.pipeline(stages)
    assert result.rows == reference.rows
    assert result.groups == reference.groups
    assert result.sizes == reference.sizes


# -- streamed chains vs the operator-at-a-time reference ---------------------


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(source=masked_table(), right=table())
@settings(max_examples=15, deadline=None)
@example(source=([], []), right=[])
@example(source=([(0, 0)], [False]), right=[(0, 0)])
@example(source=([(0, 1), (0, 1), (0, 2)], [True, True, False]), right=[(0, 3), (0, 4)])
def test_filter_join_pipeline(configuration, source, right):
    rows, mask = source
    _assert_pipelines_agree(
        configuration, [("source", rows), ("filter", mask), ("join", right)]
    )


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(source=table(), right=table())
@settings(max_examples=15, deadline=None)
@example(source=[], right=[])
@example(source=[(0, 1), (0, 1), (1, 2)], right=[(0, 3), (1, 4), (1, 4)])
def test_join_group_by_pipeline(configuration, source, right):
    _assert_pipelines_agree(
        configuration, [("source", source), ("join", right), ("group_by",)]
    )


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(source=masked_table())
@settings(max_examples=15, deadline=None)
@example(source=([], []))
@example(source=([(1, 5), (0, 5), (1, 5), (0, 2)], [True, True, True, True]))
def test_filter_group_by_pipeline(configuration, source):
    rows, mask = source
    _assert_pipelines_agree(
        configuration, [("source", rows), ("filter", mask), ("group_by",)]
    )


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(source=masked_table())
@settings(max_examples=15, deadline=None)
@example(source=([], []))
@example(source=([(0, 1), (1, 1), (0, 1), (2, 0)], [True, False, True, True]))
def test_filter_order_by_pipeline(configuration, source):
    rows, mask = source
    _assert_pipelines_agree(
        configuration,
        [("source", rows), ("filter", mask), ("order_by", [(1, False), (0, True)])],
    )


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(source=masked_table(max_rows=8), mid=table(max_rows=6), last=table(max_rows=4))
@settings(max_examples=10, deadline=None)
@example(source=([], []), mid=[], last=[])
@example(
    source=([(0, 0), (0, 1)], [True, True]), mid=[(0, 0), (0, 1)], last=[(0, 7)]
)
def test_filter_multiway_order_by_pipeline(configuration, source, mid, last):
    rows, mask = source
    _assert_pipelines_agree(
        configuration,
        [
            ("source", rows),
            ("filter", mask),
            ("multiway", [mid, last], [(0, 0), (0, 0)]),
            ("order_by", [(1, True), (3, False), (5, True)]),
        ],
    )


# -- arrival-order independence ----------------------------------------------

#: A fixed adversarial chain: skewed keys, duplicate rows, a survivor-free
#: middle block at shards=3.
_SWEEP_SOURCE = [(0, 1), (0, 1), (1, 2), (0, 1), (2, 2), (1, 0), (0, 0), (1, 1), (0, 2)]
_SWEEP_MASK = [True, True, True, False, False, False, True, True, True]
_SWEEP_RIGHT = [(0, 5), (1, 6), (0, 5), (3, 7), (1, 6)]


@pytest.mark.parametrize(
    "chain",
    [
        pytest.param(
            [("source", _SWEEP_SOURCE), ("filter", _SWEEP_MASK), ("join", _SWEEP_RIGHT)],
            id="filter-join",
        ),
        pytest.param(
            [("source", _SWEEP_SOURCE), ("join", _SWEEP_RIGHT), ("group_by",)],
            id="join-group_by",
        ),
        pytest.param(
            [
                ("source", _SWEEP_SOURCE),
                ("filter", _SWEEP_MASK),
                ("order_by", [(1, True), (0, False)]),
            ],
            id="filter-order_by",
        ),
    ],
)
def test_shuffle_seed_sweep_is_arrival_order_independent(chain):
    """Ten adversarial completion orders: same bits, same compiled plan."""
    if "sharded" not in ENGINES:
        pytest.skip("sharded engine excluded by REPRO_ENGINES")
    reference = get_engine(REFERENCE).pipeline(chain)
    digests = set()
    for seed in range(10):
        engine = ShardedEngine(shards=3, executor=ShuffleExecutor(seed=seed))
        result = engine.pipeline(chain)
        assert result.rows == reference.rows
        assert result.groups == reference.groups
        assert result.sizes == reference.sizes
        digests.add(result.stats.plan.digest())
    assert len(digests) == 1


def test_streamed_edges_recorded():
    """The streamed path reports which edges streamed; the fallback none."""
    if "sharded" not in ENGINES:
        pytest.skip("sharded engine excluded by REPRO_ENGINES")
    chain = [("source", _SWEEP_SOURCE), ("filter", _SWEEP_MASK), ("join", _SWEEP_RIGHT)]
    streamed = ShardedEngine(shards=3).pipeline(chain)
    assert streamed.stats.streamed_edges == [(2, "filter->join")]
    padded = ShardedEngine(shards=3, padding="worst_case").pipeline(chain)
    assert padded.stats.streamed_edges == []
    assert padded.rows == streamed.rows
