"""0-1-principle certification and depth profiles of the networks."""

import pytest

from repro.errors import InputError
from repro.obliv.bitonic import bitonic_stages, network_depth
from repro.obliv.oddeven import oddeven_stages
from repro.obliv.verify import (
    first_unsorted_witness,
    network_depth_profile,
    parallel_depth,
    sorts_all_zero_one_inputs,
)


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_bitonic_certified_by_zero_one_principle(n):
    assert sorts_all_zero_one_inputs(list(bitonic_stages(n)), n)


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_oddeven_certified_by_zero_one_principle(n):
    assert sorts_all_zero_one_inputs(list(oddeven_stages(n)), n)


def test_broken_network_detected_with_witness():
    """Dropping one comparator from a sorting network must be caught."""
    stages = [list(s) for s in bitonic_stages(8)]
    removed = stages[-1].pop()  # final stage comparators are all load-bearing
    assert not sorts_all_zero_one_inputs(stages, 8)
    witness = first_unsorted_witness(stages, 8)
    assert witness is not None
    assert removed  # the dropped comparator existed


def test_empty_and_single_wire_networks_sort():
    assert sorts_all_zero_one_inputs([], 0)
    assert sorts_all_zero_one_inputs([], 1)
    assert first_unsorted_witness([], 1) is None


def test_infeasible_sizes_rejected():
    with pytest.raises(InputError):
        sorts_all_zero_one_inputs([], 25)
    with pytest.raises(InputError):
        sorts_all_zero_one_inputs([], -1)


@pytest.mark.parametrize("n", [4, 8, 16, 32])
def test_bitonic_parallel_depth_matches_formula(n):
    # Stage-form bitonic networks have every wire active in every stage,
    # so critical path == stage count == log n (log n + 1) / 2.
    assert parallel_depth(bitonic_stages(n), n) == network_depth(n)


@pytest.mark.parametrize("n", [4, 8, 16, 32])
def test_oddeven_depth_not_worse_than_bitonic(n):
    assert parallel_depth(oddeven_stages(n), n) <= network_depth(n)


def test_depth_profile_per_wire():
    profile = network_depth_profile([[(0, 1), (2, 3)], [(1, 2)]], 4)
    assert profile == [1, 2, 2, 1]


def test_depth_grows_polylogarithmically():
    depths = [parallel_depth(bitonic_stages(n), n) for n in (8, 64, 512)]
    # 6, 21, 45: ratios shrink (polylog), nowhere near linear growth.
    assert depths == [6, 21, 45]
