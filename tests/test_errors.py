"""The exception hierarchy contract."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "InputError",
        "SchemaError",
        "CapacityError",
        "InjectivityError",
        "ObliviousnessError",
        "TraceMismatchError",
        "TypingError",
        "EnclaveError",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError)


def test_input_error_is_value_error():
    assert issubclass(errors.InputError, ValueError)


def test_capacity_and_injectivity_are_input_errors():
    assert issubclass(errors.CapacityError, errors.InputError)
    assert issubclass(errors.InjectivityError, errors.InputError)


def test_trace_mismatch_is_obliviousness_error():
    assert issubclass(errors.TraceMismatchError, errors.ObliviousnessError)


def test_typing_error_is_obliviousness_error():
    assert issubclass(errors.TypingError, errors.ObliviousnessError)


def test_errors_carry_messages():
    with pytest.raises(errors.CapacityError, match="too small"):
        raise errors.CapacityError("destination too small")
