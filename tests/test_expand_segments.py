"""Segmented distribute-expand: the plan's ``expand_segment`` windows are
public, their tasks dispatch independently, and the reassembled output is
bit-identical to the whole-cell path — across engines, executors, padding
modes, and adversarial data shapes (zero-output cells, one-segment cells,
maximally skewed cells)."""

from __future__ import annotations

import random
import time

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core.padding import check_target_m
from repro.engines import get_engine
from repro.errors import InputError
from repro.plan.executors import (
    AsyncExecutor,
    InlineExecutor,
    PoolExecutor,
    ShuffleExecutor,
    _Immediate,
)
from repro.shard.join import ShardedJoinStats, sharded_oblivious_join
from repro.vector.join import vector_join_segment, vector_oblivious_join

#: Grid-cell-shaped fixtures the sharded sweep runs: skew (every row in one
#: group), disjoint keys (every grid cell's real output is zero), an empty
#: side, and a mixed catalogue.
DATASETS = {
    "skewed": (
        [(0, v) for v in range(7)],
        [(0, v) for v in range(6)],
    ),
    "disjoint": (
        [(k, k) for k in range(6)],
        [(k + 10, k) for k in range(6)],
    ),
    "empty-right": ([(0, 1), (1, 2), (2, 3)], []),
    "mixed": (
        [(0, 1), (0, 2), (1, 3), (3, 4), (3, 5), (3, 6), (4, 7)],
        [(0, 9), (0, 8), (3, 7), (3, 6), (3, 5), (5, 4)],
    ),
}


# -- the segment kernel: windows concatenate to the whole cell ----------------


@st.composite
def _cell(draw):
    """One grid cell's inputs plus a public window partition of its output."""
    n1 = draw(st.integers(0, 8))
    n2 = draw(st.integers(0, 8))
    # Keys drawn from a 3-symbol alphabet force heavy group skew at these
    # sizes; values stay distinct enough to catch ordering bugs.
    left = [
        (draw(st.integers(0, 2)), draw(st.integers(0, 9))) for _ in range(n1)
    ]
    right = [
        (draw(st.integers(0, 2)), draw(st.integers(0, 9))) for _ in range(n2)
    ]
    target = check_target_m(n1 * n2, n1, n2) if n1 and n2 else 0
    cut_count = draw(st.integers(0, 4))
    cuts = draw(
        st.lists(
            st.integers(0, target), min_size=cut_count, max_size=cut_count
        )
    )
    bounds = sorted([0, *cuts, target])
    windows = list(zip(bounds, bounds[1:]))
    return left, right, target, windows


@settings(max_examples=60, deadline=None)
@given(_cell())
@example(
    (
        [(0, v) for v in range(6)],  # maximal skew: one group both sides
        [(0, v) for v in range(6)],
        36,
        [(0, 1), (1, 36)],  # includes a one-row and a nearly-whole window
    )
)
@example(([(1, 1)], [(2, 2)], 1, [(0, 0), (0, 1), (1, 1)]))  # zero output
def test_segment_windows_concatenate_to_the_whole_cell(cell):
    """The oracle: vector_join_segment over any public partition of
    ``[0, m)`` concatenates to the whole-cell padded keyed output,
    bit for bit — empty windows included."""
    left, right, target, windows = cell
    whole, _ = vector_oblivious_join(
        left, right, with_keys=True, target_m=target
    )
    parts = [
        vector_join_segment(left, right, target, lo, hi)[0]
        for lo, hi in windows
    ]
    stitched = (
        np.concatenate(parts) if parts else np.zeros((0, 3), dtype=np.int64)
    )
    assert stitched.tobytes() == whole.tobytes()


def test_segment_kernel_validates_its_window_and_target():
    left, right = DATASETS["mixed"]
    target = len(left) * len(right)
    with pytest.raises(InputError, match="padded target_m"):
        vector_join_segment(left, right, None, 0, 1)
    with pytest.raises(InputError, match="outside the padded output"):
        vector_join_segment(left, right, target, 0, target + 1)
    with pytest.raises(InputError, match="outside the padded output"):
        vector_join_segment(left, right, target, -1, 2)


# -- the sharded driver: segmented == whole-cell, every substrate -------------


@pytest.mark.parametrize(
    "executor",
    [
        pytest.param(None, id="default"),
        pytest.param(InlineExecutor(), id="inline"),
        pytest.param(ShuffleExecutor(seed=3), id="shuffle"),
    ],
)
@pytest.mark.parametrize("segments", [None, 1, 2, 5])
def test_sharded_segmented_join_matches_the_vector_oracle(executor, segments):
    for name, (left, right) in DATASETS.items():
        target = check_target_m(
            max(len(left) * len(right), 1), len(left), len(right)
        )
        oracle, _ = vector_oblivious_join(left, right, target_m=target)
        stats = ShardedJoinStats()
        pairs, stats = sharded_oblivious_join(
            left,
            right,
            shards=3,
            stats=stats,
            target_m=target,
            executor=executor,
            expand_segments=segments,
        )
        assert pairs.tobytes() == oracle.tobytes(), (name, segments)
        # The executed plan carries the segment nodes the grid dispatched.
        nodes = stats.plan.nodes_by_op("expand_segment")
        assert len(nodes) == len(stats.task_m)
        if segments is not None:
            assert stats.plan.shape("segments") == segments


@pytest.mark.parametrize(
    "executor",
    [
        pytest.param(PoolExecutor(workers=2), id="pool"),
        pytest.param(AsyncExecutor(workers=2), id="async"),
    ],
)
def test_segmented_join_publishes_runs_on_remote_executors(executor):
    """Shared-memory substrates exercise the publish path: each segment
    task's sub-run crosses back as a ref tree, is adopted as a tournament
    leaf, and the output stays bit-identical."""
    left, right = DATASETS["skewed"]
    target = len(left) * len(right)
    oracle, _ = vector_oblivious_join(left, right, target_m=target)
    for segments in (None, 3):
        pairs, _ = sharded_oblivious_join(
            left,
            right,
            shards=2,
            target_m=target,
            executor=executor,
            expand_segments=segments,
        )
        assert pairs.tobytes() == oracle.tobytes()


@pytest.mark.parametrize("padding,bound", [("worst_case", None), ("bounded", 50)])
def test_engine_level_segmented_join_matches_the_vector_engine(padding, bound):
    left, right = DATASETS["mixed"]
    reference = get_engine("vector", padding=padding, bound=bound).join(
        left, right
    )
    engine = get_engine(
        "sharded",
        shards=2,
        padding=padding,
        bound=bound,
        expand_segments=2,
    )
    assert engine.join(left, right).pairs == reference.pairs


def test_revealed_mode_never_segments():
    """Unpadded cell sizes are data-dependent; splitting them would leak a
    data-dependent boundary, so revealed plans carry no segment nodes and
    the driver runs whole cells."""
    left, right = DATASETS["mixed"]
    stats = ShardedJoinStats()
    sharded_oblivious_join(left, right, shards=3, stats=stats)
    assert stats.plan.nodes_by_op("expand_segment") == []
    assert len(stats.task_m) == 9  # one whole-cell task per grid cell


# -- acceptance: >= 2 segments of one skewed cell dispatch separately ---------


class RecordingExecutor:
    """Inline executor recording every dispatch by task kind (no publish)."""

    name = "recording"
    remote_submit = False

    def __init__(self) -> None:
        self.events: list[tuple[str, str]] = []

    def map(self, task, payloads):
        return [task(payload) for payload in payloads]

    def imap(self, task, payloads):
        for index, payload in enumerate(list(payloads)):
            result = task(payload)
            self.events.append(("complete", task.__name__))
            yield index, result

    def submit(self, task, payload):
        self.events.append(("submit", task.__name__))
        return _Immediate(task(payload))


def test_skewed_cell_expansion_dispatches_as_separate_segment_tasks():
    """The tentpole acceptance pin: a maximally skewed cell's expansion
    runs as >= 2 independent executor tasks — one per plan window, no
    whole-cell barrier — and the output is bit-identical to the
    unsegmented (whole-cell vector) path."""
    left = [(0, v) for v in range(8)]
    right = [(0, v) for v in range(8)]
    target = 64
    oracle, _ = vector_oblivious_join(left, right, target_m=target)
    executor = RecordingExecutor()
    stats = ShardedJoinStats()
    pairs, stats = sharded_oblivious_join(
        left,
        right,
        shards=2,
        stats=stats,
        target_m=target,
        executor=executor,
        expand_segments=4,
    )
    assert pairs.tobytes() == oracle.tobytes()
    completions = [
        task for kind, task in executor.events if kind == "complete"
    ]
    # Every cell is a 4x4 sub-join bounded at 16, so each splits into the
    # requested 4 windows: 16 segment tasks, 4 of them for cell (0, 0).
    assert completions.count("_expand_segment_task") == 16
    cell_nodes = [
        node
        for node in stats.plan.nodes_by_op("expand_segment")
        if node.attr("cell") == (0, 0)
    ]
    assert len(cell_nodes) >= 2
    windows = [(n.attr("lo"), n.attr("hi")) for n in cell_nodes]
    assert windows == [(0, 4), (4, 8), (8, 12), (12, 16)]


# -- satellite: phase accounting partitions the wall clock --------------------


@pytest.mark.parametrize(
    "executor",
    [
        pytest.param(InlineExecutor(), id="inline"),
        pytest.param(ShuffleExecutor(seed=1), id="shuffle"),
        pytest.param(PoolExecutor(workers=2), id="pool"),
        pytest.param(AsyncExecutor(workers=2), id="async"),
    ],
)
@pytest.mark.parametrize("target", [None, 7 * 6], ids=["revealed", "padded"])
def test_phase_seconds_partition_the_wall_clock_on_every_executor(
    executor, target
):
    """The accounting contract: the five phase keys are exactly
    {partition, presort, presort_merge, tasks, merge}, every phase is
    non-negative, and their sum never exceeds the measured wall time —
    i.e. no phase double-attributes the tournament fold the way the
    presort once did on eager executors."""
    left, right = DATASETS["skewed"]
    stats = ShardedJoinStats()
    start = time.perf_counter()
    sharded_oblivious_join(
        left, right, shards=2, stats=stats, target_m=target, executor=executor
    )
    wall = time.perf_counter() - start
    assert set(stats.seconds_by_phase) == {
        "partition",
        "presort",
        "presort_merge",
        "tasks",
        "merge",
    }
    assert all(seconds >= 0.0 for seconds in stats.seconds_by_phase.values())
    assert stats.total_seconds <= wall + 1e-6


# -- randomized end-to-end sweep (seeded, executor-light) ---------------------


def test_randomized_segment_sweep_is_bit_identical():
    rng = random.Random(29)
    for trial in range(8):
        n1, n2 = rng.randrange(0, 12), rng.randrange(0, 12)
        left = [(rng.randrange(4), rng.randrange(8)) for _ in range(n1)]
        right = [(rng.randrange(4), rng.randrange(8)) for _ in range(n2)]
        target = check_target_m(max(n1 * n2, 1), n1, n2)
        oracle, _ = vector_oblivious_join(left, right, target_m=target)
        for segments in (None, 1, rng.randrange(2, 7)):
            pairs, _ = sharded_oblivious_join(
                left,
                right,
                shards=2,
                target_m=target,
                executor=ShuffleExecutor(seed=trial),
                expand_segments=segments,
            )
            assert pairs.tobytes() == oracle.tobytes(), (trial, segments)
