"""Property-based validation of the join against the oracle."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hash_join import join_multiset
from repro.core.join import oblivious_join
from repro.vector.join import vector_oblivious_join

from conftest import pairs_strategy


@given(left=pairs_strategy(max_rows=12), right=pairs_strategy(max_rows=12))
@settings(max_examples=60, deadline=None)
def test_join_matches_oracle(left, right):
    result = oblivious_join(left, right)
    assert sorted(result.pairs) == join_multiset(left, right)


@given(left=pairs_strategy(max_rows=12), right=pairs_strategy(max_rows=12))
@settings(max_examples=60, deadline=None)
def test_m_equals_sum_of_group_products(left, right):
    c1 = Counter(j for j, _ in left)
    c2 = Counter(j for j, _ in right)
    expected = sum(c1[j] * c2[j] for j in c1.keys() & c2.keys())
    assert oblivious_join(left, right).m == expected


@given(left=pairs_strategy(max_rows=10), right=pairs_strategy(max_rows=10))
@settings(max_examples=40, deadline=None)
def test_join_is_symmetric_up_to_pair_swap(left, right):
    forward = Counter(oblivious_join(left, right).pairs)
    backward = Counter((d1, d2) for d2, d1 in oblivious_join(right, left).pairs)
    assert forward == backward


@given(left=pairs_strategy(max_rows=10), right=pairs_strategy(max_rows=10))
@settings(max_examples=40, deadline=None)
def test_output_follows_group_then_sorted_entry_order(left, right):
    """Output order: groups ascend by j; within a group, pairs enumerate the
    (j, d)-sorted T1 entries crossed with the (j, d)-sorted T2 entries."""
    from collections import defaultdict

    group1 = defaultdict(list)
    group2 = defaultdict(list)
    for j, d in left:
        group1[j].append(d)
    for j, d in right:
        group2[j].append(d)
    expected = []
    for j in sorted(group1.keys() & group2.keys()):
        for d1 in sorted(group1[j]):
            for d2 in sorted(group2[j]):
                expected.append((d1, d2))
    assert oblivious_join(left, right).pairs == expected


@given(left=pairs_strategy(max_rows=14), right=pairs_strategy(max_rows=14))
@settings(max_examples=50, deadline=None)
def test_traced_and_vector_engines_agree_exactly(left, right):
    traced = oblivious_join(left, right).pairs
    vector, _ = vector_oblivious_join(left, right)
    assert traced == [tuple(p) for p in vector.tolist()]


@given(data=pairs_strategy(max_rows=10))
@settings(max_examples=30, deadline=None)
def test_self_join_square_counts(data):
    """|T ⋈ T| = sum of squared group sizes."""
    c = Counter(j for j, _ in data)
    expected = sum(v * v for v in c.values())
    assert oblivious_join(data, data).m == expected
