"""The §3.4 level II -> level III transformation."""

import random

import pytest

from repro.obliv.routing import largest_hop
from repro.typesys import check_program, run_program
from repro.typesys.lang import (
    ArrayRead,
    ArrayWrite,
    Assign,
    BinOp,
    Const,
    For,
    If,
    Program,
    Skip,
    Var,
    seq,
)
from repro.typesys.labels import Label
from repro.typesys.programs import WELL_TYPED, routing_network, fill_down
from repro.typesys.transform import (
    TransformError,
    count_secret_branches,
    is_level3,
    to_level3,
)

L, H = Label.L, Label.H


def _paper_example() -> Program:
    """§3.4's worked example: two branches assigning different variables."""
    return Program(
        "example34",
        variables={"secret": H, "x1": H, "x2": H, "x3": H,
                   "y1": H, "y3": H, "z1": H, "z2": H},
        arrays={},
        body=seq(
            If(
                Var("secret"),
                seq(Assign("x1", Var("y1")), Assign("x3", Var("y3"))),
                seq(Assign("x1", Var("z1")), Assign("x2", Var("z2"))),
            )
        ),
    )


def _run_both(program, variables, arrays):
    transformed = to_level3(program)
    t1, a1, v1 = run_program(program, dict(variables), {k: list(v) for k, v in arrays.items()})
    t2, a2, v2 = run_program(transformed, dict(variables), {k: list(v) for k, v in arrays.items()})
    return (t1, a1, v1), (t2, a2, v2), transformed


def test_paper_example_both_branches():
    program = _paper_example()
    for secret in (0, 1):
        env = {"secret": secret, "x1": 0, "x2": 7, "x3": 8,
               "y1": 10, "y3": 30, "z1": 40, "z2": 50}
        (_, _, v1), (_, _, v2), transformed = _run_both(program, env, {})
        for name in ("x1", "x2", "x3"):
            assert v1[name] == v2[name], (secret, name)
    assert is_level3(transformed)
    assert not is_level3(program)


def test_transformed_program_is_well_typed():
    transformed = to_level3(_paper_example())
    check_program(transformed)  # must not raise


def test_count_secret_branches():
    assert count_secret_branches(_paper_example()) == 1
    assert count_secret_branches(fill_down()) == 1
    assert count_secret_branches(to_level3(fill_down())) == 0


def test_public_guards_are_preserved():
    program = Program(
        "pub",
        variables={"n": L, "x": H},
        arrays={"A": H},
        body=seq(
            If(
                BinOp(">", Var("n"), Const(2)),
                seq(ArrayRead("x", "A", Const(0))),
                seq(ArrayRead("x", "A", Const(0))),
            )
        ),
    )
    transformed = to_level3(program)
    assert any(isinstance(s, If) for s in transformed.body)
    assert is_level3(transformed)  # L-guarded branches don't count


def test_branch_with_array_writes():
    program = Program(
        "swap",
        variables={"c": H, "y": H, "z": H},
        arrays={"A": H},
        body=seq(
            ArrayRead("y", "A", Const(0)),
            ArrayRead("z", "A", Const(1)),
            If(
                Var("c"),
                seq(ArrayWrite("A", Const(0), Var("z")),
                    ArrayWrite("A", Const(1), Var("y"))),
                seq(ArrayWrite("A", Const(0), Var("y")),
                    ArrayWrite("A", Const(1), Var("z"))),
            ),
        ),
    )
    for c, expected in ((1, [9, 4]), (0, [4, 9])):
        (_, a1, _), (_, a2, _), transformed = _run_both(
            program, {"c": c, "y": 0, "z": 0}, {"A": [4, 9]}
        )
        assert a1["A"] == a2["A"] == expected
        assert is_level3(transformed)


def test_reads_inside_branches_share_temps():
    program = Program(
        "readbr",
        variables={"c": H, "x": H, "y": H},
        arrays={"A": H},
        body=seq(
            If(
                Var("c"),
                seq(ArrayRead("x", "A", Const(0)),
                    ArrayWrite("A", Const(1), BinOp("+", Var("x"), Const(1)))),
                seq(ArrayRead("y", "A", Const(0)),
                    ArrayWrite("A", Const(1), BinOp("*", Var("y"), Const(2)))),
            )
        ),
    )
    for c, expected in ((1, 6), (0, 10)):
        (_, a1, _), (_, a2, _), _ = _run_both(
            program, {"c": c, "x": 0, "y": 0}, {"A": [5, 0]}
        )
        assert a1["A"][1] == a2["A"][1] == expected


def test_transform_preserves_traces_exactly():
    """Level III must not change the public trace, only remove branching."""
    for make in (fill_down, routing_network):
        program = make()
        transformed = to_level3(program)
        if make is fill_down:
            variables = {"m": 6}
            arrays = {"A": [1, 0, 0, 2, 0, 0], "NUL": [0, 1, 1, 0, 1, 1]}
        else:
            m = 8
            jstart = largest_hop(m)
            variables = {"m": m, "jstart": jstart, "nphases": jstart.bit_length()}
            arrays = {"A": [5, 6, 7, 0, 0, 0, 0, 0], "F": [2, 4, 6, -1, -1, -1, -1, -1]}
        t1, a1, _ = run_program(program, dict(variables), {k: list(v) for k, v in arrays.items()})
        t2, a2, _ = run_program(transformed, dict(variables), {k: list(v) for k, v in arrays.items()})
        assert t1 == t2, make.__name__
        assert a1 == a2, make.__name__


@pytest.mark.parametrize("make", WELL_TYPED, ids=lambda f: f.__name__)
def test_all_kernels_transform_to_level3(make):
    program = make()
    transformed = to_level3(program)
    assert is_level3(transformed)
    check_program(transformed)


def test_routing_network_level3_end_to_end():
    """Randomised equivalence of the transformed routing network."""
    program = routing_network()
    transformed = to_level3(program)
    rng = random.Random(42)
    m = 16
    jstart = largest_hop(m)
    variables = {"m": m, "jstart": jstart, "nphases": jstart.bit_length()}
    for _ in range(10):
        k = rng.randrange(1, m)
        targets = sorted(rng.sample(range(m), k))
        arrays = {
            "A": [rng.randrange(100) for _ in range(k)] + [0] * (m - k),
            "F": targets + [-1] * (m - k),
        }
        _, a1, _ = run_program(program, dict(variables), {k_: list(v) for k_, v in arrays.items()})
        _, a2, _ = run_program(transformed, dict(variables), {k_: list(v) for k_, v in arrays.items()})
        assert a1["A"] == a2["A"]


def test_nested_secret_control_flow_rejected():
    program = Program(
        "nested",
        variables={"s": H, "n": L, "x": H},
        arrays={"A": H},
        body=seq(
            If(
                Var("s"),
                seq(For("i", Var("n"), seq(ArrayRead("x", "A", Var("i"))))),
                seq(For("i", Var("n"), seq(ArrayRead("x", "A", Var("i"))))),
            )
        ),
    )
    with pytest.raises(TransformError, match="nested control flow"):
        to_level3(program)


def test_nested_secret_ifs_flatten():
    """An inner secret If is eliminated first, so the outer sees straight
    line code — constant branching depth composes."""
    program = Program(
        "nested_ifs",
        variables={"s": H, "t": H, "x": H},
        arrays={},
        body=seq(
            If(
                Var("s"),
                seq(If(Var("t"), seq(Assign("x", Const(1))), seq(Assign("x", Const(2))))),
                seq(Assign("x", Const(3))),
            )
        ),
    )
    transformed = to_level3(program)
    assert is_level3(transformed)
    for s in (0, 1):
        for t in (0, 1):
            env = {"s": s, "t": t, "x": 0}
            _, _, v1 = run_program(program, dict(env), {})
            _, _, v2 = run_program(transformed, dict(env), {})
            assert v1["x"] == v2["x"], (s, t)


def test_skip_branch_handled():
    program = Program(
        "skipelse",
        variables={"s": H, "x": H},
        arrays={},
        body=seq(If(Var("s"), seq(Assign("x", Const(5))), seq(Skip()))),
    )
    transformed = to_level3(program)
    assert is_level3(transformed)
    for s, expected in ((1, 5), (0, 9)):
        _, _, v = run_program(transformed, {"s": s, "x": 9}, {})
        assert v["x"] == expected
