"""Unit tests for the shard subsystem's primitives.

Partitioner (plans are functions of ``(n, k)`` only), bitonic merge
(sorted-run reassembly + comparator accounting), and the executor
(pool vs inline equivalence).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InputError
from repro.shard.executor import check_workers, run_tasks
from repro.shard.merge import (
    bitonic_merge_two,
    merge_comparator_count,
    oblivious_merge_runs,
)
from repro.shard.partition import (
    partition_pairs,
    partition_plan,
    shard_capacity,
    shard_counts,
)

# -- partitioner -------------------------------------------------------------


@pytest.mark.parametrize("n,k", [(0, 1), (0, 3), (1, 1), (7, 3), (8, 4), (5, 8)])
def test_partition_plan_shapes(n, k):
    capacity, counts = partition_plan(n, k)
    assert len(counts) == k
    assert sum(counts) == n
    assert capacity == -(-n // k)
    assert all(count <= capacity for count in counts)
    # Counts differ by at most one: "k equal shards".
    assert max(counts) - min(counts) <= 1


def test_partition_plan_is_data_independent():
    # Any two same-size tables — identical plan, whatever the data.
    assert partition_plan(10, 3) == (4, (4, 3, 3))
    uniform = partition_pairs([(i, i) for i in range(10)], 3)
    skewed = partition_pairs([(0, 7)] * 10, 3)
    assert [p.real for p in uniform] == [p.real for p in skewed] == [4, 3, 3]
    assert [p.capacity for p in uniform] == [p.capacity for p in skewed] == [4, 4, 4]


def test_partition_is_positional_and_padded():
    parts = partition_pairs([(i, 10 * i) for i in range(5)], 2)
    assert parts[0].rows().tolist() == [[0, 0], [1, 10], [2, 20]]
    assert parts[1].rows().tolist() == [[3, 30], [4, 40]]
    # Padding cells exist and are zero (uniform message shape).
    assert parts[1].j.tolist() == [3, 4, 0]
    assert parts[1].d.tolist() == [30, 40, 0]


def test_partition_validates_inputs():
    with pytest.raises(InputError):
        shard_counts(4, 0)
    with pytest.raises(InputError):
        shard_capacity(-1, 2)
    with pytest.raises(InputError):
        partition_pairs([(1, 2, 3)], 2)


# -- oblivious merge ---------------------------------------------------------


def _run(values: list[tuple[int, int]]) -> dict[str, np.ndarray]:
    array = np.asarray(sorted(values), dtype=np.int64).reshape(len(values), 2)
    return {"a": array[:, 0].copy(), "b": array[:, 1].copy()}


@given(
    chunks=st.lists(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
            ),
            max_size=12,
        ),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=60, deadline=None)
def test_merge_tournament_equals_global_sort(chunks):
    runs = [_run(chunk) for chunk in chunks]
    counter = [0]
    merged = oblivious_merge_runs(runs, [("a", True), ("b", True)], counter=counter)
    expected = sorted(pair for chunk in chunks for pair in chunk)
    got = list(zip(merged["a"].tolist(), merged["b"].tolist()))
    assert got == expected
    # Comparator count is a pure function of the run lengths.
    assert counter[0] == merge_comparator_count([len(c) for c in chunks])


def test_merge_two_handles_empty_runs():
    a = _run([(1, 1), (3, 3)])
    empty = _run([])
    assert bitonic_merge_two(a, empty, [("a", True)])["a"].tolist() == [1, 3]
    assert bitonic_merge_two(empty, a, [("a", True)])["a"].tolist() == [1, 3]


def test_merge_respects_descending_keys():
    a = _run([(1, 0), (3, 0)])
    b = _run([(2, 0), (5, 0)])
    for run in (a, b):
        run["a"] = run["a"][::-1].copy()
    merged = bitonic_merge_two(a, b, [("a", False)])
    assert merged["a"].tolist() == [5, 3, 2, 1]


# -- executor ----------------------------------------------------------------


def _double(x):
    return x * 2


def test_run_tasks_inline_and_pool_agree():
    payloads = list(range(6))
    inline = run_tasks(_double, payloads, workers=1)
    pooled = run_tasks(_double, payloads, workers=2)
    assert inline == pooled == [0, 2, 4, 6, 8, 10]


def test_run_tasks_preserves_payload_order():
    assert run_tasks(_double, [3, 1, 2], workers=1) == [6, 2, 4]


def test_worker_validation():
    with pytest.raises(InputError):
        check_workers(0)
    with pytest.raises(InputError):
        run_tasks(_double, [1], workers=-1)
