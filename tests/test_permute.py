"""Feistel PRP used by the probabilistic distribution variant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InputError
from repro.obliv.permute import FeistelPRP


@given(st.integers(min_value=1, max_value=300))
@settings(max_examples=40, deadline=None)
def test_forward_is_a_bijection(size):
    prp = FeistelPRP(size, key=b"fixed-key")
    image = {prp.forward(i) for i in range(size)}
    assert image == set(range(size))


@given(st.integers(min_value=1, max_value=300))
@settings(max_examples=40, deadline=None)
def test_inverse_undoes_forward(size):
    prp = FeistelPRP(size, key=b"fixed-key")
    for i in range(size):
        assert prp.inverse(prp.forward(i)) == i


def test_different_keys_give_different_permutations():
    a = FeistelPRP(64, key=b"a").permutation()
    b = FeistelPRP(64, key=b"b").permutation()
    assert a != b


def test_permutation_is_deterministic_per_key():
    assert FeistelPRP(50, key=b"k").permutation() == FeistelPRP(50, key=b"k").permutation()


def test_domain_bounds_enforced():
    prp = FeistelPRP(10, key=b"k")
    with pytest.raises(InputError):
        prp.forward(10)
    with pytest.raises(InputError):
        prp.inverse(-1)


def test_tiny_domain():
    prp = FeistelPRP(1, key=b"k")
    assert prp.forward(0) == 0
    assert prp.inverse(0) == 0


def test_round_count_validated():
    with pytest.raises(InputError):
        FeistelPRP(8, key=b"k", rounds=2)


def test_size_validated():
    with pytest.raises(InputError):
        FeistelPRP(0)


def test_non_power_of_two_domain_cycle_walks():
    prp = FeistelPRP(100, key=b"walk")
    image = sorted(prp.forward(i) for i in range(100))
    assert image == list(range(100))
