"""Oblivious DISTINCT / UNION operators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.distinct import oblivious_distinct, oblivious_union
from repro.memory.monitor import run_hashed


def test_distinct_basic():
    assert oblivious_distinct([3, 1, 3, 2, 1]) == [1, 2, 3]


def test_distinct_empty_and_singleton():
    assert oblivious_distinct([]) == []
    assert oblivious_distinct([7]) == [7]


def test_distinct_all_equal():
    assert oblivious_distinct([5] * 9) == [5]


@given(st.lists(st.integers(min_value=-50, max_value=50), max_size=40))
@settings(max_examples=50, deadline=None)
def test_distinct_matches_set(values):
    assert oblivious_distinct(values) == sorted(set(values))


def test_union_merges_and_dedups():
    assert oblivious_union([1, 2, 2], [2, 3]) == [1, 2, 3]


@given(
    st.lists(st.integers(min_value=0, max_value=30), max_size=20),
    st.lists(st.integers(min_value=0, max_value=30), max_size=20),
)
@settings(max_examples=40, deadline=None)
def test_union_matches_set_union(a, b):
    assert oblivious_union(a, b) == sorted(set(a) | set(b))


def test_distinct_trace_depends_only_on_n_and_count():
    def run(values):
        return run_hashed(lambda t: oblivious_distinct(values, tracer=t))[0]

    # Same n = 6, same distinct count 3, different value structure.
    assert run([1, 1, 2, 2, 3, 3]) == run([9, 5, 5, 5, 5, 7])
    # Different distinct count -> different trace (the deliberate reveal).
    assert run([1, 1, 2, 2, 3, 3]) != run([1, 1, 1, 1, 1, 2])
