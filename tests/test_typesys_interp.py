"""The mini-language interpreter and kernel semantics."""

import pytest

from repro.errors import InputError
from repro.obliv.routing import largest_hop
from repro.typesys import (
    ArrayRead,
    ArrayWrite,
    Assign,
    BinOp,
    Const,
    For,
    If,
    Program,
    Var,
    run_program,
    seq,
)
from repro.typesys.programs import (
    align_index_pass,
    fill_dimensions_forward,
    fill_down,
    routing_network,
    transposition_sort,
)


def test_arithmetic_and_assignment():
    program = Program(
        "t", {}, {},
        seq(Assign("x", BinOp("+", Const(2), Const(3))),
            Assign("y", BinOp("*", Var("x"), Var("x")))),
    )
    _, _, variables = run_program(program)
    assert variables == {"x": 5, "y": 25}


def test_array_io_and_trace():
    program = Program(
        "t", {}, {},
        seq(ArrayRead("x", "A", Const(1)),
            ArrayWrite("A", Const(0), Var("x"))),
    )
    trace, arrays, _ = run_program(program, arrays={"A": [7, 9]})
    assert arrays["A"] == [9, 9]
    assert trace == [("R", "A", 1), ("W", "A", 0)]


def test_conditional_execution():
    program = Program(
        "t", {}, {},
        seq(If(Var("c"), seq(Assign("x", Const(1))), seq(Assign("x", Const(2))))),
    )
    _, _, v = run_program(program, variables={"c": 1})
    assert v["x"] == 1
    _, _, v = run_program(program, variables={"c": 0})
    assert v["x"] == 2


def test_for_loop_iterates():
    program = Program(
        "t", {}, {},
        seq(Assign("acc", Const(0)),
            For("i", Var("n"), seq(Assign("acc", BinOp("+", Var("acc"), Var("i")))))),
    )
    _, _, v = run_program(program, variables={"n": 5})
    assert v["acc"] == 10


def test_out_of_range_access_raises():
    program = Program("t", {}, {}, seq(ArrayRead("x", "A", Const(5))))
    with pytest.raises(InputError, match="out of range"):
        run_program(program, arrays={"A": [1]})


def test_unbound_variable_raises():
    program = Program("t", {}, {}, seq(Assign("x", Var("nope"))))
    with pytest.raises(InputError, match="unbound"):
        run_program(program)


def test_fill_dimensions_kernel_matches_figure2():
    j = [0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 2]
    tid = [1, 1, 2, 2, 2, 1, 1, 1, 1, 2, 2, 2]
    _, arrays, _ = run_program(
        fill_dimensions_forward(),
        variables={"n": len(j)},
        arrays={"J": j, "TID": tid, "A1": [0] * len(j), "A2": [0] * len(j)},
    )
    # Boundary entries (last of each group) hold the true dimensions.
    assert (arrays["A1"][4], arrays["A2"][4]) == (2, 3)
    assert (arrays["A1"][10], arrays["A2"][10]) == (4, 2)
    assert (arrays["A1"][11], arrays["A2"][11]) == (0, 1)


def test_routing_kernel_distributes():
    m = 16
    targets = [1, 4, 7, 8, 15]
    values = [10, 20, 30, 40, 50]
    a = values + [0] * (m - len(values))
    f = targets + [-1] * (m - len(targets))
    jstart = largest_hop(m)
    _, arrays, _ = run_program(
        routing_network(),
        variables={"m": m, "jstart": jstart, "nphases": jstart.bit_length()},
        arrays={"A": a, "F": f},
    )
    for value, target in zip(values, targets):
        assert arrays["A"][target] == value


def test_fill_down_kernel():
    _, arrays, _ = run_program(
        fill_down(),
        variables={"m": 6},
        arrays={"A": [5, 0, 0, 9, 0, 0], "NUL": [0, 1, 1, 0, 1, 1]},
    )
    assert arrays["A"] == [5, 5, 5, 9, 9, 9]
    assert arrays["NUL"] == [0] * 6


def test_align_kernel_computes_transposed_indices():
    # One group, a1 = 2, a2 = 3: block of 6.
    _, arrays, _ = run_program(
        align_index_pass(),
        variables={"m": 6},
        arrays={
            "J": [0] * 6,
            "A1": [2] * 6,
            "A2": [3] * 6,
            "II": [0] * 6,
        },
    )
    assert arrays["II"] == [0, 3, 1, 4, 2, 5]


def test_transposition_sort_kernel_sorts():
    keys = [5, 3, 8, 1, 9, 2, 7, 0]
    payload = list(range(8))
    _, arrays, _ = run_program(
        transposition_sort(),
        variables={"n": 8},
        arrays={"K": list(keys), "P": payload},
    )
    assert arrays["K"] == sorted(keys)
    expected_payload = [p for _, p in sorted(zip(keys, range(8)))]
    assert arrays["P"] == expected_payload
