"""Schemas and dictionary encoding."""

import pytest

from repro.db.encoding import DictionaryEncoder
from repro.db.schema import Column, Schema
from repro.errors import InputError, SchemaError


def test_schema_of_shorthand():
    schema = Schema.of("id:int", "name:str", "qty")
    assert schema.names() == ["id", "name", "qty"]
    assert schema.column("qty").type == "int"  # default


def test_duplicate_columns_rejected():
    with pytest.raises(SchemaError, match="duplicate"):
        Schema.of("a", "a")


def test_unknown_column_type_rejected():
    with pytest.raises(SchemaError, match="unsupported type"):
        Column("x", "float")


def test_empty_column_name_rejected():
    with pytest.raises(SchemaError):
        Column("")


def test_index_lookup_and_error():
    schema = Schema.of("a", "b")
    assert schema.index("b") == 1
    with pytest.raises(SchemaError, match="no column"):
        schema.index("z")


def test_validate_row_checks_arity_and_types():
    schema = Schema.of("id:int", "name:str")
    schema.validate_row((1, "x"))
    with pytest.raises(SchemaError, match="arity"):
        schema.validate_row((1,))
    with pytest.raises(SchemaError, match="expects int"):
        schema.validate_row(("1", "x"))


def test_concat_prefixes_clashes():
    left = Schema.of("id:int", "name:str")
    right = Schema.of("id:int", "qty:int")
    joined = left.concat(right, prefixes=("l", "r"))
    assert joined.names() == ["l.id", "name", "r.id", "qty"]


def test_concat_without_clash_keeps_names():
    joined = Schema.of("a").concat(Schema.of("b"), prefixes=("l", "r"))
    assert joined.names() == ["a", "b"]


def test_schema_equality():
    assert Schema.of("a:int") == Schema.of("a:int")
    assert Schema.of("a:int") != Schema.of("a:str")


def test_encoder_assigns_dense_codes():
    enc = DictionaryEncoder()
    assert enc.encode("x") == 0
    assert enc.encode("y") == 1
    assert enc.encode("x") == 0
    assert len(enc) == 2


def test_encoder_roundtrip():
    enc = DictionaryEncoder()
    values = ["apple", "pear", "apple", 42, ("t", 1)]
    codes = enc.encode_many(values)
    assert [enc.decode(c) for c in codes] == values


def test_encoder_unknown_code_rejected():
    enc = DictionaryEncoder()
    with pytest.raises(InputError):
        enc.decode(0)


def test_encoder_contains():
    enc = DictionaryEncoder()
    enc.encode("v")
    assert "v" in enc and "w" not in enc
