"""Soundness of the type system, checked empirically.

For every well-typed kernel: running it on different secret (H) data of the
same shape must produce identical concrete traces.  This is the
memory-trace-obliviousness theorem of Liu et al. instantiated on our
programs — the type-level guarantee validated by the interpreter.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obliv.routing import largest_hop
from repro.typesys import check_program, event_count, run_program
from repro.typesys.programs import (
    align_index_pass,
    fill_dimensions_forward,
    fill_down,
    routing_network,
    transposition_sort,
)


@given(st.integers(min_value=0, max_value=2**32))
@settings(max_examples=25, deadline=None)
def test_fill_dimensions_trace_depends_only_on_n(seed):
    rng = random.Random(seed)
    n = 12
    traces = []
    for _ in range(2):
        j = sorted(rng.randrange(4) for _ in range(n))
        tid = [rng.choice([1, 2]) for _ in range(n)]
        trace, _, _ = run_program(
            fill_dimensions_forward(),
            variables={"n": n},
            arrays={"J": j, "TID": tid, "A1": [0] * n, "A2": [0] * n},
        )
        traces.append(trace)
    assert traces[0] == traces[1]


@given(st.integers(min_value=0, max_value=2**32))
@settings(max_examples=25, deadline=None)
def test_routing_trace_depends_only_on_m(seed):
    rng = random.Random(seed)
    m = 16
    jstart = largest_hop(m)
    traces = []
    for _ in range(2):
        k = rng.randrange(1, m + 1)
        targets = sorted(rng.sample(range(m), k))
        f = targets + [-1] * (m - k)
        trace, _, _ = run_program(
            routing_network(),
            variables={"m": m, "jstart": jstart, "nphases": jstart.bit_length()},
            arrays={"A": list(range(m)), "F": f},
        )
        traces.append(trace)
    assert traces[0] == traces[1]


@given(st.lists(st.integers(min_value=-99, max_value=99), min_size=8, max_size=8))
@settings(max_examples=25, deadline=None)
def test_transposition_sort_trace_is_fixed(keys):
    baseline, _, _ = run_program(
        transposition_sort(),
        variables={"n": 8},
        arrays={"K": list(range(8)), "P": list(range(8))},
    )
    trace, _, _ = run_program(
        transposition_sort(),
        variables={"n": 8},
        arrays={"K": keys, "P": list(range(8))},
    )
    assert trace == baseline


@pytest.mark.parametrize(
    "make,variables,arrays",
    [
        (
            fill_down,
            {"m": 6},
            {"A": [1, 0, 0, 2, 0, 0], "NUL": [0, 1, 1, 0, 1, 1]},
        ),
        (
            align_index_pass,
            {"m": 6},
            {"J": [0] * 6, "A1": [2] * 6, "A2": [3] * 6, "II": [0] * 6},
        ),
    ],
)
def test_symbolic_trace_length_matches_concrete(make, variables, arrays):
    """The checker's symbolic trace must denote exactly the events the
    interpreter emits, once repetition counts are bound."""
    program = make()
    symbolic = check_program(program)
    concrete, _, _ = run_program(program, variables=variables, arrays=arrays)
    assert event_count(symbolic, variables) == len(concrete)


def test_routing_symbolic_length_matches_concrete():
    m = 8
    jstart = largest_hop(m)
    variables = {"m": m, "jstart": jstart, "nphases": jstart.bit_length()}
    program = routing_network()
    symbolic = check_program(program)
    concrete, _, _ = run_program(
        program,
        variables=variables,
        arrays={"A": [0] * m, "F": [-1] * m},
    )
    # The symbolic count with a *fixed* jhop binding cannot track the
    # per-phase halving, so bind jhop per phase and sum manually.
    total = 0
    jhop = jstart
    for _ in range(variables["nphases"]):
        total += (m - jhop) * 8  # 4 reads + 4 writes per inner iteration
        jhop //= 2
    assert len(concrete) == total
