"""The Algorithm 3 routing network and its backward (compaction) twin."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.monitor import verify_oblivious
from repro.memory.public import PublicArray
from repro.obliv.routing import largest_hop, route_backward, route_forward


def _forward_case(targets, m):
    """Elements ('x', target) sorted by target in a prefix; route them."""
    n = len(targets)
    cells = [(f"x{i}", t) for i, t in enumerate(sorted(targets))]
    cells += [(None, -1)] * (max(n, m) - n)
    array = PublicArray(cells, name="R")
    route_forward(array, lambda c: c[1], m)
    return array.snapshot()


def test_largest_hop_values():
    assert largest_hop(1) == 0
    assert largest_hop(2) == 1
    assert largest_hop(8) == 4
    assert largest_hop(9) == 8
    assert largest_hop(1000) == 512


def test_figure3_example():
    """The paper's Figure 3: n=5, m=8, f = (4,1,3,8,6) (1-based)."""
    targets = [3, 0, 2, 7, 5]  # 0-based
    result = _forward_case(targets, 8)
    placed = {c[1]: c[0] for c in result if c[0] is not None}
    assert set(placed.keys()) == set(targets)
    for i, cell in enumerate(result):
        if cell[0] is not None:
            assert cell[1] == i


@given(
    st.integers(min_value=1, max_value=40).flatmap(
        lambda m: st.sets(st.integers(min_value=0, max_value=m - 1), max_size=m).map(
            lambda t: (sorted(t), m)
        )
    )
)
@settings(max_examples=80, deadline=None)
def test_forward_routes_any_injective_targets(case):
    targets, m = case
    result = _forward_case(targets, m)
    for i in range(m):
        if i in targets:
            assert result[i][1] == i
        else:
            assert result[i][0] is None


def test_forward_with_all_slots_used():
    result = _forward_case(list(range(8)), 8)
    assert all(result[i][1] == i for i in range(8))


def test_forward_trace_is_input_independent():
    def program(tracer, targets):
        n = len(targets)
        cells = [(i, t) for i, t in enumerate(sorted(targets))]
        cells += [(None, -1)] * (8 - n)
        array = PublicArray(cells, name="R", tracer=tracer)
        route_forward(array, lambda c: c[1], 8)

    report = verify_oblivious(
        program, [[0, 3, 5], [1, 2, 7], [5, 6, 7]], require=True
    )
    assert report.oblivious


def _backward_case(occupied_positions, size):
    """Elements at given positions get rank targets; compact them back."""
    occupied = sorted(occupied_positions)
    cells = [(None, -1)] * size
    for rank, pos in enumerate(occupied):
        cells[pos] = (f"x{rank}", rank)
    array = PublicArray(cells, name="C")
    route_backward(array, lambda c: c[1])
    return array.snapshot()


@given(
    st.integers(min_value=1, max_value=40).flatmap(
        lambda size: st.sets(
            st.integers(min_value=0, max_value=size - 1), max_size=size
        ).map(lambda occ: (occ, size))
    )
)
@settings(max_examples=80, deadline=None)
def test_backward_compacts_in_order(case):
    occupied, size = case
    result = _backward_case(occupied, size)
    k = len(occupied)
    for i in range(k):
        assert result[i] == (f"x{i}", i)
    for i in range(k, size):
        assert result[i][0] is None


def test_backward_trace_is_input_independent():
    def program(tracer, occupied):
        cells = [(None, -1)] * 8
        for rank, pos in enumerate(sorted(occupied)):
            cells[pos] = (rank, rank)
        array = PublicArray(cells, name="C", tracer=tracer)
        route_backward(array, lambda c: c[1])

    report = verify_oblivious(program, [[0, 1], [3, 7], [5, 6]], require=True)
    assert report.oblivious


@pytest.mark.parametrize("size,m", [(8, 8), (12, 8), (16, 5)])
def test_stats_count_routing_slots(size, m):
    from repro.obliv.network import NetworkStats

    stats = NetworkStats()
    cells = [(None, -1)] * size
    array = PublicArray(cells, name="R")
    route_forward(array, lambda c: c[1], m, stats=stats)
    expected = 0
    hop = largest_hop(m)
    while hop >= 1:
        expected += max(size - hop, 0)
        hop //= 2
    assert stats.comparisons == expected
