"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import strategies as st

from repro.memory.tracer import HashSink, ListSink, Tracer


def shm_segments() -> set[str]:
    """Names of the live POSIX shared-memory segments (empty off-POSIX)."""
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return set()


@pytest.fixture
def shm_leak_guard():
    """Assert a test leaves no new /dev/shm segments behind.

    Segments live *before* the test (warm pools, a service's pinned
    published columns) are fine; anything the test itself created must be
    gone by the end — including after aborts mid-dispatch.  Yields the
    baseline set so tests can also assert mid-flight.
    """
    before = shm_segments()
    yield before
    leaked = shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture
def tracer() -> Tracer:
    """A tracer recording full event lists."""
    return Tracer(ListSink())


@pytest.fixture
def hash_tracer() -> Tracer:
    """A tracer with the paper's rolling SHA-256 sink."""
    return Tracer(HashSink())


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def pairs_strategy(max_rows: int = 10, key_space: int = 5, data_space: int = 40):
    """Hypothesis strategy: a small table of (j, d) pairs."""
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=key_space - 1),
            st.integers(min_value=0, max_value=data_space - 1),
        ),
        max_size=max_rows,
    )


def int_lists(max_size: int = 32, low: int = -100, high: int = 100):
    return st.lists(
        st.integers(min_value=low, max_value=high), max_size=max_size
    )
