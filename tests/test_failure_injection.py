"""Failure injection: the verification apparatus must catch broken
implementations, not just bless correct ones.

Each test deliberately sabotages an oblivious discipline (skipping dummy
writes, branch-dependent access order, data-dependent early exit) and
asserts the §6.1 trace-equality experiment FAILS — i.e. the apparatus has
actual detection power.
"""

from repro.memory.monitor import verify_oblivious
from repro.memory.public import PublicArray
from repro.obliv.bitonic import bitonic_stages
from repro.obliv.compare import comparator_from_spec, identity_key, spec

CMP = comparator_from_spec(spec(identity_key()))


def _leaky_compare_exchange(array, lo, hi):
    """BROKEN: writes back only when swapping (no dummy writes)."""
    a = array.read(lo)
    b = array.read(hi)
    if CMP(a, b) > 0:
        array.write(lo, b)
        array.write(hi, a)


def _leaky_bitonic_sort(array):
    for stage in bitonic_stages(len(array)):
        for lo, hi in stage:
            _leaky_compare_exchange(array, lo, hi)


def test_skipping_dummy_writes_is_detected():
    def program(tracer, values):
        array = PublicArray(list(values), name="S", tracer=tracer)
        _leaky_bitonic_sort(array)

    report = verify_oblivious(
        program, [[4, 3, 2, 1], [1, 2, 3, 4], [2, 2, 2, 2]]
    )
    assert not report.oblivious


def test_branch_dependent_write_order_is_detected():
    """Writing (lo, hi) on swap but (hi, lo) otherwise: same cells, leaky
    ORDER — the rolling hash must notice."""

    def program(tracer, values):
        array = PublicArray(list(values), name="S", tracer=tracer)
        a = array.read(0)
        b = array.read(1)
        if CMP(a, b) > 0:
            array.write(0, b)
            array.write(1, a)
        else:
            array.write(1, b)
            array.write(0, a)

    report = verify_oblivious(program, [[2, 1], [1, 2]])
    assert not report.oblivious


def test_early_exit_scan_is_detected():
    def program(tracer, values):
        array = PublicArray(list(values), name="S", tracer=tracer)
        for i in range(len(array)):
            if array.read(i) == 0:
                break

    report = verify_oblivious(program, [[0, 5, 5], [5, 5, 0]])
    assert not report.oblivious


def test_data_dependent_output_append_is_detected():
    """The classic join leak: appending to the output only on a match."""

    def program(tracer, values):
        array = PublicArray(list(values), name="IN", tracer=tracer)
        out = PublicArray(len(values), name="OUT", tracer=tracer)
        cursor = 0
        for i in range(len(array)):
            if array.read(i) > 0:
                out.write(cursor, 1)
                cursor += 1

    # Same length, same number of positives, different positions: the write
    # *indices* coincide but interleaving with reads differs.
    report = verify_oblivious(program, [[1, 0, 1], [1, 1, 0]])
    assert not report.oblivious


def test_correct_discipline_passes_the_same_harness():
    """Control: the proper compare-exchange (dummy writes, fixed order)
    passes where the sabotaged ones fail."""
    from repro.obliv.bitonic import bitonic_sort

    def program(tracer, values):
        array = PublicArray(list(values), name="S", tracer=tracer)
        bitonic_sort(array, spec(identity_key()))

    report = verify_oblivious(
        program, [[4, 3, 2, 1], [1, 2, 3, 4], [2, 2, 2, 2]], require=True
    )
    assert report.oblivious
