"""The §6.1 security experiments: trace equality within input classes.

For all inputs with equal (n1, n2, m) the join's public-memory trace must
be byte-identical (our algorithm is deterministic).  The insecure
sort-merge baseline must FAIL the same experiment — otherwise the
experiment itself would be vacuous.

Padded execution widens the classes: under ``target_m`` a join's trace may
depend only on (n1, n2, target_m) — the true ``m`` drops out — and a padded
multiway cascade's trace only on the input sizes and the public bounds.
The second half of this file pins that, including the converse (the
*revealed* cascade does distinguish the same inputs, so the experiment is
not vacuous).
"""

import pytest

from repro.baselines.sort_merge import sort_merge_join
from repro.core.join import oblivious_join
from repro.core.multiway import oblivious_multiway_join
from repro.errors import BoundError
from repro.memory.monitor import (
    distinguishing_events,
    run_hashed,
    run_logged,
    verify_oblivious,
)
from repro.workloads.generators import matched_class, ones_groups, power_law_groups


def _join_program(tracer, workload):
    return oblivious_join(workload.left, workload.right, tracer=tracer)


@pytest.mark.parametrize("n1,n2", [(4, 4), (5, 7), (8, 8), (12, 9)])
def test_matched_classes_produce_identical_traces(n1, n2):
    inputs = matched_class(n1, n2, seed=n1 * 100 + n2)
    report = verify_oblivious(_join_program, inputs, require=True)
    assert report.oblivious
    assert len(set(report.event_counts)) == 1


def test_trace_equal_across_data_relabellings():
    base = power_law_groups(8, 8, seed=3)
    relabeled = [
        [(j * 31 + 7, d ^ 1234) for j, d in table]
        for table in (base.left, base.right)
    ]

    h1, c1, _ = run_hashed(lambda t: oblivious_join(base.left, base.right, tracer=t))
    h2, c2, _ = run_hashed(lambda t: oblivious_join(relabeled[0], relabeled[1], tracer=t))
    assert h1 == h2 and c1 == c2


def test_trace_differs_when_m_differs():
    """m is deliberately revealed; classes are defined by (n1, n2, m)."""
    a = ones_groups(4, seed=1)  # m = 4
    b = [(0, i) for i in range(4)], [(0, i) for i in range(4)]  # m = 16
    h1, _, _ = run_hashed(lambda t: oblivious_join(a.left, a.right, tracer=t))
    h2, _, _ = run_hashed(lambda t: oblivious_join(b[0], b[1], tracer=t))
    assert h1 != h2


def test_trace_differs_when_split_differs():
    """(n1, n2) is public: (3,5) and (4,4) need not share a trace."""
    left_a = [(i, i) for i in range(3)]
    right_a = [(i + 100, i) for i in range(5)]
    left_b = [(i, i) for i in range(4)]
    right_b = [(i + 100, i) for i in range(4)]
    h1, _, _ = run_hashed(lambda t: oblivious_join(left_a, right_a, tracer=t))
    h2, _, _ = run_hashed(lambda t: oblivious_join(left_b, right_b, tracer=t))
    assert h1 != h2


def test_full_logs_not_just_hashes_are_identical():
    inputs = matched_class(6, 6, seed=9)
    logs = [
        run_logged(lambda t, w=w: oblivious_join(w.left, w.right, tracer=t))[0]
        for w in inputs
    ]
    assert all(log == logs[0] for log in logs[1:])


def test_insecure_sort_merge_fails_the_same_experiment():
    """The baseline's merge pointers leak: same (n1, n2, m), different trace."""
    left_a = [(0, 0), (1, 1), (2, 2), (3, 3)]
    right_a = [(0, 9), (5, 8), (6, 7), (7, 6)]  # match at the first key
    left_b = [(0, 0), (1, 1), (2, 2), (3, 3)]
    right_b = [(3, 9), (5, 8), (6, 7), (7, 6)]  # match at the last key
    where, _, _ = distinguishing_events(
        lambda t, inp: sort_merge_join(inp[0], inp[1], tracer=t),
        (left_a, right_a),
        (left_b, right_b),
    )
    assert where is not None


# -- padded execution: traces are functions of sizes and bounds only --------

#: Same input sizes (2, 2, 2), wildly different intermediate/output sizes.
CASCADE_A = [[(0, 0), (1, 1)], [(0, 5), (1, 6)], [(5, 9), (6, 8)]]  # 2, 2
CASCADE_B = [[(0, 0), (0, 1)], [(0, 5), (0, 6)], [(9, 9), (9, 8)]]  # 4, 0
CASCADE_KEYS = [(0, 0), (3, 0)]


def test_padded_join_trace_ignores_m():
    """Under target_m the class widens to (n1, n2, target_m): any m fits."""
    inputs = [
        ([(0, 0), (1, 1), (2, 2)], [(0, 7), (0, 8), (2, 9)]),  # m = 3
        ([(0, 0), (0, 1), (0, 2)], [(0, 7), (0, 8), (0, 9)]),  # m = 9
        ([(0, 0), (1, 1), (2, 2)], [(5, 7), (6, 8), (7, 9)]),  # m = 0
    ]
    hashes, counts = set(), set()
    for left, right in inputs:
        digest, count, _ = run_hashed(
            lambda t, l=left, r=right: oblivious_join(l, r, tracer=t, target_m=9)
        )
        hashes.add(digest)
        counts.add(count)
    assert len(hashes) == 1 and len(counts) == 1


def test_padded_join_output_is_real_rows_then_dummies():
    left = [(0, 0), (1, 1), (2, 2)]
    right = [(0, 7), (0, 8), (2, 9)]
    plain = oblivious_join(left, right)
    padded = oblivious_join(left, right, target_m=8)
    assert padded.m == 8
    assert padded.pairs[: plain.m] == plain.pairs
    assert padded.pairs[plain.m :] == [(-1, -1)] * (8 - plain.m)


def test_padded_join_bound_exceeded_raises():
    left = [(0, i) for i in range(3)]
    right = [(0, i) for i in range(3)]  # m = 9
    with pytest.raises(BoundError, match="exceeds the public padding bound"):
        oblivious_join(left, right, target_m=4)


def test_worst_case_cascade_trace_is_byte_identical():
    """The acceptance experiment: equal input sizes, different intermediate
    sizes, byte-identical full logs under worst-case padding."""
    logs = [
        run_logged(
            lambda t, tables=tables: oblivious_multiway_join(
                tables, CASCADE_KEYS, tracer=t, padding="worst_case"
            )
        )[0]
        for tables in (CASCADE_A, CASCADE_B)
    ]
    assert logs[0] == logs[1]


def test_bounded_cascade_trace_depends_only_on_bounds():
    h1, c1, _ = run_hashed(
        lambda t: oblivious_multiway_join(
            CASCADE_A, CASCADE_KEYS, tracer=t, padding="bounded", bound=4
        )
    )
    h2, c2, _ = run_hashed(
        lambda t: oblivious_multiway_join(
            CASCADE_B, CASCADE_KEYS, tracer=t, padding="bounded", bound=4
        )
    )
    assert h1 == h2 and c1 == c2
    # A different bound is a different public class.
    h3, _, _ = run_hashed(
        lambda t: oblivious_multiway_join(
            CASCADE_A, CASCADE_KEYS, tracer=t, padding="bounded", bound=3
        )
    )
    assert h3 != h1


def test_revealed_cascade_distinguishes_the_same_inputs():
    """Converse control: without padding the experiment must fail."""
    h1, _, _ = run_hashed(
        lambda t: oblivious_multiway_join(CASCADE_A, CASCADE_KEYS, tracer=t)
    )
    h2, _, _ = run_hashed(
        lambda t: oblivious_multiway_join(CASCADE_B, CASCADE_KEYS, tracer=t)
    )
    assert h1 != h2


def test_padded_cascade_rows_bit_identical_after_compaction():
    for tables in (CASCADE_A, CASCADE_B):
        plain = oblivious_multiway_join(tables, CASCADE_KEYS)
        for mode, bound in (("worst_case", None), ("bounded", 4)):
            padded = oblivious_multiway_join(
                tables, CASCADE_KEYS, padding=mode, bound=bound
            )
            assert padded.rows == plain.rows
            assert padded.intermediate_sizes == plain.intermediate_sizes
            assert padded.padding == mode


def test_oblivious_join_constant_local_memory():
    """The paper's §4.3 claim: local working set independent of input size."""
    from repro.core.entry import entries_from_pairs
    from repro.core.join import oblivious_join_arrays
    from repro.memory.local import LocalContext
    from repro.memory.tracer import Tracer

    peaks = []
    for n in (4, 8, 16, 32):
        local = LocalContext()
        workload = ones_groups(n, seed=n)
        oblivious_join_arrays(
            entries_from_pairs(workload.left, tid=1),
            entries_from_pairs(workload.right, tid=2),
            Tracer(),
            local=local,
        )
        peaks.append(local.peak)
    assert len(set(peaks)) == 1, f"local memory grew with input: {peaks}"
