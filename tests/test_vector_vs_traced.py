"""Bit-identical equivalence between the traced and vector join engines.

The contract promised in ``repro/vector/join.py``: the numpy engine is not
merely *equivalent as a multiset* to the traced reference — it produces the
exact same output pairs in the exact same order, on every input.  That is
what justifies benchmarking on the vector engine while proving security
claims on the traced one.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.join import oblivious_join
from repro.engines import get_engine
from repro.vector.join import vector_oblivious_join
from repro.workloads.generators import (
    ones_groups,
    pk_fk,
    power_law_groups,
    single_group,
    uniform_random,
)

from conftest import pairs_strategy


def assert_bit_identical(left, right):
    traced = oblivious_join(left, right)
    pairs, stats = vector_oblivious_join(left, right)
    assert traced.pairs == [tuple(p) for p in pairs.tolist()]
    assert traced.m == stats.m == len(pairs)


@given(left=pairs_strategy(max_rows=16), right=pairs_strategy(max_rows=16))
@settings(max_examples=80, deadline=None)
def test_randomized_instances_are_bit_identical(left, right):
    assert_bit_identical(left, right)


def test_empty_inputs():
    assert_bit_identical([], [])
    assert_bit_identical([(1, 1)], [])
    assert_bit_identical([], [(1, 1)])


def test_all_duplicate_keys():
    # One giant group on each side: the m = n1*n2 worst case.
    w = single_group(9, 7, seed=3)
    assert_bit_identical(w.left, w.right)


def test_skewed_power_law_groups():
    w = power_law_groups(32, 32, alpha=1.6, seed=11)
    assert_bit_identical(w.left, w.right)


def test_skewed_zipf_pk_fk():
    w = pk_fk(16, 48, seed=5, zipf_s=1.2)
    assert_bit_identical(w.left, w.right)


@pytest.mark.parametrize(
    "n1,n2",
    # Straddle the bitonic network's power-of-two padding boundaries: the
    # combined size n1+n2 lands just below, exactly on, and just above a
    # power of two.
    [(3, 4), (4, 4), (4, 5), (7, 8), (8, 8), (8, 9), (15, 16), (16, 16), (16, 17)],
)
def test_power_of_two_boundary_sizes(n1, n2):
    rng = random.Random(n1 * 100 + n2)
    left = [(rng.randrange(6), rng.randrange(100)) for _ in range(n1)]
    right = [(rng.randrange(6), rng.randrange(100)) for _ in range(n2)]
    assert_bit_identical(left, right)


def test_one_to_one_shuffled_keys():
    w = ones_groups(20, seed=9)
    assert_bit_identical(w.left, w.right)


def test_mostly_unmatched_keys():
    w = uniform_random(24, 24, key_space=100, seed=13)
    assert_bit_identical(w.left, w.right)


# -- filter / order-by fast paths -------------------------------------------
#
# The db layer's FILTER and ORDER BY ride the engine protocol too; the
# vector fast paths (bitonic compaction / stable sort permutation in
# `repro.vector.relational`) must agree with the traced networks cell for
# cell, including on duplicate sort keys and on the string-column fallback.


@given(mask=st.lists(st.booleans(), max_size=33))
@settings(max_examples=60, deadline=None)
def test_filter_indices_bit_identical(mask):
    traced = get_engine("traced").filter_indices(mask)
    vector = get_engine("vector").filter_indices(mask)
    assert traced == vector == [i for i, keep in enumerate(mask) if keep]


@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=-5, max_value=5),
            st.integers(min_value=0, max_value=2),
        ),
        max_size=20,
    ),
    first_ascending=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_order_permutation_bit_identical(rows, first_ascending):
    columns = [
        ([row[0] for row in rows], first_ascending),
        ([row[1] for row in rows], True),
    ]
    traced = get_engine("traced").order_permutation(columns)
    vector = get_engine("vector").order_permutation(columns)
    assert traced == vector
    assert sorted(traced) == list(range(len(rows)))


def test_order_permutation_string_fallback_matches_traced():
    values = ["pear", "fig", "apple", "fig", "plum"]
    columns = [(values, True)]
    traced = get_engine("traced").order_permutation(columns)
    vector = get_engine("vector").order_permutation(columns)
    assert traced == vector == [2, 1, 3, 0, 4]  # stable: first "fig" first
