"""Entry records and their binary codec."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.entry import Entry, EntryCodec, entries_from_pairs, pairs_from_entries


def test_default_entry_is_not_null():
    e = Entry(j=1, d=2)
    assert not e.is_null
    assert e.as_pair() == (1, 2)


def test_make_null():
    e = Entry.make_null()
    assert e.is_null


def test_copy_is_independent():
    e = Entry(j=1, d=2, a1=3)
    c = e.copy()
    c.j = 99
    c.a1 = 0
    assert e.j == 1 and e.a1 == 3
    assert c.j == 99


def test_equality_covers_all_fields():
    assert Entry(j=1, d=2) == Entry(j=1, d=2)
    assert Entry(j=1, d=2) != Entry(j=1, d=3)
    assert Entry(j=1, d=2) != Entry(j=1, d=2, null=True)
    assert Entry(j=1, d=2, f=4) != Entry(j=1, d=2, f=5)


def test_entries_from_pairs_sets_tid():
    entries = entries_from_pairs([(1, 10), (2, 20)], tid=2)
    assert [e.tid for e in entries] == [2, 2]
    assert pairs_from_entries(entries) == [(1, 10), (2, 20)]


def test_pairs_from_entries_skips_nulls():
    entries = [Entry(j=1, d=1), Entry.make_null(), Entry(j=2, d=2)]
    assert pairs_from_entries(entries) == [(1, 1), (2, 2)]


def test_repr_forms():
    assert repr(Entry.make_null()) == "Entry(∅)"
    assert "j=1" in repr(Entry(j=1, d=2))
    assert "a1=3" in repr(Entry(j=1, d=2, a1=3, a2=4))


entry_strategy = st.builds(
    Entry,
    j=st.integers(min_value=-(2**31), max_value=2**31),
    d=st.integers(min_value=-(2**31), max_value=2**31),
    tid=st.sampled_from([0, 1, 2]),
    a1=st.integers(min_value=0, max_value=1000),
    a2=st.integers(min_value=0, max_value=1000),
    f=st.integers(min_value=-1, max_value=10**6),
    ii=st.integers(min_value=-1, max_value=10**6),
    null=st.booleans(),
)


@given(entry_strategy)
def test_codec_roundtrip(entry):
    codec = EntryCodec()
    assert codec.decode(codec.encode(entry)) == entry


def test_codec_fixed_width_hides_contents():
    codec = EntryCodec()
    assert len(codec.encode(Entry(j=0, d=0))) == EntryCodec.WIDTH
    assert len(codec.encode(Entry(j=2**40, d=-(2**40), a1=7))) == EntryCodec.WIDTH
    assert len(codec.encode(None)) == EntryCodec.WIDTH


def test_codec_none_becomes_null_entry():
    codec = EntryCodec()
    assert codec.decode(codec.encode(None)).is_null
