"""Probabilistic encryption simulation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InputError
from repro.memory.encryption import IntCodec, ProbabilisticEncryptor


def test_roundtrip():
    enc = ProbabilisticEncryptor(key=b"k" * 32)
    ct = enc.encrypt(b"hello world")
    assert enc.decrypt(ct) == b"hello world"


def test_fresh_nonce_per_encryption():
    enc = ProbabilisticEncryptor(key=b"k" * 32)
    c1 = enc.encrypt(b"same")
    c2 = enc.encrypt(b"same")
    assert c1.nonce != c2.nonce
    assert c1.payload != c2.payload


def test_decryption_needs_matching_key():
    a = ProbabilisticEncryptor(key=b"a" * 32)
    b = ProbabilisticEncryptor(key=b"b" * 32)
    ct = a.encrypt(b"secret!")
    assert b.decrypt(ct) != b"secret!"


def test_empty_key_rejected():
    with pytest.raises(InputError):
        ProbabilisticEncryptor(key=b"")


def test_deterministic_nonce_source_supported():
    enc = ProbabilisticEncryptor(key=b"k", nonce_source=lambda: b"\x00" * 16)
    c1 = enc.encrypt(b"x")
    c2 = enc.encrypt(b"x")
    assert c1 == c2  # determinism is the injected source's choice


@given(st.binary(max_size=200))
def test_roundtrip_arbitrary_payloads(payload):
    enc = ProbabilisticEncryptor(key=b"prop" * 8)
    assert enc.decrypt(enc.encrypt(payload)) == payload


def test_ciphertext_length_matches_plaintext():
    enc = ProbabilisticEncryptor(key=b"k")
    assert len(enc.encrypt(b"12345")) == 5


@given(st.one_of(st.none(), st.integers(min_value=-(2**63), max_value=2**63 - 1)))
def test_int_codec_roundtrip(value):
    codec = IntCodec()
    assert codec.decode(codec.encode(value)) == value


def test_int_codec_fixed_width():
    codec = IntCodec()
    assert len(codec.encode(0)) == len(codec.encode(2**62)) == IntCodec.WIDTH
