"""Oblivious compaction (both constructions) and the filter idiom."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.monitor import verify_oblivious
from repro.memory.public import PublicArray
from repro.obliv.compact import (
    compact_by_routing,
    compact_by_sorting,
    oblivious_filter,
)

COMPACTIONS = [compact_by_routing, compact_by_sorting]

cells_strategy = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=99)), min_size=1, max_size=40
)


@pytest.mark.parametrize("compact", COMPACTIONS)
def test_moves_real_elements_to_front(compact):
    array = PublicArray([None, 5, None, 7, 2, None], name="A")
    count = compact(array, lambda v: v is None)
    assert count == 3
    assert array.snapshot()[:3] == [5, 7, 2]
    assert all(v is None for v in array.snapshot()[3:])


@pytest.mark.parametrize("compact", COMPACTIONS)
@given(values=cells_strategy)
@settings(max_examples=60, deadline=None)
def test_order_preserving_on_any_input(compact, values):
    array = PublicArray(list(values), name="A")
    count = compact(array, lambda v: v is None)
    survivors = [v for v in values if v is not None]
    assert count == len(survivors)
    assert array.snapshot()[:count] == survivors


@pytest.mark.parametrize("compact", COMPACTIONS)
def test_all_null_and_all_real(compact):
    array = PublicArray([None] * 5, name="A")
    assert compact(array, lambda v: v is None) == 0
    array = PublicArray([1, 2, 3], name="A")
    assert compact(array, lambda v: v is None) == 3
    assert array.snapshot() == [1, 2, 3]


@pytest.mark.parametrize("compact", COMPACTIONS)
def test_trace_independent_of_null_positions(compact):
    def program(tracer, values):
        array = PublicArray(list(values), name="A", tracer=tracer)
        compact(array, lambda v: v is None)

    inputs = [
        [1, None, 2, None, 3, None, None, 4],
        [None, None, None, None, 1, 2, 3, 4],
        [1, 2, 3, 4, None, None, None, None],
    ]
    report = verify_oblivious(program, inputs, require=True)
    assert report.oblivious


def test_routing_compaction_is_cheaper_than_sorting():
    from repro.obliv.network import NetworkStats

    stats_route, stats_sort = NetworkStats(), NetworkStats()
    values = [i if i % 3 else None for i in range(64)]
    a = PublicArray(list(values), name="A")
    compact_by_routing(a, lambda v: v is None, stats=stats_route)
    b = PublicArray(list(values), name="B")
    compact_by_sorting(b, lambda v: v is None, stats=stats_sort)
    assert stats_route.comparisons < stats_sort.comparisons
    assert a.snapshot() == b.snapshot()


def test_filter_keeps_matching_and_reports_count():
    array = PublicArray(list(range(10)), name="A")
    count = oblivious_filter(array, keep=lambda v: v % 2 == 0)
    assert count == 5
    assert array.snapshot()[:5] == [0, 2, 4, 6, 8]


def test_filter_with_sorting_method():
    array = PublicArray(list(range(6)), name="A")
    count = oblivious_filter(array, keep=lambda v: v >= 3, method="sorting")
    assert count == 3
    assert array.snapshot()[:3] == [3, 4, 5]


def test_filter_custom_null_value():
    array = PublicArray([1, 2, 3], name="A")
    count = oblivious_filter(array, keep=lambda v: v == 2, null_value=-1)
    assert count == 1
    assert array.snapshot() == [2, -1, -1]
