"""SGX cost model calibration and EPC paging behaviour."""

import pytest

from repro.enclave.costmodel import (
    PAPER_RUNTIME_AT_1M,
    EnclaveCostModel,
)
from repro.enclave.epc import MIB, EPCModel
from repro.errors import EnclaveError


def test_epc_no_penalty_inside_capacity():
    epc = EPCModel(capacity_bytes=10 * MIB, penalty=10.0)
    assert epc.slowdown(MIB) == 1.0
    assert epc.slowdown(10 * MIB) == 1.0


def test_epc_penalty_grows_with_footprint():
    epc = EPCModel(capacity_bytes=10 * MIB, penalty=10.0)
    s20 = epc.slowdown(20 * MIB)
    s40 = epc.slowdown(40 * MIB)
    assert 1.0 < s20 < s40 < 11.0


def test_epc_resident_fraction():
    epc = EPCModel(capacity_bytes=10 * MIB)
    assert epc.resident_fraction(5 * MIB) == 1.0
    assert epc.resident_fraction(20 * MIB) == 0.5


def test_epc_pages_round_up():
    epc = EPCModel(page_bytes=4096)
    assert epc.pages(1) == 1
    assert epc.pages(4096) == 1
    assert epc.pages(4097) == 2


def test_epc_validation():
    with pytest.raises(EnclaveError):
        EPCModel(capacity_bytes=0)
    with pytest.raises(EnclaveError):
        EPCModel(penalty=-1)
    with pytest.raises(EnclaveError):
        EPCModel().slowdown(-5)


def test_model_reproduces_paper_endpoints_at_1m():
    """Calibration sanity: at n = 10^6 the predicted times must land near
    the paper's measured values (exact counts vs the closed form introduce
    a few percent of slack)."""
    model = EnclaveCostModel()
    point = model.figure8_point(10**6)
    for variant, expected in PAPER_RUNTIME_AT_1M.items():
        assert point[variant] == pytest.approx(expected, rel=0.15), variant


def test_variant_ordering_matches_figure8():
    model = EnclaveCostModel()
    for n in (10**5, 5 * 10**5, 10**6):
        point = model.figure8_point(n)
        assert (
            point["insecure_sort_merge"]
            < point["prototype"]
            < point["sgx"]
            < point["sgx_transformed"]
        )


def test_series_monotone_in_n():
    model = EnclaveCostModel()
    sizes = [10**5, 2 * 10**5, 5 * 10**5, 10**6]
    series = model.figure8_series(sizes)
    for values in series.values():
        assert values == sorted(values)


def test_oblivious_join_slowdown_factor_shape():
    """At n = 10^6 the paper shows ~80x between prototype and insecure."""
    model = EnclaveCostModel()
    point = model.figure8_point(10**6)
    ratio = point["prototype"] / point["insecure_sort_merge"]
    assert 40 < ratio < 160


def test_epc_knee_beyond_paper_range():
    """The paper's sweep (n <= 10^6) fits in the EPC; the knee must sit
    past it, matching the 'expected drop for larger inputs' remark."""
    model = EnclaveCostModel()
    assert model.epc_knee_input_size() > 10**6


def test_sgx_series_pays_paging_after_knee():
    model = EnclaveCostModel()
    knee = model.epc_knee_input_size()
    below = model.figure8_point(knee // 2)
    above = model.figure8_point(knee * 4)
    ratio_below = below["sgx"] / below["prototype"]
    ratio_above = above["sgx"] / above["prototype"]
    assert ratio_above > ratio_below * 1.5


def test_footprint_formula():
    model = EnclaveCostModel(entry_bytes=10)
    assert model.footprint_bytes(4, 6, 5) == (5 + 6) * 10


def test_unknown_variant_rejected():
    with pytest.raises(EnclaveError, match="variant"):
        EnclaveCostModel().predict_join_seconds(10, 10, 10, "tdx")


def test_invalid_clock_rejected():
    with pytest.raises(EnclaveError):
        EnclaveCostModel(clock_hz=0)
