"""The vectorised join engine and its insecure baseline."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines.hash_join import join_multiset
from repro.errors import InputError
from repro.vector.baseline import vector_sort_merge_join
from repro.vector.join import VectorJoinStats, vector_oblivious_join

from conftest import pairs_strategy


@given(left=pairs_strategy(max_rows=16), right=pairs_strategy(max_rows=16))
@settings(max_examples=60, deadline=None)
def test_vector_join_matches_oracle(left, right):
    pairs, stats = vector_oblivious_join(left, right)
    assert sorted(map(tuple, pairs.tolist())) == join_multiset(left, right)
    assert stats.m == len(pairs)


def test_empty_inputs():
    pairs, stats = vector_oblivious_join([], [])
    assert pairs.shape == (0, 2)
    assert stats.m == 0
    pairs, _ = vector_oblivious_join([(1, 1)], [])
    assert pairs.shape == (0, 2)


def test_no_match_returns_empty():
    pairs, stats = vector_oblivious_join([(1, 1)], [(2, 2)])
    assert stats.m == 0 and len(pairs) == 0


def test_stats_cover_all_sort_phases():
    _, stats = vector_oblivious_join(
        [(i % 3, i) for i in range(20)], [(i % 3, i) for i in range(20)]
    )
    for phase in (
        "augment_sort1", "augment_sort2", "expand1_sort", "expand2_sort",
        "expand1_route", "expand2_route", "align_sort", "zip",
    ):
        assert phase in stats.seconds_by_phase, phase
    assert stats.total_comparisons > 0
    assert stats.total_seconds > 0


def test_larger_scale_correctness():
    rng = np.random.default_rng(7)
    left = [(int(j), int(d)) for j, d in zip(rng.integers(0, 200, 800), rng.integers(0, 10**6, 800))]
    right = [(int(j), int(d)) for j, d in zip(rng.integers(0, 200, 800), rng.integers(0, 10**6, 800))]
    pairs, _ = vector_oblivious_join(left, right)
    assert sorted(map(tuple, pairs.tolist())) == join_multiset(left, right)


def test_malformed_input_rejected():
    with pytest.raises(InputError):
        vector_oblivious_join([(1, 2, 3)], [(1, 2)])


@given(left=pairs_strategy(max_rows=16), right=pairs_strategy(max_rows=16))
@settings(max_examples=60, deadline=None)
def test_vector_sort_merge_matches_oracle(left, right):
    pairs = vector_sort_merge_join(left, right)
    assert sorted(map(tuple, pairs.tolist())) == join_multiset(left, right)


def test_vector_sort_merge_empty():
    assert vector_sort_merge_join([], [(1, 1)]).shape == (0, 2)
    assert vector_sort_merge_join([(1, 1)], []).shape == (0, 2)


def test_vector_sort_merge_malformed():
    with pytest.raises(InputError):
        vector_sort_merge_join([(1,)], [(1, 2)])


def test_stats_dataclass_defaults():
    stats = VectorJoinStats()
    assert stats.total_seconds == 0.0
    assert stats.total_comparisons == 0
