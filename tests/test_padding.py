"""The padding planner and the padded engines' public schedules.

Trace-level experiments for the traced engine live in
``test_join_trace_obliviousness.py``; cross-engine differential coverage in
``test_engine_properties.py``.  This file pins the rest of the contract:
the planner's bound arithmetic, the vector/sharded *schedule* byte-identity
(their adversary view), the sharded aggregation's padded partial counts,
the db layer, and the ``security.py`` <-> ``docs/leakage.md`` cross-link.
"""

import pathlib

import pytest

from repro.core.padding import (
    ANCHOR_KEY,
    DUMMY_KEY_BASE,
    PADDING_MODES,
    cascade_bounds,
    check_padding,
    join_bound,
)
from repro.db.query import ObliviousEngine
from repro.db.table import DBTable
from repro.engines import get_engine
from repro.errors import BoundError, InputError
from repro.security import LEAKAGE_PROFILES, SERVICE_LEAKAGE, leakage_profile
from repro.shard.aggregate import ShardedAggregateStats, sharded_join_aggregate
from repro.shard.join import ShardedJoinStats, sharded_oblivious_join
from repro.shard.multiway import ShardedMultiwayStats, sharded_multiway_join
from repro.vector.join import vector_oblivious_join
from repro.vector.multiway import VectorMultiwayStats, vector_multiway_join

#: Equal input sizes, different key distributions -> different true sizes.
CASCADE_A = [[(0, 0), (1, 1)], [(0, 5), (1, 6)], [(5, 9), (6, 8)]]  # 2, 2
CASCADE_B = [[(0, 0), (0, 1)], [(0, 5), (0, 6)], [(9, 9), (9, 8)]]  # 4, 0
CASCADE_KEYS = [(0, 0), (3, 0)]


# -- planner -----------------------------------------------------------------


def test_check_padding_accepts_modes_and_none():
    assert check_padding(None) == "revealed"
    for mode in PADDING_MODES:
        assert check_padding(mode) == mode
    with pytest.raises(InputError, match="unknown padding mode"):
        check_padding("padded")


def test_join_bound_modes():
    assert join_bound(3, 4, "revealed") is None
    assert join_bound(3, 4, "worst_case") == 12
    assert join_bound(3, 4, "bounded", bound=7) == 7
    assert join_bound(3, 4, "bounded", bound=99) == 12  # clamped to worst case
    assert join_bound(3, 4, "bounded", bound=[7, 100]) == 7  # 1-step cascade
    with pytest.raises(InputError, match="needs an explicit bound"):
        join_bound(3, 4, "bounded")


def test_list_bounded_engine_runs_both_cascades_and_single_joins():
    """An engine configured with per-step caps must still run binary joins
    (a binary join is a one-step cascade: its first cap applies)."""
    engine = get_engine("vector", padding="bounded", bound=[4, 8])
    result = engine.join([(0, 0), (1, 1)], [(0, 5), (2, 6)])
    assert result.m == 4  # padded to min(bound[0], 2*2)
    cascade = engine.multiway_join(CASCADE_A, CASCADE_KEYS)
    assert cascade.bounds == (4, 8)


def test_cascade_bounds_worst_case_compounds():
    assert cascade_bounds([2, 3, 4], "worst_case") == (6, 24)
    assert cascade_bounds([0, 3, 4], "worst_case") == (0, 0)
    assert cascade_bounds([2, 3], "revealed") == ()


def test_cascade_bounds_bounded_clamps_and_chains():
    # Caps above the worst case clamp down; the clamped value feeds forward.
    assert cascade_bounds([2, 3, 4], "bounded", bound=5) == (5, 5)
    assert cascade_bounds([2, 3, 4], "bounded", bound=100) == (6, 24)
    assert cascade_bounds([2, 3, 4], "bounded", bound=[4, 10]) == (4, 10)
    with pytest.raises(InputError, match="needs 2 bounds"):
        cascade_bounds([2, 3, 4], "bounded", bound=[4])
    with pytest.raises(InputError, match="ints >= 0"):
        cascade_bounds([2, 3, 4], "bounded", bound=-1)


def test_reserved_key_space_is_rejected():
    ok = [(0, 0)]
    # Cascades reserve everything from DUMMY_KEY_BASE up (dummy re-keying).
    for bad_key in (DUMMY_KEY_BASE, ANCHOR_KEY):
        with pytest.raises(InputError, match="reserve"):
            get_engine("traced").multiway_join(
                [[(bad_key, 1)], ok], [(0, 0)], padding="worst_case"
            )
    # A single padded join only reserves the anchor key itself — incoming
    # cascade dummies legitimately carry DUMMY_KEY_BASE + i keys.
    with pytest.raises(InputError, match="reserve"):
        vector_oblivious_join([(ANCHOR_KEY, 1)], ok, target_m=1)
    with pytest.raises(InputError, match="reserve"):
        sharded_oblivious_join([(ANCHOR_KEY, 1)], ok, target_m=1)
    pairs, _ = vector_oblivious_join([(DUMMY_KEY_BASE, 1)], ok, target_m=1)
    assert pairs.tolist() == [[-1, -1]]  # matches nothing, pure padding


# -- vector and sharded schedules --------------------------------------------


def test_vector_padded_cascade_schedule_is_size_determined():
    schedules = []
    for tables in (CASCADE_A, CASCADE_B):
        stats = VectorMultiwayStats()
        vector_multiway_join(tables, CASCADE_KEYS, stats=stats, padding="worst_case")
        schedules.append((stats.schedule, tuple(stats.intermediate_sizes)))
    assert schedules[0] == schedules[1]
    # The padded step sizes the stats expose are the bounds, not the truth.
    assert schedules[0][1] == (4, 8)


def test_vector_revealed_cascade_schedule_differs():
    schedules = []
    for tables in (CASCADE_A, CASCADE_B):
        stats = VectorMultiwayStats()
        vector_multiway_join(tables, CASCADE_KEYS, stats=stats)
        schedules.append(stats.schedule)
    assert schedules[0] != schedules[1]


def test_sharded_padded_join_grid_and_schedule_are_size_determined():
    """The acceptance experiment for the sharded engine: task grid, task_m,
    and full schedule identical across key distributions of equal sizes."""
    views = []
    for left, right in (
        ([(0, i) for i in range(5)], [(0, i) for i in range(4)]),  # m = 20
        ([(i, i) for i in range(5)], [(9 + i, i) for i in range(4)]),  # m = 0
    ):
        stats = ShardedJoinStats()
        sharded_oblivious_join(left, right, shards=3, stats=stats, target_m=20)
        views.append((stats.schedule, tuple(stats.task_m), stats.m))
    assert views[0] == views[1]


def test_sharded_padded_cascade_schedule_is_size_determined():
    views = []
    for tables in (CASCADE_A, CASCADE_B):
        stats = ShardedMultiwayStats()
        sharded_multiway_join(
            tables, CASCADE_KEYS, shards=2, stats=stats, padding="worst_case"
        )
        views.append(
            (stats.schedule, tuple(tuple(s.task_m) for s in stats.step_stats))
        )
    assert views[0] == views[1]


def test_sharded_revealed_grid_differs_on_the_same_inputs():
    grids = []
    for left, right in (
        ([(0, i) for i in range(5)], [(0, i) for i in range(4)]),
        ([(i, i) for i in range(5)], [(9 + i, i) for i in range(4)]),
    ):
        stats = ShardedJoinStats()
        sharded_oblivious_join(left, right, shards=3, stats=stats)
        grids.append(tuple(stats.task_m))
    assert grids[0] != grids[1]


def test_join_target_above_worst_case_clamps_identically_everywhere():
    """All engines clamp target_m to n1*n2 (no join can emit more), so one
    fixed public bound behaves the same regardless of backend."""
    left, right = [(0, 0), (1, 1)], [(0, 5), (2, 6)]
    results = [
        get_engine(name).join(left, right, target_m=100)
        for name in ("traced", "vector", "sharded")
    ]
    for result in results:
        assert result.m == 4  # clamped to 2 * 2
        assert result.pairs == results[0].pairs
    with pytest.raises(InputError, match="target_m"):
        get_engine("vector").join(left, right, target_m=-1)


def test_sharded_padded_aggregate_partial_counts_are_block_sizes():
    """Padded partial tables ship at the public block size, independent of
    how many distinct keys the block actually held."""
    skewed = [(0, i) for i in range(6)]  # one group
    spread = [(i, i) for i in range(6)]  # six groups
    right = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]
    counts = []
    for left in (skewed, spread):
        stats = ShardedAggregateStats()
        sharded_join_aggregate(left, right, shards=3, stats=stats, padded=True)
        counts.append((tuple(stats.partial_group_counts), stats.schedule))
    assert counts[0] == counts[1]
    assert counts[0][0] == (4, 4, 4)  # 2 left + 2 right real rows per block


def test_bounded_mode_aborts_loudly_on_overflow():
    big = [(0, i) for i in range(4)]
    with pytest.raises(BoundError):
        vector_multiway_join([big, big, big], CASCADE_KEYS, padding="bounded", bound=3)
    with pytest.raises(BoundError):
        sharded_multiway_join([big, big, big], CASCADE_KEYS, padding="bounded", bound=3)


# -- db layer ----------------------------------------------------------------


@pytest.mark.parametrize("engine", ["traced", "vector", "sharded"])
def test_db_padded_multiway_matches_plain_loop(engine):
    customers = DBTable.from_rows(["cid:int", "name:str"], [(7, "ana"), (9, "bo")])
    orders = DBTable.from_rows(
        ["oid:int", "cid:int", "total:int"],
        [(1, 7, 30), (2, 7, 31), (3, 9, 5)],
    )
    items = DBTable.from_rows(["oid:int", "sku:str"], [(1, "x"), (1, "y"), (3, "z")])
    plain = ObliviousEngine().multiway_join(
        [customers, orders, items], on=[("cid", "cid"), ("oid", "oid")]
    )
    padded = ObliviousEngine(engine=engine, padding="worst_case").multiway_join(
        [customers, orders, items], on=[("cid", "cid"), ("oid", "oid")]
    )
    assert padded.schema.names() == plain.schema.names()
    assert padded.rows == plain.rows


def test_db_padded_join_compacts_dummies():
    left = DBTable.from_rows(["k:int", "v:int"], [(0, 1), (1, 2)])
    right = DBTable.from_rows(["k:int", "w:int"], [(0, 3), (5, 4)])
    plain = ObliviousEngine().join(left, right, on=("k", "k"))
    padded = ObliviousEngine(engine="vector", padding="worst_case").join(
        left, right, on=("k", "k")
    )
    assert padded.rows == plain.rows


def test_db_padded_multiway_str_key_order_matches_plain_path():
    """Str keys first seen mid-cascade must not reorder the padded result:
    both paths pre-warm the dictionary encoder in base-table row order."""
    a = DBTable.from_rows(["ak:int", "p:int"], [(1, 0), (0, 1)])
    b = DBTable.from_rows(["bk:int", "x:str"], [(1, "zz"), (0, "aa")])
    c = DBTable.from_rows(["x2:str", "val:int"], [("aa", 10), ("zz", 20)])
    on = [("ak", "bk"), ("x", "x2")]
    plain = ObliviousEngine().multiway_join([a, b, c], on=on)
    padded = ObliviousEngine(engine="vector", padding="worst_case").multiway_join(
        [a, b, c], on=on
    )
    assert padded.rows == plain.rows


def test_padded_join_rejects_negative_payloads():
    """Dummies are tagged by -1 payloads, so real negatives would be
    silently compacted away — every engine must reject them up front."""
    left, right = [(0, -1)], [(0, 7)]
    for name in ("traced", "vector", "sharded"):
        with pytest.raises(InputError, match="non-negative payloads"):
            get_engine(name).join(left, right, target_m=2)
    # Unpadded joins keep accepting arbitrary payloads.
    assert get_engine("vector").join(left, right).pairs == [(-1, 7)]


def test_db_padded_multiway_with_str_keys_roundtrips_encoding():
    a = DBTable.from_rows(["k:str", "v:int"], [("x", 1), ("y", 2)])
    b = DBTable.from_rows(["k:str", "w:int"], [("x", 10), ("x", 11), ("z", 9)])
    c = DBTable.from_rows(["w:int", "u:str"], [(10, "p"), (11, "q")])
    plain = ObliviousEngine().multiway_join([a, b, c], on=[("k", "k"), ("w", "w")])
    padded = ObliviousEngine(engine="vector", padding="worst_case").multiway_join(
        [a, b, c], on=[("k", "k"), ("w", "w")]
    )
    assert padded.rows == plain.rows
    assert padded.schema.names() == plain.schema.names()


# -- leakage profiles <-> docs/leakage.md ------------------------------------


def test_leakage_profiles_cover_every_engine_and_mode():
    from repro.engines import available_engines

    for engine in available_engines():
        for mode in PADDING_MODES:
            profile = leakage_profile(engine, mode)
            assert "n1" in profile and "n2" in profile
            if mode == "revealed":
                assert "m" in profile
            else:
                assert "m" not in profile and "m_ij_grid" not in profile
    with pytest.raises(KeyError, match="no leakage profile"):
        leakage_profile("gpu")


def test_leakage_doc_mentions_every_profile_symbol():
    """docs/leakage.md is the prose twin of security.LEAKAGE_PROFILES."""
    doc = (
        pathlib.Path(__file__).resolve().parent.parent / "docs" / "leakage.md"
    ).read_text(encoding="utf-8")
    for (engine, mode), symbols in LEAKAGE_PROFILES.items():
        assert engine in doc and mode in doc
        for symbol in symbols:
            assert f"`{symbol}`" in doc, f"docs/leakage.md missing `{symbol}`"


def test_leakage_doc_covers_the_service_layer_symbols():
    """The "what repetition reveals" section is SERVICE_LEAKAGE's prose twin."""
    doc = (
        pathlib.Path(__file__).resolve().parent.parent / "docs" / "leakage.md"
    ).read_text(encoding="utf-8")
    assert "What repetition reveals" in doc
    for symbol in SERVICE_LEAKAGE:
        assert f"`{symbol}`" in doc, f"docs/leakage.md missing `{symbol}`"
