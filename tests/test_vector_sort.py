"""Vectorised bitonic sort over struct-of-arrays tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InputError
from repro.obliv.network import is_valid_schedule
from repro.vector.sort import (
    is_sorted_by,
    lexicographic_greater,
    stage_pairs,
    vector_bitonic_sort,
)


def _table(**cols):
    return {k: np.asarray(v, dtype=np.int64) for k, v in cols.items()}


def test_single_key_sort():
    table = vector_bitonic_sort(_table(k=[3, 1, 2, 0]), [("k", True)])
    assert table["k"].tolist() == [0, 1, 2, 3]


def test_payload_moves_with_keys():
    table = vector_bitonic_sort(
        _table(k=[2, 0, 1], v=[20, 0, 10]), [("k", True)]
    )
    assert table["v"].tolist() == [0, 10, 20]


def test_descending_key():
    table = vector_bitonic_sort(_table(k=[1, 3, 2]), [("k", False)])
    assert table["k"].tolist() == [3, 2, 1]


def test_two_key_lexicographic():
    table = vector_bitonic_sort(
        _table(a=[1, 0, 1, 0], b=[0, 1, 1, 0]), [("a", True), ("b", False)]
    )
    assert list(zip(table["a"].tolist(), table["b"].tolist())) == [
        (0, 1), (0, 0), (1, 1), (1, 0),
    ]


@pytest.mark.parametrize("n", [0, 1, 2, 3, 5, 8, 13, 32, 100])
def test_arbitrary_sizes_with_padding(n):
    rng = np.random.default_rng(n)
    keys = rng.integers(0, 50, size=n)
    table = vector_bitonic_sort(_table(k=keys), [("k", True)])
    assert table["k"].tolist() == sorted(keys.tolist())
    assert len(table["k"]) == n


@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), max_size=64)
)
@settings(max_examples=60, deadline=None)
def test_matches_python_sorted(values):
    table = vector_bitonic_sort(_table(k=values), [("k", True)])
    assert table["k"].tolist() == sorted(values)


def test_input_not_mutated():
    original = _table(k=[2, 1])
    vector_bitonic_sort(original, [("k", True)])
    assert original["k"].tolist() == [2, 1]


def test_counter_counts_stage_comparators():
    counter = [0]
    vector_bitonic_sort(_table(k=[3, 2, 1, 0]), [("k", True)], counter=counter)
    from repro.obliv.bitonic import comparison_count

    assert counter[0] == comparison_count(4)


def test_stage_pairs_match_scalar_network():
    from repro.obliv.bitonic import bitonic_stages

    for n in (2, 4, 8, 16):
        vec = [sorted(zip(lo.tolist(), hi.tolist())) for lo, hi in stage_pairs(n)]
        ref = [sorted(stage) for stage in bitonic_stages(n)]
        assert vec == ref


def test_stage_pairs_validate():
    for n in (2, 8, 32):
        stages = [list(zip(lo.tolist(), hi.tolist())) for lo, hi in stage_pairs(n)]
        assert is_valid_schedule(n, stages)
    with pytest.raises(InputError):
        list(stage_pairs(6))


def test_is_sorted_by():
    assert is_sorted_by(_table(k=[1, 2, 3]), [("k", True)])
    assert not is_sorted_by(_table(k=[2, 1]), [("k", True)])
    assert is_sorted_by(_table(k=[3, 2]), [("k", False)])
    assert is_sorted_by(_table(k=[]), [("k", True)])


def test_lexicographic_greater_tie_break():
    table = _table(a=[1, 1], b=[5, 2])
    gt = lexicographic_greater(table, [("a", True), ("b", True)], np.array([0]), np.array([1]))
    assert gt.tolist() == [True]
