"""Workload generators and distributions (§6 protocol inputs)."""

import random

import pytest

from repro.baselines.hash_join import join_multiset
from repro.errors import InputError
from repro.workloads.distributions import power_law_sizes, zipf_keys
from repro.workloads.generators import (
    balanced_output,
    matched_class,
    ones_groups,
    paper_protocol_suite,
    pk_fk,
    power_law_groups,
    single_group,
    uniform_random,
)


def _check_m(workload):
    assert len(join_multiset(workload.left, workload.right)) == workload.m


def test_ones_groups_sizes_and_m():
    w = ones_groups(10, seed=1)
    assert w.n1 == w.n2 == w.m == 10
    _check_m(w)


def test_single_group_m_is_product():
    w = single_group(3, 5, seed=1)
    assert w.m == 15
    _check_m(w)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_power_law_groups_consistent(seed):
    w = power_law_groups(20, 24, seed=seed)
    assert w.n1 == 20 and w.n2 == 24
    _check_m(w)


def test_pk_fk_m_equals_foreign_rows():
    w = pk_fk(8, 20, seed=2)
    assert w.m == 20
    _check_m(w)
    keys = [j for j, _ in w.left]
    assert len(set(keys)) == len(keys)  # primary keys unique


def test_pk_fk_zipf_skew():
    w = pk_fk(10, 200, seed=3, zipf_s=1.5)
    from collections import Counter

    counts = Counter(j for j, _ in w.right).most_common()
    assert counts[0][1] > counts[-1][1]  # skew present
    _check_m(w)


def test_pk_fk_requires_primaries():
    with pytest.raises(InputError):
        pk_fk(0, 5)


def test_uniform_random_m_consistent():
    w = uniform_random(15, 15, key_space=4, seed=9)
    _check_m(w)


def test_balanced_output_shape():
    w = balanced_output(64, seed=4)
    assert w.n1 == w.n2 == w.m == 32


def test_protocol_suite_composition():
    suite = paper_protocol_suite(32, seed=0)
    assert len(suite) == 20
    names = [w.name for w in suite]
    assert names[0] == "ones"
    assert names[1] == "single_group"
    assert names.count("power_law") == 18
    for w in suite[:4]:
        _check_m(w)


def test_matched_class_shares_class_parameters():
    members = matched_class(6, 8, seed=5)
    assert len(members) == 4
    assert {(w.n1, w.n2, w.m) for w in members} == {(6, 8, 4)}
    for w in members:
        _check_m(w)


def test_matched_class_minimum_sizes():
    with pytest.raises(InputError):
        matched_class(3, 8)


def test_power_law_sizes_sum_exactly():
    rng = random.Random(0)
    for total in (0, 1, 7, 100):
        sizes = power_law_sizes(total, rng=rng)
        assert sum(sizes) == total
        assert all(s >= 1 for s in sizes) or total == 0


def test_power_law_sizes_negative_rejected():
    with pytest.raises(InputError):
        power_law_sizes(-1)


def test_power_law_favours_small_groups():
    rng = random.Random(1)
    sizes = power_law_sizes(2000, alpha=2.5, rng=rng)
    ones = sum(1 for s in sizes if s == 1)
    assert ones > len(sizes) / 2


def test_zipf_keys_range_and_skew():
    rng = random.Random(2)
    keys = zipf_keys(1000, key_space=10, s=1.5, rng=rng)
    assert all(0 <= k < 10 for k in keys)
    from collections import Counter

    counts = Counter(keys)
    assert counts[0] > counts[9]


def test_zipf_keys_validation():
    with pytest.raises(InputError):
        zipf_keys(5, key_space=0)


def test_workloads_are_deterministic_per_seed():
    assert power_law_groups(16, 16, seed=7).left == power_law_groups(16, 16, seed=7).left
    assert ones_groups(8, seed=1).left != ones_groups(8, seed=2).left
