"""Algorithm 1: the full oblivious join — unit and edge-case tests."""

import pytest

from repro.baselines.hash_join import join_multiset
from repro.core.join import oblivious_join
from repro.core.stats import JoinCounters
from repro.memory.tracer import CountSink, Tracer


def test_figure1_example():
    """The running example: x:{a1,a2}x{u1,u2,u3}, y:{b1,b2,b3}x{v1,v2}."""
    left = [(0, 1), (0, 2), (1, 3), (1, 4), (1, 5)]
    right = [(0, 11), (0, 12), (0, 13), (1, 21), (1, 22)]
    result = oblivious_join(left, right)
    assert result.m == 2 * 3 + 3 * 2
    assert sorted(result.pairs) == join_multiset(left, right)


def test_empty_inputs():
    assert oblivious_join([], []).pairs == []
    assert oblivious_join([(1, 1)], []).pairs == []
    assert oblivious_join([], [(1, 1)]).pairs == []


def test_no_matching_keys():
    result = oblivious_join([(1, 10), (2, 20)], [(3, 30), (4, 40)])
    assert result.m == 0
    assert result.pairs == []


def test_single_pair_match():
    result = oblivious_join([(5, 50)], [(5, 55)])
    assert result.pairs == [(50, 55)]
    assert (result.n1, result.n2, result.m) == (1, 1, 1)


def test_full_cross_product_single_group():
    left = [(7, i) for i in range(3)]
    right = [(7, 10 + i) for i in range(4)]
    result = oblivious_join(left, right)
    assert result.m == 12
    assert sorted(result.pairs) == join_multiset(left, right)


def test_duplicate_rows_multiply():
    left = [(1, 5), (1, 5)]
    right = [(1, 9), (1, 9), (1, 9)]
    result = oblivious_join(left, right)
    assert result.pairs == [(5, 9)] * 6


def test_output_order_is_lexicographic_by_key_then_values():
    left = [(2, 1), (1, 2), (1, 1)]
    right = [(1, 1), (2, 9), (1, 0)]
    result = oblivious_join(left, right)
    # Groups ascend by j; within group, (d1, d2) ascend lexicographically.
    assert result.pairs == [(1, 0), (1, 1), (2, 0), (2, 1), (1, 9)]


def test_result_len_is_m():
    result = oblivious_join([(1, 1), (1, 2)], [(1, 3)])
    assert len(result) == result.m == 2


def test_asymmetric_table_sizes():
    left = [(0, 0)]
    right = [(0, i) for i in range(9)]
    result = oblivious_join(left, right)
    assert result.m == 9
    assert sorted(result.pairs) == join_multiset(left, right)


def test_negative_and_large_values():
    left = [(-5, -(2**40)), (2**40, 1)]
    right = [(-5, 2**40), (2**40, -1)]
    result = oblivious_join(left, right)
    assert sorted(result.pairs) == join_multiset(left, right)


def test_counters_populated():
    counters = JoinCounters()
    oblivious_join([(1, 1), (2, 2)], [(1, 3), (2, 4)], counters=counters)
    assert counters.total_comparisons > 0
    assert counters.total_seconds > 0
    rows = counters.table3_rows()
    assert len(rows) == 4
    shares = [share for _, _, share in rows]
    assert all(0.0 <= s <= 1.0 for s in shares)
    assert 0.0 < sum(shares) <= 1.0  # linear passes take the rest


def test_count_sink_sees_every_phase():
    sink = CountSink()
    oblivious_join([(1, 1), (1, 2)], [(1, 3)], tracer=Tracer(sink))
    labels = set(sink.reads) | set(sink.writes)
    for expected in (
        "augment:sort(j,tid)",
        "augment:fill_dimensions",
        "augment:sort(tid,j,d)",
        "distribute:sort(f)",
        "distribute:route",
        "expand:fill",
        "align:sort(j,ii)",
        "zip",
    ):
        assert any(expected in label for label in labels), expected


def test_join_is_deterministic():
    left = [(i % 3, i) for i in range(9)]
    right = [(i % 3, i * 7) for i in range(6)]
    first = oblivious_join(left, right).pairs
    second = oblivious_join(left, right).pairs
    assert first == second
