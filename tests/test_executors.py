"""The executor layer: registry, shared-memory transport, async overlap,
and the contract that substrates cannot change a single output bit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines import get_engine
from repro.errors import InputError
from repro.plan import (
    AsyncExecutor,
    InlineExecutor,
    PoolExecutor,
    available_executors,
    get_executor,
    resolve_executor,
    run_tasks,
)
from repro.plan.executors import _decode, _pack

#: One executor of each substrate; pool/async at 2 workers to force the
#: real dispatch paths (persistent pools are shared across the suite).
EXECUTOR_PARAMS = [
    pytest.param(InlineExecutor(), id="inline"),
    pytest.param(PoolExecutor(workers=2), id="pool"),
    pytest.param(AsyncExecutor(workers=2), id="async-pool"),
    pytest.param(AsyncExecutor(workers=1), id="async-threads"),
]


def _sum_task(payload):
    """Module-level (picklable) task: fold a nested payload to one int."""
    block, real, extra = payload
    return int(block["j"][:real].sum() + block["d"][:real].sum()) + sum(extra)


def _shape_task(payload):
    """Report the dtypes/shapes/writability a worker actually received."""
    array = payload["array"]
    return (str(array.dtype), array.shape, bool(array.flags.writeable), array.tolist())


# -- registry ----------------------------------------------------------------


def test_registry_lists_all_three():
    assert available_executors() == ["async", "inline", "pool"]


def test_get_executor_resolves_names_and_rejects_unknown():
    assert get_executor("inline").name == "inline"
    assert get_executor("pool", workers=3).workers == 3
    instance = AsyncExecutor()
    assert get_executor(instance) is instance
    with pytest.raises(InputError, match="unknown executor"):
        get_executor("gpu")


def test_resolve_executor_default_rule():
    assert resolve_executor(None, workers=1).name == "inline"
    assert resolve_executor(None, workers=2).name == "pool"
    assert resolve_executor("async", workers=2).name == "async"
    with pytest.raises(InputError, match="worker count"):
        resolve_executor(None, workers=0)


def test_run_tasks_shim_matches_inline():
    payloads = [
        ({"j": np.arange(4, dtype=np.int64), "d": np.ones(4, dtype=np.int64)}, 3, [i])
        for i in range(5)
    ]
    assert run_tasks(_sum_task, payloads, workers=1) == [
        _sum_task(p) for p in payloads
    ]


# -- transport ---------------------------------------------------------------


@pytest.mark.parametrize("executor", EXECUTOR_PARAMS)
def test_every_executor_maps_in_payload_order(executor):
    payloads = [
        (
            {
                "j": np.arange(10, dtype=np.int64) * (index + 1),
                "d": np.full(10, index, dtype=np.int64),
            },
            7,
            [index, index],
        )
        for index in range(6)
    ]
    expected = [_sum_task(payload) for payload in payloads]
    assert executor.map(_sum_task, payloads) == expected


def test_async_executor_works_inside_a_running_event_loop():
    """map() is blocking by contract but must not crash when the caller is
    already inside asyncio (the streaming-consumer scenario)."""
    import asyncio

    executor = AsyncExecutor(workers=1)
    payloads = [
        ({"j": np.arange(4, dtype=np.int64), "d": np.ones(4, dtype=np.int64)}, 2, [i])
        for i in range(4)
    ]
    expected = [_sum_task(payload) for payload in payloads]

    async def drive():
        return executor.map(_sum_task, payloads)

    assert asyncio.run(drive()) == expected


def test_pool_ships_bool_and_int_columns_faithfully():
    executor = PoolExecutor(workers=2)
    payloads = [
        {"array": np.array([True, False, True])},
        {"array": np.arange(6, dtype=np.int64).reshape(2, 3)},
        {"array": np.zeros(0, dtype=np.int64)},  # zero-size ships inline
    ]
    results = executor.map(_shape_task, payloads)
    assert results[0] == ("bool", (3,), False, [True, False, True])
    assert results[1] == ("int64", (2, 3), False, [[0, 1, 2], [3, 4, 5]])
    # Zero-size arrays bypass shared memory, so they stay writable.
    assert results[2][:2] == ("int64", (0,))


def test_pack_writes_each_distinct_array_once():
    shared = np.arange(100, dtype=np.int64)
    other = np.ones(3, dtype=np.int64)
    segment, encoded = _pack([(shared, other), (shared, 1), (shared,)])
    try:
        assert segment is not None
        refs = {ref.offset for payload in encoded for ref in payload if hasattr(ref, "offset")}
        assert len(refs) == 2  # shared written once, other once
        decoded = [_decode(payload) for payload in encoded]
        assert np.array_equal(decoded[0][0], shared)
        assert np.array_equal(decoded[0][1], other)
        assert decoded[1][1] == 1
        assert not decoded[2][0].flags.writeable
    finally:
        segment.close()
        segment.unlink()


def test_pack_without_arrays_creates_no_segment():
    segment, encoded = _pack([(1, 2), (3, 4)])
    assert segment is None
    assert encoded == [(1, 2), (3, 4)]


# -- engine integration ------------------------------------------------------

LEFT = [(k % 5, k) for k in range(40)]
RIGHT = [(k % 7, 2 * k) for k in range(40)]
TABLES = [LEFT[:12], RIGHT[:12], [(d, j) for j, d in RIGHT[:6]]]
KEYS = [(0, 0), (3, 0)]
MASK = [k % 3 != 0 for k in range(40)]
COLUMNS = [([j for j, _ in LEFT], False)]


@pytest.mark.parametrize("executor", ["inline", "pool", "async"])
def test_every_workload_is_bit_identical_across_executors(executor):
    """The acceptance contract: executors change wall-clock, not outputs."""
    reference = get_engine("vector")
    engine = get_engine("sharded", shards=3, workers=2, executor=executor)
    assert engine.join(LEFT, RIGHT).pairs == reference.join(LEFT, RIGHT).pairs
    assert (
        engine.multiway_join(TABLES, KEYS).rows
        == reference.multiway_join(TABLES, KEYS).rows
    )
    assert engine.aggregate(LEFT, RIGHT) == reference.aggregate(LEFT, RIGHT)
    assert engine.group_by(LEFT) == reference.group_by(LEFT)
    assert engine.filter_indices(MASK) == reference.filter_indices(MASK)
    assert engine.order_permutation(COLUMNS) == reference.order_permutation(COLUMNS)


@pytest.mark.parametrize("executor", ["inline", "pool", "async"])
def test_padded_workloads_match_across_executors(executor):
    reference = get_engine("traced", padding="worst_case")
    engine = get_engine(
        "sharded", shards=2, workers=2, executor=executor, padding="worst_case"
    )
    left, right = LEFT[:10], RIGHT[:10]
    assert engine.join(left, right).pairs == reference.join(left, right).pairs
    tables = [left[:6], right[:6], [(1, 2), (2, 3)]]
    assert (
        engine.multiway_join(tables, KEYS).rows
        == reference.multiway_join(tables, KEYS).rows
    )
    assert engine.filter_indices(MASK[:10]) == reference.filter_indices(MASK[:10])


def test_engine_executor_option_roundtrip():
    engine = get_engine("sharded", executor="async", workers=2, shards=3)
    assert engine.executor.name == "async"
    copy = engine.with_options(workers=4)
    assert copy.executor.name == "async" and copy.workers == 4
    repadded = engine.with_options(executor="pool")
    assert repadded.executor.name == "pool"
    assert "executor" in type(engine).OPTIONS


def test_engine_rejects_unknown_executor():
    with pytest.raises(InputError, match="unknown executor"):
        get_engine("sharded", executor="gpu")
    with pytest.raises(InputError, match="engine options"):
        get_engine("vector", executor="pool")


def test_db_layer_threads_executor_through():
    from repro.db.query import ObliviousEngine
    from repro.db.schema import Schema
    from repro.db.table import DBTable

    schema = Schema.of("k:int", "v:int")
    left = DBTable(schema, [(k % 3, k) for k in range(9)])
    right = DBTable(Schema.of("k:int", "w:int"), [(k % 3, 10 * k) for k in range(9)])
    sharded = ObliviousEngine(engine="sharded", executor="async", shards=2)
    plain = ObliviousEngine(engine="traced")
    assert (
        sharded.join(left, right, on=("k", "k")).rows
        == plain.join(left, right, on=("k", "k")).rows
    )


def test_cli_join_accepts_executor_flag(tmp_path, capsys):
    left = tmp_path / "left.csv"
    right = tmp_path / "right.csv"
    left.write_text("k,v\n1,10\n2,20\n", encoding="utf-8")
    right.write_text("k,w\n1,5\n1,6\n", encoding="utf-8")
    from repro.cli import main

    assert (
        main(
            ["join", str(left), str(right), "--left-on", "k", "--right-on", "k",
             "--engine", "sharded", "--executor", "async"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert out.splitlines()[0] == "l.k,v,r.k,w"
    assert len(out.splitlines()) == 3
