"""The executor layer: registry, shared-memory transport, async overlap,
and the contract that substrates cannot change a single output bit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engines import get_engine
from repro.errors import InputError
from repro.plan import (
    AsyncExecutor,
    InlineExecutor,
    PoolExecutor,
    ShuffleExecutor,
    available_executors,
    completion_stream,
    get_executor,
    resolve_executor,
    run_tasks,
    submit_task,
)
from repro.plan.executors import (
    _decode,
    _pack,
    adopt_segments,
    materialize_columns,
    publish_columns,
    release_segments,
)

#: One executor of each substrate; pool/async at 2 workers to force the
#: real dispatch paths (persistent pools are shared across the suite).
EXECUTOR_PARAMS = [
    pytest.param(InlineExecutor(), id="inline"),
    pytest.param(PoolExecutor(workers=2), id="pool"),
    pytest.param(AsyncExecutor(workers=2), id="async-pool"),
    pytest.param(AsyncExecutor(workers=1), id="async-threads"),
    pytest.param(ShuffleExecutor(seed=3), id="shuffle"),
]


def _sum_task(payload):
    """Module-level (picklable) task: fold a nested payload to one int."""
    block, real, extra = payload
    return int(block["j"][:real].sum() + block["d"][:real].sum()) + sum(extra)


def _shape_task(payload):
    """Report the dtypes/shapes/writability a worker actually received."""
    array = payload["array"]
    return (str(array.dtype), array.shape, bool(array.flags.writeable), array.tolist())


# -- registry ----------------------------------------------------------------


def test_registry_lists_all_four():
    assert available_executors() == ["async", "inline", "pool", "shuffle"]


def test_get_executor_resolves_names_and_rejects_unknown():
    assert get_executor("inline").name == "inline"
    assert get_executor("pool", workers=3).workers == 3
    instance = AsyncExecutor()
    assert get_executor(instance) is instance
    with pytest.raises(InputError, match="unknown executor"):
        get_executor("gpu")


def test_resolve_executor_default_rule():
    assert resolve_executor(None, workers=1).name == "inline"
    assert resolve_executor(None, workers=2).name == "pool"
    assert resolve_executor("async", workers=2).name == "async"
    with pytest.raises(InputError, match="worker count"):
        resolve_executor(None, workers=0)


def test_run_tasks_shim_matches_inline():
    payloads = [
        ({"j": np.arange(4, dtype=np.int64), "d": np.ones(4, dtype=np.int64)}, 3, [i])
        for i in range(5)
    ]
    assert run_tasks(_sum_task, payloads, workers=1) == [
        _sum_task(p) for p in payloads
    ]


# -- transport ---------------------------------------------------------------


@pytest.mark.parametrize("executor", EXECUTOR_PARAMS)
def test_every_executor_maps_in_payload_order(executor):
    payloads = [
        (
            {
                "j": np.arange(10, dtype=np.int64) * (index + 1),
                "d": np.full(10, index, dtype=np.int64),
            },
            7,
            [index, index],
        )
        for index in range(6)
    ]
    expected = [_sum_task(payload) for payload in payloads]
    assert executor.map(_sum_task, payloads) == expected


def test_async_executor_works_inside_a_running_event_loop():
    """map() is blocking by contract but must not crash when the caller is
    already inside asyncio (the streaming-consumer scenario)."""
    import asyncio

    executor = AsyncExecutor(workers=1)
    payloads = [
        ({"j": np.arange(4, dtype=np.int64), "d": np.ones(4, dtype=np.int64)}, 2, [i])
        for i in range(4)
    ]
    expected = [_sum_task(payload) for payload in payloads]

    async def drive():
        return executor.map(_sum_task, payloads)

    assert asyncio.run(drive()) == expected


def test_pool_ships_bool_and_int_columns_faithfully():
    executor = PoolExecutor(workers=2)
    payloads = [
        {"array": np.array([True, False, True])},
        {"array": np.arange(6, dtype=np.int64).reshape(2, 3)},
        {"array": np.zeros(0, dtype=np.int64)},  # zero-size ships inline
    ]
    results = executor.map(_shape_task, payloads)
    assert results[0] == ("bool", (3,), False, [True, False, True])
    assert results[1] == ("int64", (2, 3), False, [[0, 1, 2], [3, 4, 5]])
    # Zero-size arrays bypass shared memory, so they stay writable.
    assert results[2][:2] == ("int64", (0,))


def test_pack_writes_each_distinct_array_once():
    shared = np.arange(100, dtype=np.int64)
    other = np.ones(3, dtype=np.int64)
    segment, encoded = _pack([(shared, other), (shared, 1), (shared,)])
    try:
        assert segment is not None
        refs = {ref.offset for payload in encoded for ref in payload if hasattr(ref, "offset")}
        assert len(refs) == 2  # shared written once, other once
        decoded = [_decode(payload) for payload in encoded]
        assert np.array_equal(decoded[0][0], shared)
        assert np.array_equal(decoded[0][1], other)
        assert decoded[1][1] == 1
        assert not decoded[2][0].flags.writeable
    finally:
        segment.close()
        segment.unlink()


def test_pack_without_arrays_creates_no_segment():
    segment, encoded = _pack([(1, 2), (3, 4)])
    assert segment is None
    assert encoded == [(1, 2), (3, 4)]


# -- transport reporting (the path actually taken) ----------------------------


def _payloads(count, rows=8):
    return [
        (
            {
                "j": np.arange(rows, dtype=np.int64) * (index + 1),
                "d": np.full(rows, index, dtype=np.int64),
            },
            rows - 1,
            [index],
        )
        for index in range(count)
    ]


def test_pool_transport_reflects_the_path_taken():
    # workers=1 never crosses a process boundary, whatever the batch size.
    assert PoolExecutor(workers=1).transport == "none"
    executor = PoolExecutor(workers=2)
    assert executor.transport == "shared_memory"  # configured default
    executor.map(_sum_task, _payloads(1))  # single payload -> inline shortcut
    assert executor.transport == "none"
    executor.map(_sum_task, _payloads(4))
    assert executor.transport == "shared_memory"


def test_async_transport_reflects_the_path_taken():
    assert AsyncExecutor(workers=1).transport == "none"  # threads, in-memory
    executor = AsyncExecutor(workers=2)
    assert executor.transport == "shared_memory"  # configured default
    executor.map(_sum_task, _payloads(1))  # <=1 shortcut runs inline
    assert executor.transport == "none"
    executor.map(_sum_task, _payloads(4))
    assert executor.transport == "shared_memory"


def test_async_pool_dispatch_uses_shared_memory_not_pickle():
    """The workers>1 async path must ship columns through shm like pool:
    a worker sees a read-only view (pickled arrays come back writable)."""
    executor = AsyncExecutor(workers=2)
    payloads = [{"array": np.arange(6, dtype=np.int64) + i} for i in range(4)]
    results = executor.map(_shape_task, payloads)
    assert all(result[2] is False for result in results)
    assert [result[3] for result in results] == [
        (np.arange(6) + i).tolist() for i in range(4)
    ]


# -- the ordered-completion seam ----------------------------------------------


@pytest.mark.parametrize("executor", EXECUTOR_PARAMS)
def test_imap_yields_every_result_with_its_index(executor):
    payloads = _payloads(6)
    expected = {index: _sum_task(payload) for index, payload in enumerate(payloads)}
    got = dict(completion_stream(executor, _sum_task, payloads))
    assert got == expected


@pytest.mark.parametrize("executor", EXECUTOR_PARAMS)
def test_submit_returns_a_blocking_completion(executor):
    payloads = _payloads(3)
    completions = [submit_task(executor, _sum_task, p) for p in payloads]
    assert [c.result() for c in completions] == [_sum_task(p) for p in payloads]


def test_shuffle_executor_completes_in_adversarial_order():
    executor = ShuffleExecutor(seed=1)
    payloads = _payloads(8)
    order = [index for index, _ in completion_stream(executor, _sum_task, payloads)]
    assert sorted(order) == list(range(8))
    assert order != list(range(8))  # seed 1 scrambles 8 tasks
    # ... while map still returns payload order (the executor contract).
    assert executor.map(_sum_task, payloads) == [_sum_task(p) for p in payloads]


def test_completion_stream_falls_back_to_map_only_executors():
    class MapOnly:
        name = "maponly"
        transport = "none"

        def map(self, task, payloads):
            return [task(p) for p in payloads]

    payloads = _payloads(4)
    got = list(completion_stream(MapOnly(), _sum_task, payloads))
    assert got == [(i, _sum_task(p)) for i, p in enumerate(payloads)]
    assert submit_task(MapOnly(), _sum_task, payloads[0]).result() == _sum_task(
        payloads[0]
    )


# -- the cross-dispatch column cache ------------------------------------------


def _publish_task(payload):
    """Worker task: double a column and park the result in shared memory."""
    columns = {"x": payload["x"] * 2}
    return publish_columns(columns)


def _consume_refs_task(payload):
    """Worker task reading a *published* run from an earlier dispatch."""
    return int(payload["run"]["x"].sum())


def test_published_runs_cross_dispatches_without_a_parent_round_trip():
    executor = PoolExecutor(workers=2)
    array = np.arange(10, dtype=np.int64)
    encoded, segment = submit_task(
        executor, _publish_task, {"x": array}
    ).result()
    assert segment is not None
    adopt_segments([segment])  # crash-safe tracker booking on receipt
    try:
        # The parent holds refs, not bytes; a later dispatch consumes them.
        total = submit_task(
            executor, _consume_refs_task, {"run": encoded}
        ).result()
        assert total == int((array * 2).sum())
        materialized = materialize_columns(encoded)
        assert materialized["x"].tolist() == (array * 2).tolist()
    finally:
        release_segments([segment])
    release_segments([segment])  # double release is tolerated


def test_publish_without_arrays_creates_no_segment():
    encoded, segment = publish_columns({"empty": np.zeros(0, dtype=np.int64)})
    assert segment is None
    assert materialize_columns(encoded)["empty"].size == 0


# -- engine integration ------------------------------------------------------

LEFT = [(k % 5, k) for k in range(40)]
RIGHT = [(k % 7, 2 * k) for k in range(40)]
TABLES = [LEFT[:12], RIGHT[:12], [(d, j) for j, d in RIGHT[:6]]]
KEYS = [(0, 0), (3, 0)]
MASK = [k % 3 != 0 for k in range(40)]
COLUMNS = [([j for j, _ in LEFT], False)]


@pytest.mark.parametrize("executor", ["inline", "pool", "async", "shuffle"])
def test_every_workload_is_bit_identical_across_executors(executor):
    """The acceptance contract: executors change wall-clock, not outputs."""
    reference = get_engine("vector")
    engine = get_engine("sharded", shards=3, workers=2, executor=executor)
    assert engine.join(LEFT, RIGHT).pairs == reference.join(LEFT, RIGHT).pairs
    assert (
        engine.multiway_join(TABLES, KEYS).rows
        == reference.multiway_join(TABLES, KEYS).rows
    )
    assert engine.aggregate(LEFT, RIGHT) == reference.aggregate(LEFT, RIGHT)
    assert engine.group_by(LEFT) == reference.group_by(LEFT)
    assert engine.filter_indices(MASK) == reference.filter_indices(MASK)
    assert engine.order_permutation(COLUMNS) == reference.order_permutation(COLUMNS)


@pytest.mark.parametrize("executor", ["inline", "pool", "async", "shuffle"])
def test_padded_workloads_match_across_executors(executor):
    reference = get_engine("traced", padding="worst_case")
    engine = get_engine(
        "sharded", shards=2, workers=2, executor=executor, padding="worst_case"
    )
    left, right = LEFT[:10], RIGHT[:10]
    assert engine.join(left, right).pairs == reference.join(left, right).pairs
    tables = [left[:6], right[:6], [(1, 2), (2, 3)]]
    assert (
        engine.multiway_join(tables, KEYS).rows
        == reference.multiway_join(tables, KEYS).rows
    )
    assert engine.filter_indices(MASK[:10]) == reference.filter_indices(MASK[:10])


def test_engine_executor_option_roundtrip():
    engine = get_engine("sharded", executor="async", workers=2, shards=3)
    assert engine.executor.name == "async"
    copy = engine.with_options(workers=4)
    assert copy.executor.name == "async" and copy.workers == 4
    repadded = engine.with_options(executor="pool")
    assert repadded.executor.name == "pool"
    assert "executor" in type(engine).OPTIONS


def test_engine_rejects_unknown_executor():
    with pytest.raises(InputError, match="unknown executor"):
        get_engine("sharded", executor="gpu")
    with pytest.raises(InputError, match="engine options"):
        get_engine("vector", executor="pool")


def test_db_layer_threads_executor_through():
    from repro.db.query import ObliviousEngine
    from repro.db.schema import Schema
    from repro.db.table import DBTable

    schema = Schema.of("k:int", "v:int")
    left = DBTable(schema, [(k % 3, k) for k in range(9)])
    right = DBTable(Schema.of("k:int", "w:int"), [(k % 3, 10 * k) for k in range(9)])
    sharded = ObliviousEngine(engine="sharded", executor="async", shards=2)
    plain = ObliviousEngine(engine="traced")
    assert (
        sharded.join(left, right, on=("k", "k")).rows
        == plain.join(left, right, on=("k", "k")).rows
    )


def test_cli_join_accepts_executor_flag(tmp_path, capsys):
    left = tmp_path / "left.csv"
    right = tmp_path / "right.csv"
    left.write_text("k,v\n1,10\n2,20\n", encoding="utf-8")
    right.write_text("k,w\n1,5\n1,6\n", encoding="utf-8")
    from repro.cli import main

    assert (
        main(
            ["join", str(left), str(right), "--left-on", "k", "--right-on", "k",
             "--engine", "sharded", "--executor", "async"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert out.splitlines()[0] == "l.k,v,r.k,w"
    assert len(out.splitlines()) == 3
