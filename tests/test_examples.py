"""Every example script must run cleanly (they contain their own asserts)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = [p.name for p in EXAMPLES]
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"
