"""The Figure 6 type checker: rule-by-rule behaviour."""

import pytest

from repro.errors import TypingError
from repro.typesys import (
    ArrayRead,
    ArrayWrite,
    Assign,
    BinOp,
    Const,
    For,
    If,
    Label,
    Program,
    Skip,
    Var,
    check_program,
    is_well_typed,
    seq,
)
from repro.typesys.labels import flows_to, join
from repro.typesys.programs import LEAKY, WELL_TYPED
from repro.typesys.traces import AccessEvent, RepeatTrace

L, H = Label.L, Label.H


def _prog(body, variables=None, arrays=None):
    return Program("t", variables or {}, arrays or {}, body)


def test_lattice_join_and_order():
    assert join(L, L) is L
    assert join(L, H) is H
    assert join(H, H) is H
    assert flows_to(L, H) and flows_to(L, L) and flows_to(H, H)
    assert not flows_to(H, L)


def test_t_const_and_t_var():
    program = _prog(
        seq(Assign("x", Const(1)), Assign("y", Var("x"))),
        variables={"x": L, "y": H},
    )
    assert check_program(program) == ()


def test_t_op_joins_labels():
    program = _prog(
        seq(Assign("lo", BinOp("+", Var("hi"), Const(1)))),
        variables={"hi": H, "lo": L},
    )
    with pytest.raises(TypingError, match="T-Asgn"):
        check_program(program)


def test_t_asgn_rejects_h_to_l():
    program = _prog(seq(Assign("x", Var("s"))), variables={"x": L, "s": H})
    with pytest.raises(TypingError, match="T-Asgn"):
        check_program(program)


def test_t_read_emits_trace_event():
    program = _prog(
        seq(ArrayRead("x", "A", Const(0))),
        variables={"x": H},
        arrays={"A": H},
    )
    assert check_program(program) == (AccessEvent("R", "A", "0"),)


def test_t_read_rejects_secret_index():
    program = _prog(
        seq(ArrayRead("x", "A", Var("s"))),
        variables={"x": H, "s": H},
        arrays={"A": H},
    )
    with pytest.raises(TypingError, match="T-Read"):
        check_program(program)


def test_t_read_rejects_h_array_into_l_var():
    program = _prog(
        seq(ArrayRead("x", "A", Const(0))),
        variables={"x": L},
        arrays={"A": H},
    )
    with pytest.raises(TypingError, match="T-Read"):
        check_program(program)


def test_t_write_emits_trace_event():
    program = _prog(
        seq(ArrayWrite("A", Const(2), Const(7))),
        arrays={"A": H},
    )
    assert check_program(program) == (AccessEvent("W", "A", "2"),)


def test_t_write_rejects_h_value_into_l_array():
    program = _prog(
        seq(ArrayWrite("A", Const(0), Var("s"))),
        variables={"s": H},
        arrays={"A": L},
    )
    with pytest.raises(TypingError, match="T-Write"):
        check_program(program)


def test_t_cond_requires_equal_traces():
    ok = _prog(
        seq(
            If(
                Var("s"),
                seq(ArrayWrite("A", Const(0), Const(1))),
                seq(ArrayWrite("A", Const(0), Const(2))),
            )
        ),
        variables={"s": H},
        arrays={"A": H},
    )
    assert len(check_program(ok)) == 1

    bad = _prog(
        seq(
            If(
                Var("s"),
                seq(ArrayWrite("A", Const(0), Const(1))),
                seq(ArrayWrite("A", Const(1), Const(1))),
            )
        ),
        variables={"s": H},
        arrays={"A": H},
    )
    with pytest.raises(TypingError, match="T-Cond"):
        check_program(bad)


def test_t_cond_pc_blocks_implicit_flows():
    program = _prog(
        seq(If(Var("s"), seq(Assign("i", Const(1))), seq(Assign("i", Const(2))))),
        variables={"s": H, "i": L},
    )
    with pytest.raises(TypingError, match="T-Asgn"):
        check_program(program)


def test_t_for_repeats_body_trace():
    program = _prog(
        seq(For("i", Var("n"), seq(ArrayRead("x", "A", Var("i"))))),
        variables={"n": L, "x": H},
        arrays={"A": H},
    )
    trace = check_program(program)
    assert trace == (RepeatTrace(body=(AccessEvent("R", "A", "i"),), count="n"),)


def test_t_for_rejects_secret_bound():
    program = _prog(
        seq(For("i", Var("s"), seq(Skip()))),
        variables={"s": H},
    )
    with pytest.raises(TypingError, match="T-For"):
        check_program(program)


def test_loop_variable_scoped_and_low():
    program = _prog(
        seq(
            For("i", Var("n"), seq(ArrayWrite("A", Var("i"), Const(0)))),
            # i out of scope after the loop:
            Assign("x", Var("i")),
        ),
        variables={"n": L, "x": L},
        arrays={"A": H},
    )
    with pytest.raises(TypingError, match="undeclared"):
        check_program(program)


def test_undeclared_array_rejected():
    program = _prog(seq(ArrayWrite("Z", Const(0), Const(0))))
    with pytest.raises(TypingError, match="undeclared array"):
        check_program(program)


def test_all_join_kernels_are_well_typed():
    for make in WELL_TYPED:
        assert is_well_typed(make()), make().name


def test_all_leaky_programs_are_rejected():
    for make in LEAKY:
        assert not is_well_typed(make()), make().name


def test_empty_trace_for_pure_local_program():
    program = _prog(
        seq(Assign("a", Const(1)), Assign("b", BinOp("*", Var("a"), Const(2)))),
        variables={"a": L, "b": L},
    )
    assert check_program(program) == ()
