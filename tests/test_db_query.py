"""The oblivious query engine: relational integration tests."""

import pytest

from repro.db.query import ObliviousEngine
from repro.db.table import DBTable
from repro.errors import SchemaError
from repro.memory.tracer import HashSink, Tracer


@pytest.fixture
def engine():
    return ObliviousEngine()


@pytest.fixture
def patients():
    return DBTable.from_rows(
        ["pid:int", "name:str", "age:int"],
        [(1, "ana", 34), (2, "bo", 41), (3, "cy", 29)],
    )


@pytest.fixture
def prescriptions():
    return DBTable.from_rows(
        ["pid:int", "drug:str", "cost:int"],
        [(1, "aspirin", 5), (1, "statin", 30), (3, "insulin", 90), (9, "orphan", 1)],
    )


def test_join_produces_combined_rows(engine, patients, prescriptions):
    joined = engine.join(patients, prescriptions, on=("pid", "pid"))
    assert len(joined) == 3
    assert joined.schema.names() == [
        "l.pid", "name", "age", "r.pid", "drug", "cost",
    ]
    drugs = sorted(row[4] for row in joined.rows)
    assert drugs == ["aspirin", "insulin", "statin"]


def test_join_on_string_keys(engine):
    left = DBTable.from_rows(["city:str", "pop:int"], [("ams", 1), ("ber", 2)])
    right = DBTable.from_rows(["city:str", "code:int"], [("ber", 49), ("par", 33)])
    joined = engine.join(left, right, on=("city", "city"))
    assert len(joined) == 1
    assert joined.rows[0][0] == "ber"


def test_join_empty_result(engine, patients):
    other = DBTable.from_rows(["pid:int", "x:int"], [(99, 0)])
    assert len(engine.join(patients, other, on=("pid", "pid"))) == 0


def test_filter_reveals_only_count(engine, patients):
    filtered = engine.filter(patients, lambda row: row[2] >= 34)
    assert sorted(r[1] for r in filtered.rows) == ["ana", "bo"]
    assert filtered.schema == patients.schema


def test_filter_preserves_row_order(engine, patients):
    filtered = engine.filter(patients, lambda row: row[0] != 2)
    assert [r[0] for r in filtered.rows] == [1, 3]


def test_filter_empty_table(engine):
    empty = DBTable.from_rows(["x:int"], [])
    assert len(engine.filter(empty, lambda r: True)) == 0


def test_order_by_single_and_multi(engine, patients):
    by_age = engine.order_by(patients, [("age", True)])
    assert [r[2] for r in by_age.rows] == [29, 34, 41]
    by_age_desc = engine.order_by(patients, [("age", False)])
    assert [r[2] for r in by_age_desc.rows] == [41, 34, 29]


def test_order_by_string_column(engine, patients):
    by_name = engine.order_by(patients, [("name", True)])
    assert [r[1] for r in by_name.rows] == ["ana", "bo", "cy"]


def test_order_by_no_columns_is_identity(patients):
    for name in ("traced", "vector", "sharded"):
        unchanged = ObliviousEngine(engine=name).order_by(patients, [])
        assert unchanged.rows == patients.rows


def test_group_by_aggregates(engine, prescriptions):
    grouped = engine.group_by(prescriptions, key="pid", value="cost")
    by_key = {row[0]: row for row in grouped.rows}
    assert by_key[1] == (1, 2, 35, 5, 30)
    assert by_key[3] == (3, 1, 90, 90, 90)


def test_group_by_string_key(engine):
    table = DBTable.from_rows(
        ["dept:str", "salary:int"],
        [("eng", 100), ("eng", 120), ("hr", 90)],
    )
    grouped = engine.group_by(table, key="dept", value="salary")
    by_dept = {row[0]: row for row in grouped.rows}
    assert by_dept["eng"][1] == 2 and by_dept["eng"][2] == 220
    assert by_dept["hr"][4] == 90


def test_group_by_requires_int_value(engine, patients):
    with pytest.raises(SchemaError):
        engine.group_by(patients, key="pid", value="name")


def test_join_aggregate_without_materialisation(engine, patients, prescriptions):
    agg = engine.join_aggregate(
        patients, prescriptions, on=("pid", "pid"), values=("age", "cost")
    )
    by_key = {row[0]: row for row in agg.rows}
    # pid 1: two joined rows; sum(age) = 68; sum(cost) = 35.
    assert by_key[1][1] == 2 and by_key[1][2] == 68 and by_key[1][3] == 35
    assert 9 not in by_key  # orphan prescription has no patient


def test_multiway_join_chain(engine):
    customers = DBTable.from_rows(["cid:int", "cname:str"], [(1, "ana"), (2, "bo")])
    orders = DBTable.from_rows(["oid:int", "cid:int"], [(10, 1), (11, 1), (12, 2)])
    lines = DBTable.from_rows(["oid:int", "sku:str"], [(10, "a"), (12, "b"), (12, "c")])
    result = engine.multiway_join(
        [customers, orders, lines], on=[("cid", "cid"), ("oid", "oid")]
    )
    assert len(result) == 3
    names = sorted(row[1] for row in result.rows)
    assert names == ["ana", "bo", "bo"]


def test_multiway_validation(engine, patients):
    with pytest.raises(SchemaError):
        engine.multiway_join([patients], on=[])


def test_engine_operations_share_one_tracer():
    sink = HashSink()
    engine = ObliviousEngine(tracer=Tracer(sink))
    left = DBTable.from_rows(["k:int", "v:int"], [(1, 1)])
    right = DBTable.from_rows(["k:int", "w:int"], [(1, 2)])
    engine.join(left, right, on=("k", "k"))
    assert sink.count > 0


def test_pipeline_runs_chain_and_exposes_full_dag_plan():
    """Regression: ``stats.plan`` must expose the *executed* DAG end to
    end — every stage's operator nodes plus the streaming channel edges —
    not just the final operator's sub-plan."""
    source = DBTable.from_rows(
        ["k:int", "v:int"], [(1, 10), (2, 20), (1, 30), (3, 40), (2, 50)]
    )
    right = DBTable.from_rows(["k:int", "w:int"], [(1, 5), (2, 6), (1, 7)])
    for name in ("traced", "vector", "sharded"):
        engine = ObliviousEngine(engine=name)
        result = engine.pipeline(
            source,
            [("filter", lambda row: row[1] >= 20), ("join", right), ("group_by",)],
        )
        by_key = {row[0]: row for row in result.table.rows}
        # Survivors (2,20), (1,30), (3,40), (2,50) join 1 + 2 + 0 + 1 ways.
        assert by_key[30] == (30, 2, 12, 5, 7)
        assert by_key[20][1] == 1 and by_key[50][1] == 1
        assert result.sizes == [5, 4, 4, 3]
        assert result.table.schema.names() == [
            "l_v", "count", "sum_r_w", "min_r_w", "max_r_w",
        ]
        plan = result.stats.plan
        assert plan.workload == "pipeline"
        stages = plan.shape("stages")
        assert len(stages) == 4 and stages[0] == ("source", 5)
        ops = {node.op for node in plan.nodes}
        assert "channel" in ops  # the streaming edges are first-class nodes
        staged = {
            node.attr("stage")
            for node in plan.nodes
            if node.attr("stage") is not None
        }
        # Every operator stage contributed nodes to the one DAG.
        assert {1, 2, 3} <= staged, (name, staged, ops)


def test_pipeline_rejects_wide_stage_tables():
    engine = ObliviousEngine()
    wide = DBTable.from_rows(["a:int", "b:int", "c:int"], [(1, 2, 3)])
    with pytest.raises(SchemaError):
        engine.pipeline(wide, [("group_by",)])
    narrow = DBTable.from_rows(["k:int", "v:int"], [(1, 2)])
    strings = DBTable.from_rows(["k:int", "s:str"], [(1, "x")])
    with pytest.raises(SchemaError):
        engine.pipeline(narrow, [("join", strings)])


def test_query_trace_independent_of_data():
    """End-to-end §6.1 experiment at the SQL layer."""

    def run(rows_left, rows_right):
        sink = HashSink()
        engine = ObliviousEngine(tracer=Tracer(sink))
        left = DBTable.from_rows(["k:int", "v:int"], rows_left)
        right = DBTable.from_rows(["k:int", "w:int"], rows_right)
        engine.join(left, right, on=("k", "k"))
        return sink.hexdigest

    a = run([(1, 10), (2, 20)], [(1, 5), (3, 6)])
    b = run([(8, 99), (9, 11)], [(9, 1), (4, 2)])
    assert a == b  # same (n1, n2, m) class
