"""Batcher odd-even mergesort network (ablation alternative)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InputError
from repro.memory.public import PublicArray
from repro.obliv.bitonic import comparison_count as bitonic_count
from repro.obliv.compare import identity_key, spec
from repro.obliv.network import is_valid_schedule
from repro.obliv.oddeven import comparison_count, oddeven_sort, oddeven_stages

IDENTITY = spec(identity_key())


def _sort_list(values):
    array = PublicArray(list(values), name="S")
    oddeven_sort(array, IDENTITY)
    return array.snapshot()


@pytest.mark.parametrize("n", [0, 1, 2, 4, 8, 16, 32])
def test_sorts_power_of_two(n):
    values = [(i * 29 + 3) % 17 for i in range(n)]
    assert _sort_list(values) == sorted(values)


@pytest.mark.parametrize("n", [3, 5, 7, 11, 20])
def test_sorts_with_padding(n):
    values = [(i * 13) % 7 - 3 for i in range(n)]
    assert _sort_list(values) == sorted(values)


@given(st.lists(st.integers(min_value=-30, max_value=30), max_size=33))
@settings(max_examples=50, deadline=None)
def test_sorts_arbitrary_lists(values):
    assert _sort_list(values) == sorted(values)


def test_schedule_is_valid():
    for n in (2, 4, 8, 16):
        assert is_valid_schedule(n, oddeven_stages(n))


def test_requires_power_of_two():
    with pytest.raises(InputError):
        list(oddeven_stages(12))


@pytest.mark.parametrize("n", [4, 8, 16, 32, 64, 128])
def test_fewer_comparators_than_bitonic(n):
    """The ablation's premise: odd-even saves roughly half the comparators."""
    assert comparison_count(n) < bitonic_count(n)


def test_known_comparator_counts():
    # Classic values: 4 -> 5, 8 -> 19, 16 -> 63.
    assert comparison_count(4) == 5
    assert comparison_count(8) == 19
    assert comparison_count(16) == 63


def test_trace_is_input_independent():
    from repro.memory.monitor import verify_oblivious

    def program(tracer, values):
        array = PublicArray(list(values), name="S", tracer=tracer)
        oddeven_sort(array, IDENTITY)

    report = verify_oblivious(
        program, [[4, 3, 2, 1], [1, 2, 3, 4], [7, 7, 7, 7]], require=True
    )
    assert report.oblivious
