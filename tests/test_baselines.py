"""The Table 1 comparator implementations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hash_join import hash_join, join_multiset
from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.opaque_join import opaque_pkfk_join
from repro.baselines.sort_merge import sort_merge_join
from repro.errors import InputError
from repro.memory.monitor import verify_oblivious

from conftest import pairs_strategy


@given(left=pairs_strategy(max_rows=10), right=pairs_strategy(max_rows=10))
@settings(max_examples=60, deadline=None)
def test_sort_merge_matches_oracle(left, right):
    assert sorted(sort_merge_join(left, right)) == join_multiset(left, right)


@given(left=pairs_strategy(max_rows=9), right=pairs_strategy(max_rows=9))
@settings(max_examples=50, deadline=None)
def test_nested_loop_matches_oracle(left, right):
    assert sorted(nested_loop_join(left, right)) == join_multiset(left, right)


def test_nested_loop_handles_empty_sides():
    assert nested_loop_join([], [(1, 1)]) == []
    assert nested_loop_join([(1, 1)], []) == []


def test_nested_loop_trace_is_input_independent():
    def program(tracer, tables):
        nested_loop_join(tables[0], tables[1], tracer=tracer)

    inputs = [  # same (n1, n2, m) class, different structure
        ([(0, 1), (1, 2)], [(0, 3), (1, 4), (5, 6)]),  # two 1x1 groups
        ([(7, 1), (7, 2)], [(7, 3), (8, 4), (8, 6)]),  # one 2x1 group
        ([(1, 1), (2, 2)], [(1, 3), (1, 4), (9, 6)]),  # one 1x2 group
    ]
    report = verify_oblivious(program, inputs, require=True)
    assert report.oblivious


def test_nested_loop_reveals_m_only_in_final_emit():
    """Until the final output copy-out, the quadratic scan's trace does not
    depend on m at all — divergence may appear only in the last m reads."""
    from repro.memory.monitor import first_divergence, run_logged

    small = ([(0, 1), (1, 2)], [(0, 3), (2, 4), (5, 6)])  # m = 1
    large = ([(1, 1), (1, 2)], [(1, 3), (1, 4), (1, 6)])  # m = 6
    ev_small, _ = run_logged(lambda t: nested_loop_join(*small, tracer=t))
    ev_large, _ = run_logged(lambda t: nested_loop_join(*large, tracer=t))
    where = first_divergence(ev_small, ev_large)
    assert where is not None
    assert where >= len(ev_small) - 1  # only the emit tail differs


def test_opaque_requires_unique_primary_keys():
    with pytest.raises(InputError, match="unique"):
        opaque_pkfk_join([(1, 0), (1, 1)], [(1, 2)])


@given(
    data=st.integers(min_value=1, max_value=8).flatmap(
        lambda k: st.tuples(
            st.just([(j, j * 10) for j in range(k)]),
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=k + 2),
                    st.integers(min_value=0, max_value=50),
                ),
                max_size=12,
            ),
        )
    )
)
@settings(max_examples=50, deadline=None)
def test_opaque_matches_oracle_on_pkfk(data):
    primary, foreign = data
    got = sorted(opaque_pkfk_join(primary, foreign))
    assert got == join_multiset(primary, foreign)


def test_opaque_orphan_foreign_rows_dropped():
    out = opaque_pkfk_join([(1, 10)], [(1, 5), (9, 6)])
    assert out == [(10, 5)]


def test_opaque_trace_independent_within_class():
    def program(tracer, tables):
        opaque_pkfk_join(tables[0], tables[1], tracer=tracer)

    # Same n1, n2, m; different which-fk-matches structure.
    inputs = [
        ([(0, 1), (1, 2)], [(0, 5), (0, 6), (1, 7)]),
        ([(4, 1), (5, 2)], [(5, 5), (5, 6), (4, 7)]),
    ]
    report = verify_oblivious(program, inputs, require=True)
    assert report.oblivious


def test_hash_join_oracle_is_order_insensitive():
    left = [(1, 1), (2, 2)]
    right = [(2, 5), (1, 6)]
    assert sorted(hash_join(left, right)) == join_multiset(left, right)


def test_sort_merge_empty_inputs():
    assert sort_merge_join([], []) == []
    assert sort_merge_join([(1, 1)], []) == []
