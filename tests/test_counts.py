"""Analytic count formulas vs the instrumented implementation (Table 3)."""

import pytest

from repro.analysis.counts import (
    bitonic_comparisons_exact,
    bitonic_comparisons_paper,
    nested_loop_comparisons,
    routing_comparisons_exact,
    sort_merge_operations,
    table3_analytic,
    total_comparisons_exact,
    total_comparisons_paper,
)
from repro.core.join import oblivious_join
from repro.core.stats import TABLE3_GROUPS, JoinCounters
from repro.workloads.generators import ones_groups


def test_bitonic_exact_matches_paper_order():
    for n in (2**8, 2**12, 2**16):
        paper = bitonic_comparisons_paper(n)
        exact = bitonic_comparisons_exact(n)
        # paper formula: n log^2 n / 4; exact: n log n (log n + 1) / 4.
        assert paper <= exact <= paper * 1.3


def test_routing_count_closed_form():
    assert routing_comparisons_exact(8, 8) == (8 - 4) + (8 - 2) + (8 - 1)
    assert routing_comparisons_exact(8, 1) == 0


def test_measured_counts_match_analytic_exactly():
    """The instrumented join must agree with the analytic accounting
    comparator-for-comparator — not approximately."""
    workload = ones_groups(16, seed=3)
    counters = JoinCounters()
    result = oblivious_join(workload.left, workload.right, counters=counters)
    rows = {r.component: r.exact for r in table3_analytic(16, 16, result.m)}
    measured = {label: sum(counters.comparisons(p) for p in phases)
                for label, phases in TABLE3_GROUPS.items()}
    assert measured == rows


@pytest.mark.parametrize("n1,n2,seed", [(8, 8, 1), (12, 20, 2), (31, 9, 3)])
def test_measured_total_matches_analytic(n1, n2, seed):
    from repro.workloads.generators import uniform_random

    workload = uniform_random(n1, n2, key_space=6, seed=seed)
    counters = JoinCounters()
    result = oblivious_join(workload.left, workload.right, counters=counters)
    assert counters.total_comparisons == total_comparisons_exact(n1, n2, result.m)


def test_paper_total_near_exact_at_balanced_sizes():
    n = 2**16
    paper = total_comparisons_paper(n)
    exact = total_comparisons_exact(n // 2, n // 2, n // 2)
    assert 0.5 * paper < exact < 2.5 * paper


def test_sort_merge_operations_grow_loglinearly():
    small = sort_merge_operations(100, 100, 100)
    large = sort_merge_operations(10000, 10000, 10000)
    assert 100 < large / small < 200  # ~100x n, ~x1.? log factor


def test_nested_loop_is_quadratic():
    assert nested_loop_comparisons(100, 100) > 100 * 100
    ratio = nested_loop_comparisons(200, 200) / nested_loop_comparisons(100, 100)
    assert 3.5 < ratio < 5.0


def test_table3_rows_have_all_components():
    rows = table3_analytic(100, 100, 100)
    assert [r.component for r in rows] == [
        "initial sorts on TC",
        "o.d. on T1, T2 (sort)",
        "o.d. on T1, T2 (route)",
        "align sort on S2",
    ]
    assert all(r.exact >= 0 for r in rows)


def test_route_share_is_small():
    """Table 3: routing is ~3% of work at paper scale — check the analytic
    counts reproduce the orders of magnitude."""
    n1 = n2 = m = 500_000
    rows = {r.component: r.exact for r in table3_analytic(n1, n2, m)}
    total = sum(rows.values())
    assert rows["o.d. on T1, T2 (route)"] / total < 0.10
    assert rows["initial sorts on TC"] / total > 0.35
