"""Analytic count formulas vs the instrumented implementation (Table 3)."""

import pytest

from repro.analysis.counts import (
    bitonic_comparisons_exact,
    bitonic_comparisons_paper,
    nested_loop_comparisons,
    routing_comparisons_exact,
    sort_merge_operations,
    table3_analytic,
    total_comparisons_exact,
    total_comparisons_paper,
)
from repro.core.join import oblivious_join
from repro.core.stats import TABLE3_GROUPS, JoinCounters
from repro.workloads.generators import ones_groups


def test_bitonic_exact_matches_paper_order():
    for n in (2**8, 2**12, 2**16):
        paper = bitonic_comparisons_paper(n)
        exact = bitonic_comparisons_exact(n)
        # paper formula: n log^2 n / 4; exact: n log n (log n + 1) / 4.
        assert paper <= exact <= paper * 1.3


def test_routing_count_closed_form():
    assert routing_comparisons_exact(8, 8) == (8 - 4) + (8 - 2) + (8 - 1)
    assert routing_comparisons_exact(8, 1) == 0


def test_measured_counts_match_analytic_exactly():
    """The instrumented join must agree with the analytic accounting
    comparator-for-comparator — not approximately."""
    workload = ones_groups(16, seed=3)
    counters = JoinCounters()
    result = oblivious_join(workload.left, workload.right, counters=counters)
    rows = {r.component: r.exact for r in table3_analytic(16, 16, result.m)}
    measured = {label: sum(counters.comparisons(p) for p in phases)
                for label, phases in TABLE3_GROUPS.items()}
    assert measured == rows


@pytest.mark.parametrize("n1,n2,seed", [(8, 8, 1), (12, 20, 2), (31, 9, 3)])
def test_measured_total_matches_analytic(n1, n2, seed):
    from repro.workloads.generators import uniform_random

    workload = uniform_random(n1, n2, key_space=6, seed=seed)
    counters = JoinCounters()
    result = oblivious_join(workload.left, workload.right, counters=counters)
    assert counters.total_comparisons == total_comparisons_exact(n1, n2, result.m)


def test_paper_total_near_exact_at_balanced_sizes():
    n = 2**16
    paper = total_comparisons_paper(n)
    exact = total_comparisons_exact(n // 2, n // 2, n // 2)
    assert 0.5 * paper < exact < 2.5 * paper


def test_sort_merge_operations_grow_loglinearly():
    small = sort_merge_operations(100, 100, 100)
    large = sort_merge_operations(10000, 10000, 10000)
    assert 100 < large / small < 200  # ~100x n, ~x1.? log factor


def test_nested_loop_is_quadratic():
    assert nested_loop_comparisons(100, 100) > 100 * 100
    ratio = nested_loop_comparisons(200, 200) / nested_loop_comparisons(100, 100)
    assert 3.5 < ratio < 5.0


def test_table3_rows_have_all_components():
    rows = table3_analytic(100, 100, 100)
    assert [r.component for r in rows] == [
        "initial sorts on TC",
        "o.d. on T1, T2 (sort)",
        "o.d. on T1, T2 (route)",
        "align sort on S2",
    ]
    assert all(r.exact >= 0 for r in rows)


def test_join_tree_beats_cascade_compounded_bounds():
    """PR 8's headline claim on a canonical 3-table skewed bounded query:
    the cascade pays a padding bound at *every* step (surfaced per step in
    ``stats.step_bounds``), the join tree pays one bound for the final
    output — so the tree's total padded rows and its merge comparator
    count both land strictly below the cascade's, read from stats on both
    sides rather than re-derived."""
    from repro.shard.join_tree import ShardedJoinTreeStats, sharded_join_tree
    from repro.shard.merge import merge_comparator_count
    from repro.shard.multiway import ShardedMultiwayStats, sharded_multiway_join

    # Skewed: keys 0..2 on both wide tables, every t2 row in the heaviest
    # group — the worst shape for compounded per-step padding.
    t0 = [(i % 3, i) for i in range(12)]
    t1 = [(i % 3, i) for i in range(12)]
    t2 = [(0, i) for i in range(8)]
    tables, bound = [t0, t1, t2], 200

    cascade_stats = ShardedMultiwayStats()
    cascade = sharded_multiway_join(
        tables,
        [(0, 0), (0, 0)],
        shards=3,
        stats=cascade_stats,
        padding="bounded",
        bound=bound,
    )
    tree_stats = ShardedJoinTreeStats()
    tree, tree_stats = sharded_join_tree(
        tables,
        [(0, 1, 0, 0), (0, 2, 0, 0)],
        shards=3,
        stats=tree_stats,
        padding="bounded",
        bound=bound,
    )
    # Same query, bit-equal real rows as a multiset.
    assert sorted(tree.rows) == sorted(cascade.rows)

    # Bounds: one per cascade step vs one for the whole tree.
    assert cascade_stats.step_bounds == [144, 200]
    assert cascade.total_padded_rows == sum(cascade_stats.step_bounds) == 344
    assert tree_stats.target == bound == 200
    assert tree_stats.target < cascade.total_padded_rows

    # Merge comparators: the tree reassembles one slot space, the cascade
    # one padded grid per step; both counts are the pure run-length
    # formula of their public schedules.
    cascade_merges = sum(s.merge_comparisons for s in cascade_stats.step_stats)
    assert tree_stats.merge_comparisons == merge_comparator_count(
        tree_stats.windows, truncate=tree_stats.target
    )
    assert tree_stats.merge_comparisons < cascade_merges
    assert tree_stats.total_comparisons < cascade_stats.total_comparisons


def test_route_share_is_small():
    """Table 3: routing is ~3% of work at paper scale — check the analytic
    counts reproduce the orders of magnitude."""
    n1 = n2 = m = 500_000
    rows = {r.component: r.exact for r in table3_analytic(n1, n2, m)}
    total = sum(rows.values())
    assert rows["o.d. on T1, T2 (route)"] / total < 0.10
    assert rows["initial sorts on TC"] / total > 0.35
