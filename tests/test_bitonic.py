"""Bitonic sorting network: correctness, counts, obliviousness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InputError
from repro.memory.monitor import verify_oblivious
from repro.memory.public import PublicArray
from repro.obliv.bitonic import (
    bitonic_sort,
    bitonic_stages,
    comparison_count,
    network_depth,
    next_power_of_two,
)
from repro.obliv.compare import identity_key, spec
from repro.obliv.network import NetworkStats, is_valid_schedule

IDENTITY = spec(identity_key())


def _sort_list(values):
    array = PublicArray(list(values), name="S")
    bitonic_sort(array, IDENTITY)
    return array.snapshot()


@pytest.mark.parametrize("n", [0, 1, 2, 4, 8, 16, 64])
def test_sorts_power_of_two_sizes(n):
    values = [(n - i) * 7 % 13 for i in range(n)]
    assert _sort_list(values) == sorted(values)


@pytest.mark.parametrize("n", [3, 5, 6, 7, 9, 12, 33, 100])
def test_sorts_non_power_of_two_sizes_via_padding(n):
    values = [(i * 37) % 11 - 5 for i in range(n)]
    assert _sort_list(values) == sorted(values)


@given(st.lists(st.integers(min_value=-50, max_value=50), max_size=40))
@settings(max_examples=60, deadline=None)
def test_sorts_arbitrary_lists(values):
    assert _sort_list(values) == sorted(values)


def test_reverse_input_worst_case():
    values = list(range(64, 0, -1))
    assert _sort_list(values) == sorted(values)


def test_duplicates_heavy_input():
    values = [1, 1, 1, 0, 0, 1, 0, 1, 1, 0]
    assert _sort_list(values) == sorted(values)


def test_stage_schedule_is_valid():
    for n in (2, 4, 8, 16):
        assert is_valid_schedule(n, bitonic_stages(n))


def test_stages_require_power_of_two():
    with pytest.raises(InputError):
        list(bitonic_stages(6))


@pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
def test_comparison_count_formula_matches_network(n):
    generated = sum(len(stage) for stage in bitonic_stages(n))
    assert generated == comparison_count(n)
    p = n.bit_length() - 1
    assert comparison_count(n) == n * p * (p + 1) // 4


def test_network_depth_formula():
    assert network_depth(8) == 6  # 3*(3+1)/2
    assert network_depth(1) == 0
    assert sum(1 for _ in bitonic_stages(16)) == network_depth(16)


def test_stats_count_comparisons_and_swaps():
    stats = NetworkStats()
    array = PublicArray([4, 3, 2, 1], name="S")
    bitonic_sort(array, IDENTITY, stats=stats)
    assert stats.comparisons == comparison_count(4)
    assert 0 < stats.swaps <= stats.comparisons


def test_next_power_of_two():
    assert next_power_of_two(0) == 1
    assert next_power_of_two(1) == 1
    assert next_power_of_two(5) == 8
    assert next_power_of_two(8) == 8


def test_access_pattern_is_input_independent():
    def program(tracer, values):
        array = PublicArray(list(values), name="S", tracer=tracer)
        bitonic_sort(array, IDENTITY)
        return array.snapshot()

    inputs = [[3, 1, 4, 1, 5, 9, 2, 6], [0] * 8, list(range(8)), list(range(8, 0, -1))]
    report = verify_oblivious(program, inputs, require=True)
    assert report.oblivious


def test_access_pattern_input_independent_with_padding():
    def program(tracer, values):
        array = PublicArray(list(values), name="S", tracer=tracer)
        bitonic_sort(array, IDENTITY)

    report = verify_oblivious(program, [[5, 1, 2], [9, 9, 9], [1, 2, 3]], require=True)
    assert report.oblivious


def test_multi_key_sort_orders_entries():
    from repro.obliv.compare import item_key

    array = PublicArray([(1, 2), (0, 9), (1, 1), (0, 3)], name="S")
    bitonic_sort(array, spec(item_key(0), item_key(1, ascending=False)))
    assert array.snapshot() == [(0, 9), (0, 3), (1, 2), (1, 1)]
