"""PublicArray semantics: traced access, bounds, encrypted cells."""

import pytest

from repro.errors import InputError
from repro.memory.encryption import IntCodec, ProbabilisticEncryptor
from repro.memory.public import PublicArray
from repro.memory.tracer import READ, WRITE, ListSink, Tracer


@pytest.fixture
def traced():
    sink = ListSink()
    tracer = Tracer(sink)
    return PublicArray(4, name="T", tracer=tracer), sink


def test_reads_and_writes_emit_events(traced):
    array, sink = traced
    array.write(2, 42)
    assert array.read(2) == 42
    assert sink.events == [(WRITE, array.array_id, 2), (READ, array.array_id, 2)]


def test_initialisation_is_untraced():
    sink = ListSink()
    PublicArray([1, 2, 3], tracer=Tracer(sink))
    assert len(sink) == 0


def test_out_of_range_access_raises(traced):
    array, _ = traced
    with pytest.raises(IndexError, match="out of range"):
        array.read(4)
    with pytest.raises(IndexError):
        array.write(-1, 0)


def test_negative_size_rejected():
    with pytest.raises(InputError):
        PublicArray(-1)


def test_snapshot_and_iter_are_untraced(traced):
    array, sink = traced
    array.load([1, 2, 3, 4])
    before = len(sink)
    assert array.snapshot() == [1, 2, 3, 4]
    assert list(array) == [1, 2, 3, 4]
    assert len(sink) == before


def test_load_requires_matching_length(traced):
    array, _ = traced
    with pytest.raises(InputError, match="load of 2"):
        array.load([1, 2])


def test_encryptor_requires_codec():
    with pytest.raises(InputError, match="together"):
        PublicArray(2, encryptor=ProbabilisticEncryptor(key=b"k"))


def test_encrypted_cells_roundtrip():
    array = PublicArray(
        3, encryptor=ProbabilisticEncryptor(key=b"secret"), codec=IntCodec()
    )
    array.write(0, 123)
    array.write(1, -5)
    assert array.read(0) == 123
    assert array.read(1) == -5
    assert array.read(2) is None


def test_rewriting_same_value_changes_ciphertext():
    """§3.5: a dummy write-back must be indistinguishable from a swap."""
    array = PublicArray(
        1, encryptor=ProbabilisticEncryptor(key=b"secret"), codec=IntCodec()
    )
    array.write(0, 7)
    first = array.ciphertext_at(0)
    array.write(0, 7)
    second = array.ciphertext_at(0)
    assert first.payload != second.payload or first.nonce != second.nonce
    assert array.read(0) == 7


def test_equal_plaintexts_have_distinct_ciphertexts_across_cells():
    array = PublicArray(
        2, encryptor=ProbabilisticEncryptor(key=b"secret"), codec=IntCodec()
    )
    array.write(0, 99)
    array.write(1, 99)
    assert array.ciphertext_at(0) != array.ciphertext_at(1)


def test_snapshot_decrypts():
    array = PublicArray(
        2, encryptor=ProbabilisticEncryptor(key=b"secret"), codec=IntCodec()
    )
    array.load([11, 22])
    assert array.snapshot() == [11, 22]


def test_two_arrays_same_tracer_have_distinct_ids():
    tracer = Tracer(ListSink())
    a = PublicArray(1, name="A", tracer=tracer)
    b = PublicArray(1, name="B", tracer=tracer)
    assert a.array_id != b.array_id


def test_repr_mentions_name_and_size(traced):
    array, _ = traced
    assert "T" in repr(array) and "4" in repr(array)
