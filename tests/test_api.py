"""Public API surface contract."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_join_functions_exposed():
    assert callable(repro.oblivious_join)
    assert callable(repro.oblivious_join_aggregate)
    assert callable(repro.oblivious_multiway_join)
    assert callable(repro.vector_oblivious_join)


def test_top_level_classes_exposed():
    assert repro.ObliviousEngine is not None
    assert repro.DBTable is not None
    assert repro.Tracer is not None
    assert repro.HashSink is not None


def test_subpackages_importable():
    for name in (
        "analysis", "baselines", "core", "db", "enclave", "memory",
        "obliv", "security", "typesys", "vector", "workloads",
    ):
        assert hasattr(repro, name), name


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_error_hierarchy_exposed():
    assert issubclass(repro.TraceMismatchError, repro.ReproError)
    assert issubclass(repro.InputError, repro.ReproError)


def test_quickstart_from_docstring():
    result = repro.oblivious_join([(1, 10), (2, 20)], [(1, 77), (1, 78)])
    assert result.pairs == [(10, 77), (10, 78)]
