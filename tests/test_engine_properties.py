"""Property-based cross-engine differential suite.

Hypothesis generates adversarial tables — skewed key distributions, heavy
duplicates (in keys *and* payloads), empty sides, single rows — and every
engine in :func:`repro.engines.available_engines` must agree with the
non-oblivious hash-join oracle and, bit for bit, with every other engine.
A future backend only has to call ``register_engine`` to inherit this
fuzzing.

The sharded engine additionally runs once per *executor* substrate
(inline / shared-memory pool / asyncio overlap): executors may only change
wall-clock, never a single output bit, and this suite is what enforces
that.

``REPRO_ENGINES`` (comma-separated names) restricts the engine list and
``REPRO_EXECUTORS`` the executor list — the CI matrix uses them to
parametrise the differential job per (engine, executor).
``REPRO_STORE=file`` additionally re-routes every binary join's inputs
through an encrypted, file-backed block store
(:class:`~repro.store.StorePairs` over per-example ``FileStore``
directories), so the same differential suite pins the out-of-core path
bit-identical to the resident one on every engine and executor.
"""

from __future__ import annotations

import itertools
import os
import tempfile
from collections import defaultdict

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.baselines.hash_join import join_multiset
from repro.engines import ShardedEngine, available_engines, get_engine
from repro.plan import available_executors

#: Engines under test: the full registry, or the REPRO_ENGINES subset.
ENGINES = [
    name
    for name in available_engines()
    if name in os.environ.get("REPRO_ENGINES", ",".join(available_engines())).split(",")
]

#: Executor substrates under test (sharded engine only): the full registry,
#: or the REPRO_EXECUTORS subset.  "inline" is the registry default
#: configuration, so only the non-default substrates add configurations.
EXECUTORS = [
    name
    for name in available_executors()
    if name
    in os.environ.get("REPRO_EXECUTORS", ",".join(available_executors())).split(",")
]

#: Differential comparisons need >= 2 engines; always keep the oracle's peer.
REFERENCE = "traced"

#: Engine *configurations*: registry defaults plus a deliberately lopsided
#: sharded setup (more shards than most generated tables have rows) plus
#: one sharded configuration per non-default executor substrate.
CONFIGURATIONS = ENGINES + (
    [pytest.param(ShardedEngine(shards=5), id="sharded[shards=5]")]
    + [
        pytest.param(
            ShardedEngine(shards=3, workers=2, executor=name),
            id=f"sharded[executor={name}]",
        )
        for name in EXECUTORS
        if name != "inline"
    ]
    if "sharded" in ENGINES
    else []
)


@st.composite
def table(draw, max_rows: int = 16):
    """A (j, d) table biased toward the nasty corners.

    Key spaces of 1 (every row one giant group), 2-3 (heavy skew) and 40
    (mostly unmatched); payload spaces small enough to force duplicate
    ``(j, d)`` rows — the case where output order is not a plain sort of
    the value pairs.
    """
    key_space = draw(st.sampled_from([1, 2, 3, 40]))
    data_space = draw(st.sampled_from([2, 5, 1000]))
    return draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=key_space - 1),
                st.integers(min_value=0, max_value=data_space - 1),
            ),
            max_size=max_rows,
        )
    )


def _engines(configuration):
    return get_engine(configuration)


#: "file" re-routes binary-join inputs through a file-backed block store.
REPRO_STORE = os.environ.get("REPRO_STORE", "")

_STORE_DIR = (
    tempfile.TemporaryDirectory(prefix="repro-store-differential-")
    if REPRO_STORE == "file"
    else None
)
_STORE_SEQ = itertools.count()


def join_inputs(left, right):
    """The suite's join inputs, per the ``REPRO_STORE`` storage mode.

    Default: the generated lists, unchanged.  Under ``REPRO_STORE=file``
    both tables are written into a fresh encrypted ``FileStore`` (tiny
    blocks and a tiny trusted-memory budget, so even 16-row examples
    span multiple blocks and evict) and come back as ``StorePairs`` —
    the engines must produce bit-identical output either way.
    """
    if REPRO_STORE != "file":
        return left, right
    from repro.store import FileStore, StorePairs, adopt
    from repro.store.columns import write_int_column

    path = os.path.join(_STORE_DIR.name, f"case{next(_STORE_SEQ)}")
    store = FileStore(path, block_bytes=32, key=b"differential-key")
    for name, rows in (("L", left), ("R", right)):
        write_int_column(store, f"{name}/j", [j for j, _ in rows])
        write_int_column(store, f"{name}/d", [d for _, d in rows])
    store.flush()
    spec = adopt(store, cache_bytes=64)
    return (
        StorePairs(spec, len(left), "L/j", "L/d"),
        StorePairs(spec, len(right), "R/j", "R/d"),
    )


# -- join --------------------------------------------------------------------


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(left=table(), right=table())
@settings(max_examples=25, deadline=None)
@example(left=[], right=[])
@example(left=[(0, 0)], right=[])
@example(left=[(0, 0)], right=[(0, 0)])
@example(left=[(0, 1), (0, 1), (0, 2)], right=[(0, 3), (0, 4)])
def test_join_matches_oracle_and_reference(configuration, left, right):
    engine = _engines(configuration)
    result = engine.join(*join_inputs(left, right))
    assert sorted(result.pairs) == join_multiset(left, right)
    assert result.m == len(result.pairs)
    assert (result.n1, result.n2) == (len(left), len(right))
    assert result.pairs == get_engine(REFERENCE).join(left, right).pairs


@given(left=table(), right=table())
@settings(max_examples=25, deadline=None)
def test_all_engines_join_bit_identically(left, right):
    results = [
        get_engine(name).join(*join_inputs(left, right)).pairs
        for name in ENGINES
    ]
    for other in results[1:]:
        assert other == results[0]


# -- aggregation -------------------------------------------------------------


def _aggregate_oracle(left, right):
    agg = defaultdict(lambda: [0, 0, 0, 0])
    for j1, d1 in left:
        for j2, d2 in right:
            if j1 == j2:
                entry = agg[j1]
                entry[0] += 1
                entry[1] += d1
                entry[2] += d2
                entry[3] += d1 * d2
    return dict(agg)


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(left=table(max_rows=12), right=table(max_rows=12))
@settings(max_examples=25, deadline=None)
@example(left=[], right=[])
@example(left=[(0, 0)], right=[(0, 0), (0, 1)])
def test_aggregate_matches_oracle_and_reference(configuration, left, right):
    engine = _engines(configuration)
    groups = engine.aggregate(left, right)
    got = {
        g.j: [g.pair_count, g.join_sum_d1, g.join_sum_d2, g.join_sum_product]
        for g in groups
    }
    assert got == _aggregate_oracle(left, right)
    assert groups == get_engine(REFERENCE).aggregate(left, right)


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(rows=table(max_rows=14))
@settings(max_examples=25, deadline=None)
@example(rows=[])
@example(rows=[(0, 0)])
def test_group_by_matches_oracle_and_reference(configuration, rows):
    engine = _engines(configuration)
    groups = engine.group_by(rows)
    oracle = defaultdict(list)
    for j, d in rows:
        oracle[j].append(d)
    assert {g.j: g.count1 for g in groups} == {
        j: len(ds) for j, ds in oracle.items()
    }
    assert {g.j: (g.sum_d1, g.min_d1, g.max_d1) for g in groups} == {
        j: (sum(ds), min(ds), max(ds)) for j, ds in oracle.items()
    }
    assert groups == get_engine(REFERENCE).group_by(rows)


# -- multiway ----------------------------------------------------------------


def _multiway_oracle(tables, keys):
    accumulated = [tuple(row) for row in tables[0]]
    for step, next_table in enumerate(tables[1:]):
        left_col, right_col = keys[step]
        accumulated = [
            a + tuple(b)
            for a in accumulated
            for b in next_table
            if a[left_col] == b[right_col]
        ]
    return sorted(accumulated)


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(t1=table(max_rows=6), t2=table(max_rows=6), t3=table(max_rows=6))
@settings(max_examples=15, deadline=None)
@example(t1=[(0, 0), (0, 0)], t2=[(0, 1), (0, 1)], t3=[(1, 9)])
def test_multiway_matches_oracle_and_reference(configuration, t1, t2, t3):
    engine = _engines(configuration)
    tables, keys = [t1, t2, t3], [(0, 0), (3, 0)]
    result = engine.multiway_join(tables, keys)
    assert sorted(result.rows) == _multiway_oracle(tables, keys)
    reference = get_engine(REFERENCE).multiway_join(tables, keys)
    assert result.rows == reference.rows
    assert result.intermediate_sizes == reference.intermediate_sizes


# -- padded execution --------------------------------------------------------

PADDINGS = ["worst_case", "bounded"]


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@pytest.mark.parametrize("padding", PADDINGS)
@given(t1=table(max_rows=5), t2=table(max_rows=5), t3=table(max_rows=5))
@settings(max_examples=10, deadline=None)
@example(t1=[(0, 0), (0, 0)], t2=[(0, 1), (0, 1)], t3=[(1, 9)])
@example(t1=[], t2=[(0, 1)], t3=[(0, 2)])
def test_padded_multiway_compacts_to_unpadded_result(
    configuration, padding, t1, t2, t3
):
    """Padded cascades return bit-identical rows and true sizes, on every
    engine, with the adversary-facing bounds a pure function of sizes."""
    engine = _engines(configuration)
    tables, keys = [t1, t2, t3], [(0, 0), (3, 0)]
    reference = get_engine(REFERENCE).multiway_join(tables, keys)
    # Worst-case bounds always hold; "bounded" uses them as explicit caps,
    # exercising the cap plumbing without risking a BoundError.
    bound = [len(t1) * len(t2), len(t1) * len(t2) * len(t3)]
    result = engine.multiway_join(
        tables, keys, padding=padding, bound=bound if padding == "bounded" else None
    )
    assert result.rows == reference.rows
    assert result.intermediate_sizes == reference.intermediate_sizes
    assert result.padding == padding
    assert result.bounds == tuple(bound)


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(left=table(max_rows=8), right=table(max_rows=8))
@settings(max_examples=10, deadline=None)
@example(left=[], right=[])
@example(left=[(0, 0), (0, 1)], right=[(0, 3), (0, 4)])
def test_padded_join_prefix_matches_unpadded(configuration, left, right):
    engine = _engines(configuration)
    reference = get_engine(REFERENCE).join(left, right)
    target = len(left) * len(right)
    padded = engine.join(*join_inputs(left, right), target_m=target)
    assert padded.m == target
    assert padded.pairs[: reference.m] == reference.pairs
    assert all(pair == (-1, -1) for pair in padded.pairs[reference.m :])


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(left=table(max_rows=10), right=table(max_rows=10))
@settings(max_examples=10, deadline=None)
@example(left=[(0, 0), (1, 1)], right=[(0, 2), (1, 3)])
def test_padding_configured_engines_aggregate_identically(
    configuration, left, right
):
    """padding="worst_case" as an engine *option*: joins/aggregates/group-bys
    still agree with the reference after compaction."""
    engine = get_engine(_engines(configuration), padding="worst_case")
    assert engine.aggregate(left, right) == get_engine(REFERENCE).aggregate(
        left, right
    )
    assert engine.group_by(left) == get_engine(REFERENCE).group_by(left)


# -- filter / order-by -------------------------------------------------------


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(mask=st.lists(st.booleans(), max_size=24))
@settings(max_examples=25, deadline=None)
@example(mask=[])
@example(mask=[False])
@example(mask=[True] * 9)
def test_filter_indices_match_reference(configuration, mask):
    engine = _engines(configuration)
    kept = engine.filter_indices(mask)
    assert kept == [i for i, keep in enumerate(mask) if keep]
    assert kept == get_engine(REFERENCE).filter_indices(mask)


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=20,
    ),
    ascending=st.booleans(),
)
@settings(max_examples=25, deadline=None)
@example(rows=[(1, 0), (1, 1), (1, 2)], ascending=True)  # all-tie sort keys
def test_order_permutation_is_stable_and_matches_reference(
    configuration, rows, ascending
):
    engine = _engines(configuration)
    columns = [([row[0] for row in rows], ascending)]
    permutation = engine.order_permutation(columns)
    # Stable contract: sorted by the key, original order breaking ties.
    expected = sorted(
        range(len(rows)),
        key=lambda i: (-rows[i][0] if not ascending else rows[i][0], i),
    )
    assert permutation == expected
    assert permutation == get_engine(REFERENCE).order_permutation(columns)
