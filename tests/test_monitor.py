"""Adversary-view helpers: trace comparison and the §6.1 experiment."""

import pytest

from repro.errors import TraceMismatchError
from repro.memory.monitor import (
    distinguishing_events,
    first_divergence,
    run_hashed,
    run_logged,
    verify_oblivious,
)
from repro.memory.public import PublicArray


def _oblivious_program(tracer, data):
    array = PublicArray(list(data), name="A", tracer=tracer)
    total = 0
    for i in range(len(array)):
        total += array.read(i)
    return total


def _leaky_program(tracer, data):
    array = PublicArray(list(data), name="A", tracer=tracer)
    # Reads continue only while values are positive: pattern leaks data.
    for i in range(len(array)):
        if array.read(i) <= 0:
            break
    return None


def test_verify_oblivious_accepts_fixed_pattern():
    report = verify_oblivious(_oblivious_program, [[1, 2, 3], [9, 9, 9], [0, -1, 5]])
    assert report.oblivious
    assert len(set(report.hashes)) == 1
    assert bool(report)


def test_verify_oblivious_rejects_leaky_pattern():
    report = verify_oblivious(_leaky_program, [[1, 1, 1], [0, 1, 1]])
    assert not report.oblivious
    assert "distinct" in report.details


def test_verify_oblivious_raises_when_required():
    with pytest.raises(TraceMismatchError):
        verify_oblivious(_leaky_program, [[1, 1, 1], [0, 1, 1]], require=True)


def test_verify_oblivious_keeps_outputs_on_request():
    report = verify_oblivious(
        _oblivious_program, [[1, 2], [5, 5]], keep_outputs=True
    )
    assert report.outputs == [3, 10]


def test_run_hashed_and_logged_agree_on_counts():
    digest, count, _ = run_hashed(lambda t: _oblivious_program(t, [1, 2, 3]))
    events, _ = run_logged(lambda t: _oblivious_program(t, [1, 2, 3]))
    assert count == len(events) == 3
    assert isinstance(digest, str) and len(digest) == 64


def test_first_divergence_position():
    a = [(0, 0, 1), (0, 0, 2), (0, 0, 3)]
    b = [(0, 0, 1), (0, 0, 9), (0, 0, 3)]
    assert first_divergence(a, b) == 1
    assert first_divergence(a, a) is None
    assert first_divergence(a, a[:2]) == 2


def test_distinguishing_events_pinpoints_leak():
    where, ev_a, ev_b = distinguishing_events(_leaky_program, [1, 1, 1], [1, 0, 1])
    assert where == 2  # second input stops reading after index 1
    assert len(ev_a) == 3 and len(ev_b) == 2
