"""The engine registry and its cross-engine differential safety net.

Every registered engine must produce identical results for join, multiway
join, and aggregation; the join is additionally checked against the
non-oblivious ``hash_join`` oracle.  The vector engine's primitive schedule
(its adversary-visible behaviour) must depend only on public sizes.
"""

from __future__ import annotations

import random
from collections import defaultdict

import pytest
from hypothesis import given, settings

from repro.baselines.hash_join import join_multiset
from repro.core.aggregate import oblivious_group_by, oblivious_join_aggregate
from repro.core.multiway import oblivious_multiway_join
from repro.db.query import ObliviousEngine
from repro.db.table import DBTable
from repro.engines import (
    Engine,
    TracedEngine,
    VectorEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.errors import InputError
from repro.vector.aggregate import VectorAggregateStats, vector_join_aggregate
from repro.vector.multiway import VectorMultiwayStats, vector_multiway_join

from conftest import pairs_strategy

ALL_ENGINES = available_engines()


# -- registry ---------------------------------------------------------------


def test_both_builtin_engines_are_registered():
    assert "traced" in ALL_ENGINES and "vector" in ALL_ENGINES


def test_get_engine_resolves_names_and_instances():
    traced = get_engine("traced")
    assert isinstance(traced, TracedEngine)
    assert isinstance(get_engine("vector"), VectorEngine)
    assert get_engine(traced) is traced  # instances pass through


def test_unknown_engine_raises_with_available_names():
    with pytest.raises(InputError, match="traced"):
        get_engine("gpu")


def test_builtin_engines_satisfy_protocol():
    for name in ALL_ENGINES:
        assert isinstance(get_engine(name), Engine)


def test_custom_engine_registration_is_picked_up():
    class Wrapped(TracedEngine):
        name = "wrapped-traced"

    try:
        register_engine(Wrapped())
        assert get_engine("wrapped-traced").join([(1, 2)], [(1, 3)]).pairs == [(2, 3)]
        assert ObliviousEngine(engine="wrapped-traced").engine.name == "wrapped-traced"
    finally:
        from repro.engines.base import _REGISTRY

        _REGISTRY.pop("wrapped-traced", None)


# -- differential: join -----------------------------------------------------


@pytest.mark.parametrize("name", ALL_ENGINES)
@given(left=pairs_strategy(max_rows=14), right=pairs_strategy(max_rows=14))
@settings(max_examples=40, deadline=None)
def test_every_engine_join_matches_hash_join_oracle(name, left, right):
    result = get_engine(name).join(left, right)
    assert sorted(result.pairs) == join_multiset(left, right)
    assert result.m == len(result.pairs)
    assert (result.n1, result.n2) == (len(left), len(right))


@given(left=pairs_strategy(max_rows=14), right=pairs_strategy(max_rows=14))
@settings(max_examples=40, deadline=None)
def test_engines_join_bit_identically(left, right):
    results = [get_engine(name).join(left, right).pairs for name in ALL_ENGINES]
    for other in results[1:]:
        assert other == results[0]


# -- differential: multiway -------------------------------------------------


def _multiway_oracle(tables, keys):
    accumulated = [tuple(row) for row in tables[0]]
    for step, table in enumerate(tables[1:]):
        left_col, right_col = keys[step]
        accumulated = [
            a + tuple(b) for a in accumulated for b in table if a[left_col] == b[right_col]
        ]
    return sorted(accumulated)


def _random_chain(rng, width=3):
    """A random 3-table chain joined t0.c0=t1.c0, then acc.c2=t2.c0."""
    t1 = [(rng.randrange(4), rng.randrange(30)) for _ in range(rng.randrange(1, 7))]
    t2 = [(rng.randrange(4), rng.randrange(6)) for _ in range(rng.randrange(1, 7))]
    t3 = [(rng.randrange(6), rng.randrange(30)) for _ in range(rng.randrange(1, 7))]
    return [t1, t2, t3], [(0, 0), (3, 0)]


@pytest.mark.parametrize("name", ALL_ENGINES)
def test_every_engine_multiway_matches_oracle(name):
    rng = random.Random(42)
    engine = get_engine(name)
    for _ in range(15):
        tables, keys = _random_chain(rng)
        result = engine.multiway_join(tables, keys)
        assert sorted(result.rows) == _multiway_oracle(tables, keys)
        assert len(result.intermediate_sizes) == len(keys)


def test_engines_multiway_bit_identically():
    rng = random.Random(7)
    for _ in range(15):
        tables, keys = _random_chain(rng)
        results = [get_engine(name).multiway_join(tables, keys) for name in ALL_ENGINES]
        for other in results[1:]:
            assert other.rows == results[0].rows
            assert other.intermediate_sizes == results[0].intermediate_sizes


def test_vector_multiway_validates_like_traced():
    for bad_call in (
        lambda f: f([[(1, 1)]], []),
        lambda f: f([[(1, 1)], [(1, 1)]], []),
        lambda f: f([[(1, 1)], [(1, 1)]], [(5, 0)]),
        lambda f: f([[("a", 1)], [("a", 1)]], [(0, 0)]),
    ):
        with pytest.raises(InputError) as traced_err:
            bad_call(oblivious_multiway_join)
        with pytest.raises(InputError) as vector_err:
            bad_call(vector_multiway_join)
        assert str(vector_err.value) == str(traced_err.value)


# -- differential: aggregation ----------------------------------------------


def _aggregate_oracle(left, right):
    agg = defaultdict(lambda: [0, 0, 0, 0])
    for j1, d1 in left:
        for j2, d2 in right:
            if j1 == j2:
                entry = agg[j1]
                entry[0] += 1
                entry[1] += d1
                entry[2] += d2
                entry[3] += d1 * d2
    return dict(agg)


@pytest.mark.parametrize("name", ALL_ENGINES)
@given(left=pairs_strategy(max_rows=12), right=pairs_strategy(max_rows=12))
@settings(max_examples=40, deadline=None)
def test_every_engine_aggregate_matches_materialised_join(name, left, right):
    groups = get_engine(name).aggregate(left, right)
    got = {
        g.j: [g.pair_count, g.join_sum_d1, g.join_sum_d2, g.join_sum_product]
        for g in groups
    }
    assert got == _aggregate_oracle(left, right)


@given(left=pairs_strategy(max_rows=12), right=pairs_strategy(max_rows=12))
@settings(max_examples=40, deadline=None)
def test_engines_aggregate_bit_identically(left, right):
    results = [get_engine(name).aggregate(left, right) for name in ALL_ENGINES]
    for other in results[1:]:
        assert other == results[0]


@given(table=pairs_strategy(max_rows=16))
@settings(max_examples=40, deadline=None)
def test_engines_group_by_bit_identically(table):
    results = [get_engine(name).group_by(table) for name in ALL_ENGINES]
    for other in results[1:]:
        assert other == results[0]


def test_engine_knob_on_core_functions_matches_traced():
    left = [(0, 1), (0, 2), (1, 3)]
    right = [(0, 4), (1, 5), (1, 6)]
    assert oblivious_join_aggregate(left, right, engine="vector") == \
        oblivious_join_aggregate(left, right)
    assert oblivious_group_by(left, engine="vector") == oblivious_group_by(left)
    tables = [[(1, 8), (2, 9)], [(1, 10), (1, 11)]]
    assert oblivious_multiway_join(tables, [(0, 0)], engine="vector").rows == \
        oblivious_multiway_join(tables, [(0, 0)]).rows


# -- db layer rides the selected engine -------------------------------------


@pytest.mark.parametrize("name", ALL_ENGINES)
def test_db_query_layer_is_engine_agnostic(name):
    patients = DBTable.from_rows(
        ["pid:int", "name:str"], [(1, "ana"), (2, "bo"), (3, "cy")]
    )
    scripts = DBTable.from_rows(
        ["pid:int", "drug:str", "cost:int"],
        [(1, "aspirin", 5), (1, "statin", 30), (3, "insulin", 90)],
    )
    reference = ObliviousEngine()
    engine = ObliviousEngine(engine=name)
    for op in (
        lambda e: e.join(patients, scripts, on=("pid", "pid")).rows,
        lambda e: e.group_by(scripts, key="pid", value="cost").rows,
        lambda e: e.join_aggregate(
            patients, scripts, on=("pid", "pid"), values=("pid", "cost")
        ).rows,
        lambda e: e.multiway_join([patients, scripts], on=[("pid", "pid")]).rows,
    ):
        assert op(engine) == op(reference)


# -- obliviousness: the vector schedule depends only on public sizes --------


def _relabel(table, key_shift, data_seed):
    rng = random.Random(data_seed)
    return [(j + key_shift, rng.randrange(1 << 20)) for j, _ in table]


def test_vector_multiway_schedule_depends_only_on_public_sizes():
    # Two cascades over completely different keys and payloads, but with
    # identical table sizes and identical intermediate sizes (1x1 chains).
    def chain(key_shift, data_seed):
        rng = random.Random(data_seed)
        t1 = [(key_shift + k, rng.randrange(1 << 20)) for k in range(8)]
        t2 = [(key_shift + k, 100 + k) for k in range(8)]
        t3 = [(100 + k, rng.randrange(1 << 20)) for k in range(8)]
        return [t1, t2, t3], [(0, 0), (3, 0)]

    schedules = []
    for key_shift, data_seed in ((0, 1), (500, 2)):
        tables, keys = chain(key_shift, data_seed)
        stats = VectorMultiwayStats()
        result = vector_multiway_join(tables, keys, stats=stats)
        assert result.intermediate_sizes == [8, 8]
        schedules.append(stats.schedule)
    assert schedules[0] == schedules[1]


def test_vector_multiway_schedule_changes_with_sizes():
    def run(n):
        tables = [[(k, k) for k in range(n)], [(k, k) for k in range(n)]]
        stats = VectorMultiwayStats()
        vector_multiway_join(tables, [(0, 0)], stats=stats)
        return stats.schedule

    assert run(4) != run(8)  # the schedule is a function *of* the sizes


def test_vector_aggregate_schedule_depends_only_on_n():
    # Same n = 8, wildly different group structures and would-be join sizes
    # (m = 4 vs m = 16): the primitive schedule must not move.
    def run(left, right):
        stats = VectorAggregateStats()
        vector_join_aggregate(left, right, stats=stats)
        return stats.n, stats.schedule

    a = run([(0, 1), (0, 2), (1, 3), (2, 9)], [(0, 4), (0, 5), (1, 6), (3, 7)])
    b = run([(5, 1), (5, 2), (5, 3), (5, 4)], [(5, 5), (5, 6), (5, 7), (5, 8)])
    assert a == b


def test_vector_aggregate_refuses_overflow_prone_values():
    # The traced engine sums in Python ints; int64 would wrap.  The vector
    # engine must fail loudly rather than silently diverge.
    big = 2**62
    with pytest.raises(InputError, match="overflow-safe"):
        vector_join_aggregate([(0, big), (0, big)], [(0, 1)])
    # ... while the traced engine handles the same input exactly.
    groups = oblivious_join_aggregate([(0, big), (0, big)], [(0, 1)])
    assert groups[0].sum_d1 == 2 * big


def test_vector_aggregate_reveals_only_group_count():
    stats = VectorAggregateStats()
    vector_join_aggregate([(0, 1), (1, 2)], [(0, 3), (2, 4)], stats=stats)
    assert stats.n == 4
    assert stats.groups == 1  # only key 0 joins
    assert stats.total_comparisons > 0
