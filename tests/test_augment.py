"""Algorithm 2: table augmentation with group dimensions."""

from collections import Counter

import pytest
from hypothesis import given, settings

from repro.core.augment import SPEC_J_TID, augment_tables, fill_dimensions
from repro.core.entry import Entry, entries_from_pairs
from repro.memory.local import LocalContext
from repro.memory.public import PublicArray
from repro.memory.tracer import Tracer
from repro.obliv.bitonic import bitonic_sort

from conftest import pairs_strategy


def _figure2_table():
    """The paper's Figure 2 input: TC sorted by (j, tid)."""
    rows = [
        ("x", 1), ("x", 1), ("x", 2), ("x", 2), ("x", 2),
        ("y", 1), ("y", 1), ("y", 1), ("y", 1), ("y", 2), ("y", 2),
        ("z", 2),
    ]
    keys = {"x": 0, "y": 1, "z": 2}
    entries = [Entry(j=keys[j], d=i, tid=tid) for i, (j, tid) in enumerate(rows)]
    return PublicArray(entries, name="TC")


def test_figure2_dimensions():
    table = _figure2_table()
    m = fill_dimensions(table)
    snapshot = table.snapshot()
    x = [(e.a1, e.a2) for e in snapshot[:5]]
    y = [(e.a1, e.a2) for e in snapshot[5:11]]
    z = [(e.a1, e.a2) for e in snapshot[11:]]
    assert x == [(2, 3)] * 5
    assert y == [(4, 2)] * 6
    assert z == [(0, 1)]
    # m = 2*3 + 4*2 + 0*1 as in the worked example.
    assert m == 14


def test_fill_dimensions_empty_table():
    assert fill_dimensions(PublicArray(0, name="TC")) == 0


def test_fill_dimensions_single_entry():
    table = PublicArray([Entry(j=5, d=1, tid=1)], name="TC")
    assert fill_dimensions(table) == 0  # no table-2 entries -> no output
    assert table.snapshot()[0].a1 == 1
    assert table.snapshot()[0].a2 == 0


def test_fill_dimensions_uses_constant_local_memory():
    local = LocalContext(capacity=4)
    table = _figure2_table()
    fill_dimensions(table, local=local)  # must not raise
    assert local.peak <= 4


def _augment(left, right):
    tracer = Tracer()
    t1 = entries_from_pairs(left, tid=1)
    t2 = entries_from_pairs(right, tid=2)
    return augment_tables(t1, t2, tracer)


def test_augment_splits_and_sorts_by_j_d():
    left = [(2, 9), (1, 5), (1, 3)]
    right = [(1, 8), (3, 1)]
    out1, out2, m = _augment(left, right)
    assert [(e.j, e.d) for e in out1] == [(1, 3), (1, 5), (2, 9)]
    assert [(e.j, e.d) for e in out2] == [(1, 8), (3, 1)]
    assert m == 2  # key 1: 2 x 1


def test_augment_alpha_values_per_group():
    out1, out2, _ = _augment([(1, 0), (1, 1), (2, 2)], [(1, 3), (2, 4), (2, 5)])
    for e in out1:
        if e.j == 1:
            assert (e.a1, e.a2) == (2, 1)
        else:
            assert (e.a1, e.a2) == (1, 2)
    for e in out2:
        if e.j == 1:
            assert (e.a1, e.a2) == (2, 1)
        else:
            assert (e.a1, e.a2) == (1, 2)


def test_augment_empty_tables():
    out1, out2, m = _augment([], [])
    assert len(out1) == 0 and len(out2) == 0 and m == 0


def test_augment_one_sided():
    out1, out2, m = _augment([(1, 1), (2, 2)], [])
    assert m == 0
    assert all(e.a2 == 0 for e in out1)


@given(left=pairs_strategy(), right=pairs_strategy())
@settings(max_examples=50, deadline=None)
def test_augment_m_matches_group_product_sum(left, right):
    c1 = Counter(j for j, _ in left)
    c2 = Counter(j for j, _ in right)
    expected_m = sum(c1[j] * c2[j] for j in c1.keys() & c2.keys())
    _, _, m = _augment(left, right)
    assert m == expected_m


@given(left=pairs_strategy(), right=pairs_strategy())
@settings(max_examples=50, deadline=None)
def test_augment_preserves_multisets(left, right):
    out1, out2, _ = _augment(left, right)
    assert Counter((e.j, e.d) for e in out1) == Counter(left)
    assert Counter((e.j, e.d) for e in out2) == Counter(right)


def test_spec_j_tid_groups_tables():
    entries = [Entry(j=1, d=0, tid=2), Entry(j=1, d=1, tid=1), Entry(j=0, d=2, tid=2)]
    array = PublicArray(entries, name="A")
    bitonic_sort(array, SPEC_J_TID)
    snapshot = array.snapshot()
    assert [(e.j, e.tid) for e in snapshot] == [(0, 2), (1, 1), (1, 2)]
