"""Circuit-depth accounting (the §6.2 parallelism analysis)."""

from repro.analysis.depth import DepthBreakdown, depth_series, join_depth


def test_breakdown_fields_positive():
    breakdown = join_depth(64, 64, 64)
    assert breakdown.sort_depth > 0
    assert breakdown.routing_depth > 0
    assert breakdown.scan_depth > 0
    assert breakdown.total == (
        breakdown.sort_depth + breakdown.routing_depth + breakdown.scan_depth
    )


def test_sort_depth_grows_polylog_scans_grow_linearly():
    small = join_depth(2**6, 2**6, 2**6)
    large = join_depth(2**12, 2**12, 2**12)
    scan_growth = large.scan_depth / small.scan_depth
    sort_growth = large.sort_depth / small.sort_depth
    assert scan_growth > 50      # linear: x64
    assert sort_growth < 10      # polylog: ~(19/7)^2-ish


def test_parallel_fraction_shrinks_with_n():
    """The paper's point inverted: once sorts parallelise away, the
    sequential scans dominate the critical path at scale."""
    series = depth_series([2**8, 2**12, 2**16])
    fractions = [b.parallel_fraction for _, b in series]
    assert fractions[0] > fractions[1] > fractions[2]


def test_expansions_counted_in_parallel():
    """The two expansions are independent, so only the max counts."""
    symmetric = join_depth(128, 128, 128)
    lopsided = join_depth(128, 8, 128)
    assert lopsided.sort_depth <= symmetric.sort_depth


def test_empty_join_depth():
    breakdown = join_depth(0, 0, 0)
    assert breakdown.total == 0
    assert breakdown.parallel_fraction == 0.0


def test_depth_series_shape():
    series = depth_series([16, 32])
    assert [n for n, _ in series] == [16, 32]
    assert all(isinstance(b, DepthBreakdown) for _, b in series)
