"""Differential + property suite for the Yannakakis-style join tree.

Hypothesis generates adversarial tables — skewed keys, heavy duplicates,
empty sides, single rows (the same corner bias as
``test_engine_properties.py``) — and the join tree must agree, as a
multiset, with the binary cascade oracle on every engine, executor
substrate and padding mode, and bit-for-bit (values *and* order) with the
traced reference.  Band predicates (``|a - b| <= w``), which the cascade
cannot express, are checked against a brute-force numpy oracle instead,
including the empty-band and full-band (cross product) edges.

The plan tests pin that the compiled tree is a *pure function of shapes*:
byte-identical serialization for equal ``(sizes, tree, k, padding,
bound)``, different bytes when any of them changes, and no dependence on
the data values at all.

``REPRO_ENGINES`` / ``REPRO_EXECUTORS`` restrict the engine/executor lists
exactly as in ``test_engine_properties.py`` — the CI
``join-tree-differential`` matrix job uses them.
"""

from __future__ import annotations

import itertools
import os

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.engines import ShardedEngine, available_engines, get_engine
from repro.errors import BoundError, InputError
from repro.plan import available_executors
from repro.plan.compile import compile_join_tree
from repro.shard.join_tree import ShardedJoinTreeStats, sharded_join_tree
from repro.shard.merge import merge_comparator_count

ENGINES = [
    name
    for name in available_engines()
    if name in os.environ.get("REPRO_ENGINES", ",".join(available_engines())).split(",")
]

EXECUTORS = [
    name
    for name in available_executors()
    if name
    in os.environ.get("REPRO_EXECUTORS", ",".join(available_executors())).split(",")
]

REFERENCE = "traced"

CONFIGURATIONS = ENGINES + (
    [pytest.param(ShardedEngine(shards=5), id="sharded[shards=5]")]
    + [
        pytest.param(
            ShardedEngine(shards=3, workers=2, executor=name),
            id=f"sharded[executor={name}]",
        )
        for name in EXECUTORS
        if name != "inline"
    ]
    if "sharded" in ENGINES
    else []
)

#: Canonical 3-table tree shapes over (j, d) tables, with the cascade key
#: specs that express the identical query: the star joins both children on
#: the root's key, the chain joins table 2 on table 1's *payload* column
#: (accumulated column 3 in cascade coordinates).
STAR = [(0, 1, 0, 0), (0, 2, 0, 0)]
STAR_KEYS = [(0, 0), (0, 0)]
CHAIN = [(0, 1, 0, 0), (1, 2, 1, 0)]
CHAIN_KEYS = [(0, 0), (3, 0)]
SHAPES = [
    pytest.param(STAR, STAR_KEYS, id="star"),
    pytest.param(CHAIN, CHAIN_KEYS, id="chain"),
]


@st.composite
def table(draw, max_rows: int = 16):
    """A (j, d) table biased toward the nasty corners (see
    ``test_engine_properties.py``): tiny key spaces for skew and giant
    groups, small payload spaces for duplicate ``(j, d)`` rows."""
    key_space = draw(st.sampled_from([1, 2, 3, 40]))
    data_space = draw(st.sampled_from([2, 5, 1000]))
    return draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=key_space - 1),
                st.integers(min_value=0, max_value=data_space - 1),
            ),
            max_size=max_rows,
        )
    )


def _cascade_oracle(tables, keys):
    """The binary cascade as the equi-join oracle (multiset semantics)."""
    return sorted(get_engine(REFERENCE).multiway_join(tables, keys).rows)


def _band_oracle(tables, edges):
    """Brute-force numpy oracle: mask the full cross product per edge."""
    dims = [len(t) for t in tables]
    keep = np.ones(dims, dtype=bool)
    for parent, child, pcol, ccol, band in edges:
        a = np.asarray([row[pcol] for row in tables[parent]], dtype=np.int64)
        b = np.asarray([row[ccol] for row in tables[child]], dtype=np.int64)
        shape_a = [dims[v] if v == parent else 1 for v in range(len(dims))]
        shape_b = [dims[v] if v == child else 1 for v in range(len(dims))]
        keep &= np.abs(a.reshape(shape_a) - b.reshape(shape_b)) <= band
    return sorted(
        sum((tuple(tables[v][i]) for v, i in enumerate(combo)), ())
        for combo in np.argwhere(keep).tolist()
    )


# -- differential: join tree vs cascade oracle, every engine/executor --------


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@pytest.mark.parametrize("edges,keys", SHAPES)
@given(t1=table(max_rows=6), t2=table(max_rows=6), t3=table(max_rows=6))
@settings(max_examples=15, deadline=None)
@example(t1=[(0, 0), (0, 0)], t2=[(0, 1), (0, 1)], t3=[(1, 9)])
@example(t1=[], t2=[(0, 1)], t3=[(0, 2)])
@example(t1=[(0, 0)], t2=[], t3=[])
def test_join_tree_matches_cascade_oracle_and_reference(
    configuration, edges, keys, t1, t2, t3
):
    engine = get_engine(configuration)
    tables = [t1, t2, t3]
    result = engine.join_tree(tables, edges)
    assert sorted(result.rows) == _cascade_oracle(tables, keys)
    assert result.m == len(result.rows)
    assert result.sizes == (len(t1), len(t2), len(t3))
    # Bit-identical to the reference: the canonical slot order is a pure
    # function of the inputs, on every engine and executor substrate.
    assert result.rows == get_engine(REFERENCE).join_tree(tables, edges).rows


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@pytest.mark.parametrize("padding", ["worst_case", "bounded"])
@pytest.mark.parametrize("edges,keys", SHAPES)
@given(t1=table(max_rows=5), t2=table(max_rows=5), t3=table(max_rows=5))
@settings(max_examples=8, deadline=None)
@example(t1=[(0, 0), (0, 0)], t2=[(0, 1), (0, 1)], t3=[(1, 9)])
@example(t1=[], t2=[(0, 1)], t3=[(0, 2)])
def test_padded_join_tree_compacts_to_unpadded_result(
    configuration, padding, edges, keys, t1, t2, t3
):
    """Padded trees return the identical real rows; the slot space pads to
    one public target (never a per-step compounded bound)."""
    engine = get_engine(configuration)
    tables = [t1, t2, t3]
    reference = get_engine(REFERENCE).join_tree(tables, edges)
    worst = len(t1) * len(t2) * len(t3)
    result = engine.join_tree(
        tables,
        edges,
        padding=padding,
        bound=worst if padding == "bounded" else None,
    )
    assert result.rows == reference.rows
    assert result.m == reference.m
    assert result.padding == padding
    assert result.target == worst


def test_four_table_tree_matches_cascade_on_all_engines():
    """A 4-table mixed shape (chain + branch) against the cascade oracle."""
    t0 = [(k % 3, k) for k in range(7)]
    t1 = [(k % 3, k % 2) for k in range(6)]
    t2 = [(k % 2, k + 10) for k in range(5)]
    t3 = [(k % 3, k + 20) for k in range(4)]
    tables = [t0, t1, t2, t3]
    # 0 -> 1 (on j), 1 -> 2 (on t1's payload), 0 -> 3 (on j).
    edges = [(0, 1, 0, 0), (1, 2, 1, 0), (0, 3, 0, 0)]
    # Cascade coordinates: t2 joins accumulated column 3 (t1's payload),
    # t3 joins accumulated column 0 (the root key).
    keys = [(0, 0), (3, 0), (0, 0)]
    oracle = _cascade_oracle(tables, keys)
    results = [get_engine(name).join_tree(tables, edges).rows for name in ENGINES]
    for rows in results:
        assert sorted(rows) == oracle
        assert rows == results[0]


@pytest.mark.skipif("sharded" not in ENGINES, reason="sharded engine excluded")
@given(t1=table(max_rows=6), t2=table(max_rows=6), t3=table(max_rows=6))
@settings(max_examples=10, deadline=None)
def test_shuffled_completion_order_cannot_change_the_rows(t1, t2, t3):
    """The shuffle executor completes window tasks in adversarial orders;
    repeated runs (fresh shuffles) must still be bit-identical."""
    tables = [t1, t2, t3]
    reference = get_engine(REFERENCE).join_tree(tables, STAR).rows
    engine = ShardedEngine(shards=3, workers=2, executor="shuffle")
    for _ in range(3):
        assert engine.join_tree(tables, STAR).rows == reference


# -- band predicates vs the brute-force numpy oracle -------------------------


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(
    t1=table(max_rows=6),
    t2=table(max_rows=6),
    band=st.sampled_from([0, 1, 3, 10_000]),
)
@settings(max_examples=15, deadline=None)
@example(t1=[(0, 0), (5, 1)], t2=[(2, 7), (6, 8)], band=2)
@example(t1=[(0, 0)], t2=[(100, 1)], band=5)  # empty band: no key within w
@example(t1=[(0, 0), (1, 1)], t2=[(39, 2)], band=10_000)  # full band: cross
def test_band_join_matches_brute_force(configuration, t1, t2, band):
    engine = get_engine(configuration)
    edges = [(0, 1, 0, 0, band)]
    result = engine.join_tree([t1, t2], edges)
    assert sorted(result.rows) == _band_oracle([t1, t2], edges)
    assert result.rows == get_engine(REFERENCE).join_tree([t1, t2], edges).rows


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@given(
    t1=table(max_rows=5),
    t2=table(max_rows=5),
    t3=table(max_rows=5),
    band1=st.sampled_from([0, 1, 4]),
    band2=st.sampled_from([0, 2, 10_000]),
)
@settings(max_examples=10, deadline=None)
@example(t1=[(0, 3)], t2=[(1, 2)], t3=[(4, 0)], band1=1, band2=2)
def test_mixed_band_tree_matches_brute_force(
    configuration, t1, t2, t3, band1, band2
):
    """A chain mixing two band widths — including an equi edge (w=0) and a
    full-band edge — still matches the cross-product oracle."""
    engine = get_engine(configuration)
    edges = [(0, 1, 0, 0, band1), (1, 2, 1, 0, band2)]
    tables = [t1, t2, t3]
    result = engine.join_tree(tables, edges)
    assert sorted(result.rows) == _band_oracle(tables, edges)
    assert result.rows == get_engine(REFERENCE).join_tree(tables, edges).rows


def test_band_join_full_band_is_the_cross_product():
    t1 = [(0, 0), (7, 1), (39, 2)]
    t2 = [(3, 5), (20, 6)]
    result = get_engine("vector").join_tree([t1, t2], [(0, 1, 0, 0, 10_000)])
    assert len(result.rows) == len(t1) * len(t2)
    assert sorted(result.rows) == sorted(
        a + b for a, b in itertools.product(t1, t2)
    )


def test_band_join_empty_band_is_empty():
    t1 = [(0, 0), (1, 1)]
    t2 = [(50, 2), (60, 3)]
    for name in ENGINES:
        assert get_engine(name).join_tree([t1, t2], [(0, 1, 0, 0, 3)]).rows == []


# -- padding semantics --------------------------------------------------------


def test_bounded_tree_aborts_above_the_bound():
    t1 = [(0, 0)] * 4
    t2 = [(0, 1)] * 4
    for name in ENGINES:
        with pytest.raises(BoundError):
            get_engine(name).join_tree(
                [t1, t2], [(0, 1, 0, 0)], padding="bounded", bound=15
            )


def test_invalid_trees_are_rejected():
    tables = [[(0, 0)], [(1, 1)], [(2, 2)]]
    engine = get_engine("vector")
    with pytest.raises(InputError):  # cycle / re-parenting
        engine.join_tree(tables, [(0, 1, 0, 0), (1, 0, 0, 0)])
    with pytest.raises(InputError):  # disconnected node 2
        engine.join_tree(tables, [(0, 1, 0, 0)])
    with pytest.raises(InputError):  # key column out of range
        engine.join_tree(tables, [(0, 1, 0, 5), (0, 2, 0, 0)])


# -- plan byte-pins: the compiled tree is a pure function of shapes ----------

_PLAN_SHAPES = dict(engine="sharded", shards=3, padding="bounded", bound=40)


def test_plan_bytes_are_a_pure_function_of_shapes():
    base = compile_join_tree([6, 5, 4], STAR, **_PLAN_SHAPES).serialize()
    again = compile_join_tree([6, 5, 4], STAR, **_PLAN_SHAPES).serialize()
    assert base == again
    different = [
        compile_join_tree([6, 5, 5], STAR, **_PLAN_SHAPES),  # sizes
        compile_join_tree([6, 5, 4], CHAIN, **_PLAN_SHAPES),  # tree shape
        compile_join_tree(  # band width
            [6, 5, 4], [(0, 1, 0, 0, 2), (0, 2, 0, 0)], **_PLAN_SHAPES
        ),
        compile_join_tree(  # k
            [6, 5, 4], STAR, **{**_PLAN_SHAPES, "shards": 4}
        ),
        compile_join_tree(  # padding mode
            [6, 5, 4], STAR, engine="sharded", shards=3, padding="worst_case"
        ),
        compile_join_tree(  # bound
            [6, 5, 4], STAR, **{**_PLAN_SHAPES, "bound": 41}
        ),
    ]
    assert len({plan.serialize() for plan in different} | {base}) == 7


@given(t1=table(max_rows=6), t2=table(max_rows=6), t3=table(max_rows=6))
@settings(max_examples=10, deadline=None)
def test_plan_bytes_do_not_depend_on_data(t1, t2, t3):
    """Compiling from the tables and from their bare sizes is the same
    plan, whatever the rows hold."""
    from_tables = compile_join_tree([t1, t2, t3], STAR, **_PLAN_SHAPES)
    from_sizes = compile_join_tree(
        [len(t1), len(t2), len(t3)], STAR, **_PLAN_SHAPES
    )
    assert from_tables.serialize() == from_sizes.serialize()


@pytest.mark.skipif("sharded" not in ENGINES, reason="sharded engine excluded")
def test_executed_plan_and_schedule_are_input_independent():
    """Two same-shape datasets with different values: the consumed plan
    bytes, the comparator schedule and the merge count all coincide, and
    the merge count is the pure run-length formula."""
    first = [[(k % 2, k) for k in range(6)], [(0, 9)] * 4, [(1, 7)] * 5]
    second = [[(3, 0)] * 6, [(k % 4, 0) for k in range(4)], [(2, 2)] * 5]
    runs = []
    for tables in (first, second):
        stats = ShardedJoinTreeStats()
        sharded_join_tree(
            tables,
            STAR,
            shards=3,
            stats=stats,
            padding="worst_case",
        )
        runs.append(stats)
    assert runs[0].plan.serialize() == runs[1].plan.serialize()
    assert runs[0].schedule == runs[1].schedule
    assert runs[0].target == runs[1].target == 6 * 4 * 5
    for stats in runs:
        assert stats.merge_comparisons == merge_comparator_count(
            stats.windows, truncate=stats.target
        )
