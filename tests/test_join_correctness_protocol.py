"""§6's correctness protocol: ~20 generated inputs per size, all verified.

The paper runs sizes 10..10^6; per-access tracing in pure Python makes the
same sweep infeasible, so the protocol runs at 10..256 here and the vector
engine extends it to 4096 (the benchmark suite goes further still).
"""

import pytest

from repro.baselines.hash_join import join_multiset
from repro.core.join import oblivious_join
from repro.vector.join import vector_oblivious_join
from repro.workloads.generators import paper_protocol_suite


@pytest.mark.parametrize("n", [10, 32, 64, 128])
def test_protocol_suite_on_traced_engine(n):
    suite = paper_protocol_suite(n, seed=n)
    assert len(suite) == 20
    for workload in suite:
        result = oblivious_join(workload.left, workload.right)
        assert result.m == workload.m, workload.name
        assert sorted(result.pairs) == join_multiset(workload.left, workload.right)


@pytest.mark.parametrize("n", [256, 1024, 4096])
def test_protocol_suite_on_vector_engine(n):
    for workload in paper_protocol_suite(n, seed=n):
        pairs, stats = vector_oblivious_join(workload.left, workload.right)
        assert stats.m == workload.m, workload.name
        assert sorted(map(tuple, pairs.tolist())) == join_multiset(
            workload.left, workload.right
        )


def test_single_group_protocol_entry_is_quadratic():
    [_, single, *_] = paper_protocol_suite(16)
    assert single.m == single.n1 * single.n2


def test_ones_protocol_entry_is_linear():
    [ones, *_] = paper_protocol_suite(16)
    assert ones.m == ones.n1 == ones.n2
