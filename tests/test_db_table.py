"""DBTable behaviour."""

import pytest

from repro.db.schema import Schema
from repro.db.table import DBTable, require_int_column
from repro.errors import SchemaError


@pytest.fixture
def people():
    return DBTable.from_rows(
        ["id:int", "name:str", "age:int"],
        [(1, "ana", 34), (2, "bo", 41), (3, "cy", 29)],
    )


def test_rows_validated_on_construction():
    with pytest.raises(SchemaError):
        DBTable.from_rows(["id:int"], [("not-an-int",)])


def test_column_extraction(people):
    assert people.column("name") == ["ana", "bo", "cy"]


def test_project_selects_and_reorders(people):
    projected = people.project(["age", "id"])
    assert projected.schema.names() == ["age", "id"]
    assert projected.rows == [(34, 1), (41, 2), (29, 3)]


def test_rename(people):
    renamed = people.rename({"id": "person_id"})
    assert renamed.schema.names() == ["person_id", "name", "age"]
    assert renamed.rows == people.rows


def test_len_iter_head(people):
    assert len(people) == 3
    assert list(people)[0] == (1, "ana", 34)
    assert people.head(2) == [(1, "ana", 34), (2, "bo", 41)]


def test_equality_is_order_insensitive(people):
    shuffled = DBTable(people.schema, list(reversed(people.rows)))
    assert people == shuffled


def test_pretty_renders_columns(people):
    text = people.pretty()
    assert "name" in text and "ana" in text and "|" in text


def test_pretty_truncates(people):
    text = people.pretty(limit=1)
    assert "more rows" in text


def test_from_csv_roundtrip(tmp_path, people):
    path = tmp_path / "people.csv"
    path.write_text("id,name,age\n1,ana,34\n2,bo,41\n3,cy,29\n")
    loaded = DBTable.from_csv(str(path), ["id:int", "name:str", "age:int"])
    assert loaded == people


def test_require_int_column(people):
    assert require_int_column(people, "age") == 2
    with pytest.raises(SchemaError, match="must be int"):
        require_int_column(people, "name")
