"""DBTable behaviour."""

import pytest

from repro.db.schema import Schema
from repro.db.table import DBTable, require_int_column
from repro.errors import SchemaError


@pytest.fixture
def people():
    return DBTable.from_rows(
        ["id:int", "name:str", "age:int"],
        [(1, "ana", 34), (2, "bo", 41), (3, "cy", 29)],
    )


def test_rows_validated_on_construction():
    with pytest.raises(SchemaError):
        DBTable.from_rows(["id:int"], [("not-an-int",)])


def test_column_extraction(people):
    assert people.column("name") == ["ana", "bo", "cy"]


def test_project_selects_and_reorders(people):
    projected = people.project(["age", "id"])
    assert projected.schema.names() == ["age", "id"]
    assert projected.rows == [(34, 1), (41, 2), (29, 3)]


def test_rename(people):
    renamed = people.rename({"id": "person_id"})
    assert renamed.schema.names() == ["person_id", "name", "age"]
    assert renamed.rows == people.rows


def test_len_iter_head(people):
    assert len(people) == 3
    assert list(people)[0] == (1, "ana", 34)
    assert people.head(2) == [(1, "ana", 34), (2, "bo", 41)]


def test_equality_is_order_insensitive(people):
    shuffled = DBTable(people.schema, list(reversed(people.rows)))
    assert people == shuffled


def test_pretty_renders_columns(people):
    text = people.pretty()
    assert "name" in text and "ana" in text and "|" in text


def test_pretty_truncates(people):
    text = people.pretty(limit=1)
    assert "more rows" in text


def test_from_csv_roundtrip(tmp_path, people):
    path = tmp_path / "people.csv"
    path.write_text("id,name,age\n1,ana,34\n2,bo,41\n3,cy,29\n")
    loaded = DBTable.from_csv(str(path), ["id:int", "name:str", "age:int"])
    assert loaded == people


def test_require_int_column(people):
    assert require_int_column(people, "age") == 2
    with pytest.raises(SchemaError, match="must be int"):
        require_int_column(people, "name")


def test_from_csv_missing_column_names_column_and_file(tmp_path):
    path = tmp_path / "people.csv"
    path.write_text("id,name\n1,ana\n")
    with pytest.raises(SchemaError) as excinfo:
        DBTable.from_csv(str(path), ["id:int", "name:str", "age:int"])
    message = str(excinfo.value)
    assert "'age'" in message and "people.csv" in message
    assert "header" in message


def test_project_and_rename_are_independent_snapshots(people):
    """The documented lineage contract: derived tables share no version.

    ``project``/``rename`` copy rows into a fresh table with its own
    ``version``; mutating or touching the source afterwards must neither
    change the derived table nor be needed to invalidate caches keyed on
    it — per-table invalidation means mutating the *derived* table is
    what bumps the derived table's version.
    """
    projected = people.project(["id", "age"])
    renamed = people.rename({"id": "person_id"})
    assert projected.version == 0 and renamed.version == 0
    before_projected = list(projected.rows)
    before_renamed = list(renamed.rows)
    people.append_row((4, "di", 55))
    people.touch()
    assert people.version == 2
    # Source mutation: derived contents and versions are untouched.
    assert projected.rows == before_projected
    assert renamed.rows == before_renamed
    assert projected.version == 0 and renamed.version == 0
    # Derived mutation bumps only the derived version.
    projected.append_row((9, 99))
    assert projected.version == 1 and people.version == 2


def test_derived_table_cache_invalidation_is_per_table(people):
    from repro.db.encoding import DictionaryEncoder
    from repro.db.encoding_cache import EncodingCache

    cache = EncodingCache()
    encoder = DictionaryEncoder()
    projected = people.project(["id", "age"])
    assert cache.encoded_keys(projected, "id", encoder) == [1, 2, 3]
    # Touching the source does not (and need not) invalidate the derived
    # table's entry: its contents did not change.
    people.touch()
    cache.encoded_keys(projected, "id", encoder)
    assert cache.stats["hits"] == 1
    # Mutating the derived table does invalidate it.
    projected.append_row((4, 50))
    assert cache.encoded_keys(projected, "id", encoder) == [1, 2, 3, 4]
    assert cache.stats["hits"] == 1
