"""Comparator-network machinery: dummy writes, PAD handling, validation."""

from repro.memory.public import PublicArray
from repro.memory.tracer import ListSink, Tracer
from repro.obliv.compare import comparator_from_spec, identity_key, spec
from repro.obliv.network import (
    PAD,
    NetworkStats,
    apply_network,
    is_valid_schedule,
    network_size,
)

CMP = comparator_from_spec(spec(identity_key()))


def test_apply_network_sorts_with_explicit_stage():
    array = PublicArray([2, 1], name="A")
    apply_network(array, [[(0, 1)]], CMP)
    assert array.snapshot() == [1, 2]


def test_every_comparator_reads_and_writes_both_cells():
    sink = ListSink()
    array = PublicArray([1, 2], name="A", tracer=Tracer(sink))
    apply_network(array, [[(0, 1)]], CMP)  # already ordered: dummy writes
    ops = [(op, idx) for op, _arr, idx in sink.events]
    assert ops == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_trace_identical_whether_or_not_swap_happens():
    def run(values):
        sink = ListSink()
        array = PublicArray(values, name="A", tracer=Tracer(sink))
        apply_network(array, [[(0, 1)]], CMP)
        return sink.events

    assert run([1, 2]) == run([2, 1])


def test_pad_sorts_after_real_elements():
    array = PublicArray([PAD, 5], name="A")
    apply_network(array, [[(0, 1)]], CMP, pad_aware=True)
    assert array.snapshot() == [5, PAD]


def test_two_pads_do_not_swap():
    stats = NetworkStats()
    array = PublicArray([PAD, PAD], name="A")
    apply_network(array, [[(0, 1)]], CMP, pad_aware=True, stats=stats)
    assert stats.swaps == 0


def test_stats_accumulate_across_stages():
    stats = NetworkStats()
    array = PublicArray([3, 2, 1, 0], name="A")
    apply_network(array, [[(0, 1), (2, 3)], [(0, 2), (1, 3)], [(1, 2)]], CMP, stats=stats)
    assert stats.stages == 3
    assert stats.comparisons == 5
    assert array.snapshot() == [0, 1, 2, 3]


def test_network_size_helper():
    depth, comparators = network_size([[(0, 1)], [(0, 2), (1, 3)]])
    assert depth == 2 and comparators == 3


def test_is_valid_schedule_rejects_overlap_and_range():
    assert not is_valid_schedule(4, [[(0, 1), (1, 2)]])  # 1 reused in stage
    assert not is_valid_schedule(2, [[(0, 2)]])  # out of range
    assert not is_valid_schedule(4, [[(2, 2)]])  # degenerate pair
    assert is_valid_schedule(4, [[(0, 1), (2, 3)]])


def test_stats_phase_bookkeeping():
    stats = NetworkStats()
    stats.add_phase("sort", 10)
    stats.add_phase("sort", 5)
    assert stats.by_phase == {"sort": 15}
