"""The Plan IR: compilation, canonical serialization, and plan-equality
obliviousness — same public shapes ⇒ byte-identical serialized plans,
across engines, key distributions, and padding modes."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.padding import cascade_bounds, join_bound
from repro.engines import get_engine
from repro.errors import InputError
from repro.plan import (
    Plan,
    PlanBuilder,
    compile_join,
    compile_multiway,
    compile_workload,
    partition_plan,
)
from repro.plan.compile import (
    sharded_aggregate_plan,
    sharded_filter_plan,
    sharded_join_plan,
)
from repro.shard.aggregate import ShardedAggregateStats, sharded_join_aggregate
from repro.shard.join import ShardedJoinStats, sharded_oblivious_join
from repro.shard.multiway import ShardedMultiwayStats, sharded_multiway_join
from repro.shard.relational import sharded_filter_indices


# -- IR mechanics ------------------------------------------------------------


def test_plan_serialization_is_canonical_and_digest_stable():
    plan = sharded_join_plan(10, 7, 3, 70)
    again = sharded_join_plan(10, 7, 3, 70)
    assert plan == again
    assert plan.serialize() == again.serialize()
    assert plan.digest() == again.digest()
    payload = json.loads(plan.serialize())
    assert payload["workload"] == "join"
    assert payload["shapes"] == {"n1": 10, "n2": 7, "k": 3, "target": 70}


def test_plan_attrs_are_sorted_and_queryable():
    builder = PlanBuilder("join", "vector", n1=4, n2=2)
    index = builder.add("input", zeta=1, alpha=2, rows=3)
    plan = builder.build()
    node = plan.nodes[index]
    assert [name for name, _ in node.attrs] == ["alpha", "rows", "zeta"]
    assert node.attr("alpha") == 2
    assert node.attr("missing", "fallback") == "fallback"
    assert plan.shape("n1") == 4 and plan.shape("absent") is None


def test_plan_rejects_floats_and_unknown_inputs():
    builder = PlanBuilder("join", "vector")
    with pytest.raises(InputError, match="int/str/bool/None"):
        builder.add("input", rows=1.5)
    with pytest.raises(InputError, match="unknown input"):
        builder.add("zip", inputs=(3,))


def test_embed_offsets_inputs_and_tags_steps():
    inner = sharded_join_plan(4, 4, 2, None)
    builder = PlanBuilder("multiway", "sharded", sizes=(4, 4))
    builder.add("marker")
    indices = builder.embed(inner, step=7)
    plan = builder.build()
    assert indices[0] == 1
    for index in indices:
        node = plan.nodes[index]
        assert node.attr("step") == 7
        assert all(i >= 1 for i in node.inputs)


def test_render_mentions_every_node_and_digest():
    plan = compile_join(8, 8, "vector", padding="worst_case")
    text = plan.render()
    assert plan.digest() in text
    assert text.count("\n") >= len(plan.nodes)


# -- compilers reuse the padding/partition planners --------------------------


@pytest.mark.parametrize("engine", ["traced", "vector", "sharded"])
@pytest.mark.parametrize(
    "padding,bound", [("revealed", None), ("bounded", 13), ("worst_case", None)]
)
def test_compile_join_target_matches_join_bound(engine, padding, bound):
    plan = compile_join(9, 5, engine, shards=2, padding=padding, bound=bound)
    assert plan.shape("target") == join_bound(9, 5, padding, bound)


def test_compile_multiway_bounds_match_cascade_bounds():
    sizes = [5, 4, 3]
    plan = compile_multiway(sizes, "vector", padding="worst_case")
    assert plan.shape("bounds") == cascade_bounds(sizes, "worst_case")
    capped = compile_multiway(sizes, "sharded", shards=2, padding="bounded", bound=6)
    assert capped.shape("bounds") == cascade_bounds(sizes, "bounded", 6)


def test_sharded_join_plan_grid_uses_partition_counts():
    n1, n2, k = 10, 7, 3
    plan = sharded_join_plan(n1, n2, k, n1 * n2)
    _, counts1 = partition_plan(n1, k)
    _, counts2 = partition_plan(n2, k)
    cells = plan.nodes_by_op("grid_join")
    assert len(cells) == k * k
    assert [node.attr("target") for node in cells] == [
        c1 * c2 for c1 in counts1 for c2 in counts2
    ]
    merge = plan.nodes_by_op("merge")[-1]
    assert merge.attr("truncate") == n1 * n2


def test_sharded_plans_embed_the_merge_tournament_bracket():
    """Every pairwise merge of the reassembly is a merge_pair node whose
    (round, slot, lengths) come from tournament_schedule — the same pure
    function the runtime streaming tournament walks."""
    from repro.plan import tournament_schedule

    n1, n2, k = 10, 7, 3
    plan = sharded_join_plan(n1, n2, k, n1 * n2)
    _, counts1 = partition_plan(n1, k)
    _, counts2 = partition_plan(n2, k)
    run_lengths = [c1 * c2 for c1 in counts1 for c2 in counts2]
    output_pairs = [
        node
        for node in plan.nodes_by_op("merge_pair")
        if node.attr("stage") == "output"
    ]
    expected = [
        node
        for node in tournament_schedule(k * k, run_lengths, truncate=n1 * n2)
        if not node.is_carry
    ]
    assert [
        (p.attr("round"), p.attr("slot"), p.attr("left_rows"),
         p.attr("right_rows"), p.attr("rows"))
        for p in output_pairs
    ] == [(n.round, n.slot, n.left_rows, n.right_rows, n.rows) for n in expected]
    presort_pairs = [
        node
        for node in plan.nodes_by_op("merge_pair")
        if node.attr("stage") == "presort"
    ]
    assert len(presort_pairs) == len(
        [n for n in tournament_schedule(k, counts1) if not n.is_carry]
    )
    # Revealed mode keeps the bracket but marks the lengths run-time.
    revealed = sharded_join_plan(n1, n2, k, None)
    for node in revealed.nodes_by_op("merge_pair"):
        if node.attr("stage") == "output":
            assert node.attr("rows") is None


def test_expand_segment_windows_are_pure_functions_of_shapes():
    """The byte-pin: segment caps, windows, and the plan digest come from
    ``expand_segment_plan`` alone — recompiling at the same shapes yields
    identical bytes, and every node's window is reproducible from the
    public ``(n1, n2, k, target, segments)`` with no data in sight."""
    from repro.plan.partition import expand_segment_plan

    n1, n2, k, segments = 10, 7, 3, 4
    plan = sharded_join_plan(n1, n2, k, n1 * n2, segments)
    assert plan.serialize() == sharded_join_plan(
        n1, n2, k, n1 * n2, segments
    ).serialize()
    payload = json.loads(plan.serialize())
    assert payload["shapes"] == {
        "n1": n1, "n2": n2, "k": k, "target": n1 * n2, "segments": segments,
    }
    _, counts1 = partition_plan(n1, k)
    _, counts2 = partition_plan(n2, k)
    expected = []
    for i, c1 in enumerate(counts1):
        for j, c2 in enumerate(counts2):
            _, seg_rows = expand_segment_plan(c1 * c2, c1, c2, segments)
            offset = 0
            for s, rows in enumerate(seg_rows):
                expected.append(((i, j), s, offset, offset + rows, rows))
                offset += rows
            assert offset == c1 * c2  # windows tile the cell exactly
    assert [
        (n.attr("cell"), n.attr("segment"), n.attr("lo"), n.attr("hi"),
         n.attr("rows"))
        for n in plan.nodes_by_op("expand_segment")
    ] == expected
    # The tournament's leaves are the segment runs, not whole cells: the
    # output merge's run lengths are exactly the window rows, in order.
    merge = plan.nodes_by_op("merge")[-1]
    assert merge.attr("run_lengths") == tuple(rows for *_, rows in expected)
    # The shape-driven default omits the segments shape (and so keeps the
    # historical plan bytes distinct from an explicit override).
    default = sharded_join_plan(n1, n2, k, n1 * n2)
    assert "segments" not in json.loads(default.serialize())["shapes"]
    assert default.digest() != plan.digest()
    # Revealed mode has no public windows to emit.
    assert sharded_join_plan(n1, n2, k, None, None).nodes_by_op(
        "expand_segment"
    ) == []


def test_revealed_plans_mark_runtime_sizes_as_null():
    plan = sharded_join_plan(6, 6, 2, None)
    assert all(n.attr("target") is None for n in plan.nodes_by_op("grid_join"))
    cascade = compile_multiway([4, 4, 4], "vector", padding=None)
    assert cascade.shape("bounds") == ()


def test_compile_workload_validates_inputs():
    with pytest.raises(InputError, match="unknown workload"):
        compile_workload("scan", "vector", n=4)
    with pytest.raises(InputError, match="join plans need"):
        compile_workload("join", "vector", n1=4)
    with pytest.raises(InputError, match="multiway plans need"):
        compile_workload("multiway", "vector")
    with pytest.raises(InputError, match="no plan compiler"):
        compile_join(4, 4, "gpu")


# -- engines emit plans ------------------------------------------------------


def test_engine_compile_plan_uses_engine_configuration():
    engine = get_engine("sharded", shards=4, padding="worst_case")
    plan = engine.compile_plan("join", n1=12, n2=6)
    assert plan == compile_workload(
        "join", "sharded", n1=12, n2=6, shards=4, padding="worst_case"
    )
    assert plan.shape("k") == 4 and plan.shape("target") == 72


@pytest.mark.parametrize("engine", ["traced", "vector"])
def test_inline_engines_compile_linear_pipelines(engine):
    plan = get_engine(engine).compile_plan("join", n1=5, n2=5, padding="worst_case")
    assert plan.engine == engine
    assert [node.op for node in plan.nodes] == [
        "input", "input", "augment", "expand", "expand", "align", "zip",
    ]
    assert plan.nodes_by_op("augment")[0].attr("rows") == 12  # anchors included


def test_engine_compile_plan_covers_every_workload():
    engine = get_engine("sharded", shards=3, padding="worst_case")
    for workload, shapes in [
        ("join", {"n1": 6, "n2": 6}),
        ("multiway", {"sizes": [4, 4, 4]}),
        ("aggregate", {"n1": 6, "n2": 6}),
        ("group_by", {"n": 6}),
        ("filter", {"n": 6}),
        ("order_by", {"n": 6}),
    ]:
        plan = engine.compile_plan(workload, **shapes)
        assert isinstance(plan, Plan) and plan.workload == workload


# -- plan-equality obliviousness ---------------------------------------------

#: Two same-shape, very differently distributed inputs (8 rows each side).
DATASET_A = (
    [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8)],
    [(0, 9), (0, 8), (0, 7), (1, 1), (2, 2), (3, 3), (4, 4), (5, 5)],
)
DATASET_B = (
    [(7, 1), (6, 1), (5, 1), (4, 1), (3, 1), (2, 1), (1, 1), (0, 1)],
    [(9, 0), (9, 0), (9, 0), (9, 0), (9, 0), (9, 0), (9, 0), (7, 2)],
)


def _executed_join_plan(left, right, target):
    stats = ShardedJoinStats()
    sharded_oblivious_join(left, right, shards=3, stats=stats, target_m=target)
    return stats.plan


def test_padded_join_plans_are_byte_identical_across_key_distributions():
    target = 64
    plan_a = _executed_join_plan(*DATASET_A, target)
    plan_b = _executed_join_plan(*DATASET_B, target)
    assert plan_a.serialize() == plan_b.serialize()
    # ... and identical to the plan compiled with no data in sight.
    assert plan_a.serialize() == sharded_join_plan(8, 8, 3, target).serialize()


def test_join_rejects_a_plan_compiled_for_other_shapes():
    """A mismatched supplied plan must fail loudly, not silently truncate
    the grid against the wrong cell list."""
    foreign = sharded_join_plan(8, 8, 2, None)
    with pytest.raises(InputError, match="cannot drive"):
        sharded_oblivious_join(*DATASET_A, shards=3, plan=foreign)
    # The matching plan drives the join exactly like plan=None.
    matching = sharded_join_plan(8, 8, 3, None)
    with_plan, _ = sharded_oblivious_join(*DATASET_A, shards=3, plan=matching)
    without, _ = sharded_oblivious_join(*DATASET_A, shards=3)
    assert with_plan.tolist() == without.tolist()


def test_executed_plan_bytes_survive_adversarial_completion_orders():
    """The streaming merge folds grid results in whatever order they
    complete; the executed plan's canonical bytes must stay a pure
    function of (sizes, k, bounds) anyway — completion order is
    scheduling jitter, not schedule."""
    from repro.plan import ShuffleExecutor

    target = 64
    compiled = sharded_join_plan(8, 8, 3, target).serialize()
    for data in (DATASET_A, DATASET_B):
        for seed in range(3):
            stats = ShardedJoinStats()
            sharded_oblivious_join(
                *data,
                shards=3,
                stats=stats,
                target_m=target,
                executor=ShuffleExecutor(seed=seed),
            )
            assert stats.plan.serialize() == compiled


def test_padded_multiway_step_plans_are_byte_identical_across_data():
    t3 = [(1, 0), (2, 0), (3, 0)]
    serialized = []
    for left, right in (DATASET_A, DATASET_B):
        stats = ShardedMultiwayStats()
        sharded_multiway_join(
            [left, right, t3],
            [(0, 0), (3, 0)],
            shards=2,
            stats=stats,
            padding="worst_case",
        )
        serialized.append(
            tuple(step.plan.serialize() for step in stats.step_stats)
        )
    assert serialized[0] == serialized[1]


def test_aggregate_plans_are_byte_identical_across_data():
    serialized = []
    for left, right in (DATASET_A, DATASET_B):
        stats = ShardedAggregateStats()
        sharded_join_aggregate(left, right, shards=3, stats=stats, padded=True)
        serialized.append(stats.plan.serialize())
    assert serialized[0] == serialized[1]
    assert serialized[0] == sharded_aggregate_plan(
        "aggregate", 8, 8, 3, True
    ).serialize()


def test_engine_level_plan_depends_only_on_shapes_not_data():
    """compile_plan never sees data, so this is equality by construction —
    pinned anyway as the contract the CLI `plan` command sells."""
    engine = get_engine("sharded", shards=2, padding="worst_case")
    one = engine.compile_plan("multiway", sizes=[8, 8, 3])
    two = engine.compile_plan("multiway", sizes=[8, 8, 3])
    other = engine.compile_plan("multiway", sizes=[8, 8, 4])
    assert one.serialize() == two.serialize()
    assert one.serialize() != other.serialize()


# -- padded sharded FILTER (the closed residual) ------------------------------


class CapturingExecutor:
    """Inline executor that records every task's result shape."""

    name = "capturing"
    transport = "none"

    def __init__(self) -> None:
        self.result_lengths: list[list[int]] = []

    def map(self, task, payloads):
        results = [task(payload) for payload in payloads]
        self.result_lengths.append([len(r) for r in results])
        return results


@pytest.mark.parametrize(
    "mask",
    [
        [True] * 10,
        [False] * 10,
        [True, False] * 5,
        [False] * 9 + [True],
    ],
)
def test_padded_filter_blocks_all_ship_at_capacity(mask):
    """Padded mode: every survivor block has the (n, k)-determined shape —
    the per-shard survivor counts are no longer visible on the wire."""
    capacity, _ = partition_plan(len(mask), 3)
    executor = CapturingExecutor()
    kept = sharded_filter_indices(mask, shards=3, padded=True, executor=executor)
    assert kept == [i for i, keep in enumerate(mask) if keep]
    assert executor.result_lengths == [[capacity] * 3]


def test_unpadded_filter_blocks_reveal_their_counts():
    executor = CapturingExecutor()
    sharded_filter_indices([True, True, False, False], shards=2, executor=executor)
    assert executor.result_lengths == [[2, 0]]


def test_filter_plan_pads_to_capacity_only_when_padded():
    padded = sharded_filter_plan(10, 3, True)
    revealed = sharded_filter_plan(10, 3, False)
    assert [n.attr("pad") for n in padded.nodes_by_op("block_filter")] == [4, 4, 4]
    assert [n.attr("pad") for n in revealed.nodes_by_op("block_filter")] == [
        None, None, None,
    ]


def test_padded_filter_via_engine_matches_reference():
    mask = [True, False, True, False, True]
    padded_engine = get_engine("sharded", padding="worst_case", shards=2)
    assert padded_engine.filter_indices(mask) == get_engine(
        "traced"
    ).filter_indices(mask)


# -- pipeline DAG plans --------------------------------------------------------

#: Same-shape chains over very differently distributed data: skewed keys,
#: all-duplicate keys, empty right side of the mask, ragged survivors.
PIPELINE_DATASETS = [
    (DATASET_A[0], [True] * 8, DATASET_A[1]),
    (DATASET_B[0], [False] * 8, DATASET_B[1]),
    ([(0, 0)] * 8, [True, False] * 4, [(0, 0)] * 8),
]


def _pipeline_chain(source, mask, right):
    return [("source", source), ("filter", mask), ("join", right), ("group_by",)]


def test_pipeline_plan_bytes_identical_across_adversarial_data():
    """The executed DAG plan is a pure function of (shapes, k) — skew,
    all-dup keys, and survivor patterns (mask content) change nothing."""
    from repro.engines import ShardedEngine
    from repro.shard.pipeline import check_pipeline_stages

    serialized = {
        ShardedEngine(shards=3)
        .pipeline(_pipeline_chain(source, mask, right))
        .stats.plan.serialize()
        for source, mask, right in PIPELINE_DATASETS
    }
    assert len(serialized) == 1
    # ... identical to the plan compiled with no data in sight.
    ops = check_pipeline_stages(_pipeline_chain(*PIPELINE_DATASETS[0]))
    compiled = get_engine("sharded", shards=3).compile_pipeline(ops)
    assert serialized == {compiled.serialize()}


def test_pipeline_plan_bytes_survive_adversarial_completion_orders():
    from repro.engines import ShardedEngine
    from repro.plan import ShuffleExecutor

    source, mask, right = PIPELINE_DATASETS[0]
    chain = _pipeline_chain(source, mask, right)
    reference = ShardedEngine(shards=3).pipeline(chain).stats.plan.serialize()
    for seed in range(4):
        engine = ShardedEngine(shards=3, executor=ShuffleExecutor(seed=seed))
        assert engine.pipeline(chain).stats.plan.serialize() == reference


def test_pipeline_plan_digest_depends_on_shapes_k_and_bounds():
    engine = get_engine("sharded", shards=3)
    base = [("source", {"n": 8}), ("filter", {}), ("join", {"n2": 8})]
    one = engine.compile_pipeline(base)
    assert one.serialize() == engine.compile_pipeline(base).serialize()
    bigger = [("source", {"n": 9}), ("filter", {}), ("join", {"n2": 8})]
    assert one.digest() != engine.compile_pipeline(bigger).digest()
    assert (
        one.digest()
        != get_engine("sharded", shards=4).compile_pipeline(base).digest()
    )
    padded = get_engine("sharded", shards=3, padding="worst_case")
    assert one.digest() != padded.compile_pipeline(base).digest()


def test_pipeline_plan_has_channel_nodes_between_every_stage():
    engine = get_engine("sharded", shards=3)
    plan = engine.compile_pipeline(
        [("source", {"n": 10}), ("filter", {}), ("join", {"n2": 4}), ("group_by", {})]
    )
    channels = plan.nodes_by_op("channel")
    assert len(channels) == 3  # one per operator stage
    assert channels[0].attr("blocks") == 3
    # The source channel's per-block capacities come from the partition
    # plan; post-filter channels carry run-time (revealed) sizes.
    capacity, counts = partition_plan(10, 3)
    assert channels[0].attr("capacity") == capacity
    assert channels[0].attr("counts") == tuple(counts)
    assert channels[1].attr("capacity") is None


# -- streaming dispatch overlap ------------------------------------------------


class RecordingExecutor:
    """Inline lazy executor recording dispatch order across task kinds.

    ``imap`` yields one completion at a time, so anything the consuming
    driver dispatches per completion lands in ``events`` between
    completions — making the streamed (no-barrier) schedule observable.
    """

    name = "recording"

    def __init__(self) -> None:
        self.events: list[tuple[str, str]] = []

    def map(self, task, payloads):
        return [task(payload) for payload in payloads]

    def imap(self, task, payloads):
        for index, payload in enumerate(list(payloads)):
            result = task(payload)
            self.events.append(("complete", task.__name__))
            yield index, result

    def submit(self, task, payload):
        self.events.append(("submit", task.__name__))
        from repro.plan.executors import _Immediate

        return _Immediate(task(payload))


def test_downstream_tasks_dispatch_before_upstream_finishes():
    """The tentpole property: >= 1 downstream shard task is dispatched
    *before* the upstream operator publishes its final block — the edge is
    a streaming channel, not a barrier."""
    from repro.shard.pipeline import streamed_pipeline

    source, mask, right = PIPELINE_DATASETS[0]
    executor = RecordingExecutor()
    streamed_pipeline(
        _pipeline_chain(source, mask, right), shards=3, executor=executor
    )
    events = executor.events
    filter_completions = [
        i for i, (kind, task) in enumerate(events)
        if kind == "complete" and task == "_filter_block_task"
    ]
    sort_submits = [
        i for i, (kind, task) in enumerate(events)
        if kind == "submit" and task == "_sort_task"
    ]
    assert len(filter_completions) == 3
    assert sort_submits and sort_submits[0] < filter_completions[-1]


def test_join_group_by_edge_streams_partials_per_grid_cell():
    from repro.shard.pipeline import streamed_pipeline

    source, _, right = PIPELINE_DATASETS[0]
    executor = RecordingExecutor()
    streamed_pipeline(
        [("source", source), ("join", right), ("group_by",)],
        shards=3,
        executor=executor,
    )
    events = executor.events
    join_completions = [
        i for i, (kind, task) in enumerate(events)
        if kind == "complete" and task == "_join_task"
    ]
    aggregate_submits = [
        i for i, (kind, task) in enumerate(events)
        if kind == "submit" and task == "_aggregate_task"
    ]
    assert len(join_completions) == 9  # the full 3x3 grid
    assert aggregate_submits and aggregate_submits[0] < join_completions[-1]


# -- the CLI plan command -----------------------------------------------------


def test_cli_plan_json_is_deterministic(capsys):
    args = [
        "plan", "--workload", "join", "--engine", "sharded",
        "--padding", "worst_case", "--n1", "16", "--n2", "16",
        "--shards", "4", "--json",
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    second = capsys.readouterr().out
    assert first == second
    payload = json.loads(first)
    assert payload["shapes"] == {"k": 4, "n1": 16, "n2": 16, "target": 256}


def test_cli_plan_renders_human_readable(capsys):
    assert main(["plan", "--n1", "8", "--n2", "8"]) == 0
    out = capsys.readouterr().out
    assert "plan join on vector" in out and "digest" in out


def test_cli_plan_multiway_and_scalar_workloads(capsys):
    assert main(
        ["plan", "--workload", "multiway", "--sizes", "4", "4", "4",
         "--engine", "sharded", "--padding", "worst_case", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["shapes"]["bounds"] == [16, 64]
    assert main(["plan", "--workload", "filter", "--n", "9"]) == 0
    capsys.readouterr()


def test_cli_plan_rejects_missing_shapes_and_bad_bounds(capsys):
    with pytest.raises(SystemExit):
        main(["plan", "--workload", "join"])  # no sizes given
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["plan", "--n1", "4", "--n2", "4", "--bound", "3"])  # bound sans bounded
    capsys.readouterr()
    with pytest.raises(SystemExit):  # engine-option errors exit cleanly too
        main(["plan", "--engine", "vector", "--shards", "4", "--n1", "4", "--n2", "4"])
    capsys.readouterr()
