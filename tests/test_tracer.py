"""Tracing substrate: sinks, phases, rolling hashes."""

import pytest

from repro.memory.tracer import (
    READ,
    WRITE,
    CountSink,
    HashSink,
    ListSink,
    NullSink,
    TeeSink,
    Tracer,
    hash_events,
)


def test_list_sink_records_events_in_order():
    sink = ListSink()
    tracer = Tracer(sink)
    a = tracer.register_array("A")
    tracer.read(a, 3)
    tracer.write(a, 4)
    assert sink.events == [(READ, a, 3), (WRITE, a, 4)]


def test_array_ids_assigned_in_registration_order():
    tracer = Tracer(NullSink())
    assert tracer.register_array("A") == 0
    assert tracer.register_array("B") == 1
    assert tracer.array_name(1) == "B"


def test_hash_sink_matches_replayed_event_hash():
    sink = HashSink()
    tracer = Tracer(sink)
    a = tracer.register_array("A")
    events = []
    for i in range(20):
        tracer.read(a, i)
        events.append((READ, a, i))
        tracer.write(a, i)
        events.append((WRITE, a, i))
    assert sink.digest == hash_events(events)
    assert sink.count == 40


def test_hash_sink_distinguishes_read_from_write():
    s1, s2 = HashSink(), HashSink()
    s1.emit(READ, 0, 5, None)
    s2.emit(WRITE, 0, 5, None)
    assert s1.digest != s2.digest


def test_hash_sink_distinguishes_indices_and_arrays():
    s1, s2, s3 = HashSink(), HashSink(), HashSink()
    s1.emit(READ, 0, 5, None)
    s2.emit(READ, 0, 6, None)
    s3.emit(READ, 1, 5, None)
    assert len({s1.digest, s2.digest, s3.digest}) == 3


def test_hash_sink_is_order_sensitive():
    s1, s2 = HashSink(), HashSink()
    s1.emit(READ, 0, 1, None)
    s1.emit(READ, 0, 2, None)
    s2.emit(READ, 0, 2, None)
    s2.emit(READ, 0, 1, None)
    assert s1.digest != s2.digest


def test_count_sink_tracks_phases():
    sink = CountSink()
    tracer = Tracer(sink)
    a = tracer.register_array("A")
    with tracer.phase("sort"):
        tracer.read(a, 0)
        tracer.read(a, 1)
        tracer.write(a, 0)
    with tracer.phase("scan"):
        tracer.write(a, 2)
    assert sink.reads["sort"] == 2
    assert sink.writes["sort"] == 1
    assert sink.phase_total("sort") == 3
    assert sink.phase_total("scan") == 1
    assert sink.total == 4


def test_phases_nest_and_unwind():
    sink = CountSink()
    tracer = Tracer(sink)
    a = tracer.register_array("A")
    with tracer.phase("outer"):
        with tracer.phase("inner"):
            tracer.read(a, 0)
        tracer.read(a, 1)
    tracer.read(a, 2)
    assert sink.reads["inner"] == 1
    assert sink.reads["outer"] == 1
    assert sink.reads[""] == 1


def test_tee_sink_fans_out():
    list_sink = ListSink()
    hash_sink = HashSink()
    tracer = Tracer(TeeSink(list_sink, hash_sink))
    a = tracer.register_array("A")
    tracer.write(a, 9)
    assert len(list_sink) == 1
    assert hash_sink.count == 1


def test_null_sink_discards():
    tracer = Tracer()  # default NullSink
    a = tracer.register_array("A")
    tracer.read(a, 0)  # must not raise


def test_hash_of_empty_trace_is_zero_state():
    assert HashSink().digest == b"\x00" * 32
    assert hash_events([]) == b"\x00" * 32


@pytest.mark.parametrize("n", [1, 7, 100])
def test_list_sink_phase_labels_align_with_events(n):
    sink = ListSink()
    tracer = Tracer(sink)
    a = tracer.register_array("A")
    with tracer.phase("p"):
        for i in range(n):
            tracer.read(a, i)
    assert len(sink.events) == len(sink.phases) == n
    assert set(sink.phases) == {"p"}
