"""Lexicographic sort specifications."""

from repro.obliv.compare import (
    SortKey,
    SortSpec,
    attr_key,
    comparator_from_spec,
    identity_key,
    item_key,
    spec,
)


class Row:
    def __init__(self, x, y):
        self.x = x
        self.y = y


def test_single_ascending_key():
    ordering = spec(attr_key("x"))
    assert ordering.compare(Row(1, 0), Row(2, 0)) < 0
    assert ordering.compare(Row(2, 0), Row(1, 0)) > 0
    assert ordering.compare(Row(1, 5), Row(1, 9)) == 0


def test_descending_key_flips_order():
    ordering = spec(attr_key("x", ascending=False))
    assert ordering.compare(Row(1, 0), Row(2, 0)) > 0
    assert ordering.compare(Row(2, 0), Row(1, 0)) < 0


def test_lexicographic_tie_breaking():
    ordering = spec(attr_key("x"), attr_key("y", ascending=False))
    assert ordering.compare(Row(1, 5), Row(1, 3)) < 0  # bigger y first
    assert ordering.compare(Row(1, 3), Row(1, 5)) > 0
    assert ordering.compare(Row(0, 0), Row(1, 100)) < 0


def test_item_key_indexes_tuples():
    ordering = spec(item_key(1))
    assert ordering.compare((0, 5), (9, 7)) < 0


def test_identity_key_compares_values():
    ordering = spec(identity_key())
    assert ordering.compare(3, 4) < 0
    assert ordering.compare(4, 4) == 0


def test_comparator_closure_matches_spec():
    ordering = spec(attr_key("x"), attr_key("y"))
    cmp = comparator_from_spec(ordering)
    assert cmp(Row(1, 2), Row(1, 3)) == ordering.compare(Row(1, 2), Row(1, 3))


def test_describe_uses_paper_arrows():
    ordering = SortSpec(
        SortKey(getter=lambda e: e, ascending=True, name="j"),
        SortKey(getter=lambda e: e, ascending=False, name="d"),
    )
    assert ordering.describe() == "<j^, dv>"


def test_precedes_or_equal():
    ordering = spec(identity_key())
    assert ordering.precedes_or_equal(1, 1)
    assert ordering.precedes_or_equal(1, 2)
    assert not ordering.precedes_or_equal(2, 1)
