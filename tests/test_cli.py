"""The command-line interface."""

import csv

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def csv_pair(tmp_path):
    left = tmp_path / "left.csv"
    right = tmp_path / "right.csv"
    left.write_text("pid,name\n1,ana\n2,bo\n3,cy\n")
    right.write_text("pid,drug\n1,aspirin\n1,statin\n3,insulin\n")
    return str(left), str(right)


def test_join_command(csv_pair, tmp_path, capsys):
    left, right = csv_pair
    out = tmp_path / "out.csv"
    code = main(
        ["join", left, right, "--left-on", "pid", "--right-on", "pid",
         "--output", str(out)]
    )
    assert code == 0
    rows = list(csv.reader(out.open()))
    assert rows[0] == ["l.pid", "name", "r.pid", "drug"]
    assert len(rows) == 4  # header + 3 joined rows
    assert "m = 3" in capsys.readouterr().err


def test_join_to_stdout(csv_pair, capsys):
    left, right = csv_pair
    main(["join", left, right, "--left-on", "pid", "--right-on", "pid"])
    out = capsys.readouterr().out
    assert "aspirin" in out and "insulin" in out


def test_join_engine_flag_produces_identical_output(csv_pair, tmp_path):
    left, right = csv_pair
    outputs = {}
    for engine in ("traced", "vector"):
        out = tmp_path / f"{engine}.csv"
        code = main(
            ["join", left, right, "--left-on", "pid", "--right-on", "pid",
             "--engine", engine, "--output", str(out)]
        )
        assert code == 0
        outputs[engine] = out.read_text()
    assert outputs["traced"] == outputs["vector"]


def test_join_rejects_unknown_engine(csv_pair):
    left, right = csv_pair
    with pytest.raises(SystemExit):
        main(["join", left, right, "--left-on", "pid", "--right-on", "pid",
              "--engine", "gpu"])


def test_engines_command_lists_both(capsys):
    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    assert "traced" in out and "vector" in out


def test_engines_command_lists_accepted_options(capsys):
    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    assert "options: shards, workers, executor, padding, bound" in out  # sharded
    assert out.count("options: padding, bound") == 2  # traced + vector


def test_join_padding_flag_output_identical_and_noted(csv_pair, tmp_path, capsys):
    left, right = csv_pair
    outputs = {}
    for mode, extra in [
        ("revealed", []),
        ("worst_case", []),
        ("bounded", ["--bound", "5"]),
    ]:
        out = tmp_path / f"{mode}.csv"
        code = main(
            ["join", left, right, "--left-on", "pid", "--right-on", "pid",
             "--engine", "vector", "--padding", mode, "--output", str(out)]
            + extra
        )
        assert code == 0
        outputs[mode] = out.read_text()
    assert outputs["revealed"] == outputs["worst_case"] == outputs["bounded"]
    err = capsys.readouterr().err
    assert "trace padded: worst_case" in err and "trace padded: bounded" in err


def test_join_rejects_unknown_padding_mode(csv_pair):
    left, right = csv_pair
    with pytest.raises(SystemExit):
        main(["join", left, right, "--left-on", "pid", "--right-on", "pid",
              "--padding", "mystery"])


def test_join_rejects_inconsistent_bound_flags(csv_pair):
    """--bound without bounded padding would silently reveal; reject it."""
    left, right = csv_pair
    base = ["join", left, right, "--left-on", "pid", "--right-on", "pid"]
    with pytest.raises(SystemExit, match="only applies"):
        main(base + ["--bound", "100"])
    with pytest.raises(SystemExit, match="needs an explicit --bound"):
        main(base + ["--padding", "bounded"])
    with pytest.raises(SystemExit, match=">= 0"):
        main(base + ["--padding", "bounded", "--bound", "-3"])


def test_join_bounded_overflow_is_a_clean_error(csv_pair):
    """The documented bounded-mode abort surfaces as a message, not a
    traceback (the true join size here is 3 > bound 2)."""
    left, right = csv_pair
    with pytest.raises(SystemExit, match="padding bound exceeded"):
        main(["join", left, right, "--left-on", "pid", "--right-on", "pid",
              "--padding", "bounded", "--bound", "2"])


def test_join_infers_string_keys(tmp_path, capsys):
    a = tmp_path / "a.csv"
    b = tmp_path / "b.csv"
    a.write_text("city,pop\nams,1\nber,2\n")
    b.write_text("city,code\nber,49\n")
    main(["join", str(a), str(b), "--left-on", "city", "--right-on", "city"])
    assert "ber" in capsys.readouterr().out


def test_verify_command_reports_oblivious(capsys):
    code = main(["verify", "--n1", "6", "--n2", "6"])
    out = capsys.readouterr().out
    assert code == 0
    assert "OBLIVIOUS" in out
    assert out.count("accesses") == 4  # four class members


def test_trace_command_renders_raster(capsys):
    code = main(["trace", "--n", "8", "--width", "40", "--height", "10"])
    out = capsys.readouterr().out
    assert code == 0
    assert "█" in out and "accesses" in out


def test_predict_command(capsys):
    code = main(["predict", "--n", "1000000"])
    out = capsys.readouterr().out
    assert code == 0
    assert "prototype" in out and "sgx" in out and "knee" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_empty_csv_rejected(tmp_path):
    empty = tmp_path / "e.csv"
    empty.write_text("")
    with pytest.raises(SystemExit, match="empty"):
        main(["join", str(empty), str(empty), "--left-on", "x", "--right-on", "x"])
