"""Oblivious grouped aggregation (§7 extension)."""

from collections import defaultdict

from hypothesis import given, settings

from repro.core.aggregate import oblivious_group_by, oblivious_join_aggregate
from repro.memory.monitor import run_hashed

from conftest import pairs_strategy


def _oracle(left, right):
    agg = defaultdict(lambda: [0, 0, 0, 0])
    for j1, d1 in left:
        for j2, d2 in right:
            if j1 == j2:
                entry = agg[j1]
                entry[0] += 1
                entry[1] += d1
                entry[2] += d2
                entry[3] += d1 * d2
    return dict(agg)


@given(left=pairs_strategy(max_rows=12), right=pairs_strategy(max_rows=12))
@settings(max_examples=60, deadline=None)
def test_join_aggregate_matches_materialised_join(left, right):
    groups = oblivious_join_aggregate(left, right)
    got = {
        g.j: [g.pair_count, g.join_sum_d1, g.join_sum_d2, g.join_sum_product]
        for g in groups
    }
    assert got == {k: v for k, v in _oracle(left, right).items()}


def test_join_aggregate_min_max_over_groups():
    left = [(1, 5), (1, 9), (2, 3)]
    right = [(1, 2), (2, 8), (2, 1)]
    groups = {g.j: g for g in oblivious_join_aggregate(left, right)}
    assert groups[1].min_d1 == 5 and groups[1].max_d1 == 9
    assert groups[2].min_d2 == 1 and groups[2].max_d2 == 8


def test_join_aggregate_orders_groups_by_key():
    left = [(3, 1), (1, 1), (2, 1)]
    right = [(2, 1), (3, 1), (1, 1)]
    keys = [g.j for g in oblivious_join_aggregate(left, right)]
    assert keys == sorted(keys)


def test_join_aggregate_empty_inputs():
    assert oblivious_join_aggregate([], []) == []
    assert oblivious_join_aggregate([(1, 1)], []) == []


def test_join_aggregate_excludes_one_sided_groups():
    groups = oblivious_join_aggregate([(1, 1), (2, 2)], [(2, 5), (3, 9)])
    assert [g.j for g in groups] == [2]


def test_group_by_counts_sums_and_extrema():
    groups = oblivious_group_by([(1, 4), (2, 7), (1, 6), (1, 5)])
    by_key = {g.j: g for g in groups}
    assert by_key[1].count1 == 3
    assert by_key[1].sum_d1 == 15
    assert by_key[1].min_d1 == 4
    assert by_key[1].max_d1 == 6
    assert by_key[2].count1 == 1


def test_group_by_empty():
    assert oblivious_group_by([]) == []


def test_group_by_average_property():
    groups = oblivious_group_by([(0, 10), (0, 20)])
    assert groups[0].join_avg_d1 == 15.0


def test_aggregate_trace_independent_of_group_structure():
    """Unlike the join, the aggregate reveals only n and the group count."""

    def run(left, right):
        return run_hashed(
            lambda t: oblivious_join_aggregate(left, right, tracer=t)
        )[0]

    # Same n = 8, same number of joining groups (2), different dimensions
    # and wildly different would-be join sizes (m = 4 vs m = 2).
    a = run([(0, 1), (0, 2), (1, 3)], [(0, 4), (0, 5), (1, 6), (2, 7), (3, 8)])
    b = run([(5, 1), (6, 2), (6, 3)], [(5, 4), (6, 5), (9, 6), (9, 7), (9, 8)])
    assert a == b


def test_aggregate_cost_independent_of_output_size():
    """The §7 selling point: a huge join aggregates in the same trace."""

    def run(left, right):
        digest, count, _ = run_hashed(
            lambda t: oblivious_join_aggregate(left, right, tracer=t)
        )
        return count

    narrow = run([(0, i) for i in range(8)], [(1, i) for i in range(8)] + [(0, 0)])
    # single 8x9 group: m would be 72, but the aggregate trace stays put
    wide = run([(0, i) for i in range(8)], [(0, i) for i in range(9)])
    assert abs(narrow - wide) <= 2 * 0  # identical event counts
