"""Integration: oblivious primitives over encrypted-at-rest public memory.

The §3.1 model assumes probabilistic encryption hides cell contents; here
the primitives actually run over ciphertext-holding arrays, checking both
functional correctness through the encrypt/decrypt boundary and the §3.5
property that dummy write-backs refresh ciphertexts (a swap and a
non-swap are indistinguishable at rest).
"""

from repro.core.entry import Entry, EntryCodec
from repro.memory.encryption import IntCodec, ProbabilisticEncryptor
from repro.memory.public import PublicArray
from repro.memory.tracer import ListSink, Tracer
from repro.obliv.bitonic import bitonic_sort
from repro.obliv.compare import attr_key, identity_key, spec
from repro.obliv.routing import route_forward


def _encrypted_array(values, codec):
    return PublicArray(
        values,
        name="ENC",
        tracer=Tracer(ListSink()),
        encryptor=ProbabilisticEncryptor(key=b"integration-key"),
        codec=codec,
    )


def test_bitonic_sort_over_encrypted_ints():
    array = _encrypted_array([5, 3, 8, 1, 9, 2, 7, 0], IntCodec())
    bitonic_sort(array, spec(identity_key()))
    assert array.snapshot() == [0, 1, 2, 3, 5, 7, 8, 9]


def test_sort_refreshes_every_ciphertext():
    values = [3, 1, 2, 0]
    array = _encrypted_array(values, IntCodec())
    before = [array.ciphertext_at(i) for i in range(4)]
    bitonic_sort(array, spec(identity_key()))
    after = [array.ciphertext_at(i) for i in range(4)]
    # Every cell was rewritten at least once, so every ciphertext changed —
    # even for cells whose plaintext ended up unchanged.
    assert all(a != b for a, b in zip(after, before))


def test_dummy_writeback_indistinguishable_from_swap():
    sorted_input = _encrypted_array([1, 2], IntCodec())
    unsorted_input = _encrypted_array([2, 1], IntCodec())
    bitonic_sort(sorted_input, spec(identity_key()))  # pure dummy write-backs
    bitonic_sort(unsorted_input, spec(identity_key()))  # one real swap
    # At rest both arrays look like fresh ciphertexts; lengths equal.
    for i in range(2):
        assert len(sorted_input.ciphertext_at(i)) == len(
            unsorted_input.ciphertext_at(i)
        )
    assert sorted_input.snapshot() == unsorted_input.snapshot() == [1, 2]


def test_routing_over_encrypted_entries():
    codec = EntryCodec()
    entries = [Entry(j=0, d=10 * i, f=t) for i, t in enumerate([1, 3, 4, 7])]
    entries += [Entry.make_null() for _ in range(4)]
    array = _encrypted_array(entries, codec)
    route_forward(array, lambda e: -1 if e.null else e.f, 8)
    snapshot = array.snapshot()
    for target, d in [(1, 0), (3, 10), (4, 20), (7, 30)]:
        assert snapshot[target].d == d and not snapshot[target].null


def test_entry_sort_over_encrypted_cells():
    codec = EntryCodec()
    entries = [Entry(j=j, d=d) for j, d in [(2, 1), (1, 9), (1, 2), (0, 5)]]
    array = _encrypted_array(entries, codec)
    bitonic_sort(array, spec(attr_key("j"), attr_key("d")))
    assert [(e.j, e.d) for e in array.snapshot()] == [(0, 5), (1, 2), (1, 9), (2, 1)]


def test_ciphertexts_constant_width_across_entry_contents():
    codec = EntryCodec()
    small = Entry(j=0, d=0)
    big = Entry(j=2**50, d=-(2**50), a1=999, a2=999, f=123456, ii=654321)
    array = _encrypted_array([small, big], codec)
    assert len(array.ciphertext_at(0)) == len(array.ciphertext_at(1))
