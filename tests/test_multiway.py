"""Multi-way join cascades (§7 extension)."""

import pytest

from repro.core.multiway import oblivious_multiway_join
from repro.errors import InputError


def _oracle_3way(t1, t2, t3, k01, k_acc_2):
    step1 = [a + b for a in t1 for b in t2 if a[k01[0]] == b[k01[1]]]
    return sorted(
        a + b for a in step1 for b in t3 if a[k_acc_2[0]] == b[k_acc_2[1]]
    )


def test_three_way_chain():
    customers = [(1, 100), (2, 200)]
    orders = [(1, 11), (1, 12), (2, 21)]
    items = [(11, 7), (12, 8), (21, 9), (99, 0)]
    result = oblivious_multiway_join(
        [customers, orders, items], keys=[(0, 0), (3, 0)]
    )
    assert sorted(result.rows) == _oracle_3way(
        customers, orders, items, (0, 0), (3, 0)
    )
    assert result.intermediate_sizes == [3, 3]


def test_two_way_degenerates_to_binary_join():
    result = oblivious_multiway_join([[(1, 2)], [(1, 3)]], keys=[(0, 0)])
    assert result.rows == [(1, 2, 1, 3)]
    assert len(result) == 1


def test_intermediate_sizes_are_recorded():
    t1 = [(0, 1), (0, 2)]
    t2 = [(0, 5)]
    t3 = [(5, 1), (5, 2), (5, 3)]
    result = oblivious_multiway_join([t1, t2, t3], keys=[(0, 0), (3, 0)])
    assert result.intermediate_sizes == [2, 6]


def test_empty_intermediate_short_circuits_naturally():
    result = oblivious_multiway_join(
        [[(1, 1)], [(2, 2)], [(3, 3)]], keys=[(0, 0), (0, 0)]
    )
    assert result.rows == []
    assert result.intermediate_sizes == [0, 0]


def test_needs_at_least_two_tables():
    with pytest.raises(InputError):
        oblivious_multiway_join([[(1, 1)]], keys=[])


def test_key_count_must_match():
    with pytest.raises(InputError, match="key specs"):
        oblivious_multiway_join([[(1, 1)], [(1, 1)]], keys=[])


def test_key_column_out_of_range():
    with pytest.raises(InputError, match="out of range"):
        oblivious_multiway_join([[(1, 1)], [(1, 1)]], keys=[(5, 0)])


def test_non_int_key_rejected():
    with pytest.raises(InputError, match="dictionary-encoded"):
        oblivious_multiway_join([[("a", 1)], [("a", 1)]], keys=[(0, 0)])


def test_four_way_chain():
    a = [(1, 0)]
    b = [(1, 2)]
    c = [(2, 3)]
    d = [(3, 4), (3, 5)]
    result = oblivious_multiway_join([a, b, c, d], keys=[(0, 0), (3, 0), (5, 0)])
    assert sorted(result.rows) == [(1, 0, 1, 2, 2, 3, 3, 4), (1, 0, 1, 2, 2, 3, 3, 5)]
