"""Figure 7 trace rasterisation."""

import os

from repro.analysis.viz import rasterize, render_text, write_pgm
from repro.core.join import oblivious_join
from repro.memory.monitor import run_logged
from repro.memory.tracer import READ, WRITE


def _sample_events():
    return [(WRITE, 0, 0), (READ, 0, 1), (READ, 1, 0), (WRITE, 1, 1)]


def test_raster_shape():
    raster = rasterize(_sample_events(), width=10, height=6)
    assert raster.shape == (6, 10)


def test_arrays_stack_in_registration_order():
    raster = rasterize(_sample_events(), width=4, height=4)
    assert raster.array_offsets[0] == 0
    assert raster.array_offsets[1] == 2  # array 0 occupies two cells
    assert raster.total_cells == 4


def test_empty_trace():
    raster = rasterize([], width=5, height=5)
    assert raster.reads.sum() == 0 and raster.writes.sum() == 0
    assert "█" not in render_text(raster)


def test_reads_and_writes_distinguished():
    raster = rasterize(_sample_events(), width=4, height=4)
    text = render_text(raster)
    assert "░" in text and "█" in text and "." in text


def test_join_trace_rasterises(tmp_path):
    events, _ = run_logged(
        lambda t: oblivious_join(
            [(0, 1), (1, 2), (2, 3), (3, 4)],
            [(0, 5), (1, 6), (2, 7), (3, 8)],
            tracer=t,
        )
    )
    raster = rasterize(events, width=80, height=32)
    assert raster.reads.sum() + raster.writes.sum() == len(events)
    path = os.path.join(tmp_path, "fig7.pgm")
    write_pgm(raster, path)
    with open(path) as handle:
        header = handle.readline().strip()
    assert header == "P2"


def test_pgm_dimensions(tmp_path):
    raster = rasterize(_sample_events(), width=7, height=3)
    path = os.path.join(tmp_path, "t.pgm")
    write_pgm(raster, path)
    lines = open(path).read().splitlines()
    assert lines[1] == "7 3"
    assert len(lines) == 3 + 3  # header(3) + rows(3)
