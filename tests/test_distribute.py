"""Algorithm 3: oblivious distribution (deterministic and probabilistic)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribute import (
    ext_oblivious_distribute,
    oblivious_distribute,
    probabilistic_distribute,
)
from repro.core.entry import Entry
from repro.errors import CapacityError, InjectivityError
from repro.memory.monitor import verify_oblivious
from repro.memory.public import PublicArray
from repro.memory.tracer import Tracer
from repro.obliv.permute import FeistelPRP


def _entries(targets, nulls=0):
    entries = [Entry(j=0, d=i, f=t) for i, t in enumerate(targets)]
    entries += [Entry.make_null() for _ in range(nulls)]
    return entries


def _run(distribute, targets, m, nulls=0, **kw):
    tracer = Tracer()
    array = PublicArray(_entries(targets, nulls), name="X", tracer=tracer)
    return distribute(array, m, tracer, **kw).snapshot()


def test_figure3_example():
    """n=5, m=8, destinations 4,1,3,8,6 (1-based) = 3,0,2,7,5 (0-based)."""
    result = _run(oblivious_distribute, [3, 0, 2, 7, 5], 8)
    by_slot = {i: e for i, e in enumerate(result) if not e.null}
    assert set(by_slot) == {0, 2, 3, 5, 7}
    for slot, entry in by_slot.items():
        assert entry.f == slot


targets_strategy = st.integers(min_value=1, max_value=32).flatmap(
    lambda m: st.sets(st.integers(min_value=0, max_value=m - 1), max_size=m).map(
        lambda t: (list(t), m)
    )
)


@given(targets_strategy)
@settings(max_examples=70, deadline=None)
def test_distribute_places_every_element(case):
    targets, m = case
    result = _run(oblivious_distribute, targets, m)
    assert len(result) == m
    for i, entry in enumerate(result):
        if i in targets:
            assert entry.f == i and not entry.null
        else:
            assert entry.null


@given(targets_strategy, st.integers(min_value=0, max_value=8))
@settings(max_examples=50, deadline=None)
def test_ext_distribute_ignores_null_entries(case, nulls):
    targets, m = case
    result = _run(ext_oblivious_distribute, targets, m, nulls=nulls)
    assert len(result) == m
    placed = [e for e in result if not e.null]
    assert sorted(e.f for e in placed) == sorted(targets)


def test_duplicate_targets_rejected():
    with pytest.raises(InjectivityError):
        _run(oblivious_distribute, [1, 1], 4)


def test_target_out_of_range_rejected():
    with pytest.raises(CapacityError):
        _run(oblivious_distribute, [0, 4], 4)


def test_m_smaller_than_n_rejected():
    with pytest.raises(CapacityError):
        _run(oblivious_distribute, [0, 1, 2], 2)


def test_ext_distribute_allows_m_below_input_length():
    """With nulls marked, the array may shrink (the g(x)=0 case of Alg. 4)."""
    result = _run(ext_oblivious_distribute, [0, 1], 2, nulls=3)
    assert len(result) == 2
    assert all(not e.null for e in result)


def test_distribute_trace_is_input_independent():
    def program(tracer, targets):
        array = PublicArray(_entries(targets), name="X", tracer=tracer)
        oblivious_distribute(array, 8, tracer, validate=False)

    report = verify_oblivious(
        program, [[0, 1, 2], [5, 6, 7], [0, 3, 7]], require=True
    )
    assert report.oblivious


def test_probabilistic_distribute_places_correctly():
    prp = FeistelPRP(8, key=b"test")
    result = _run(probabilistic_distribute, [3, 0, 2, 7, 5], 8, prp=prp)
    for slot in (0, 2, 3, 5, 7):
        assert result[slot].f == slot
    for slot in (1, 4, 6):
        assert result[slot].null


@given(targets_strategy)
@settings(max_examples=40, deadline=None)
def test_probabilistic_matches_deterministic(case):
    targets, m = case
    det = _run(oblivious_distribute, targets, m)
    prob = _run(probabilistic_distribute, targets, m, prp=FeistelPRP(m, key=b"k"))
    assert [(e.f, e.null) for e in det] == [(e.f, e.null) for e in prob]


def test_probabilistic_scatter_trace_depends_on_prp_not_data():
    """Same PRP, same targets, different payloads -> identical traces."""

    def program_factory(data_offset):
        def program(tracer, _):
            entries = [Entry(j=0, d=i + data_offset, f=t) for i, t in enumerate([0, 3, 5])]
            array = PublicArray(entries, name="X", tracer=tracer)
            probabilistic_distribute(array, 8, tracer, prp=FeistelPRP(8, key=b"fix"))
        return program

    from repro.memory.monitor import run_hashed
    h1, _, _ = run_hashed(lambda t: program_factory(0)(t, None))
    h2, _, _ = run_hashed(lambda t: program_factory(100)(t, None))
    assert h1 == h2
