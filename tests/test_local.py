"""Local-memory model and branchless selection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CapacityError
from repro.memory.local import (
    LocalContext,
    oblivious_max,
    oblivious_min,
    oblivious_select,
)

ints = st.integers(min_value=-(2**40), max_value=2**40)


def test_slot_tracks_peak():
    local = LocalContext()
    with local.slot(2):
        with local.slot(1):
            assert local.live == 3
    assert local.live == 0
    assert local.peak == 3


def test_capacity_enforced():
    local = LocalContext(capacity=2)
    with local.slot(2):
        with pytest.raises(CapacityError):
            with local.slot(1):
                pass
    assert local.live == 0


def test_capacity_release_on_error():
    local = LocalContext(capacity=1)
    with pytest.raises(CapacityError):
        with local.slot(2):
            pass
    assert local.live == 0


def test_unbounded_context_never_raises():
    local = LocalContext()
    with local.slot(10**6):
        pass
    assert local.peak == 10**6


@given(st.booleans(), ints, ints)
def test_oblivious_select_matches_ternary(cond, a, b):
    assert oblivious_select(cond, a, b) == (a if cond else b)


@given(ints, ints)
def test_oblivious_min_max(a, b):
    assert oblivious_min(a, b) == min(a, b)
    assert oblivious_max(a, b) == max(a, b)


def test_select_accepts_int_conditions():
    assert oblivious_select(1, 10, 20) == 10
    assert oblivious_select(0, 10, 20) == 20
