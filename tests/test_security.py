"""The §3.2 obliviousness taxonomy (Table 2)."""

from repro.security import (
    KNOWN_PROFILES,
    Attack,
    Level,
    ProgramProfile,
    Setting,
    classify,
    has_constant_local_memory,
    is_circuit_like,
    render_table2,
    vulnerability_profile,
)


def test_levels_nest():
    assert Level.I.value < Level.II.value < Level.III.value
    assert str(Level.I) == "I" and str(Level.III) == "III"


def test_classify_non_oblivious_program():
    profile = ProgramProfile("sm", False, True, False)
    assert classify(profile) is None


def test_classify_level_boundaries():
    assert classify(ProgramProfile("p", True, False, False)) is Level.I
    assert classify(ProgramProfile("p", True, True, False)) is Level.II
    assert classify(ProgramProfile("p", True, True, True)) is Level.III


def test_our_join_is_level_two():
    assert KNOWN_PROFILES["oblivious_join"].level() is Level.II


def test_transformed_join_is_level_three():
    assert KNOWN_PROFILES["oblivious_join_transformed"].level() is Level.III


def test_sort_merge_is_not_oblivious():
    assert KNOWN_PROFILES["sort_merge_join"].level() is None


def test_goodrich_external_memory_is_level_one():
    assert KNOWN_PROFILES["goodrich_external_memory"].level() is Level.I


def test_table2_property_rows():
    assert not has_constant_local_memory(Level.I)
    assert has_constant_local_memory(Level.II)
    assert is_circuit_like(Level.III)
    assert not is_circuit_like(Level.II)


def test_level_three_clears_all_settings():
    for setting in Setting:
        assert vulnerability_profile(setting, Level.III) == ()


def test_tee_attack_surface_shrinks_with_level():
    tee_one = vulnerability_profile(Setting.TEE, Level.I)
    tee_two = vulnerability_profile(Setting.TEE, Level.II)
    assert Attack.PAGE_DATA in tee_one
    assert Attack.PAGE_DATA not in tee_two  # the level II gain of the paper
    assert set(tee_two) < set(tee_one)


def test_external_memory_only_timing_below_three():
    assert vulnerability_profile(Setting.EXTERNAL_MEMORY, Level.I) == (Attack.TIMING,)
    assert vulnerability_profile(Setting.EXTERNAL_MEMORY, Level.II) == (Attack.TIMING,)


def test_circuit_settings_not_applicable_below_three():
    assert vulnerability_profile(Setting.SECURE_COMPUTATION, Level.I) is None
    assert vulnerability_profile(Setting.FHE, Level.II) is None


def test_render_table2_contains_all_rows():
    text = render_table2()
    for fragment in ("Constant local memory", "Circuit-like", "TEE", "FHE", "n/a"):
        assert fragment in text
    # TEE level I row shows the full attack list.
    assert "t,pd,pc,c,b" in text
