"""Theorem 1's proof invariants, checked as executable properties.

The paper proves the routing network correct via an induction on hop
phases: after the r-th phase (hops of length 2^(k-r)), for the elements
y_1..y_n in sorted target order,

  (1) positions remain strictly increasing,
  (2) a slack-ordering inequality, and
  (3) displacements ``f(y) - I_r(y)`` stay in ``[0, 2^(k+1-r))`` — so phase
      hops realise the binary expansion of each initial displacement,
      finishing at exactly f(y).

A reproduction note on (2): as printed, ``f(yi)−Ir(yi) >= f(yj)−Ir(yj)``
for i < j fails already at r = 0 (slacks start *non-decreasing*), and the
reversed direction fails after later phases (Figure 3's instance reaches
slacks [0,1,1,0,1] after the hop-2 phase).  Neither direction is a
per-phase invariant; what the algorithm actually maintains — and what the
collision-freeness argument needs — is checked here: (1), (3), the
within-phase facts that every swap target is a null cell and no two real
elements ever swap, and the conclusion that every element lands on f(y).
We re-run the phase loop step by step on randomized instances asserting
all of them after every phase.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obliv.routing import largest_hop


def _phases(m):
    hop = largest_hop(m)
    while hop >= 1:
        yield hop
        hop //= 2


def _route_with_invariants(targets, m):
    """Sequential Algorithm 3 with invariant assertions per phase."""
    n = len(targets)
    size = max(n, m)
    cells = [(i, targets[i]) for i in range(n)] + [None] * (size - n)

    def positions():
        return {cell[0]: idx for idx, cell in enumerate(cells) if cell}

    initial_hop = largest_hop(m)
    remaining = initial_hop
    for hop in _phases(m):
        for i in range(size - hop - 1, -1, -1):
            low = cells[i]
            high = cells[i + hop]
            if low is not None and low[1] >= i + hop:
                # Theorem 1: the destination must be a null cell.
                assert high is None, "collision: destination not null"
                cells[i], cells[i + hop] = high, low
        remaining = hop
        # Invariants at the end of the phase:
        pos = positions()
        ordered = sorted(pos.items())
        indices = [pos_idx for _elem, pos_idx in ordered]
        assert indices == sorted(indices), "(1) order not preserved"
        for element, index in pos.items():
            displacement = targets[element] - index
            assert displacement >= 0, "(3) overshoot"
            assert displacement < remaining, "(3) displacement bound"
    for element, index in positions().items():
        assert index == targets[element], "conclusion: element at f(y)"
    return cells


@given(
    st.integers(min_value=1, max_value=48).flatmap(
        lambda m: st.sets(st.integers(min_value=0, max_value=m - 1), min_size=1, max_size=m).map(
            lambda t: (sorted(t), m)
        )
    )
)
@settings(max_examples=80, deadline=None)
def test_invariants_hold_on_random_instances(case):
    targets, m = case
    _route_with_invariants(targets, m)


@pytest.mark.parametrize("m", [1, 2, 3, 7, 8, 9, 31, 32, 33])
def test_invariants_full_occupancy(m):
    _route_with_invariants(list(range(m)), m)


def test_invariants_single_element_max_displacement():
    # One element travelling the full span exercises every hop size.
    for m in (8, 16, 27):
        _route_with_invariants([m - 1], m)


def test_figure3_instance_phase_by_phase():
    """The paper's worked Figure 3 instance passes every invariant."""
    _route_with_invariants([0, 2, 3, 5, 7], 8)


def test_seeded_bulk_instances():
    rng = random.Random(99)
    for _ in range(50):
        m = rng.randrange(1, 64)
        k = rng.randrange(1, m + 1)
        targets = sorted(rng.sample(range(m), k))
        _route_with_invariants(targets, m)
