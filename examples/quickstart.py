"""Quickstart: oblivious equi-joins in five minutes.

Runs the paper's running example (Figure 1) through the public API, shows
the revealed metadata (only sizes), and verifies the §6.1 obliviousness
experiment on a small input class.

Usage::

    python examples/quickstart.py
"""

from repro import HashSink, Tracer, get_engine, oblivious_join


def main() -> None:
    # Two tables of (join value, data value) pairs — Figure 1 of the paper:
    # key x matches 2 x 3 rows, key y matches 3 x 2 rows.
    x, y = 0, 1
    employees = [(x, 101), (x, 102), (y, 201), (y, 202), (y, 203)]
    badges = [(x, 11), (x, 12), (x, 13), (y, 21), (y, 22)]

    result = oblivious_join(employees, badges)
    print(f"joined {result.n1} x {result.n2} rows -> m = {result.m} pairs")
    for d1, d2 in result.pairs:
        print(f"  employee {d1} <-> badge {d2}")

    # The adversary's view: attach a tracer with the paper's rolling
    # SHA-256 and observe that two completely different datasets of the
    # same shape produce the *same* access-pattern hash.
    def run_traced(left, right) -> str:
        sink = HashSink()
        oblivious_join(left, right, tracer=Tracer(sink))
        return sink.hexdigest

    trace_a = run_traced(employees, badges)
    other_employees = [(7, 900), (7, 901), (8, 902), (8, 903), (8, 904)]
    other_badges = [(7, 1), (7, 2), (7, 3), (8, 4), (8, 5)]
    trace_b = run_traced(other_employees, other_badges)

    print(f"\ntrace hash, dataset A: {trace_a[:32]}...")
    print(f"trace hash, dataset B: {trace_b[:32]}...")
    print(f"identical: {trace_a == trace_b}  (same (n1, n2, m) class)")
    assert trace_a == trace_b

    # Production-sized runs use the vectorised engine: same algorithm, same
    # results bit for bit, numpy throughput.  Every workload (join, multiway
    # cascade, group-by aggregation) is available on both engines.
    fast = get_engine("vector").join(employees, badges)
    assert fast.pairs == result.pairs
    print(f"\nvector engine agrees: m = {fast.m}, pairs identical")


if __name__ == "__main__":
    main()
