"""Scenario: formally checking obliviousness with the Figure 6 type system.

Walks the paper's verification story end to end: type-check the join's
kernels (they pass), type-check the textbook sort-merge step (it fails with
a precise error), and cross-validate a kernel's symbolic trace against the
interpreter on concrete data.

Usage::

    python examples/verified_kernels.py
"""

from repro.errors import TypingError
from repro.obliv.routing import largest_hop
from repro.typesys import check_program, render, run_program
from repro.typesys.programs import LEAKY, WELL_TYPED, routing_network


def main() -> None:
    print("== well-typed kernels (accepted) ==")
    for make in WELL_TYPED:
        program = make()
        trace = check_program(program)
        rendered = render(trace)
        shown = rendered if len(rendered) <= 70 else rendered[:67] + "..."
        print(f"  {program.name:28s} trace = {shown}")

    print("\n== leaky programs (rejected) ==")
    for make in LEAKY:
        program = make()
        try:
            check_program(program)
            raise AssertionError(f"{program.name} should not type-check!")
        except TypingError as error:
            first_line = str(error).splitlines()[0]
            print(f"  {program.name:28s} {first_line}")

    print("\n== symbolic vs concrete: the routing network ==")
    m = 8
    jstart = largest_hop(m)
    program = routing_network()
    check_program(program)  # certified oblivious

    targets = [1, 3, 4, 6]
    a = [10, 20, 30, 40] + [0] * (m - 4)
    f = targets + [-1] * (m - 4)
    trace, arrays, _ = run_program(
        program,
        variables={"m": m, "jstart": jstart, "nphases": jstart.bit_length()},
        arrays={"A": a, "F": f},
    )
    print(f"  routed {len(targets)} elements through {len(trace)} accesses")
    placed = {t: arrays["A"][t] for t in targets}
    print(f"  elements at their targets: {placed}")
    assert placed == {1: 10, 3: 20, 4: 30, 6: 40}

    # Same shape, different data: the concrete traces must coincide.
    trace2, _, _ = run_program(
        program,
        variables={"m": m, "jstart": jstart, "nphases": jstart.bit_length()},
        arrays={"A": [9, 8, 7, 6, 0, 0, 0, 0], "F": [0, 2, 5, 7, -1, -1, -1, -1]},
    )
    print(f"  traces identical across datasets: {trace == trace2}")
    assert trace == trace2


if __name__ == "__main__":
    main()
