"""Scenario: predicting enclave deployment cost with the Figure 8 model.

Without SGX hardware, the calibrated cost model answers the questions the
paper's Figure 8 answers: what does obliviousness cost at a given scale,
what does the enclave add on top, and where does the EPC paging knee bite?

Usage::

    python examples/sgx_simulation.py [max_n]
"""

import sys

from repro.enclave import PAPER_RUNTIME_AT_1M, EnclaveCostModel


def main() -> None:
    max_n = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000_000
    model = EnclaveCostModel()

    sizes = []
    n = 125_000
    while n <= max_n:
        sizes.append(n)
        n *= 2

    series = model.figure8_series(sizes)
    knee = model.epc_knee_input_size()

    print(f"{'n':>12s} {'insecure':>10s} {'prototype':>10s} {'sgx':>10s} "
          f"{'sgx+xform':>10s} {'epc':>5s}")
    for i, n in enumerate(sizes):
        footprint = model.footprint_bytes(n // 2, n // 2, n // 2)
        paged = "page" if footprint > model.epc.capacity_bytes else "fits"
        print(
            f"{n:>12,d} {series['insecure_sort_merge'][i]:>10.3f} "
            f"{series['prototype'][i]:>10.2f} {series['sgx'][i]:>10.2f} "
            f"{series['sgx_transformed'][i]:>10.2f} {paged:>5s}"
        )

    print(f"\nEPC ({model.epc.capacity_bytes // (1024 * 1024)} MiB) knee at n ~ {knee:,}")
    print("paper endpoints at n = 1,000,000:")
    point = model.figure8_point(1_000_000)
    for variant, paper_seconds in PAPER_RUNTIME_AT_1M.items():
        print(
            f"  {variant:22s} paper {paper_seconds:6.2f}s   model {point[variant]:6.2f}s"
        )

    # The headline overhead ratio the paper reports (~78x at n=1e6).
    overhead = point["prototype"] / point["insecure_sort_merge"]
    print(f"\noblivious-vs-insecure overhead at n=1e6: {overhead:.0f}x")


if __name__ == "__main__":
    main()
