"""Scenario: joining hospital and pharmacy records on untrusted cloud.

The paper's motivating setting: a cloud database holds two encrypted,
sensitive tables and must answer a join query without its access pattern
revealing *which* patients link the two datasets (how many prescriptions a
given patient has is exactly the group structure the access pattern of a
naive join leaks).

This example runs the query through the oblivious relational layer, then
plays the adversary: it records the full access log of the insecure
sort-merge join and shows the log alone pinpoints where the 'hot' patient
sits, while the oblivious join's log is indistinguishable across datasets.

Usage::

    python examples/medical_records.py
"""

from repro import ObliviousEngine
from repro.baselines.sort_merge import sort_merge_join
from repro.db import DBTable
from repro.memory import Tracer
from repro.memory.monitor import distinguishing_events, run_hashed


def build_tables():
    patients = DBTable.from_rows(
        ["patient_id:int", "name:str", "ward:str"],
        [
            (101, "a. ahmed", "cardiology"),
            (102, "b. brown", "oncology"),
            (103, "c. chen", "cardiology"),
            (104, "d. diaz", "neurology"),
        ],
    )
    prescriptions = DBTable.from_rows(
        ["patient_id:int", "drug:str", "monthly_cost:int"],
        [
            (102, "carboplatin", 900),
            (102, "ondansetron", 120),
            (102, "filgrastim", 1500),  # patient 102 is the "hot" patient
            (101, "atorvastatin", 20),
            (104, "levetiracetam", 55),
        ],
    )
    return patients, prescriptions


def main() -> None:
    patients, prescriptions = build_tables()
    engine = ObliviousEngine()

    joined = engine.join(patients, prescriptions, on=("patient_id", "patient_id"))
    print("JOIN patients ⋈ prescriptions (oblivious):")
    print(joined.pretty())

    costly = engine.filter(
        joined, lambda row: row[joined.schema.index("monthly_cost")] >= 100
    )
    print(f"\n{len(costly)} prescriptions >= $100/month (count revealed, rows not)")

    per_patient = engine.group_by(prescriptions, key="patient_id", value="monthly_cost")
    print("\nGROUP BY patient (oblivious):")
    print(per_patient.pretty())

    # ---- the adversary's view ------------------------------------------
    # Two prescription tables of the same size: in world A patient 102 has
    # three prescriptions; in world B they are spread evenly.  An adversary
    # watching the *insecure* join's memory distinguishes the worlds; the
    # oblivious join's trace is identical.
    world_a = [(102, 1), (102, 2), (102, 3), (101, 4)]
    world_b = [(101, 1), (102, 2), (103, 3), (104, 4)]
    keys = [(p, 0) for p in (101, 102, 103, 104)]

    where, _, _ = distinguishing_events(
        lambda t, rx: sort_merge_join(keys, rx, tracer=t), world_a, world_b
    )
    print(f"\ninsecure sort-merge: traces diverge at access #{where}")
    print("  -> the server learns which patient's record block is larger")

    from repro import oblivious_join

    h_a = run_hashed(lambda t: oblivious_join(keys, world_a, tracer=t))[0]
    h_b = run_hashed(lambda t: oblivious_join(keys, world_b, tracer=t))[0]
    print(f"oblivious join:      trace hashes equal = {h_a == h_b}")
    assert h_a == h_b and where is not None


if __name__ == "__main__":
    main()
