"""Scenario: multi-way joins and join-aggregation over a supply chain.

Exercises the §7 "future work" features: a three-table oblivious join
cascade (suppliers ⋈ shipments ⋈ inspections) and grouped aggregation over
a join computed *without* materialising it — the trace reveals table sizes
and the number of groups, not the join's (potentially huge) width.

Usage::

    python examples/supply_chain_analytics.py
"""

from repro import ObliviousEngine, oblivious_join_aggregate
from repro.db import DBTable


def main() -> None:
    suppliers = DBTable.from_rows(
        ["sid:int", "sname:str", "region:str"],
        [
            (1, "acme metals", "north"),
            (2, "birch lumber", "south"),
            (3, "cobalt chems", "north"),
        ],
    )
    shipments = DBTable.from_rows(
        ["shipment_id:int", "sid:int", "tonnage:int"],
        [
            (10, 1, 120),
            (11, 1, 80),
            (12, 2, 200),
            (13, 3, 40),
            (14, 3, 65),
            (15, 3, 90),
        ],
    )
    inspections = DBTable.from_rows(
        ["shipment_id:int", "inspector:str", "defects:int"],
        [
            (10, "kim", 0),
            (11, "kim", 3),
            (12, "lee", 1),
            (14, "kim", 0),
            (15, "ray", 7),
        ],
    )

    engine = ObliviousEngine()

    # Three-way oblivious join: every step is the full Algorithm 1;
    # intermediate sizes are revealed (the documented leak), contents never.
    chain = engine.multiway_join(
        [suppliers, shipments, inspections],
        on=[("sid", "sid"), ("shipment_id", "shipment_id")],
    )
    print("suppliers ⋈ shipments ⋈ inspections:")
    print(chain.pretty())

    flagged = engine.filter(
        chain, lambda row: row[chain.schema.index("defects")] > 0
    )
    print(f"\nshipments with defects: {len(flagged)}")

    by_defects = engine.order_by(flagged, [("defects", False)])
    worst = by_defects.head(1)[0]
    print(f"worst shipment: supplier={worst[1]!r} defects={worst[-1]}")

    # Join-aggregation without expansion: total tonnage-weighted defect
    # exposure per supplier — computed in O(n log^2 n) regardless of how
    # wide the underlying join would be.
    tonnage_pairs = [
        (row[1], row[2]) for row in shipments.rows
    ]  # (sid, tonnage) keyed by supplier via shipment
    # Key both sides by shipment for the per-shipment aggregate:
    ship_tonnage = [(row[0], row[2]) for row in shipments.rows]
    ship_defects = [(row[0], row[2]) for row in inspections.rows]
    aggregates = oblivious_join_aggregate(ship_tonnage, ship_defects)
    print("\nper-shipment tonnage x defects (no join materialised):")
    print(f"{'shipment':>9s} {'pairs':>6s} {'sum t*d':>8s}")
    for g in aggregates:
        print(f"{g.j:>9d} {g.pair_count:>6d} {g.join_sum_product:>8d}")

    total_exposure = sum(g.join_sum_product for g in aggregates)
    print(f"total defect-tonnage exposure: {total_exposure}")
    assert total_exposure == 120 * 0 + 80 * 3 + 200 * 1 + 65 * 0 + 90 * 7
    assert tonnage_pairs  # (kept for readers experimenting with other keys)


if __name__ == "__main__":
    main()
