"""Analytic operation-count formulas behind Table 3.

The paper states a bitonic sort on ``n`` elements performs roughly
``n (log2 n)^2 / 4`` comparisons and charges the join's components as:

=====================  =========================
initial sorts on TC    ``n (log2 n)^2 / 2``
o.d. sorts on T1, T2   ``n1 (log2 n1)^2 / 2``   (for n1 = n2)
o.d. routing           ``2 m log2 m``
align sort on S2       ``m (log2 m)^2 / 4``
total (m ≈ n1 = n2)    ``n (log2 n)^2 + n log2 n``
=====================  =========================

We provide both these closed-form approximations and the *exact* counts of
the concrete networks this library builds (which pad to powers of two), so
the Table 3 bench can print paper formula vs exact vs measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..obliv.bitonic import comparison_count as _bitonic_exact
from ..obliv.bitonic import next_power_of_two
from ..obliv.routing import largest_hop


def log2(x: float) -> float:
    """log base 2 with the convention log2(x <= 1) = 0 (count formulas)."""
    return math.log2(x) if x > 1 else 0.0


def bitonic_comparisons_exact(n: int) -> int:
    """Exact comparator count of our padded bitonic sort on ``n`` elements."""
    if n <= 1:
        return 0
    return _bitonic_exact(next_power_of_two(n))


def bitonic_comparisons_paper(n: int) -> float:
    """The paper's ``n (log2 n)^2 / 4`` approximation."""
    return n * log2(n) ** 2 / 4


def routing_comparisons_exact(size: int, m: int) -> int:
    """Exact slot count of the routing network over a ``size``-cell array."""
    total = 0
    hop = largest_hop(m)
    while hop >= 1:
        total += max(size - hop, 0)
        hop //= 2
    return total


@dataclass(frozen=True)
class Table3Row:
    """One component row: paper formula value and exact network count."""

    component: str
    paper_estimate: float
    exact: int


def table3_analytic(n1: int, n2: int, m: int) -> list[Table3Row]:
    """Per-component comparison counts for given table sizes.

    Mirrors the accounting of Table 3.  The "exact" column counts the
    comparators of the concrete padded networks this library runs:

    * initial sorts: two bitonic sorts of size ``n = n1 + n2``;
    * o.d. sorts: the extended distributions sort arrays of size
      ``max(n1, m)`` and ``max(n2, m)``;
    * o.d. routing: ``O(m log m)`` hop slots over each of those arrays;
    * align sort: one bitonic sort of size ``m``.
    """
    n = n1 + n2
    size1 = max(n1, m)
    size2 = max(n2, m)
    return [
        Table3Row(
            "initial sorts on TC",
            n * log2(n) ** 2 / 2,
            2 * bitonic_comparisons_exact(n),
        ),
        Table3Row(
            "o.d. on T1, T2 (sort)",
            n1 * log2(n1) ** 2 / 2,
            bitonic_comparisons_exact(size1) + bitonic_comparisons_exact(size2),
        ),
        Table3Row(
            "o.d. on T1, T2 (route)",
            2 * m * log2(m),
            routing_comparisons_exact(size1, m) + routing_comparisons_exact(size2, m),
        ),
        Table3Row(
            "align sort on S2",
            m * log2(m) ** 2 / 4,
            bitonic_comparisons_exact(m),
        ),
    ]


def total_comparisons_paper(n: int) -> float:
    """Paper's total for the balanced case m ≈ n1 = n2 = n/2."""
    return n * log2(n) ** 2 + n * log2(n)


def total_comparisons_exact(n1: int, n2: int, m: int) -> int:
    """Exact total comparator count across all components."""
    return sum(row.exact for row in table3_analytic(n1, n2, m))


def sort_merge_operations(n1: int, n2: int, m: int) -> float:
    """Cost unit count for the insecure sort-merge join: ``m' log2 m'``."""
    m_prime = n1 + n2 + m
    return m_prime * log2(m_prime)


def nested_loop_comparisons(n1: int, n2: int) -> float:
    """Pair scan plus compaction of the trivial oblivious join."""
    pairs = n1 * n2
    return pairs + routing_comparisons_exact(pairs, pairs)
