"""Circuit-depth accounting for the join — the §6.2 parallelism remark.

The paper notes that "almost all parts of our algorithm are amenable to
parallelization since they heavily rely on sorting networks, whose depth is
O(log^2 n)", the only sequential exception being the `O(m log m)` routing
scans (which contribute a negligible share of work, Table 3).  This module
computes the parallel critical path of the whole join: bitonic stages
count as depth `log k (log k + 1) / 2` for size-k sorts, each routing
phase is a sequential scan, and linear passes are sequential.

These numbers quantify the claim: the *sort* depth grows polylogarithmically
while the sequential scans grow linearly — so a parallel implementation is
scan-bound, exactly the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obliv.bitonic import network_depth, next_power_of_two
from ..obliv.routing import largest_hop


@dataclass(frozen=True)
class DepthBreakdown:
    """Critical-path contributions of the join's stages (in primitive ops)."""

    sort_depth: int
    routing_depth: int
    scan_depth: int

    @property
    def total(self) -> int:
        return self.sort_depth + self.routing_depth + self.scan_depth

    @property
    def parallel_fraction(self) -> float:
        """Share of the critical path spent in (parallelisable) sorts."""
        return self.sort_depth / self.total if self.total else 0.0


def _sort_depth(size: int) -> int:
    return network_depth(next_power_of_two(size)) if size > 1 else 0


def _routing_scan_depth(size: int, m: int) -> int:
    """The routing network's inner loops are sequential: sum of scan lengths."""
    total = 0
    hop = largest_hop(m)
    while hop >= 1:
        total += max(size - hop, 0)
        hop //= 2
    return total


def join_depth(n1: int, n2: int, m: int) -> DepthBreakdown:
    """Critical path of Algorithm 1 on a machine with unbounded comparators.

    Sorts contribute their network depth (parallel); the routing phases and
    the linear passes (augment scans, prefix sums, fill-down, align index,
    zip) are sequential.
    """
    n = n1 + n2
    size1 = max(n1, m)
    size2 = max(n2, m)
    sort_depth = (
        2 * _sort_depth(n)  # augment sorts
        + max(_sort_depth(size1), _sort_depth(size2))  # expansions run in parallel
        + _sort_depth(m)  # align sort
    )
    routing_depth = max(
        _routing_scan_depth(size1, m), _routing_scan_depth(size2, m)
    )
    scan_depth = 2 * n + n1 + n2 + 3 * m  # fill-dims (2 passes), prefix, fill, align, zip
    return DepthBreakdown(
        sort_depth=sort_depth, routing_depth=routing_depth, scan_depth=scan_depth
    )


def depth_series(sizes: list[int]) -> list[tuple[int, DepthBreakdown]]:
    """Depth breakdown for balanced joins (m ~ n1 = n2 = n/2) per size."""
    return [(n, join_depth(n // 2, n // 2, n // 2)) for n in sizes]
