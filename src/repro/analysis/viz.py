"""Access-pattern visualisation — the Figure 7 reproduction.

The paper's Figure 7 plots the join's full memory trace for two size-4
tables joining into 8 rows: time on the horizontal axis, memory index on
the vertical, light shading for reads and dark for writes.  Given a
recorded event list we rebuild the same raster, as printable text and as a
portable graymap (PGM) file.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..memory.tracer import READ, TraceEvent


@dataclass
class TraceRaster:
    """A time x memory grid of access intensities.

    ``reads`` and ``writes`` hold per-cell access counts; rows are memory
    (array-offset) buckets, columns are time buckets.
    """

    reads: np.ndarray
    writes: np.ndarray
    array_offsets: dict[int, int]
    total_cells: int

    @property
    def shape(self) -> tuple[int, int]:
        return self.reads.shape


def _layout(events: list[TraceEvent]) -> tuple[dict[int, int], int]:
    """Stack arrays into one global address space (registration order)."""
    sizes: dict[int, int] = {}
    for _op, array_id, index in events:
        sizes[array_id] = max(sizes.get(array_id, 0), index + 1)
    offsets: dict[int, int] = {}
    total = 0
    for array_id in sorted(sizes):
        offsets[array_id] = total
        total += sizes[array_id]
    return offsets, total


def rasterize(
    events: list[TraceEvent],
    width: int = 120,
    height: int = 48,
) -> TraceRaster:
    """Bucket an event list into a ``height x width`` access raster."""
    offsets, total_cells = _layout(events)
    reads = np.zeros((height, width), dtype=np.int64)
    writes = np.zeros((height, width), dtype=np.int64)
    if not events or total_cells == 0:
        return TraceRaster(reads, writes, offsets, total_cells)
    duration = len(events)
    for t, (op, array_id, index) in enumerate(events):
        col = min(t * width // duration, width - 1)
        address = offsets[array_id] + index
        row = min(address * height // total_cells, height - 1)
        if op == READ:
            reads[row, col] += 1
        else:
            writes[row, col] += 1
    return TraceRaster(reads, writes, offsets, total_cells)


def render_text(raster: TraceRaster) -> str:
    """ASCII art: ``.`` = untouched, ``░`` = reads, ``█`` = writes touch."""
    rows = []
    for r in range(raster.shape[0]):
        chars = []
        for c in range(raster.shape[1]):
            if raster.writes[r, c]:
                chars.append("█")
            elif raster.reads[r, c]:
                chars.append("░")
            else:
                chars.append(".")
        rows.append("".join(chars))
    return "\n".join(rows)


def write_pgm(raster: TraceRaster, path: str) -> None:
    """Save the raster as a (max-value 2) PGM: 0 blank, 1 read, 2 write."""
    height, width = raster.shape
    grid = np.zeros((height, width), dtype=np.int64)
    grid[raster.reads > 0] = 1
    grid[raster.writes > 0] = 2
    lines = [f"P2\n{width} {height}\n2"]
    for row in grid:
        lines.append(" ".join(str(v) for v in row))
    with open(path, "w", encoding="ascii") as handle:
        handle.write("\n".join(lines) + "\n")
