"""Empirical complexity fitting for the Table 1 reproduction.

Table 1 is a complexity table; since we cannot print a proof, the bench
measures operation counts over a size sweep and *fits* them against the
candidate growth models, reporting which model explains each algorithm best
— `O(n log^2 n)` for our join, `O(n^2)`-ish for the oblivious nested loop,
`O(n log n)` for the insecure sort-merge, and so on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

MODELS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "n": lambda n: n,
    "n log n": lambda n: n * np.log2(np.maximum(n, 2)),
    "n log^2 n": lambda n: n * np.log2(np.maximum(n, 2)) ** 2,
    "n^1.5": lambda n: n ** 1.5,
    "n^2": lambda n: n ** 2,
}


@dataclass(frozen=True)
class Fit:
    """A scaling fit: best-matching model and goodness measures."""

    model: str
    scale: float
    relative_error: float
    loglog_slope: float


def loglog_slope(sizes: Sequence[float], values: Sequence[float]) -> float:
    """Least-squares slope of log(value) against log(size)."""
    x = np.log(np.asarray(sizes, dtype=float))
    y = np.log(np.asarray(values, dtype=float))
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)


def fit_model(
    sizes: Sequence[float],
    values: Sequence[float],
    model: Callable[[np.ndarray], np.ndarray],
) -> tuple[float, float]:
    """Best scale ``c`` for ``values ~ c * model(sizes)`` and its rel. error."""
    n = np.asarray(sizes, dtype=float)
    y = np.asarray(values, dtype=float)
    basis = model(n)
    scale = float((basis @ y) / (basis @ basis))
    predicted = scale * basis
    error = float(np.sqrt(np.mean(((predicted - y) / y) ** 2)))
    return scale, error


def best_fit(sizes: Sequence[float], values: Sequence[float]) -> Fit:
    """Pick the growth model with the smallest relative error."""
    best_name = ""
    best_scale = 0.0
    best_error = math.inf
    for name, model in MODELS.items():
        scale, error = fit_model(sizes, values, model)
        if error < best_error:
            best_name, best_scale, best_error = name, scale, error
    return Fit(
        model=best_name,
        scale=best_scale,
        relative_error=best_error,
        loglog_slope=loglog_slope(sizes, values),
    )
