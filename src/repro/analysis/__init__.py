"""Evaluation support: count formulas, complexity fits, trace rasters."""

from .complexity import MODELS, Fit, best_fit, fit_model, loglog_slope
from .depth import DepthBreakdown, depth_series, join_depth
from .counts import (
    Table3Row,
    bitonic_comparisons_exact,
    bitonic_comparisons_paper,
    nested_loop_comparisons,
    routing_comparisons_exact,
    sort_merge_operations,
    table3_analytic,
    total_comparisons_exact,
    total_comparisons_paper,
)
from .viz import TraceRaster, rasterize, render_text, write_pgm

__all__ = [
    "MODELS",
    "Fit",
    "best_fit",
    "fit_model",
    "loglog_slope",
    "DepthBreakdown",
    "depth_series",
    "join_depth",
    "Table3Row",
    "bitonic_comparisons_exact",
    "bitonic_comparisons_paper",
    "nested_loop_comparisons",
    "routing_comparisons_exact",
    "sort_merge_operations",
    "table3_analytic",
    "total_comparisons_exact",
    "total_comparisons_paper",
    "TraceRaster",
    "rasterize",
    "render_text",
    "write_pgm",
]
