"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type.  Obliviousness violations get their own branch
because they signal a *security* bug rather than a usage bug.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InputError(ReproError, ValueError):
    """An argument supplied by the caller is invalid."""


class SchemaError(InputError):
    """A table schema is malformed or incompatible with an operation."""


class CapacityError(InputError):
    """A destination array is too small for the requested operation."""


class BoundError(InputError):
    """A true output size exceeded its public padding bound.

    Raised by padded execution (``padding="bounded"``) when an intermediate
    join result is larger than the bound the caller declared public.  Note
    that *aborting is itself a one-bit leak* ("the result exceeded B") —
    callers who cannot afford it must use ``padding="worst_case"``, whose
    bounds can never be exceeded.  See ``docs/leakage.md``.
    """


class InjectivityError(InputError):
    """A destination map handed to oblivious distribution is not injective."""


class ObliviousnessError(ReproError):
    """A security property was violated (trace mismatch, label leak, ...)."""


class TraceMismatchError(ObliviousnessError):
    """Two executions that must produce equal traces produced different ones."""


class TypingError(ObliviousnessError):
    """A program failed to type-check in the Figure-6 type system."""


class EnclaveError(ReproError):
    """The enclave simulation was configured or driven incorrectly."""
