"""Sharded multi-way join cascade: each binary step runs the shard grid.

Structurally identical to :func:`repro.vector.multiway.vector_multiway_join`
— a left-deep fold of binary joins over a client-side row catalogue — with
every step executed by :func:`repro.shard.join.sharded_oblivious_join`.
Because the sharded join returns the exact pairs in the exact canonical
order the vector engine produces, the accumulated catalogues (and therefore
the final rows and intermediate sizes) are bit-identical across the three
engines; the differential suite pins that.

Revealed per step: the intermediate size (as in every engine) plus the
sharded join's per-task ``m_ij`` grid (see :mod:`repro.shard.join`).
Under ``padding="bounded"|"worst_case"`` both collapse into the public
bounds: each step runs the padded sharded join at its planner bound, so
the whole cascade's task grids and schedules are functions of the input
sizes, ``k``, and the bounds alone (:mod:`repro.core.padding`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.multiway import (
    MultiwayResult,
    check_step_columns,
    encode_handles,
    validate_cascade,
)
from ..core.padding import cascade_bounds, check_padding, padded_cascade
from .join import ShardedJoinStats, sharded_oblivious_join


@dataclass
class ShardedMultiwayStats:
    """Per-step sharded-join stats for one cascade run."""

    step_stats: list[ShardedJoinStats] = field(default_factory=list)
    intermediate_sizes: list[int] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(s.total_seconds for s in self.step_stats)

    @property
    def total_comparisons(self) -> int:
        return sum(s.total_comparisons for s in self.step_stats)

    @property
    def schedule(self) -> tuple:
        """Concatenation of every step's sharded-join schedule."""
        return tuple(
            (step, stats.schedule) for step, stats in enumerate(self.step_stats)
        )


def sharded_multiway_join(
    tables: list[list[tuple]],
    keys: list[tuple[int, int]],
    shards: int = 2,
    workers: int = 1,
    stats: ShardedMultiwayStats | None = None,
    padding: str | None = None,
    bound=None,
) -> MultiwayResult:
    """Sharded left-deep cascade; same contract as the traced/vector versions."""
    padding = check_padding(padding)
    validate_cascade(tables, keys)
    stats = stats if stats is not None else ShardedMultiwayStats()

    if padding != "revealed":
        bounds = cascade_bounds([len(t) for t in tables], padding, bound)

        def run_step(step, left_pairs, right_pairs, target):
            step_stats = ShardedJoinStats()
            handles, step_stats = sharded_oblivious_join(
                left_pairs,
                right_pairs,
                shards=shards,
                workers=workers,
                stats=step_stats,
                target_m=target,
            )
            stats.step_stats.append(step_stats)
            stats.intermediate_sizes.append(step_stats.m)
            return [tuple(pair) for pair in handles.tolist()]

        rows, sizes = padded_cascade(tables, keys, bounds, run_step)
        return MultiwayResult(
            rows=rows, intermediate_sizes=sizes, padding=padding, bounds=bounds
        )

    accumulated = list(tables[0])
    for step, table in enumerate(tables[1:]):
        next_table = list(table)
        left_col, right_col = keys[step]
        check_step_columns(step, accumulated, next_table, left_col, right_col)
        step_stats = ShardedJoinStats()
        handles, step_stats = sharded_oblivious_join(
            encode_handles(accumulated, left_col),
            encode_handles(next_table, right_col),
            shards=shards,
            workers=workers,
            stats=step_stats,
        )
        stats.step_stats.append(step_stats)
        stats.intermediate_sizes.append(step_stats.m)
        accumulated = [
            accumulated[left_index] + tuple(next_table[right_index])
            for left_index, right_index in handles.tolist()
        ]
    return MultiwayResult(
        rows=accumulated, intermediate_sizes=list(stats.intermediate_sizes)
    )
