"""Sharded multi-way join cascade: each binary step runs the shard grid.

Structurally identical to :func:`repro.vector.multiway.vector_multiway_join`
— a left-deep fold of binary joins over a client-side row catalogue — with
every step executed by :func:`repro.shard.join.sharded_oblivious_join` on
the configured executor.  Because the sharded join returns the exact pairs
in the exact canonical order the vector engine produces, the accumulated
catalogues (and therefore the final rows and intermediate sizes) are
bit-identical across the three engines; the differential suite pins that.

Under padded execution the whole cascade's public schedule is compiled
up front (:func:`repro.plan.compile.multiway_plan`): each step's left size
is the *previous step's bound*, so every per-step join plan — partition
layout, grid bounds, the merge tournament's ``merge_pair`` bracket and its
truncation — is a function of the input sizes, ``k``, and the bounds
alone, and the driver hands each step its compiled sub-plan.  Each step
inherits the streaming reassembly of :func:`repro.shard.join.sharded_oblivious_join`:
grid results fold into the merge tournament as they complete, and the
pairwise merges run as executor tasks.  Revealed per step without padding: the intermediate size (as in
every engine) plus the sharded join's per-task ``m_ij`` grid (see
:mod:`repro.shard.join`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.multiway import (
    MultiwayResult,
    check_step_columns,
    encode_handles,
    validate_cascade,
)
from ..core.padding import cascade_bounds, check_padding, padded_cascade
from ..plan.compile import multiway_step_shapes, sharded_join_plan
from ..plan.executors import Executor, resolve_executor
from .join import ShardedJoinStats, sharded_oblivious_join


@dataclass
class ShardedMultiwayStats:
    """Per-step sharded-join stats for one cascade run."""

    step_stats: list[ShardedJoinStats] = field(default_factory=list)
    intermediate_sizes: list[int] = field(default_factory=list)
    #: Per-step public output bounds of a padded run (empty when revealed) —
    #: the adversary-visible sizes, one per join step, so comparison tests
    #: can read the cascade's compounded padding straight off the stats.
    step_bounds: list[int] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(s.total_seconds for s in self.step_stats)

    @property
    def total_comparisons(self) -> int:
        return sum(s.total_comparisons for s in self.step_stats)

    @property
    def schedule(self) -> tuple:
        """Concatenation of every step's sharded-join schedule."""
        return tuple(
            (step, stats.schedule) for step, stats in enumerate(self.step_stats)
        )


def sharded_multiway_join(
    tables: list[list[tuple]],
    keys: list[tuple[int, int]],
    shards: int = 2,
    workers: int = 1,
    stats: ShardedMultiwayStats | None = None,
    padding: str | None = None,
    bound=None,
    executor: str | Executor | None = None,
    expand_segments: int | None = None,
) -> MultiwayResult:
    """Sharded left-deep cascade; same contract as the traced/vector versions."""
    padding = check_padding(padding)
    validate_cascade(tables, keys)
    stats = stats if stats is not None else ShardedMultiwayStats()
    executor = resolve_executor(executor, workers=workers)

    if padding != "revealed":
        sizes = [len(t) for t in tables]
        bounds = cascade_bounds(sizes, padding, bound)
        stats.step_bounds = list(bounds)
        # The cascade's public schedule, fixed before any data moves: one
        # compiled join plan per step at (previous bound, n_s, bound_s).
        step_plans = [
            sharded_join_plan(left, right, shards, target, expand_segments)
            for left, right, target in multiway_step_shapes(sizes, bounds)
        ]

        def run_step(step, left_pairs, right_pairs, target):
            step_stats = ShardedJoinStats()
            handles, step_stats = sharded_oblivious_join(
                left_pairs,
                right_pairs,
                shards=shards,
                stats=step_stats,
                target_m=target,
                executor=executor,
                plan=step_plans[step],
                expand_segments=expand_segments,
            )
            stats.step_stats.append(step_stats)
            stats.intermediate_sizes.append(step_stats.m)
            return [tuple(pair) for pair in handles.tolist()]

        rows, sizes = padded_cascade(tables, keys, bounds, run_step)
        return MultiwayResult(
            rows=rows, intermediate_sizes=sizes, padding=padding, bounds=bounds
        )

    accumulated = list(tables[0])
    for step, table in enumerate(tables[1:]):
        next_table = list(table)
        left_col, right_col = keys[step]
        check_step_columns(step, accumulated, next_table, left_col, right_col)
        step_stats = ShardedJoinStats()
        handles, step_stats = sharded_oblivious_join(
            encode_handles(accumulated, left_col),
            encode_handles(next_table, right_col),
            shards=shards,
            stats=step_stats,
            executor=executor,
        )
        stats.step_stats.append(step_stats)
        stats.intermediate_sizes.append(step_stats.m)
        accumulated = [
            accumulated[left_index] + tuple(next_table[right_index])
            for left_index, right_index in handles.tolist()
        ]
    return MultiwayResult(
        rows=accumulated, intermediate_sizes=list(stats.intermediate_sizes)
    )
