"""Streaming query-DAG execution: operator chains without per-stage barriers.

The per-operator sharded drivers each materialise their full output before
the next operator starts.  This module executes a whole *pipeline* —
``source -> [filter] -> join | multiway | group_by | order_by ...`` — as
one DAG whose inter-operator edges are **streaming block channels**: the
moment an upstream shard task's block completes, the downstream shard task
consuming it is dispatched through the executor's ``imap``/``submit``
seam, with the block's columns parked in shared memory
(:func:`repro.plan.executors.publish_columns`) on remote executors so the
rows hop worker-to-worker without a parent round-trip.

Three cross-operator edges stream today, all in the ``"revealed"``
padding mode (streaming granularity *is* the leakage granularity — a
padded mode's whole point is that nothing finishes "early", so padded
pipelines run the operator-at-a-time reference path; see
``docs/leakage.md``):

``filter -> *``
    Each source block is filtered by a worker task (an in-block oblivious
    compaction); its survivor columns feed the downstream stage's per-shard
    task (a presort for joins/cascades, a partial aggregation for
    group-by, a keyed block sort for order-by) as soon as the block
    completes.  Correctness rests on the downstream consumers being
    *partition-independent*: a merge of sorted runs depends only on the
    row multiset, and aggregation is associative.
``join -> group_by``
    Each grid cell's keyed output run feeds a partial-aggregation task the
    moment the cell completes; the join's output merge tournament is
    skipped entirely (aggregation does not need the canonical order).

Every other edge materialises between stages and runs the existing
sharded drivers, so the pipeline's output is **bit-identical** to running
the operators one at a time — ``tests/test_pipeline.py`` pins that across
every engine x executor, including adversarial completion orders.

The public schedule of the whole DAG is compiled up front by
:func:`repro.plan.compile.compile_pipeline` — channel capacities, block
counts, every embedded stage plan — as a pure function of the stage
shapes, ``k`` and the bounds; per-block survivor counts revealed by the
streamed filter are the same reveal the operator-at-a-time revealed-mode
drivers already make.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..core.aggregate import GroupAggregate
from ..core.multiway import check_step_columns, encode_handles, validate_cascade
from ..errors import InputError
from ..plan.compile import compile_pipeline
from ..plan.executors import (
    Executor,
    adopt_segments,
    completion_stream,
    publish_columns,
    release_segments,
    resolve_executor,
    submit_task,
)
from ..plan.ir import Plan
from ..vector.relational import order_columns, vector_filter_indices
from ..vector.sort import vector_bitonic_sort
from .aggregate import (
    ShardedAggregateStats,
    _aggregate_task,
    _combine_partials,
    _overflow_guard,
    sharded_group_by,
)
from .join import (
    PRESORT_KEYS,
    ShardedJoinStats,
    _join_task,
    _sharded_rank_sort,
    _sort_task,
    grid_join_payloads,
    run_join_grid,
    sharded_oblivious_join,
)
from .merge import StreamingTournament
from .multiway import sharded_multiway_join
from .partition import partition_columns
from .relational import sharded_order_permutation

_INT = np.int64

#: Stage names a pipeline driver accepts, in engine-level descriptor form.
STAGE_NAMES = ("source", "filter", "join", "multiway", "group_by", "order_by")


@dataclass
class PipelineStats:
    """Cost/schedule record of one pipeline run.

    ``plan`` is the full compiled DAG (every stage's sub-plan plus the
    channel nodes) the run consumed; ``sizes`` the revealed output size
    after every stage (the source size first); ``streamed_edges`` which
    inter-operator edges actually streamed (``(downstream stage index,
    kind)``); ``stage_stats`` the per-stage driver stats objects where the
    underlying driver produced one.
    """

    plan: Plan | None = None
    shards: int = 1
    sizes: list[int] = field(default_factory=list)
    streamed_edges: list[tuple[int, str]] = field(default_factory=list)
    stage_stats: list[object] = field(default_factory=list)


@dataclass
class PipelineResult:
    """One pipeline's output: rows, or groups for group-by-terminal chains.

    ``sizes`` mirrors ``stats.sizes`` (the revealed per-stage sizes —
    the same values the operator-at-a-time path reveals one call at a
    time); ``stats.plan`` is the executed DAG plan end to end.
    """

    rows: list[tuple] | None
    groups: list[GroupAggregate] | None
    sizes: list[int]
    stats: PipelineStats

    def __len__(self) -> int:
        return len(self.groups if self.groups is not None else self.rows)


def check_pipeline_stages(stages) -> list[tuple[str, dict]]:
    """Validate engine-level stage descriptors; return the compile ops.

    ``stages`` is a sequence of tuples: ``("source", rows)`` first, then
    any of ``("filter", mask)`` (only immediately after the source),
    ``("join", right_pairs)``, ``("multiway", rest_tables, keys)``,
    ``("group_by",)`` (terminal) and ``("order_by", spec)`` where ``spec``
    is ``[(column_index, ascending), ...]``.  Returns the shape-only
    ``(name, params)`` descriptors :func:`repro.plan.compile.compile_pipeline`
    consumes — every engine compiles the pipeline plan from these, so the
    plan is a pure function of the stage *shapes*.
    """
    stages = list(stages)
    if not stages or stages[0][0] != "source" or len(stages[0]) != 2:
        raise InputError("a pipeline starts with one ('source', rows) stage")
    if len(stages) < 2:
        raise InputError("a pipeline needs at least one operator stage")
    n = len(stages[0][1])
    ops: list[tuple[str, dict]] = [("source", {"n": n})]
    arity = 2
    for index, stage in enumerate(stages[1:], start=1):
        name = stage[0]
        if name not in STAGE_NAMES or name == "source":
            raise InputError(
                f"unknown pipeline stage {name!r} at position {index}"
            )
        if ops[-1][0] == "group_by":
            raise InputError("group_by must be the final pipeline stage")
        if name == "filter":
            if index != 1:
                raise InputError(
                    "a pipeline filter must come immediately after the source"
                )
            if len(stage) != 2 or len(stage[1]) != n:
                raise InputError(
                    f"pipeline filter needs one mask cell per source row ({n})"
                )
            ops.append(("filter", {}))
        elif name == "join":
            if len(stage) != 2:
                raise InputError("pipeline join stages are ('join', right_rows)")
            if arity != 2:
                raise InputError(
                    f"pipeline join at position {index} needs (j, d) rows, "
                    f"current rows have {arity} columns"
                )
            ops.append(("join", {"n2": len(stage[1])}))
        elif name == "multiway":
            if len(stage) != 3:
                raise InputError(
                    "pipeline multiway stages are ('multiway', tables, keys)"
                )
            tables, keys = list(stage[1]), list(stage[2])
            if not tables or len(keys) != len(tables):
                raise InputError(
                    "pipeline multiway needs one key spec per extra table"
                )
            if arity != 2:
                raise InputError(
                    f"pipeline multiway at position {index} needs (j, d) rows"
                )
            ops.append(("multiway", {"sizes": [len(t) for t in tables]}))
            arity = 2 * (1 + len(tables))
        elif name == "group_by":
            if len(stage) != 1:
                raise InputError("pipeline group_by stages are ('group_by',)")
            if arity != 2:
                raise InputError(
                    f"pipeline group_by at position {index} needs (j, d) rows"
                )
            ops.append(("group_by", {}))
        else:  # order_by
            if len(stage) != 2 or not list(stage[1]):
                raise InputError(
                    "pipeline order_by stages are ('order_by', spec) with at "
                    "least one (column, ascending) key"
                )
            for column, _ in stage[1]:
                if not 0 <= column < arity:
                    raise InputError(
                        f"order_by column {column} out of range at position "
                        f"{index} (rows have {arity} columns)"
                    )
            ops.append(("order_by", {}))
    return ops


# -- the filter block channel -------------------------------------------------


def _filter_block_task(payload):
    """Filter one source block (worker side): in-block oblivious compaction.

    Returns ``(columns, segment, kept)`` — the survivor ``(j, d)`` columns
    (published to shared memory when ``publish``, so the downstream shard
    task attaches them without a parent round-trip), plus the block-local
    survivor indices the parent needs for its client-side row catalogue.
    """
    block, real, publish = payload
    kept = vector_filter_indices(block["mask"][:real])
    index = np.asarray(kept, dtype=_INT)
    columns = {"j": block["j"][index], "d": block["d"][index]}
    if publish:
        encoded, segment = publish_columns(columns)
        return encoded, segment, kept
    return columns, None, kept


class _FilterChannel:
    """The streaming block channel out of a filter stage.

    Owns the partitioned source blocks, the adopted shared-memory segments
    the filter workers published, and the per-block survivor bookkeeping
    the parent needs afterwards (global source positions, kept count).
    """

    def __init__(self, rows, mask, shards: int, executor: Executor) -> None:
        n = len(rows)
        array = np.asarray(rows, dtype=_INT)
        if array.size == 0:
            array = array.reshape(0, 2)
        flags = np.asarray(mask, dtype=bool)
        self._executor = executor
        self._publish = bool(getattr(executor, "remote_submit", False))
        self.blocks = partition_columns(
            {"j": array[:, 0], "d": array[:, 1], "mask": flags}, shards
        )
        self.offsets = list(
            itertools.accumulate([0] + [real for _, real in self.blocks[:-1]])
        )
        self.kept: list[list[int] | None] = [None] * len(self.blocks)
        self.segments: list[str] = []

    def stream(self):
        """Yield ``(index, columns, kept)`` as filter blocks complete.

        ``columns`` may be a ref tree into a published segment — the
        consumer passes the refs straight into its downstream task payload
        (the executors' encode step ships refs through untouched).
        """
        payloads = [
            (block, real, self._publish) for block, real in self.blocks
        ]
        for index, (columns, segment, kept) in completion_stream(
            self._executor, _filter_block_task, payloads
        ):
            if segment is not None:
                adopt_segments([segment])
                self.segments.append(segment)
            self.kept[index] = kept
            yield index, columns, kept

    def positions(self, index: int) -> np.ndarray:
        """Global source positions of block ``index``'s survivors."""
        offset = self.offsets[index]
        return np.asarray(
            [offset + local for local in self.kept[index]], dtype=_INT
        )

    def kept_positions(self) -> list[int]:
        """All survivor source positions, in source order (after draining)."""
        return [
            int(position)
            for index in range(len(self.blocks))
            for position in self.positions(index)
        ]

    def close(self) -> None:
        release_segments(self.segments)
        self.segments = []


# -- streamed edges -----------------------------------------------------------


def _drain_presort(pending, tournament: StreamingTournament):
    """Collect per-block sort completions into the merge tournament."""
    try:
        for index, completion in pending:
            run, _ = completion.result()
            tournament.add(index, run)
        return tournament.result()
    except BaseException:
        tournament.close()
        raise


def _stream_filter_join(
    channel: _FilterChannel,
    right,
    shards: int,
    executor: Executor,
    stats: PipelineStats,
) -> list[tuple]:
    """filter -> join: each filtered block feeds a presort task on arrival.

    The presort merge is run-partition independent (equal ``(j, d)`` rows
    are full duplicates), so merging the per-*source*-block filtered runs
    yields the identical ranked left table the reference path gets from
    re-partitioning the materialised filtered rows — and everything after
    the presort is the standard grid join.
    """
    join_stats = ShardedJoinStats()
    join_stats.shards = shards
    tournament = StreamingTournament(
        len(channel.blocks), PRESORT_KEYS, executor=executor
    )
    pending = []
    try:
        for index, columns, kept in channel.stream():
            payload = (columns["j"], columns["d"], len(kept))
            pending.append((index, submit_task(executor, _sort_task, payload)))
        sorted_left = _drain_presort(pending, tournament)
    except BaseException:
        tournament.close()
        channel.close()
        raise
    channel.close()
    stats.sizes.append(sum(len(kept) for kept in channel.kept))
    pairs = run_join_grid(
        sorted_left,
        right,
        shards,
        executor,
        join_stats,
        None,
        [None] * (shards * shards),
        # Revealed mode: cell outputs are data-dependent sizes, so there
        # are no public expand_segment windows to dispatch (see
        # plan.compile.sharded_join_plan).
        segment_windows=None,
    )
    stats.stage_stats.append(join_stats)
    stats.sizes.append(len(pairs))
    return [tuple(pair) for pair in pairs.tolist()]


_EMPTY = np.zeros(0, dtype=_INT)


def _stream_filter_group_by(
    channel: _FilterChannel,
    source_rows,
    shards: int,
    executor: Executor,
    stats: PipelineStats,
) -> list[GroupAggregate]:
    """filter -> group_by: each filtered block feeds a partial aggregation.

    Aggregation is associative, so partial tables over the per-source-block
    survivor runs combine to the same groups as partials over the
    reference path's re-partitioned blocks.
    """
    aggregate_stats = ShardedAggregateStats()
    aggregate_stats.shards = shards
    pending: list = [None] * len(channel.blocks)
    for index, columns, kept in channel.stream():
        payload = (columns["j"], columns["d"], len(kept), _EMPTY, _EMPTY, 0, None)
        pending[index] = submit_task(executor, _aggregate_task, payload)
    results = [completion.result() for completion in pending]
    channel.close()
    positions = channel.kept_positions()
    stats.sizes.append(len(positions))
    # Same guard, same n, same values as the reference path — it just runs
    # once the survivor count is known (the partial sums cannot have
    # wrapped if the guard passes: each has at most n_kept terms).
    _overflow_guard(
        [np.asarray([source_rows[p][1] for p in positions], dtype=_INT)],
        len(positions),
    )
    groups = _combine_partials(
        [partials for partials, _ in results], left_only=True, stats=aggregate_stats
    )
    stats.stage_stats.append(aggregate_stats)
    stats.sizes.append(len(groups))
    return groups


def _stream_filter_order(
    channel: _FilterChannel,
    source_rows,
    spec,
    shards: int,
    executor: Executor,
    stats: PipelineStats,
) -> list[tuple]:
    """filter -> order_by: each filtered block is sort-keyed on arrival.

    Blocks sort by ``(keys..., source position)``; source position is
    monotone in filtered position (the filter preserves order), so the
    merged run is the reference's stable sort of the filtered rows, and the
    parent gathers output rows straight from its source catalogue.
    """
    merge_keys = [(f"k{i}", ascending) for i, (_, ascending) in enumerate(spec)]
    merge_keys.append(("pos", True))
    tournament = StreamingTournament(
        len(channel.blocks), merge_keys, executor=executor
    )
    pending = []
    try:
        for index, columns, kept in channel.stream():
            payload = (columns, list(spec), channel.positions(index))
            pending.append(
                (index, submit_task(executor, _order_block_task, payload))
            )
        for index, completion in pending:
            tournament.add(index, completion.result())
        merged = tournament.result()
    except BaseException:
        tournament.close()
        channel.close()
        raise
    channel.close()
    kept_count = sum(len(kept) for kept in channel.kept)
    stats.sizes.extend([kept_count, kept_count])
    order = merged["pos"].tolist() if merged else []
    return [tuple(source_rows[position]) for position in order]


def _order_block_task(payload):
    """Sort one filtered block by its order-by keys (worker side)."""
    columns, spec, positions = payload
    values = (columns["j"], columns["d"])
    work, keys = order_columns(
        [(values[column], ascending) for column, ascending in spec],
        len(positions),
    )
    work["pos"] = np.asarray(positions, dtype=_INT)
    return vector_bitonic_sort(work, keys)


def _stream_filter_multiway(
    channel: _FilterChannel,
    source_rows,
    tables,
    keys,
    shards: int,
    executor: Executor,
    stats: PipelineStats,
) -> list[tuple]:
    """filter -> multiway: the cascade's first presort streams per block.

    Step 0's left handles are *source* positions instead of filtered
    indices (the filter preserves order, so the two rank identically under
    the ``(key, handle)`` presort), which lets each block's presort start
    before the filter finishes; the parent's row catalogue is indexed by
    source position, so no remap is ever needed.  Later steps run the
    standard materialised sharded cascade.
    """
    tables = [list(table) for table in tables]
    keys = list(keys)
    validate_cascade([list(source_rows)] + tables, keys)
    left_col, right_col = keys[0]
    check_step_columns(0, list(source_rows), tables[0], left_col, right_col)

    join_stats = ShardedJoinStats()
    join_stats.shards = shards
    tournament = StreamingTournament(
        len(channel.blocks), PRESORT_KEYS, executor=executor
    )
    pending = []
    try:
        for index, columns, kept in channel.stream():
            key_column = columns["j"] if left_col == 0 else columns["d"]
            payload = (key_column, channel.positions(index), len(kept))
            pending.append((index, submit_task(executor, _sort_task, payload)))
        sorted_left = _drain_presort(pending, tournament)
    except BaseException:
        tournament.close()
        channel.close()
        raise
    channel.close()
    stats.sizes.append(sum(len(kept) for kept in channel.kept))

    handles = run_join_grid(
        sorted_left,
        encode_handles(tables[0], right_col),
        shards,
        executor,
        join_stats,
        None,
        [None] * (shards * shards),
        # Revealed mode: cell outputs are data-dependent sizes, so there
        # are no public expand_segment windows to dispatch (see
        # plan.compile.sharded_join_plan).
        segment_windows=None,
    )
    stats.stage_stats.append(join_stats)
    accumulated = [
        tuple(source_rows[left_position]) + tuple(tables[0][right_index])
        for left_position, right_index in handles.tolist()
    ]
    for step in range(1, len(tables)):
        next_table = tables[step]
        step_left, step_right = keys[step]
        check_step_columns(step, accumulated, next_table, step_left, step_right)
        step_stats = ShardedJoinStats()
        step_handles, step_stats = sharded_oblivious_join(
            encode_handles(accumulated, step_left),
            encode_handles(next_table, step_right),
            shards=shards,
            stats=step_stats,
            executor=executor,
        )
        stats.stage_stats.append(step_stats)
        accumulated = [
            accumulated[left_index] + tuple(next_table[right_index])
            for left_index, right_index in step_handles.tolist()
        ]
    stats.sizes.append(len(accumulated))
    return accumulated


def _stream_join_group_by(
    rows,
    right,
    shards: int,
    executor: Executor,
    stats: PipelineStats,
) -> list[GroupAggregate]:
    """join -> group_by: grid cells feed partial aggregations on completion.

    The join's output merge tournament is skipped entirely — aggregation
    needs the joined multiset, not the canonical order — so each cell's
    keyed run becomes a partial-aggregation payload the moment it lands.
    """
    join_stats = ShardedJoinStats()
    join_stats.shards = shards
    aggregate_stats = ShardedAggregateStats()
    aggregate_stats.shards = shards
    sorted_left = _sharded_rank_sort(rows, shards, executor, join_stats)
    payloads = grid_join_payloads(
        sorted_left, right, shards, [None] * (shards * shards), join_stats
    )
    join_stats.task_comparisons = [{} for _ in payloads]
    join_stats.task_m = [0] * len(payloads)
    pending: list = [None] * len(payloads)
    d2_columns: list = [None] * len(payloads)
    for index, (keyed, comparisons) in completion_stream(
        executor, _join_task, payloads
    ):
        join_stats.task_comparisons[index] = comparisons
        join_stats.task_m[index] = len(keyed)
        # The merged d1 column holds left ranks; gather the data values
        # parent-side (same handle gather the join's own tail performs).
        d1 = sorted_left["d"][keyed[:, 1]] if len(keyed) else _EMPTY
        d2 = keyed[:, 2] if len(keyed) else _EMPTY
        d2_columns[index] = d2
        payload = (d1, d2, len(keyed), _EMPTY, _EMPTY, 0, None)
        pending[index] = submit_task(executor, _aggregate_task, payload)
    results = [completion.result() for completion in pending]
    join_stats.m = sum(join_stats.task_m)
    stats.sizes.append(join_stats.m)
    _overflow_guard([column for column in d2_columns if len(column)], join_stats.m)
    groups = _combine_partials(
        [partials for partials, _ in results], left_only=True, stats=aggregate_stats
    )
    stats.stage_stats.extend([join_stats, aggregate_stats])
    stats.sizes.append(len(groups))
    return groups


# -- the driver ---------------------------------------------------------------


def streamed_pipeline(
    stages,
    shards: int = 2,
    workers: int = 1,
    executor: str | Executor | None = None,
    stats: PipelineStats | None = None,
) -> PipelineResult:
    """Execute a revealed-mode pipeline with streaming inter-operator edges.

    Compiles the full DAG plan up front (``stats.plan``), then walks the
    stages, streaming the edges listed in the module docstring and
    materialising the rest through the per-operator sharded drivers.  The
    output — rows or groups — is bit-identical to running the operators
    one at a time on any engine.
    """
    executor = resolve_executor(executor, workers=workers)
    stats = stats if stats is not None else PipelineStats()
    stats.shards = shards
    ops = check_pipeline_stages(stages)
    stats.plan = compile_pipeline(ops, "sharded", shards=shards, padding="revealed")

    stages = list(stages)
    rows: list[tuple] = [tuple(row) for row in stages[0][1]]
    stats.sizes.append(len(rows))
    groups: list[GroupAggregate] | None = None

    index = 1
    while index < len(stages):
        stage = stages[index]
        name = stage[0]
        downstream = stages[index + 1] if index + 1 < len(stages) else None
        if name == "filter":
            channel = _FilterChannel(rows, stage[1], shards, executor)
            if downstream is not None and downstream[0] == "join":
                stats.streamed_edges.append((index + 1, "filter->join"))
                rows = _stream_filter_join(
                    channel, list(downstream[1]), shards, executor, stats
                )
                index += 2
            elif downstream is not None and downstream[0] == "group_by":
                stats.streamed_edges.append((index + 1, "filter->group_by"))
                groups = _stream_filter_group_by(
                    channel, rows, shards, executor, stats
                )
                index += 2
            elif downstream is not None and downstream[0] == "order_by":
                stats.streamed_edges.append((index + 1, "filter->order_by"))
                rows = _stream_filter_order(
                    channel, rows, list(downstream[1]), shards, executor, stats
                )
                index += 2
            elif downstream is not None and downstream[0] == "multiway":
                stats.streamed_edges.append((index + 1, "filter->multiway"))
                rows = _stream_filter_multiway(
                    channel,
                    rows,
                    downstream[1],
                    downstream[2],
                    shards,
                    executor,
                    stats,
                )
                index += 2
            else:
                # Terminal filter: drain the channel, gather survivors.
                for _ in channel.stream():
                    pass
                channel.close()
                rows = [rows[position] for position in channel.kept_positions()]
                stats.sizes.append(len(rows))
                index += 1
        elif name == "join":
            if downstream is not None and downstream[0] == "group_by":
                stats.streamed_edges.append((index + 1, "join->group_by"))
                groups = _stream_join_group_by(
                    rows, list(stage[1]), shards, executor, stats
                )
                index += 2
            else:
                join_stats = ShardedJoinStats()
                pairs, join_stats = sharded_oblivious_join(
                    rows,
                    list(stage[1]),
                    shards=shards,
                    stats=join_stats,
                    executor=executor,
                )
                stats.stage_stats.append(join_stats)
                rows = [tuple(pair) for pair in pairs.tolist()]
                stats.sizes.append(len(rows))
                index += 1
        elif name == "multiway":
            result = sharded_multiway_join(
                [rows] + [list(table) for table in stage[1]],
                list(stage[2]),
                shards=shards,
                executor=executor,
            )
            rows = [tuple(row) for row in result.rows]
            stats.sizes.append(len(rows))
            index += 1
        elif name == "group_by":
            aggregate_stats = ShardedAggregateStats()
            groups = sharded_group_by(
                rows, shards=shards, stats=aggregate_stats, executor=executor
            )
            stats.stage_stats.append(aggregate_stats)
            stats.sizes.append(len(groups))
            index += 1
        else:  # order_by
            spec = list(stage[1])
            key_columns = [
                ([row[column] for row in rows], ascending)
                for column, ascending in spec
            ]
            permutation = sharded_order_permutation(
                key_columns, len(rows), shards=shards, executor=executor
            )
            rows = [rows[position] for position in permutation]
            stats.sizes.append(len(rows))
            index += 1

    return PipelineResult(
        rows=None if groups is not None else rows,
        groups=groups,
        sizes=list(stats.sizes),
        stats=stats,
    )
