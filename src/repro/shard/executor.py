"""Back-compat shim: the executor layer moved to :mod:`repro.plan.executors`.

The sharded engine's process pool grew into a first-class, pluggable
*executor* abstraction (inline / shared-memory pool / asyncio overlap) as
part of the compile-then-execute refactor; the implementation now lives in
the plan layer, next to the Plan IR whose tasks it runs.  This module
re-exports the historical names so existing imports keep working:

``run_tasks(task, payloads, workers)``
    Maps payloads under the default executor rule — ``workers=1`` inline,
    ``workers>1`` on the persistent shared-memory pool.
``check_workers`` / ``warm_pool`` / ``shutdown_pools``
    Unchanged contracts, same persistent-pool semantics.

New code should pass an executor explicitly::

    from repro.plan import resolve_executor
    executor = resolve_executor("async", workers=4)
    executor.map(task, payloads)
"""

from __future__ import annotations

from ..plan.executors import (  # noqa: F401 (re-exports)
    check_workers,
    resolve_executor,
    run_tasks,
    shutdown_pools,
    warm_pool,
)

__all__ = [
    "check_workers",
    "resolve_executor",
    "run_tasks",
    "shutdown_pools",
    "warm_pool",
]
