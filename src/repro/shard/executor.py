"""The multiprocessing executor behind the sharded engine.

Dispatches per-shard tasks to a pool of worker processes.  Every payload a
worker receives is a padded shard (see :mod:`repro.shard.partition`), so for
a fixed ``(n, k)`` the inter-process traffic has a data-independent shape:
the same number of messages, each the same size, in the same order.

``workers=1`` runs the tasks inline in the calling process — no pool, no
pickling — which is both the fast path for small inputs and the reason the
differential test suite can hammer the sharded engine without forking
hundreds of pools.  Pools are *persistent*: the first ``workers=N`` call
forks the pool, later calls reuse it, so a steady stream of queries pays
process start-up once, not per query (:func:`shutdown_pools` tears them
down; an ``atexit`` hook does so at interpreter exit).  Results are always
returned in payload order (``pool.map`` preserves order), so the execution
strategy never changes the output.
"""

from __future__ import annotations

import atexit
import multiprocessing
from typing import Callable, Sequence

from ..errors import InputError

#: Live pools keyed by worker count (see :func:`run_tasks`).
_POOLS: dict[int, multiprocessing.pool.Pool] = {}


def check_workers(workers: int) -> int:
    """Validate a worker count; returns it for chaining."""
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        raise InputError(f"worker count must be an int >= 1, got {workers!r}")
    return workers


def _context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, POSIX) and fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _pool(workers: int) -> multiprocessing.pool.Pool:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _context().Pool(processes=workers)
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Terminate every cached worker pool (idempotent)."""
    for pool in _POOLS.values():
        pool.terminate()
        pool.join()
    _POOLS.clear()


atexit.register(shutdown_pools)


def warm_pool(workers: int) -> None:
    """Fork the ``workers``-process pool ahead of time (bench warm-up)."""
    check_workers(workers)
    if workers > 1:
        _pool(workers)


def run_tasks(task: Callable, payloads: Sequence, workers: int = 1) -> list:
    """Run ``task`` over ``payloads``; results in payload order.

    ``workers=1`` (or a single payload) executes inline; otherwise the
    cached pool of ``workers`` processes maps over the payloads.  The task
    must be a module-level function (picklable) taking one payload.
    """
    check_workers(workers)
    if workers == 1 or len(payloads) <= 1:
        return [task(payload) for payload in payloads]
    return _pool(workers).map(task, payloads)
