"""Oblivious reassembly of sub-join outputs: bitonic merge + pad compaction.

Every sub-join emits its output rows already in the engine's canonical order
(lexicographic in the sort keys), so reassembling the global result does not
need a full `O(m log^2 m)` sort — a tournament of Batcher bitonic *merge*
networks (`O(m log m)` comparators per round, `log` rounds over the runs)
suffices.

One pairwise merge of ascending runs ``A`` and ``B`` lays the rows out as

    [ A ascending | padding | B reversed ]

padded to the next power of two.  Padding rows carry a flag column that
orders them after every real row, which keeps the layout bitonic
(non-decreasing then non-increasing), so the classic ``log P`` half-cleaner
stages sort it ascending.  The padding then sits in the tail — its position
is a function of the (public) run lengths alone — and is compacted away by
truncation.

The comparator schedule of the whole tournament is determined by the run
lengths only; the sharded engine exposes it through its stats object so the
obliviousness tests can pin it.

Two ways to run the tournament:

:func:`oblivious_merge_runs`
    The single-process barrier form: all runs in hand, merged round by
    round on the calling core.

:class:`StreamingTournament`
    The streaming form the sharded drivers use: runs are *folded in as
    their producing tasks complete* (fed from the executor's
    ordered-completion seam), a pairwise merge fires the moment a run's
    bracket mate exists, and — on executors whose ``submit`` crosses a
    process boundary — the merges themselves run as worker tasks, with
    intermediate runs parked in shared memory between rounds
    (:func:`repro.plan.executors.publish_columns`) so they never
    round-trip through the parent.  The bracket comes from
    :func:`repro.plan.ir.tournament_schedule` — the same pure function of
    the run count the plan compilers emit ``merge_pair`` nodes from — so
    the pairing (and with it the comparator schedule) is fixed by the
    compiled plan, never by arrival order, and the output is bit-identical
    to the barrier form under any completion order.
"""

from __future__ import annotations

import time
from collections import OrderedDict

import numpy as np

from ..errors import InputError
from ..obliv.bitonic import next_power_of_two
from ..plan.executors import (
    adopt_segments,
    materialize_columns,
    publish_columns,
    release_segments,
    submit_task,
)
from ..plan.ir import tournament_schedule
from ..vector.sort import Key, lexicographic_greater

_INT = np.int64

#: Flag column marking padding rows inside a merge network (sorts last).
PAD_FLAG = "_mergepad"


def _run_length(run: dict[str, np.ndarray]) -> int:
    return len(next(iter(run.values())))


def _copy(run: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    return {name: col.copy() for name, col in run.items()}


def truncate_run(
    run: dict[str, np.ndarray], bound: int | None
) -> dict[str, np.ndarray]:
    """Cut a run to its first ``bound`` rows (``None`` or shorter = no-op).

    The single definition of the fused expand-truncate cut, shared by the
    barrier merge, the streaming tournament, the worker-side merge task
    and the join driver — the streaming==barrier bit-identity contract
    depends on every site truncating identically.
    """
    if bound is None or _run_length(run) <= bound:
        return run
    return {name: column[:bound] for name, column in run.items()}


def bitonic_merge_two(
    a: dict[str, np.ndarray],
    b: dict[str, np.ndarray],
    keys: list[Key],
    counter: list | None = None,
) -> dict[str, np.ndarray]:
    """Merge two runs sorted ascending by ``keys`` into one sorted run.

    Both runs are struct-of-arrays column dicts with identical column sets.
    Executes exactly the ``log P`` comparator stages of a bitonic merger of
    size ``P = next_power_of_two(len(a) + len(b))``; when ``counter`` (a
    one-element list) is given, the comparator count is added to it.
    """
    la, lb = _run_length(a), _run_length(b)
    if la == 0:
        return _copy(b)
    if lb == 0:
        return _copy(a)
    names = list(a)
    total = la + lb
    padded = next_power_of_two(total)

    work: dict[str, np.ndarray] = {}
    for name in names:
        col = np.zeros(padded, dtype=np.asarray(a[name]).dtype)
        col[:la] = a[name]
        col[padded - lb :] = b[name][::-1]
        work[name] = col
    flags = np.zeros(padded, dtype=_INT)
    flags[la : padded - lb] = 1
    work[PAD_FLAG] = flags
    merge_keys: list[Key] = [(PAD_FLAG, True)] + list(keys)

    indices = np.arange(padded)
    gap = padded // 2
    while gap >= 1:
        lo = indices[(indices & gap) == 0]
        hi = lo + gap
        swap = lexicographic_greater(work, merge_keys, lo, hi)
        if counter is not None:
            counter[0] += len(lo)
        src = lo[swap]
        dst = hi[swap]
        for col in work.values():
            col[src], col[dst] = col[dst].copy(), col[src].copy()
        gap //= 2

    del work[PAD_FLAG]
    return {name: work[name][:total] for name in names}


def merge_comparator_count(lengths: list[int], truncate: int | None = None) -> int:
    """Comparators the tournament executes for runs of the given lengths.

    A pure function of the run lengths (and the public ``truncate`` bound,
    when given) — used to document (and test) that the merge schedule is
    independent of the data being merged.
    """
    lengths = list(lengths)
    if truncate is not None:
        lengths = [min(length, truncate) for length in lengths]
    count = 0
    while len(lengths) > 1:
        merged = []
        for i in range(0, len(lengths) - 1, 2):
            la, lb = lengths[i], lengths[i + 1]
            if la and lb:
                padded = next_power_of_two(la + lb)
                gap = padded // 2
                while gap >= 1:
                    count += padded // 2
                    gap //= 2
            total = la + lb
            merged.append(total if truncate is None else min(total, truncate))
        if len(lengths) % 2:
            merged.append(lengths[-1])
        lengths = merged
    return count


def oblivious_merge_runs(
    runs: list[dict[str, np.ndarray]],
    keys: list[Key],
    counter: list | None = None,
    truncate: int | None = None,
) -> dict[str, np.ndarray]:
    """Tournament-merge sorted runs into one run sorted ascending by ``keys``.

    Runs are merged pairwise round by round (a balanced tournament), so the
    network depth over the runs is ``ceil(log2(len(runs)))`` rounds; the
    comparator schedule depends only on the run lengths.

    ``truncate`` is the fused expand-truncate of padded execution: every
    run — input runs first, then every round's merge output — is cut to
    its first ``truncate`` rows before the next round.  A row past
    position ``truncate`` of a sorted run is preceded by at least
    ``truncate`` rows that order before it in every later round, so it can
    never reach the first ``truncate`` rows of the final output — dropping
    it early is exact.  The cut points are ``min(run lengths, truncate)``,
    pure functions of the (public) run lengths and the bound, so the
    comparator schedule stays data-independent while the padded sharded
    join's merge cost drops from the grid total (``n1 * n2`` rows under a
    cascade step's full cross product) to ``O(runs * truncate)``.
    """
    if not runs:
        return {}
    current = [_copy(truncate_run(run, truncate)) for run in runs]
    while len(current) > 1:
        merged = []
        for i in range(0, len(current) - 1, 2):
            pair = bitonic_merge_two(current[i], current[i + 1], keys, counter=counter)
            pair = truncate_run(pair, truncate)
            merged.append(pair)
        if len(current) % 2:
            merged.append(current[-1])
        current = merged
    return current[0]


# -- the streaming tournament -------------------------------------------------


def merge_pair_task(payload) -> tuple[object, str | None, int]:
    """One tournament pairing as an executor task (worker side).

    ``payload`` is ``(a, b, keys, truncate, publish)`` — two runs (column
    dicts, possibly shared-memory views), the sort keys, the public
    truncation bound, and whether to park the output in shared memory.
    Returns ``(run_or_refs, segment_name, comparators)``: with ``publish``
    the merged run stays in a freshly published segment and only its ref
    tree travels back (the cross-dispatch column cache — the next round's
    merge references the segment by name instead of re-shipping the rows);
    without it the plain column dict returns, ``segment_name=None``.
    """
    a, b, keys, truncate, publish = payload
    counter = [0]
    merged = truncate_run(bitonic_merge_two(a, b, keys, counter=counter), truncate)
    if publish:
        encoded, segment = publish_columns(merged)
        return encoded, segment, counter[0]
    return merged, None, counter[0]


class StreamingTournament:
    """Fold sorted runs into the fixed merge bracket as they arrive.

    The bracket — which leaf pairs with which, round by round — is
    precomputed from the run *count* by
    :func:`repro.plan.ir.tournament_schedule`, the same pure function the
    plan compilers emit ``merge_pair`` nodes from.  :meth:`add` may be
    called in **any** order (the executor's completion order is scheduling
    jitter, not schedule): a pairwise merge is dispatched the moment both
    bracket mates exist, and an odd tail run is carried to the next round
    untouched.  Because every merge is a deterministic function of its two
    inputs and the pairing is fixed, the final run — and the total
    comparator count, accumulated into ``counter`` — is bit-identical to
    :func:`oblivious_merge_runs` under every arrival order.

    ``executor`` decides where the merges run: executors exposing
    ``submit`` get each pairing as a task (overlapping merge work with
    still-running producers), and when ``executor.remote_submit`` is true
    the merge outputs are *published* to shared memory so successive
    rounds hand refs between workers without a parent round-trip; the
    parent materialises only the final run.  ``executor=None`` folds
    inline.

    ``truncate`` is the fused expand-truncate bound applied to every input
    run and every merge output (see :func:`oblivious_merge_runs`).

    ``seconds`` accumulates the wall-clock this tournament spent inside
    :meth:`add` and :meth:`result` — for inline executors that is the
    merge work itself (submits run eagerly), for pool/async it is the
    dispatch plus the drain wait — so drivers can report a merge phase
    that does not vanish into the task loop on the inline path.
    """

    def __init__(
        self,
        runs: int,
        keys: list[Key],
        executor=None,
        counter: list | None = None,
        truncate: int | None = None,
    ) -> None:
        if runs < 0:
            raise InputError(f"tournament needs a non-negative run count, got {runs}")
        self.runs = runs
        self.keys = list(keys)
        self.counter = counter
        self.truncate = truncate
        self._executor = executor
        self._publish = bool(getattr(executor, "remote_submit", False))
        #: child (round, slot) -> the MergeNode consuming it.
        self._up = {}
        for node in tournament_schedule(runs):
            self._up[(node.round - 1, node.left)] = node
            if node.right is not None:
                self._up[(node.round - 1, node.right)] = node
        self._slots: dict[tuple[int, int], object] = {}
        #: dispatched merges, in dispatch order: (round, slot) -> completion.
        self._pending: "OrderedDict[tuple[int, int], object]" = OrderedDict()
        #: id(live run value) -> the published segment holding its columns.
        self._borne: dict[int, str] = {}
        #: pending merge -> the child segments it is reading (released on
        #: collection: the merge has consumed them by then).
        self._feeds: dict[tuple[int, int], list[str]] = {}
        self._added: set[int] = set()
        self._root = None
        self.seconds = 0.0

    def add(self, index: int, run: dict[str, np.ndarray]) -> None:
        """Fold leaf run ``index`` in; safe in any arrival order."""
        if not 0 <= index < self.runs:
            raise InputError(
                f"tournament over {self.runs} runs got leaf index {index}"
            )
        if index in self._added:
            raise InputError(f"tournament leaf {index} was already added")
        start = time.perf_counter()
        run = truncate_run(run, self.truncate)
        self._added.add(index)
        self._place(0, index, run)
        self.seconds += time.perf_counter() - start

    def add_published(self, index: int, run, segment: str | None) -> None:
        """Fold a leaf whose columns a worker parked in shared memory.

        The producer task (an ``expand_segment``) already applied the
        ``truncate`` bound before publishing, so ``run`` — the encoded ref
        tree — is placed as-is, and ``segment`` is booked for release
        exactly like a merge round's published output: it feeds the next
        pairwise merge by name, and :meth:`close` unlinks it on any abort
        (including a mid-grid :class:`~repro.errors.BoundError`) while it
        is still waiting for its bracket mate.  ``segment=None`` (an
        all-empty run, or a non-publishing executor) falls back to the
        plain :meth:`add`.
        """
        if segment is None:
            self.add(index, run)
            return
        if not 0 <= index < self.runs:
            raise InputError(
                f"tournament over {self.runs} runs got leaf index {index}"
            )
        if index in self._added:
            raise InputError(f"tournament leaf {index} was already added")
        start = time.perf_counter()
        # Book with the resource tracker immediately: a parent crash
        # between here and release must still reclaim the segment.
        adopt_segments([segment])
        self._added.add(index)
        self._borne[id(run)] = segment
        self._place(0, index, run)
        self.seconds += time.perf_counter() - start

    def _place(self, rnd: int, slot: int, value) -> None:
        node = self._up.get((rnd, slot))
        if node is None:
            self._root = value
            return
        if node.is_carry:
            self._place(node.round, node.slot, value)
            return
        mate_slot = node.left if slot == node.right else node.right
        mate = self._slots.pop((rnd, mate_slot), None)
        if mate is None:
            self._slots[(rnd, slot)] = value
            return
        left, right = (value, mate) if slot == node.left else (mate, value)
        feeds = []
        for child in (left, right):
            segment = self._borne.pop(id(child), None)
            if segment is not None:
                feeds.append(segment)
        key = (node.round, node.slot)
        payload = (left, right, self.keys, self.truncate, self._publish)
        self._pending[key] = submit_task(self._executor, merge_pair_task, payload)
        self._feeds[key] = feeds

    def _collect(self, key: tuple[int, int], completion) -> object:
        value, segment, comparators = completion.result()
        # The merge has consumed its children; their segments can go now,
        # which keeps peak shared memory at one round, not the whole tree.
        release_segments(self._feeds.pop(key, ()))
        if segment is not None:
            # Book the adopted name with the resource tracker the moment
            # the parent learns it, so even a hard parent crash between
            # here and release_segments() reclaims the segment.
            adopt_segments([segment])
            self._borne[id(value)] = segment
        if self.counter is not None:
            self.counter[0] += comparators
        return value

    def result(self) -> dict[str, np.ndarray]:
        """Drain pending merges and return the final sorted run.

        Requires every leaf to have been added.  The drain order is the
        dispatch order (deterministic given arrival order), but the
        result does not depend on it — each collected merge just fills
        its bracket slot, possibly firing the next round's pairing.
        """
        if len(self._added) != self.runs:
            raise InputError(
                f"tournament expected {self.runs} runs, got {len(self._added)}"
            )
        start = time.perf_counter()
        try:
            while self._pending:
                key, completion = next(iter(self._pending.items()))
                del self._pending[key]
                self._place(*key, self._collect(key, completion))
            if self._root is None:
                return {}
            root = materialize_columns(self._root)
        finally:
            self.close()
            self.seconds += time.perf_counter() - start
        return root

    def close(self) -> None:
        """Best-effort cleanup: collect strays, unlink published segments.

        Called by :meth:`result` on success *and* failure, and safe to
        call directly when abandoning a tournament mid-stream (e.g. a
        bound-exceeded abort): pending worker merges are drained so their
        published segments can be unlinked rather than leaked.
        """
        while self._pending:
            key, completion = self._pending.popitem(last=False)
            try:
                _, segment, _ = completion.result()
            except Exception:
                segment = None
            if segment is not None:
                adopt_segments([segment])
                release_segments([segment])
            release_segments(self._feeds.pop(key, ()))
        for feeds in self._feeds.values():
            release_segments(feeds)
        self._feeds = {}
        if self._borne:
            release_segments(self._borne.values())
            self._borne = {}
