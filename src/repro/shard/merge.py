"""Oblivious reassembly of sub-join outputs: bitonic merge + pad compaction.

Every sub-join emits its output rows already in the engine's canonical order
(lexicographic in the sort keys), so reassembling the global result does not
need a full `O(m log^2 m)` sort — a tournament of Batcher bitonic *merge*
networks (`O(m log m)` comparators per round, `log` rounds over the runs)
suffices.

One pairwise merge of ascending runs ``A`` and ``B`` lays the rows out as

    [ A ascending | padding | B reversed ]

padded to the next power of two.  Padding rows carry a flag column that
orders them after every real row, which keeps the layout bitonic
(non-decreasing then non-increasing), so the classic ``log P`` half-cleaner
stages sort it ascending.  The padding then sits in the tail — its position
is a function of the (public) run lengths alone — and is compacted away by
truncation.

The comparator schedule of the whole tournament is determined by the run
lengths only; the sharded engine exposes it through its stats object so the
obliviousness tests can pin it.
"""

from __future__ import annotations

import numpy as np

from ..obliv.bitonic import next_power_of_two
from ..vector.sort import Key, lexicographic_greater

_INT = np.int64

#: Flag column marking padding rows inside a merge network (sorts last).
PAD_FLAG = "_mergepad"


def _run_length(run: dict[str, np.ndarray]) -> int:
    return len(next(iter(run.values())))


def _copy(run: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    return {name: col.copy() for name, col in run.items()}


def bitonic_merge_two(
    a: dict[str, np.ndarray],
    b: dict[str, np.ndarray],
    keys: list[Key],
    counter: list | None = None,
) -> dict[str, np.ndarray]:
    """Merge two runs sorted ascending by ``keys`` into one sorted run.

    Both runs are struct-of-arrays column dicts with identical column sets.
    Executes exactly the ``log P`` comparator stages of a bitonic merger of
    size ``P = next_power_of_two(len(a) + len(b))``; when ``counter`` (a
    one-element list) is given, the comparator count is added to it.
    """
    la, lb = _run_length(a), _run_length(b)
    if la == 0:
        return _copy(b)
    if lb == 0:
        return _copy(a)
    names = list(a)
    total = la + lb
    padded = next_power_of_two(total)

    work: dict[str, np.ndarray] = {}
    for name in names:
        col = np.zeros(padded, dtype=np.asarray(a[name]).dtype)
        col[:la] = a[name]
        col[padded - lb :] = b[name][::-1]
        work[name] = col
    flags = np.zeros(padded, dtype=_INT)
    flags[la : padded - lb] = 1
    work[PAD_FLAG] = flags
    merge_keys: list[Key] = [(PAD_FLAG, True)] + list(keys)

    indices = np.arange(padded)
    gap = padded // 2
    while gap >= 1:
        lo = indices[(indices & gap) == 0]
        hi = lo + gap
        swap = lexicographic_greater(work, merge_keys, lo, hi)
        if counter is not None:
            counter[0] += len(lo)
        src = lo[swap]
        dst = hi[swap]
        for col in work.values():
            col[src], col[dst] = col[dst].copy(), col[src].copy()
        gap //= 2

    del work[PAD_FLAG]
    return {name: work[name][:total] for name in names}


def merge_comparator_count(lengths: list[int], truncate: int | None = None) -> int:
    """Comparators the tournament executes for runs of the given lengths.

    A pure function of the run lengths (and the public ``truncate`` bound,
    when given) — used to document (and test) that the merge schedule is
    independent of the data being merged.
    """
    lengths = list(lengths)
    if truncate is not None:
        lengths = [min(length, truncate) for length in lengths]
    count = 0
    while len(lengths) > 1:
        merged = []
        for i in range(0, len(lengths) - 1, 2):
            la, lb = lengths[i], lengths[i + 1]
            if la and lb:
                padded = next_power_of_two(la + lb)
                gap = padded // 2
                while gap >= 1:
                    count += padded // 2
                    gap //= 2
            total = la + lb
            merged.append(total if truncate is None else min(total, truncate))
        if len(lengths) % 2:
            merged.append(lengths[-1])
        lengths = merged
    return count


def oblivious_merge_runs(
    runs: list[dict[str, np.ndarray]],
    keys: list[Key],
    counter: list | None = None,
    truncate: int | None = None,
) -> dict[str, np.ndarray]:
    """Tournament-merge sorted runs into one run sorted ascending by ``keys``.

    Runs are merged pairwise round by round (a balanced tournament), so the
    network depth over the runs is ``ceil(log2(len(runs)))`` rounds; the
    comparator schedule depends only on the run lengths.

    ``truncate`` is the fused expand-truncate of padded execution: every
    run — input runs first, then every round's merge output — is cut to
    its first ``truncate`` rows before the next round.  A row past
    position ``truncate`` of a sorted run is preceded by at least
    ``truncate`` rows that order before it in every later round, so it can
    never reach the first ``truncate`` rows of the final output — dropping
    it early is exact.  The cut points are ``min(run lengths, truncate)``,
    pure functions of the (public) run lengths and the bound, so the
    comparator schedule stays data-independent while the padded sharded
    join's merge cost drops from the grid total (``n1 * n2`` rows under a
    cascade step's full cross product) to ``O(runs * truncate)``.
    """
    if not runs:
        return {}
    if truncate is not None:
        runs = [
            {name: column[:truncate] for name, column in run.items()}
            if _run_length(run) > truncate
            else run
            for run in runs
        ]
    current = [_copy(run) for run in runs]
    while len(current) > 1:
        merged = []
        for i in range(0, len(current) - 1, 2):
            pair = bitonic_merge_two(current[i], current[i + 1], keys, counter=counter)
            if truncate is not None and _run_length(pair) > truncate:
                pair = {name: column[:truncate] for name, column in pair.items()}
            merged.append(pair)
        if len(current) % 2:
            merged.append(current[-1])
        current = merged
    return current[0]
