"""The sharded join tree: per-edge bottom-up tasks, slot-window fan-out.

Pipeline (all public sizes fixed by the compiled plan)::

    compile     sharded_join_tree_plan(sizes, edges, k, target) — per-edge
                multiplicity nodes, per-node marker catalogues, the slot
                windows and the merge tournament's run lengths
    bottom-up   one ``multiplicity`` executor task per tree edge, grouped
                by child depth (same-depth edges have no data dependency,
                so each depth's batch dispatches concurrently through
                ``completion_stream``); the client applies the alpha
                products between batches
    finalize    client-side vector pass: suffix products + the per-node
                marker catalogues (:func:`repro.vector.join_tree.finalize_catalogue`)
    windows     the slot space ``[0, target)`` fans out as
                ``join_tree_window`` tasks — each stabs every node's
                catalogue over its own window, publishes its columns to
                shared memory on remote executors, and feeds the streaming
                merge tournament keyed on the slot index ``g``
    gather      truncate at the public target, keep the real rows ``[0, m)``

The window runs are non-overlapping, already-sorted slices of the slot
space, so the tournament's merges move rows without reordering them —
but the bracket, its run lengths and its comparator schedule are the same
plan-fixed artifact the binary join uses, which keeps the reassembly
arrival-order independent (pinned by the shuffle executor in CI) and the
comparator count a pure function of the window lengths.

Leakage: the whole schedule is a function of ``(sizes, tree, k, target)``
— there are *no* per-task revealed sizes, because the join tree never
materialises an intermediate relation.  Under ``"revealed"`` padding the
slot space is the true output size ``M`` (the same deliberate leak as the
cascade's revealed intermediates); the windows are then computed from the
revealed ``M`` at run time rather than from the plan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.join_tree import JoinTreeResult, join_tree_bound
from ..core.padding import check_padding, exceeds_bound
from ..errors import InputError
from ..plan.compile import sharded_join_tree_plan
from ..plan.executors import (
    Executor,
    completion_stream,
    publish_columns,
    resolve_executor,
)
from ..plan.ir import Plan
from ..plan.partition import join_tree_window_plan
from ..vector.join_tree import (
    JoinTreeCatalogue,
    edge_multiplicity,
    expand_window,
    finalize_catalogue,
    prepare_tables,
    window_rows,
)
from .merge import StreamingTournament

_INT = np.int64

#: Keys of the output merge: the global slot index.
MERGE_KEYS = [("g", True)]


@dataclass
class ShardedJoinTreeStats:
    """Cost/schedule record of one sharded join-tree run.

    ``edge_comparisons`` has one entry per tree edge (the bottom-up
    tasks), ``window_comparisons`` one per slot-window task;
    ``merge_comparisons`` covers the output tournament.  ``windows`` is
    the public per-window row count list the merge's run lengths are.
    """

    shards: int = 1
    plan: Plan | None = None
    edge_comparisons: list[int] = field(default_factory=list)
    finalize_comparisons: int = 0
    window_comparisons: list[int] = field(default_factory=list)
    windows: tuple[int, ...] = ()
    merge_comparisons: int = 0
    seconds_by_phase: dict[str, float] = field(default_factory=dict)
    m: int = 0
    target: int | None = None

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_phase.values())

    @property
    def total_comparisons(self) -> int:
        return (
            sum(self.edge_comparisons)
            + self.finalize_comparisons
            + sum(self.window_comparisons)
            + self.merge_comparisons
        )

    @property
    def schedule(self) -> tuple:
        """The adversary-visible schedule: comparator counts per task.

        For fixed ``(sizes, tree, k, target)`` this tuple is identical
        across inputs — the differential suite pins it alongside
        ``plan.serialize()``.
        """
        return (
            ("multiplicity", tuple(self.edge_comparisons)),
            ("finalize", self.finalize_comparisons),
            ("windows", self.windows, tuple(self.window_comparisons)),
            ("merge", self.merge_comparisons),
        )


def _edge_task(payload) -> tuple[np.ndarray, np.ndarray, int]:
    """One bottom-up ``multiplicity`` plan node as an executor task."""
    parent_key, child_key, child_alpha, band = payload
    counter = [0]
    beta, start = edge_multiplicity(
        parent_key, child_key, child_alpha, band, counter
    )
    return beta, start, counter[0]


def _window_task(payload):
    """One ``join_tree_window`` plan node as an executor task (worker side).

    Stabs the slot window ``[lo, hi)`` against every node's marker
    catalogue and returns the aligned run — slot index column ``g`` plus
    one data column per output column, already sorted by ``g`` (windows
    are contiguous), so it is a valid tournament leaf as-is.  On remote
    executors the columns are parked in shared memory and only the ref
    tree travels back, matching :func:`repro.shard.merge.merge_pair_task`'s
    publish contract.
    """
    catalogue, lo, hi, publish = payload
    counter = [0]
    slots = expand_window(catalogue, lo, hi, counter)
    data = window_rows(catalogue, slots)
    run = {"g": np.arange(lo, hi, dtype=_INT)}
    for col in range(data.shape[1]):
        run[f"c{col}"] = data[:, col].copy()
    if publish:
        encoded, segment = publish_columns(run)
        return encoded, segment, counter[0]
    return run, None, counter[0]


def edge_depth_groups(edges, order) -> list[list[int]]:
    """Edge indices grouped by child depth, deepest group first.

    Within one group no edge's child is another's parent (depths differ by
    construction), so a group's tasks are data-independent and dispatch
    concurrently; groups are barriers because a parent edge needs its
    child's completed ``alpha``.
    """
    depth = {0: 0}
    groups: dict[int, list[int]] = {}
    for e in order:
        edge = edges[e]
        depth[edge.child] = depth[edge.parent] + 1
        groups.setdefault(depth[edge.child], []).append(e)
    return [groups[d] for d in sorted(groups, reverse=True)]


def join_tree_windows(plan: Plan) -> tuple[tuple[int, int], ...]:
    """The plan's ``join_tree_window`` nodes' ``[lo, hi)`` spans, in order."""
    return tuple(
        (node.attr("lo"), node.attr("hi"))
        for node in plan.nodes_by_op("join_tree_window")
    )


def sharded_join_tree(
    tables,
    edges,
    shards: int = 2,
    workers: int = 1,
    stats: ShardedJoinTreeStats | None = None,
    executor: str | Executor | None = None,
    plan: Plan | None = None,
    padding: str | None = None,
    bound=None,
    expand_segments: int | None = None,
) -> tuple[JoinTreeResult, ShardedJoinTreeStats]:
    """Sharded Yannakakis join tree; returns ``(result, stats)``.

    ``result.rows`` are bit-identical (values *and* order) to the traced
    and vector engines' — the canonical slot order is a pure function of
    the inputs, so reassembly through the streaming tournament cannot
    depend on task arrival order.  ``plan`` is the compiled public plan to
    consume; ``None`` compiles it here from the same public values.
    """
    executor = resolve_executor(executor, workers=workers)
    stats = stats if stats is not None else ShardedJoinTreeStats()
    stats.shards = shards
    padding = check_padding(padding)
    inputs = prepare_tables(tables, edges, padding)
    target = join_tree_bound(inputs.sizes, padding, bound)
    if plan is None:
        plan = sharded_join_tree_plan(
            inputs.sizes, inputs.edges, shards, target, expand_segments
        )
    else:
        supplied = tuple(
            plan.shape(name)
            for name in ("sizes", "edges", "k", "target", "segments")
        )
        expected = (
            inputs.sizes,
            tuple(
                (e.parent, e.child, e.parent_col, e.child_col, e.band)
                for e in inputs.edges
            ),
            shards,
            target,
            expand_segments,
        )
        if supplied != expected:
            raise InputError(
                f"plan compiled for (sizes, edges, k, target, segments)="
                f"{supplied} cannot drive a join tree at {expected}"
            )
    stats.plan = plan

    # -- bottom-up: per-edge tasks, one concurrent batch per depth -----------
    start = time.perf_counter()
    alpha = [np.ones(n, dtype=_INT) for n in inputs.sizes]
    edge_bs: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    stats.edge_comparisons = [0] * len(inputs.edges)
    for group in edge_depth_groups(inputs.edges, inputs.order):
        payloads = []
        for e in group:
            edge = inputs.edges[e]
            payloads.append(
                (
                    inputs.arrays[edge.parent][:, edge.parent_col],
                    inputs.arrays[edge.child][:, edge.child_col],
                    alpha[edge.child],
                    edge.band,
                )
            )
        for index, (beta, bstart, count) in completion_stream(
            executor, _edge_task, payloads
        ):
            e = group[index]
            stats.edge_comparisons[e] = count
            edge_bs[e] = (beta, bstart)
        for e in group:
            edge = inputs.edges[e]
            alpha[edge.parent] = alpha[edge.parent] * edge_bs[e][0]
    stats.seconds_by_phase["multiplicity"] = time.perf_counter() - start

    m = int(alpha[0].sum())
    padded = target is not None
    if padded:
        exceeds_bound(m, target)
    slot_space = target if padded else m
    stats.m = m
    stats.target = target

    # -- finalize: client-side marker catalogues -----------------------------
    start = time.perf_counter()
    counter = [0]
    catalogue: JoinTreeCatalogue = finalize_catalogue(
        inputs, alpha, edge_bs, m, slot_space, padded, counter
    )
    stats.finalize_comparisons = counter[0]
    stats.seconds_by_phase["finalize"] = time.perf_counter() - start

    # -- slot windows streamed into the merge tournament ---------------------
    # Padded: the windows are plan nodes.  Revealed: the slot space is the
    # run-time-revealed M (the mode's documented leak), so the same pure
    # window function runs here over M instead of at compile time.
    if padded:
        windows = join_tree_windows(plan)
    else:
        _, win_rows = join_tree_window_plan(
            slot_space,
            inputs.sizes,
            expand_segments if expand_segments is not None else shards,
        )
        spans, offset = [], 0
        for rows in win_rows:
            spans.append((offset, offset + rows))
            offset += rows
        windows = tuple(spans)
    stats.windows = tuple(hi - lo for lo, hi in windows)

    start = time.perf_counter()
    publish = bool(getattr(executor, "remote_submit", False))
    payloads = [(catalogue, lo, hi, publish) for lo, hi in windows]
    stats.window_comparisons = [0] * len(payloads)
    counter = [0]
    tournament = StreamingTournament(
        len(payloads),
        MERGE_KEYS,
        executor=executor,
        counter=counter,
        truncate=slot_space,
    )
    try:
        for index, (run, segment, count) in completion_stream(
            executor, _window_task, payloads
        ):
            stats.window_comparisons[index] = count
            if segment is not None:
                tournament.add_published(index, run, segment)
            else:
                tournament.add(index, run)
        # Merge work executed eagerly inside add() (inline submits) is
        # tournament time, not window time — the same wall-clock split as
        # the binary join's grid.
        fold_seconds = tournament.seconds
        stats.seconds_by_phase["windows"] = max(
            time.perf_counter() - start - fold_seconds, 0.0
        )
        start = time.perf_counter()
        merged = tournament.result()
    except BaseException:
        tournament.close()
        raise
    stats.merge_comparisons = counter[0]

    # -- gather: slot order is already canonical; keep the real prefix ------
    columns = [merged[f"c{col}"] for col in range(len(merged) - 1)]
    if columns:
        data = np.stack(columns, axis=1)[:m]
    else:
        data = np.zeros((m, 0), dtype=_INT)
    rows = [tuple(row) for row in data.tolist()]
    stats.seconds_by_phase["merge"] = time.perf_counter() - start + fold_seconds
    result = JoinTreeResult(
        rows=rows,
        m=m,
        padding=padding,
        target=target,
        sizes=inputs.sizes,
    )
    return result, stats
