"""The sharded oblivious join: one compiled plan, a task grid, one merge.

Pipeline (all public sizes fixed by the compiled plan)::

    compile    sharded_join_plan(n1, n2, k, target) — partition plans,
               presort layout, the k*k grid with per-cell bounds, the merge
               tournament's run lengths and truncation point
    presort    shard-sort the left table by (j, d): k local bitonic sorts
               streamed into a bitonic merge tournament; rank rows by
               sorted position
    partition  ranked left / raw right -> k equal, padded shards each
    grid       run the k*k shard-pair sub-joins on the *executor*
               (inline / shared-memory pool / async / shuffle), each a
               full vectorised Algorithm 1 over its (public-size) slice
    merge      fold each sorted (j, rank, d2) run into the streaming
               merge tournament *as its grid task completes* (the
               executor's ordered-completion seam); pairwise merges run
               as worker tasks with intermediate runs cached in shared
               memory between rounds; compact the padding and gather d1
               back through the rank handles

The plan is compiled *before* any data is touched — it is a pure function
of ``(n1, n2, k, target_m)`` — and the driver consumes it: every grid
cell's padded bound and the merge truncation point come from plan nodes,
not from the data.  ``stats.plan`` exposes the executed plan so the
obliviousness suite can assert byte-identical serializations across inputs
that share a shape.

Because shard membership is positional, every joinable row pair meets in
exactly one grid cell, so the union of sub-join outputs is exactly the join
multiset.  Reassembling the *canonical order* (each group's cross product,
row-major over the d-sorted sides) needs one subtlety: two left rows with
equal ``(j, d1)`` emit interleaved, not adjacent, output rows, so no sort
of raw ``(j, d1, d2)`` triples can reproduce the sequence.  The presort
fixes that by giving every left row a unique global rank ``s`` (its
position in the ``(j, d)``-sorted table); the grid joins on ``(j, s)``, the
merge orders by ``(j, s, d2)`` — a total order — and ``d1`` is recovered by
indexing the sorted column with ``s``, the same client-side handle gather
the multiway cascade uses for payloads.

Leakage: the partition plans and every primitive schedule are functions of
``(n1, n2, k)`` plus the per-task output sizes ``m_ij``.  The ``m_ij`` grid
is a *finer* deliberate reveal than the single join's ``m`` (it localises
output volume to position-block pairs) — the same trade the multiway
cascade makes for intermediate sizes.  With ``target_m`` set, the grid is
folded into the padded story: every task runs the padded vector join at
its own public worst case ``real_i * real_j`` (a row pair cannot emit more
than its cross product), and the merge tournament truncates every merged
run at the public bound (*fused expand-truncate*: a row past position
``target_m`` of a sorted run can never reach the first ``target_m`` rows
of the final merge, so dropping it early is a public, data-independent
cut — the run lengths stay functions of ``(n1, n2, k, target_m)``).  Task
grid, schedule, and ``task_m`` all become functions of
``(n1, n2, k, target_m)``; see :mod:`repro.plan.compile`,
:mod:`repro.core.padding` and ``docs/leakage.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.padding import (
    DUMMY_HANDLE,
    check_anchor_headroom,
    check_payload_headroom,
    check_target_m,
    exceeds_bound,
)
from ..errors import InputError
from ..plan.compile import sharded_join_plan
from ..plan.executors import (
    Executor,
    completion_stream,
    publish_columns,
    resolve_executor,
    resolve_payload,
)
from ..plan.ir import Plan
from ..store.runtime import StorePairs, store_pairs_block_rows
from ..vector.join import vector_join_segment, vector_oblivious_join
from ..vector.sort import vector_bitonic_sort
from .merge import StreamingTournament, truncate_run
from .partition import pairs_partition_plan, partition_pairs

_INT = np.int64

#: Keys of the output merge: group, left global rank, right data value.
MERGE_KEYS = [("j", True), ("d1", True), ("d2", True)]

#: Keys of the presort that ranks the left table.
PRESORT_KEYS = [("j", True), ("d", True)]


@dataclass
class ShardedJoinStats:
    """Cost/schedule record of one sharded join.

    ``plan`` is the compiled public plan the run consumed; ``partition`` is
    the public partition plan for both inputs; ``presort_comparisons`` /
    ``presort_merge_comparisons`` cover the left-ranking sort,
    ``task_comparisons`` each grid task's per-phase comparator counts,
    ``task_m`` the revealed per-task output sizes and ``merge_comparisons``
    the output merge tournament.
    """

    shards: int = 1
    plan: Plan | None = None
    partition: tuple = ()
    presort_comparisons: list[int] = field(default_factory=list)
    presort_merge_comparisons: int = 0
    task_comparisons: list[dict[str, int]] = field(default_factory=list)
    task_m: list[int] = field(default_factory=list)
    merge_comparisons: int = 0
    seconds_by_phase: dict[str, float] = field(default_factory=dict)
    m: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_phase.values())

    @property
    def total_comparisons(self) -> int:
        return (
            sum(self.presort_comparisons)
            + self.presort_merge_comparisons
            + sum(sum(c.values()) for c in self.task_comparisons)
            + self.merge_comparisons
        )

    @property
    def schedule(self) -> tuple:
        """The adversary-visible schedule of the whole sharded join.

        Partition plans, presort comparators, each grid task's
        ``(task, phase, comparators)`` triples, and the merge comparator
        count.  For fixed ``(n1, n2, k)`` and fixed (revealed) ``m_ij``
        sizes this tuple is identical across inputs — the obliviousness
        suite pins that (and pins ``plan.serialize()`` the same way).
        """
        tasks = tuple(
            (index, phase, count)
            for index, comparisons in enumerate(self.task_comparisons)
            for phase, count in sorted(comparisons.items())
        )
        return (
            ("partition", self.partition),
            ("presort", tuple(self.presort_comparisons), self.presort_merge_comparisons),
            tasks,
            ("merge", self.merge_comparisons),
        )


def _sort_task(payload) -> tuple[dict[str, np.ndarray], int]:
    """Sort one padded shard's real rows by ``(j, d)`` (worker side).

    Store-backed shards arrive as block refs; ``resolve_payload`` faults
    their plan-named blocks in through this process's store handle.
    """
    j, d, real = resolve_payload(payload)
    counter = [0]
    columns = vector_bitonic_sort(
        {"j": j[:real].copy(), "d": d[:real].copy()}, PRESORT_KEYS, counter=counter
    )
    return columns, counter[0]


def _join_task(payload) -> tuple[np.ndarray, dict[str, int]]:
    """One grid cell: join a left shard with a right shard (worker side).

    The payload carries padded column arrays plus the public real counts;
    slicing off the padding reveals nothing because the counts are part of
    the partition plan.  Returns the keyed ``(m_ij, 3)`` output run (sorted
    by ``(j, left_rank, d2)``) and the task's comparator counts.  Under
    padded execution ``task_target`` is the cell's public bound
    ``lreal * rreal`` (a ``grid_join`` plan node) and the run comes back
    padded to exactly that size.
    """
    lj, ld, lreal, rj, rd, rreal, task_target = resolve_payload(payload)
    left = np.stack([lj[:lreal], ld[:lreal]], axis=1)
    right = np.stack([rj[:rreal], rd[:rreal]], axis=1)
    keyed, stats = vector_oblivious_join(
        left, right, with_keys=True, target_m=task_target
    )
    return keyed, dict(stats.comparisons_by_phase)


def _expand_segment_task(payload):
    """One ``expand_segment`` plan node as an executor task (worker side).

    Like :func:`_join_task` but producing only the cell's output window
    ``[lo, hi)`` via :func:`~repro.vector.join.vector_join_segment` — a
    contiguous slice of the cell's sorted keyed run, so it is a valid
    tournament leaf as-is.  The worker applies the fused expand-truncate
    bound *before* publishing (the parent cannot truncate a ref tree), and
    counts the window's real rows pre-truncation so the parent's bound
    check sees every over-bound row even though the merge truncates early.
    Returns ``(run_or_refs, segment_name, comparisons, real_rows)`` with
    the same publish contract as :func:`repro.shard.merge.merge_pair_task`.
    """
    lj, ld, lreal, rj, rd, rreal, task_target, lo, hi, truncate, publish = (
        resolve_payload(payload)
    )
    left = np.stack([lj[:lreal], ld[:lreal]], axis=1)
    right = np.stack([rj[:rreal], rd[:rreal]], axis=1)
    keyed, stats = vector_join_segment(left, right, task_target, lo, hi)
    real_rows = int(np.count_nonzero(keyed[:, 1] >= 0))
    run = {
        "j": keyed[:, 0].copy(),
        "d1": keyed[:, 1].copy(),
        "d2": keyed[:, 2].copy(),
    }
    run = truncate_run(run, truncate)
    comparisons = dict(stats.comparisons_by_phase)
    if publish:
        encoded, segment = publish_columns(run)
        return encoded, segment, comparisons, real_rows
    return run, None, comparisons, real_rows


def _sharded_rank_sort(
    pairs, shards: int, executor: Executor, stats: ShardedJoinStats
) -> dict[str, np.ndarray]:
    """Sort ``pairs`` by ``(j, d)``: streamed shard sorts + merge tournament.

    Each shard's sorted run is folded into the tournament the moment its
    sort task completes (no barrier between sort and merge), and the
    tournament's pairwise merges themselves run as executor tasks.  The
    bracket is fixed by the run count, so arrival order cannot change the
    output or the comparator schedule.
    """
    start = time.perf_counter()
    parts = partition_pairs(pairs, shards)
    payloads = [(part.j, part.d, part.real) for part in parts]
    stats.presort_comparisons = [0] * len(payloads)
    counter = [0]
    tournament = StreamingTournament(
        len(payloads), PRESORT_KEYS, executor=executor, counter=counter
    )
    try:
        for index, (columns, count) in completion_stream(
            executor, _sort_task, payloads
        ):
            stats.presort_comparisons[index] = count
            tournament.add(index, columns)
        merged = tournament.result()
    except BaseException:
        tournament.close()
        raise
    stats.presort_merge_comparisons = counter[0]
    # Same split as run_join_grid's tasks/merge: merge work the tournament
    # executed eagerly inside add() (inline submits) is reassembly time,
    # not shard-sort time — without the subtraction the inline executor
    # would double-attribute it and the phase totals would not partition
    # the wall clock.
    fold_seconds = tournament.seconds
    elapsed = time.perf_counter() - start
    stats.seconds_by_phase["presort"] = max(elapsed - fold_seconds, 0.0)
    stats.seconds_by_phase["presort_merge"] = fold_seconds
    return merged


def _check_padded_input(pairs) -> None:
    """Key- and payload-headroom validation for one padded input table."""
    if isinstance(pairs, StorePairs):
        # Stream the reductions block-wise instead of materialising the
        # whole column in trusted memory; same checks, same error text.
        if len(pairs) == 0:
            return
        check_anchor_headroom((pairs.max_j(),))
        check_payload_headroom((pairs.min_d(),))
        return
    array = np.asarray(pairs, dtype=_INT)
    if array.size == 0:
        return
    array = array.reshape(-1, 2)
    check_anchor_headroom((int(array[:, 0].max()),))
    check_payload_headroom((int(array[:, 1].min()),))


def sharded_oblivious_join(
    left,
    right,
    shards: int = 2,
    workers: int = 1,
    stats: ShardedJoinStats | None = None,
    target_m: int | None = None,
    executor: str | Executor | None = None,
    plan: Plan | None = None,
    expand_segments: int | None = None,
) -> tuple[np.ndarray, ShardedJoinStats]:
    """Sharded Algorithm 1; returns ``(pairs, stats)``.

    ``pairs`` is the same ``(m, 2)`` int64 array
    :func:`~repro.vector.join.vector_oblivious_join` produces — bit-identical
    rows in the canonical order — computed as ``shards**2`` independent
    sub-joins on the given executor (``executor=None`` keeps the historical
    rule: inline at ``workers=1``, the shared-memory pool above).

    ``target_m`` selects padded execution: every grid cell is padded to its
    public worst case, the merge tournament truncates at the public bound,
    and the whole schedule (grid, ``task_m``, merge) reveals only
    ``(n1, n2, k, target_m)``.  Like every engine, ``target_m`` is clamped
    to the cross-product worst case ``n1 * n2`` (a public function).

    ``plan`` is the compiled public plan to consume; ``None`` compiles it
    here from the same public values (``sharded_join_plan``) — passing one
    in (as the multiway cascade does per step) is exactly equivalent.

    Under padded execution each grid cell's distribute-expand runs as the
    plan's ``expand_segment`` tasks — independent executor tasks over
    contiguous output windows whose caps come from
    :func:`~repro.plan.partition.expand_segment_plan` (a pure function of
    ``(n1, n2, k, target_m)``), each feeding the streaming output
    tournament directly.  ``expand_segments`` overrides the per-cell
    segment count (``None`` = the shape-driven default).
    """
    executor = resolve_executor(executor, workers=workers)
    stats = stats if stats is not None else ShardedJoinStats()
    stats.shards = shards
    if target_m is not None:
        target_m = check_target_m(target_m, len(left), len(right))
        _check_padded_input(left)
        _check_padded_input(right)
    # Store-backed inputs partition block-aligned; the block size is part
    # of the public shapes the plan is compiled from (it is a store-layout
    # constant, not data), and (None, None) — the all-resident case —
    # collapses to the historical plan bytes.
    blocks = (store_pairs_block_rows(left), store_pairs_block_rows(right))
    block_rows = None if blocks == (None, None) else blocks
    if plan is None:
        plan = sharded_join_plan(
            len(left), len(right), shards, target_m, expand_segments, block_rows
        )
    else:
        # A caller-supplied plan compiled for other shapes would silently
        # mis-drive the grid (the payload/cell zip truncates); fail loudly.
        supplied = tuple(
            plan.shape(name)
            for name in ("n1", "n2", "k", "target", "segments", "block_rows")
        )
        expected = (
            len(left), len(right), shards, target_m, expand_segments, block_rows,
        )
        if supplied != expected:
            raise InputError(
                f"plan compiled for (n1, n2, k, target, segments, block_rows)="
                f"{supplied} cannot drive a join at {expected}"
            )
    stats.plan = plan

    sorted_left = _sharded_rank_sort(left, shards, executor, stats)
    # The grid's public bounds come from the plan, not from the data: one
    # grid_join node per (i, j) cell, row-major — the same order as the
    # payload list grid_join_payloads builds — and, under padded modes,
    # that cell's expand_segment windows.
    cell_targets = [node.attr("target") for node in plan.nodes_by_op("grid_join")]
    segment_windows = (
        expand_segment_windows(plan, shards) if target_m is not None else None
    )
    pairs = run_join_grid(
        sorted_left,
        right,
        shards,
        executor,
        stats,
        target_m,
        cell_targets,
        segment_windows,
    )
    return pairs, stats


def expand_segment_windows(plan: Plan, shards: int) -> list[list[tuple[int, int]]]:
    """Per-cell ``[lo, hi)`` expansion windows from the plan, row-major.

    The plan emits ``expand_segment`` nodes in cell order, segments in
    window order within each cell, so appending preserves the contiguous
    ``lo`` ordering the driver relies on.
    """
    windows: list[list[tuple[int, int]]] = [[] for _ in range(shards * shards)]
    for node in plan.nodes_by_op("expand_segment"):
        i, j = node.attr("cell")
        windows[i * shards + j].append((node.attr("lo"), node.attr("hi")))
    return windows


def grid_join_payloads(
    sorted_left: dict[str, np.ndarray],
    right,
    shards: int,
    cell_targets,
    stats: ShardedJoinStats,
) -> list:
    """Partition the ranked left table and the right side into the k*k grid.

    ``sorted_left`` is the ``(j, d)``-sorted left table (the presort's
    output); ranks are its positions.  Returns one ``_join_task`` payload
    per grid cell, row-major, with the cells' public output bounds zipped
    in from ``cell_targets`` (one per cell, ``None`` = unpadded).  This is
    the seam the pipeline driver reuses to stream grid results into a
    *different* consumer than the join's own output tournament.
    """
    start = time.perf_counter()
    n1 = len(sorted_left["j"])
    ranked_left = np.stack(
        [sorted_left["j"], np.arange(n1, dtype=_INT)], axis=1
    )
    left_parts = partition_pairs(ranked_left, shards)
    right_parts = partition_pairs(right, shards)
    n2 = sum(part.real for part in right_parts)
    # ranked_left is always resident (the presort materialised it), so its
    # plan is the standard row-aligned one; the right side reports the
    # block-aligned plan when it is store-backed.
    stats.partition = (
        pairs_partition_plan(ranked_left, shards),
        pairs_partition_plan(right, shards),
    )
    payloads = [
        (lp.j, lp.d, lp.real, rp.j, rp.d, rp.real, target)
        for (lp, rp), target in zip(
            ((lp, rp) for lp in left_parts for rp in right_parts), cell_targets
        )
    ]
    stats.seconds_by_phase["partition"] = time.perf_counter() - start
    return payloads


def run_join_grid(
    sorted_left: dict[str, np.ndarray],
    right,
    shards: int,
    executor: Executor,
    stats: ShardedJoinStats,
    target_m: int | None,
    cell_targets,
    segment_windows=None,
) -> np.ndarray:
    """Run the k*k grid over ``executor`` and reassemble the join output.

    The post-presort half of :func:`sharded_oblivious_join`, callable with
    an externally produced ``sorted_left`` — the pipeline driver feeds it
    the merged output of a *streamed* upstream stage (e.g. per-block
    filtered runs) without materialising an intermediate table first.
    Returns the ``(m, 2)`` pairs array.

    ``segment_windows`` (per cell, row-major, from
    :func:`expand_segment_windows`) switches the padded grid to segmented
    expansion: every window dispatches as its own ``_expand_segment_task``
    and its sorted sub-run is one tournament leaf, so no whole-cell
    barrier exists between a skewed cell's expansion and the merge.
    ``None`` (or unpadded execution, whose revealed cell sizes must not be
    split at data-dependent points) runs whole cells.
    """
    payloads = grid_join_payloads(sorted_left, right, shards, cell_targets, stats)
    segmented = segment_windows is not None and target_m is not None
    if segmented:
        # Workers publish their sub-runs on remote executors, exactly like
        # the merge rounds: only ref trees cross back to the parent.
        publish = bool(getattr(executor, "remote_submit", False))
        task_payloads = []
        windows_flat = []
        for cell_payload, windows in zip(payloads, segment_windows):
            for lo, hi in windows:
                task_payloads.append((*cell_payload, lo, hi, target_m, publish))
                windows_flat.append((lo, hi))
    else:
        task_payloads = payloads

    # Grid tasks stream into the merge tournament as they complete: the
    # bracket (and with it the comparator schedule) is fixed by the plan's
    # merge_pair nodes — a pure function of (n1, n2, k, target) — so the
    # completion order the executor happens to produce is scheduling
    # jitter, not schedule.  Pairwise merges run as executor tasks too,
    # overlapping reassembly with still-running grid cells.
    start = time.perf_counter()
    stats.task_comparisons = [{} for _ in task_payloads]
    stats.task_m = [0] * len(task_payloads)
    real_rows = 0
    counter = [0]
    tournament = StreamingTournament(
        len(task_payloads),
        MERGE_KEYS,
        executor=executor,
        counter=counter,
        truncate=target_m,
    )
    try:
        if segmented:
            for index, (run, segment, comparisons, task_real) in completion_stream(
                executor, _expand_segment_task, task_payloads
            ):
                stats.task_comparisons[index] = comparisons
                lo, hi = windows_flat[index]
                stats.task_m[index] = min(hi - lo, target_m)
                # Bound-check input: counted worker-side from the window
                # *before* the fused truncation, so streaming the merge
                # early cannot hide over-bound rows (see _join_task's
                # branch below).
                real_rows += task_real
                tournament.add_published(index, run, segment)
        else:
            for index, (keyed, comparisons) in completion_stream(
                executor, _join_task, task_payloads
            ):
                stats.task_comparisons[index] = comparisons
                stats.task_m[index] = len(keyed)
                if target_m is not None:
                    # Client-side bound check input (no trace impact):
                    # every real row carries a rank >= 0, dummies carry
                    # -1.  Counted from the untruncated grid outputs, so
                    # streaming the (truncating) merge early cannot hide
                    # over-bound rows.
                    real_rows += int(np.count_nonzero(keyed[:, 1] >= 0))
                tournament.add(
                    index,
                    {"j": keyed[:, 0], "d1": keyed[:, 1], "d2": keyed[:, 2]},
                )
        # Merge work executed eagerly inside add() (inline submits) is
        # tournament time, not grid time — split it out so the reported
        # merge phase covers the reassembly on every executor, not just
        # the drain tail of the remote ones.
        fold_seconds = tournament.seconds
        stats.seconds_by_phase["tasks"] = max(
            time.perf_counter() - start - fold_seconds, 0.0
        )
        stats.m = sum(stats.task_m) if target_m is None else target_m

        start = time.perf_counter()
        if target_m is not None:
            exceeds_bound(real_rows, target_m)
        merged = tournament.result()
    except BaseException:
        tournament.close()
        raise
    stats.merge_comparisons = counter[0]

    if target_m is not None:
        # All real rows sort before the anchor-keyed dummies, so keeping
        # the first target_m merged rows is a public truncation (the
        # tournament already applied it round by round); the dummy ranks
        # (-1) must not index the gather below.
        merged = truncate_run(merged, target_m)
        ranks = merged["d1"]
        real = ranks >= 0
        gathered = np.where(
            real, sorted_left["d"][np.where(real, ranks, 0)], DUMMY_HANDLE
        )
        pairs = np.stack([gathered, merged["d2"]], axis=1)
    elif stats.m == 0:
        pairs = np.zeros((0, 2), dtype=_INT)
    else:
        # The merged d1 column holds left *ranks*; gather the data values
        # back through them (client-side handle gather, as in multiway).
        pairs = np.stack([sorted_left["d"][merged["d1"]], merged["d2"]], axis=1)
    stats.seconds_by_phase["merge"] = time.perf_counter() - start + fold_seconds
    return pairs
