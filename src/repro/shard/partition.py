"""The oblivious partitioner: equal, padded shards sized by ``(n, k)`` only.

Rows are assigned to shards by *position* — shard ``i`` receives the ``i``-th
contiguous block of the input — so shard membership is independent of every
key and payload byte.  Each shard is then padded with zero rows up to the
common capacity ``ceil(n / k)``, which makes every shard (and therefore every
message the executor ships to a worker process) the exact same shape for a
given ``(n, k)``.

The number of *real* rows per shard is also a pure function of ``(n, k)``:
the first ``n mod k`` shards carry ``ceil(n / k)`` rows, the rest
``floor(n / k)``.  Those counts are public — they are part of the partition
plan the obliviousness tests pin — so a worker slicing its shard back to the
real rows before running the join reveals nothing the plan did not already.

Position-based partitioning deliberately avoids key-based (hash/range)
partitioning: a key-partitioned shard's load is a function of the key
distribution, and padding it to a data-independent capacity while staying
*correct* under adversarial skew (every key in one shard) forces the
capacity up to ``n``.  The price of the positional scheme is that a binary
join must run the full ``k x k`` grid of shard pairs; see
:mod:`repro.shard.join`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InputError
from ..plan.partition import (  # noqa: F401 (re-exports: the pure plan half)
    block_aligned_partition_plan,
    check_shards,
    partition_plan,
    shard_capacity,
    shard_counts,
)
from ..store.runtime import StorePairs

_INT = np.int64


@dataclass(frozen=True)
class ShardPart:
    """One padded shard: capacity-sized column arrays plus the real count.

    ``j``/``d`` always have length ``capacity``; rows past ``real`` are
    zero padding that exists only to keep shard shapes data-independent.
    """

    j: np.ndarray
    d: np.ndarray
    real: int

    @property
    def capacity(self) -> int:
        return len(self.j)

    def rows(self) -> np.ndarray:
        """The real rows as an ``(real, 2)`` array (padding stripped)."""
        return np.stack([self.j[: self.real], self.d[: self.real]], axis=1)


def partition_columns(
    columns: dict[str, np.ndarray], k: int
) -> list[tuple[dict[str, np.ndarray], int]]:
    """Split a struct-of-arrays table into ``k`` equal, padded blocks.

    The single owner of the padding invariant: block ``i`` holds the
    ``i``-th contiguous run of rows, zero-padded (in each column's dtype)
    to the common capacity.  Returns ``(block, real_count)`` pairs; every
    shape is a function of ``(n, k)`` only.
    """
    n = len(next(iter(columns.values())))
    capacity, counts = partition_plan(n, k)
    blocks: list[tuple[dict[str, np.ndarray], int]] = []
    offset = 0
    for real in counts:
        block = {}
        for name, column in columns.items():
            padded = np.zeros(capacity, dtype=column.dtype)
            padded[:real] = column[offset : offset + real]
            block[name] = padded
        blocks.append((block, real))
        offset += real
    return blocks


#: The installed cross-query partition cache, or ``None`` (partition fresh
#: on every call).  A cache implements ``lookup_parts(array, k)`` /
#: ``offer_parts(array, k, parts)`` and only ever acts on arrays it itself
#: registered as stable sources (the service layer's encoded key columns),
#: so ad-hoc callers pay one dict miss and nothing else.
_PARTITION_CACHE = None


def set_partition_cache(cache):
    """Install (or, with ``None``, clear) the partition cache; returns the
    previous one so the service layer can restore it on shutdown."""
    global _PARTITION_CACHE
    previous = _PARTITION_CACHE
    _PARTITION_CACHE = cache
    return previous


def pairs_partition_plan(pairs, k: int) -> tuple[int, tuple[int, ...]]:
    """The public partition plan actually used for this pairs input.

    Store-backed inputs partition block-aligned (whole blocks per shard,
    f(n, k, block_rows)); resident inputs row-aligned (f(n, k)).  The
    driver reports this plan in its stats so the pinned schedule matches
    what ran.
    """
    if isinstance(pairs, StorePairs):
        return block_aligned_partition_plan(len(pairs), k, pairs.block_rows)
    return partition_plan(len(pairs), k)


def partition_pairs(pairs, k: int) -> list[ShardPart]:
    """Split a ``(j, d)`` pairs table into ``k`` equal, padded shards.

    Accepts the same inputs as the vector engine (a sequence of int pairs or
    an ``(n, 2)`` array).  With a partition cache installed, shards of a
    registered source array are computed once per ``(array, k)`` and reused
    across queries — the parts are never mutated by consumers (tasks copy
    before sorting), so reuse cannot change any output.

    A :class:`~repro.store.StorePairs` input takes the out-of-core path:
    the shards come back as **block-aligned** parts whose ``j``/``d`` are
    :class:`~repro.store.StoreBlocksRef` leaves naming exactly the plan's
    block ids — no column bytes are read here; the task that receives a
    part faults its blocks in through its own store handle.  Such parts
    are cheap on-demand descriptors, so the partition cache is bypassed.
    """
    if isinstance(pairs, StorePairs):
        check_shards(k)
        return [
            ShardPart(j=j_ref, d=d_ref, real=real)
            for j_ref, d_ref, real in pairs.shard_parts(k)
        ]
    array = np.asarray(pairs, dtype=_INT)
    if array.size == 0:
        array = array.reshape(0, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise InputError("input tables must be sequences of (j, d) pairs")
    cache = _PARTITION_CACHE
    if cache is not None:
        parts = cache.lookup_parts(array, k)
        if parts is not None:
            return list(parts)
    parts = [
        ShardPart(j=block["j"], d=block["d"], real=real)
        for block, real in partition_columns(
            {"j": array[:, 0], "d": array[:, 1]}, k
        )
    ]
    if cache is not None:
        cache.offer_parts(array, k, parts)
    return parts
