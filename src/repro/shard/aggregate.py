"""Sharded oblivious grouped aggregation (join-aggregate and GROUP BY).

Aggregation decomposes over positional shards far more cheaply than the
join: every aggregate the engine supports (count/sum/min/max and the
products derived from them) is associative, so shard ``i`` only has to
aggregate *its own* block of each input and ship one accumulator row per
key it saw.  The parent then combines the partial accumulators with the
same sort -> segmented-reduce -> compact pipeline the vector engine uses:

1. ``k`` tasks, each sorting its ``~n/k``-cell shard by ``(j, tid)`` and
   segment-reducing per-key ``(count, sum, min, max)`` partials,
2. one bitonic sort of the concatenated partial rows by ``j``,
3. a segmented reduction summing counts/sums and folding mins/maxes, and
4. a bitonic compaction dropping keys that do not survive the filter
   (both sides present for the join-aggregate; any row for GROUP BY).

Total comparator work is ``k * (n/k) log^2 (n/k)`` for the shard sorts —
*less* than the single-shot ``n log^2 n`` — plus the combine on the partial
table.  Revealed: the per-shard partial group counts (how many distinct
keys each position block holds) and the final group count ``g``; the former
is the sharded analogue of the multiway cascade's intermediate sizes.
With ``padded=True`` each shard's partial table is padded to its public
worst case (the block's row count — a block cannot hold more distinct keys
than rows) with neutral anchor-keyed dummies that the combine's own filter
compacts away, so only ``(n1, n2, k)`` and the final ``g`` are revealed —
the same padded story the join's ``m_ij`` grid folds into.

Outputs are bit-identical to :mod:`repro.vector.aggregate` — asserted by
the cross-engine differential suite — including the refusal of inputs whose
data values could overflow an int64 column sum.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.aggregate import GroupAggregate
from ..core.padding import ANCHOR_KEY, check_anchor_headroom
from ..errors import InputError
from ..plan.compile import sharded_aggregate_plan
from ..plan.executors import Executor, completion_stream, resolve_executor
from ..plan.ir import Plan
from ..vector.sort import vector_bitonic_sort
from .partition import partition_pairs, partition_plan

_INT = np.int64
_INT_MAX = np.iinfo(np.int64).max
_INT_MIN = np.iinfo(np.int64).min

#: Accumulator columns each partial-aggregation task emits, one row per key.
_PARTIAL_COLUMNS = ("j", "c1", "c2", "s1", "s2", "mn1", "mx1", "mn2", "mx2")


@dataclass
class ShardedAggregateStats:
    """Cost/schedule record of one sharded aggregation."""

    shards: int = 1
    plan: Plan | None = None
    partition: tuple = ()
    task_comparisons: list[int] = field(default_factory=list)
    partial_group_counts: list[int] = field(default_factory=list)
    combine_comparisons: int = 0
    seconds_by_phase: dict[str, float] = field(default_factory=dict)
    groups: int = 0

    @property
    def total_comparisons(self) -> int:
        return sum(self.task_comparisons) + self.combine_comparisons

    @property
    def schedule(self) -> tuple:
        """Partition plan, per-task comparator counts, combine comparators.

        A function of ``(n1, n2, k)`` and the revealed partial group counts
        only — pinned by the obliviousness suite.
        """
        return (
            ("partition", self.partition),
            tuple(enumerate(self.task_comparisons)),
            ("combine", self.combine_comparisons),
        )


def _overflow_guard(d_columns: list[np.ndarray], n: int) -> None:
    """Refuse inputs whose n-term int64 sums could wrap (mirrors vector)."""
    limit = _INT_MAX // max(n, 1)
    for column in d_columns:
        if column.size and (column.max() > limit or column.min() < -limit):
            raise InputError(
                f"data values exceed the vector engine's overflow-safe range "
                f"(|d| <= {limit} at n = {n}); use the traced engine"
            )


def _segment_starts(j: np.ndarray) -> np.ndarray:
    return np.flatnonzero(np.concatenate([[True], j[1:] != j[:-1]]))


def _pad_partials(
    partials: dict[str, np.ndarray], pad_to: int
) -> dict[str, np.ndarray]:
    """Pad a shard's partial table to its public bound with neutral rows.

    Dummy partials carry the anchor key (sorts after every real key), zero
    counts/sums, and min/max identity elements, so the combine's segmented
    reduction and presence filter eliminate them without a dedicated path.
    """
    extra = pad_to - len(partials["j"])
    neutral = {
        "j": ANCHOR_KEY, "c1": 0, "c2": 0, "s1": 0, "s2": 0,
        "mn1": _INT_MAX, "mx1": _INT_MIN, "mn2": _INT_MAX, "mx2": _INT_MIN,
    }
    return {
        name: np.concatenate(
            [partials[name], np.full(extra, neutral[name], dtype=_INT)]
        )
        for name in _PARTIAL_COLUMNS
    }


def _aggregate_task(payload) -> tuple[dict[str, np.ndarray], int]:
    """One shard: sort the block by ``(j, tid)``, emit per-key partials.

    ``pad_to`` (``None`` when revealing) pads the emitted partial table to
    the block's public row count, hiding how many distinct keys it held.
    """
    lj, ld, lreal, rj, rd, rreal, pad_to = payload
    j = np.concatenate([lj[:lreal], rj[:rreal]])
    d = np.concatenate([ld[:lreal], rd[:rreal]])
    tid = np.concatenate(
        [np.ones(lreal, dtype=_INT), np.full(rreal, 2, dtype=_INT)]
    )
    if len(j) == 0:
        empty = {name: np.zeros(0, dtype=_INT) for name in _PARTIAL_COLUMNS}
        return empty, 0

    counter = [0]
    columns = vector_bitonic_sort(
        {"j": j, "d": d, "tid": tid}, [("j", True), ("tid", True)], counter=counter
    )
    j, d, tid = columns["j"], columns["d"], columns["tid"]
    starts = _segment_starts(j)
    is_left = tid == 1
    partials = {
        "j": j[starts],
        "c1": np.add.reduceat(is_left.astype(_INT), starts),
        "c2": np.add.reduceat((~is_left).astype(_INT), starts),
        "s1": np.add.reduceat(np.where(is_left, d, 0), starts),
        "s2": np.add.reduceat(np.where(is_left, 0, d), starts),
        "mn1": np.minimum.reduceat(np.where(is_left, d, _INT_MAX), starts),
        "mx1": np.maximum.reduceat(np.where(is_left, d, _INT_MIN), starts),
        "mn2": np.minimum.reduceat(np.where(is_left, _INT_MAX, d), starts),
        "mx2": np.maximum.reduceat(np.where(is_left, _INT_MIN, d), starts),
    }
    if pad_to is not None:
        partials = _pad_partials(partials, pad_to)
    return partials, counter[0]


def _combine_partials(
    partial_tables: list[dict[str, np.ndarray]],
    left_only: bool,
    stats: ShardedAggregateStats,
) -> list[GroupAggregate]:
    """Sort + segment-reduce + compact the shards' partial accumulators."""
    start = time.perf_counter()
    concat = {
        name: np.concatenate([table[name] for table in partial_tables])
        for name in _PARTIAL_COLUMNS
    }
    if len(concat["j"]) == 0:
        stats.seconds_by_phase["combine"] = time.perf_counter() - start
        return []

    counter = [0]
    concat = vector_bitonic_sort(concat, [("j", True)], counter=counter)
    starts = _segment_starts(concat["j"])
    combined = {
        "j": concat["j"][starts],
        "c1": np.add.reduceat(concat["c1"], starts),
        "c2": np.add.reduceat(concat["c2"], starts),
        "s1": np.add.reduceat(concat["s1"], starts),
        "s2": np.add.reduceat(concat["s2"], starts),
        "mn1": np.minimum.reduceat(concat["mn1"], starts),
        "mx1": np.maximum.reduceat(concat["mx1"], starts),
        "mn2": np.minimum.reduceat(concat["mn2"], starts),
        "mx2": np.maximum.reduceat(concat["mx2"], starts),
    }
    keep = combined["c1"] > 0 if left_only else (combined["c1"] > 0) & (combined["c2"] > 0)
    combined["null"] = (~keep).astype(_INT)
    combined = vector_bitonic_sort(
        combined, [("null", True), ("j", True)], counter=counter
    )
    groups = int(keep.sum())
    stats.combine_comparisons = counter[0]
    stats.groups = groups
    stats.seconds_by_phase["combine"] = time.perf_counter() - start

    return [
        GroupAggregate(
            j=int(combined["j"][i]),
            count1=int(combined["c1"][i]),
            count2=0 if left_only else int(combined["c2"][i]),
            sum_d1=int(combined["s1"][i]),
            sum_d2=0 if left_only else int(combined["s2"][i]),
            min_d1=int(combined["mn1"][i]),
            max_d1=int(combined["mx1"][i]),
            min_d2=0 if left_only else int(combined["mn2"][i]),
            max_d2=0 if left_only else int(combined["mx2"][i]),
        )
        for i in range(groups)
    ]


def _run_sharded_aggregation(
    left,
    right,
    shards: int,
    workers: int,
    left_only: bool,
    stats: ShardedAggregateStats,
    padded: bool = False,
    executor: str | Executor | None = None,
) -> list[GroupAggregate]:
    executor = resolve_executor(executor, workers=workers)
    stats.shards = shards

    start = time.perf_counter()
    left_parts = partition_pairs(left, shards)
    right_parts = partition_pairs(right, shards)
    n1 = sum(part.real for part in left_parts)
    n2 = sum(part.real for part in right_parts)
    if n1 + n2 == 0:
        return []
    _overflow_guard(
        [part.d[: part.real] for part in left_parts + right_parts], n1 + n2
    )
    if padded:
        check_anchor_headroom(
            int(part.j[: part.real].max())
            for part in left_parts + right_parts
            if part.real
        )
    stats.partition = (partition_plan(n1, shards), partition_plan(n2, shards))
    # Per-shard input sizes and padded partial-table bounds come from the
    # compiled plan (pure f(n1, n2, k)); the data only fills the slots.
    plan = sharded_aggregate_plan(
        "group_by" if left_only else "aggregate", n1, n2, shards, padded
    )
    stats.plan = plan
    pads = [node.attr("pad") for node in plan.nodes_by_op("partial_aggregate")]
    payloads = [
        (lp.j, lp.d, lp.real, rp.j, rp.d, rp.real, pad)
        for (lp, rp), pad in zip(zip(left_parts, right_parts), pads)
    ]
    stats.seconds_by_phase["partition"] = time.perf_counter() - start

    start = time.perf_counter()
    # Partial tables land in their shard slot as tasks complete (the
    # ordered-completion seam); the combine's concatenation order — and
    # with it the output — is fixed by shard index, not arrival order.
    results: list[tuple[dict, int] | None] = [None] * len(payloads)
    for index, value in completion_stream(executor, _aggregate_task, payloads):
        results[index] = value
    stats.seconds_by_phase["tasks"] = time.perf_counter() - start
    stats.task_comparisons = [comparisons for _, comparisons in results]
    stats.partial_group_counts = [len(partials["j"]) for partials, _ in results]

    return _combine_partials(
        [partials for partials, _ in results], left_only, stats
    )


def sharded_join_aggregate(
    left,
    right,
    shards: int = 2,
    workers: int = 1,
    stats: ShardedAggregateStats | None = None,
    padded: bool = False,
    executor: str | Executor | None = None,
) -> list[GroupAggregate]:
    """Sharded counterpart of :func:`repro.vector.aggregate.vector_join_aggregate`.

    One :class:`~repro.core.aggregate.GroupAggregate` per join value present
    in *both* tables, ordered by join value — bit-identical to the vector
    and traced engines.  ``padded=True`` hides the per-shard partial group
    counts (each partial table ships at its public worst-case size).
    """
    stats = stats if stats is not None else ShardedAggregateStats()
    return _run_sharded_aggregation(
        left,
        right,
        shards,
        workers,
        left_only=False,
        stats=stats,
        padded=padded,
        executor=executor,
    )


def sharded_group_by(
    table,
    shards: int = 2,
    workers: int = 1,
    stats: ShardedAggregateStats | None = None,
    padded: bool = False,
    executor: str | Executor | None = None,
) -> list[GroupAggregate]:
    """Sharded counterpart of :func:`repro.vector.aggregate.vector_group_by`."""
    stats = stats if stats is not None else ShardedAggregateStats()
    return _run_sharded_aggregation(
        table,
        [],
        shards,
        workers,
        left_only=True,
        stats=stats,
        padded=padded,
        executor=executor,
    )
