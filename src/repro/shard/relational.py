"""Sharded FILTER and ORDER BY: per-block tasks plus an oblivious merge.

Both relational operators decompose over positional shards:

``filter``
    Compaction is order-preserving and blocks are positional, so compacting
    each block independently and concatenating the survivor indices (block
    offsets are public) *is* the global order-preserving compaction.  ``k``
    tasks of ``~n/k`` cells replace one ``n``-cell network — strictly less
    comparator work, embarrassingly parallel.

    Unpadded, each block's survivor list ships at its true length — the
    per-shard survivor *counts* are a finer reveal than the public total.
    ``padded=True`` closes that (the last ROADMAP residual): every block's
    survivor indices are padded to the block *capacity* with a
    :data:`~repro.core.padding.DUMMY_HANDLE`-tagged tail, so every message
    has the ``(n, k)``-determined shape and the parent compacts the tags
    away client-side.  Only the global survivor count (public in every
    engine, like ``m_final``) is revealed.

``order_by``
    The order-by contract is a *stable* sort (original position is the
    final tiebreak key — see :mod:`repro.vector.relational`), which makes
    the ordering total.  Each shard sorts its block into a run, and the
    streaming merge tournament of :mod:`repro.shard.merge` folds each run
    in the moment its sort task completes, reassembling the exact global
    permutation without a barrier between the sorts and the merge.

Per-task schedules depend only on the partition plan; the merge schedule
(the plan's ``merge_pair`` bracket) only on the (public) block sizes —
never on the order tasks happen to finish in.  Both drivers compile their
public plan (:mod:`repro.plan.compile`) up front, consume the block shapes
from it, and fold results off the executor's ordered-completion seam
(:func:`repro.plan.executors.completion_stream`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.padding import DUMMY_HANDLE
from ..plan.compile import sharded_filter_plan, sharded_order_plan
from ..plan.executors import Executor, completion_stream, resolve_executor
from ..vector.relational import order_columns, vector_filter_indices
from ..vector.sort import vector_bitonic_sort
from .merge import StreamingTournament
from .partition import partition_columns


def _filter_task(payload) -> list[int]:
    """Survivor indices of one block; padded to ``pad`` with tagged slots."""
    block, real, pad = payload
    kept = vector_filter_indices(block["mask"][:real])
    if pad is not None:
        kept = kept + [DUMMY_HANDLE] * (pad - len(kept))
    return kept


def sharded_filter_indices(
    mask: Sequence[bool],
    shards: int = 2,
    workers: int = 1,
    padded: bool = False,
    executor: str | Executor | None = None,
) -> list[int]:
    """Indices of the true cells of ``mask`` via per-shard compaction.

    ``padded=True`` pads every block's survivor list to the block capacity
    (tagged tail, compacted here client-side), hiding the per-shard
    survivor counts; the result is bit-identical either way.
    """
    executor = resolve_executor(executor, workers=workers)
    flags = np.asarray(mask, dtype=bool)
    plan = sharded_filter_plan(len(flags), shards, padded)
    pads = [node.attr("pad") for node in plan.nodes_by_op("block_filter")]
    payloads = [
        (block, real, pad)
        for (block, real), pad in zip(partition_columns({"mask": flags}, shards), pads)
    ]
    # Blocks complete in any order; each lands in its slot by index, so
    # the concatenation below is arrival-order independent.
    results: list[list[int] | None] = [None] * len(payloads)
    for index, block in completion_stream(executor, _filter_task, payloads):
        results[index] = block
    kept: list[int] = []
    offset = 0
    for (_, real, _), block in zip(payloads, results):
        kept.extend(
            offset + index for index in block if index != DUMMY_HANDLE
        )
        offset += real
    return kept


def _order_task(payload) -> dict[str, np.ndarray]:
    """Sort one shard's block into a run keyed by ``(columns..., position)``."""
    work, keys, real = payload
    sliced = {name: column[:real] for name, column in work.items()}
    return vector_bitonic_sort(sliced, keys)


def sharded_order_permutation(
    columns: Sequence[tuple[Sequence[int], bool]],
    n: int,
    shards: int = 2,
    workers: int = 1,
    executor: str | Executor | None = None,
) -> list[int]:
    """The stable sort permutation, computed shard-by-shard then merged.

    Raises :class:`~repro.errors.InputError` for non-int64 key columns, like
    the vector path — callers fall back to the traced engine.
    """
    executor = resolve_executor(executor, workers=workers)
    if n <= 1:
        return list(range(n))
    table, keys = order_columns(columns, n)
    # Per-shard real counts come from the compiled plan, like the filter's
    # pad sizes and the join's grid bounds.
    plan = sharded_order_plan(n, shards)
    counts = [node.attr("rows") for node in plan.nodes_by_op("shard_sort")]
    payloads = [
        (block, keys, rows)
        for (block, _), rows in zip(partition_columns(table, shards), counts)
    ]
    tournament = StreamingTournament(len(payloads), keys, executor=executor)
    try:
        for index, run in completion_stream(executor, _order_task, payloads):
            tournament.add(index, run)
        merged = tournament.result()
    except BaseException:
        tournament.close()
        raise
    return merged["pos"].tolist()
