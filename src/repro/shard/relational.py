"""Sharded FILTER and ORDER BY: per-block tasks plus an oblivious merge.

Both relational operators decompose over positional shards:

``filter``
    Compaction is order-preserving and blocks are positional, so compacting
    each block independently and concatenating the survivor indices (block
    offsets are public) *is* the global order-preserving compaction.  ``k``
    tasks of ``~n/k`` cells replace one ``n``-cell network — strictly less
    comparator work, embarrassingly parallel.

``order_by``
    The order-by contract is a *stable* sort (original position is the
    final tiebreak key — see :mod:`repro.vector.relational`), which makes
    the ordering total.  Each shard sorts its block into a run, and the
    bitonic merge tournament of :mod:`repro.shard.merge` reassembles the
    exact global permutation.

Per-task schedules depend only on the partition plan; the merge schedule
only on the (public) block sizes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..vector.relational import order_columns, vector_filter_indices
from ..vector.sort import vector_bitonic_sort
from .executor import check_workers, run_tasks
from .merge import oblivious_merge_runs
from .partition import partition_columns


def _filter_task(payload) -> list[int]:
    block, real = payload
    return vector_filter_indices(block["mask"][:real])


def sharded_filter_indices(
    mask: Sequence[bool], shards: int = 2, workers: int = 1
) -> list[int]:
    """Indices of the true cells of ``mask`` via per-shard compaction."""
    check_workers(workers)
    flags = np.asarray(mask, dtype=bool)
    payloads = partition_columns({"mask": flags}, shards)
    results = run_tasks(_filter_task, payloads, workers=workers)
    kept: list[int] = []
    offset = 0
    for (_, real), block in zip(payloads, results):
        kept.extend(offset + index for index in block)
        offset += real
    return kept


def _order_task(payload) -> dict[str, np.ndarray]:
    """Sort one shard's block into a run keyed by ``(columns..., position)``."""
    work, keys, real = payload
    sliced = {name: column[:real] for name, column in work.items()}
    return vector_bitonic_sort(sliced, keys)


def sharded_order_permutation(
    columns: Sequence[tuple[Sequence[int], bool]],
    n: int,
    shards: int = 2,
    workers: int = 1,
) -> list[int]:
    """The stable sort permutation, computed shard-by-shard then merged.

    Raises :class:`~repro.errors.InputError` for non-int64 key columns, like
    the vector path — callers fall back to the traced engine.
    """
    check_workers(workers)
    if n <= 1:
        return list(range(n))
    table, keys = order_columns(columns, n)
    payloads = [
        (block, keys, real) for block, real in partition_columns(table, shards)
    ]
    runs = run_tasks(_order_task, payloads, workers=workers)
    merged = oblivious_merge_runs(runs, keys)
    return merged["pos"].tolist()
