"""Sharded multi-process execution of the oblivious workloads.

The subsystem behind the ``sharded`` engine (:mod:`repro.engines.sharded`):

:mod:`~repro.shard.partition`
    Oblivious positional partitioner — ``k`` equal shards padded to a
    capacity that is a function of ``(n, k)`` only (the pure plan half
    lives in :mod:`repro.plan.partition`).
:mod:`~repro.shard.executor`
    Back-compat shim; the executor layer (inline / shared-memory pool /
    async) lives in :mod:`repro.plan.executors` now.
:mod:`~repro.shard.merge`
    Bitonic merge tournament + padding compaction that reassembles sorted
    sub-results into the engines' canonical order.
:mod:`~repro.shard.join` / :mod:`~repro.shard.aggregate` /
:mod:`~repro.shard.multiway` / :mod:`~repro.shard.relational`
    The sharded workloads themselves, each bit-identical to the vector
    engine and validated by the cross-engine differential suite.  Every
    driver compiles its public plan (:mod:`repro.plan.compile`) before
    touching data and consumes the plan's node attributes for all padded
    bounds; tasks dispatch through a pluggable executor.
:mod:`~repro.shard.pipeline`
    Streaming query-DAG execution — whole operator chains run as one
    compiled plan whose inter-operator edges are streaming block channels
    (``tests/test_pipeline.py`` pins bit-identity with the
    operator-at-a-time path).
"""

from .aggregate import (
    ShardedAggregateStats,
    sharded_group_by,
    sharded_join_aggregate,
)
from .executor import run_tasks
from .join import ShardedJoinStats, sharded_oblivious_join
from .merge import bitonic_merge_two, merge_comparator_count, oblivious_merge_runs
from .multiway import ShardedMultiwayStats, sharded_multiway_join
from .partition import ShardPart, partition_pairs, partition_plan
from .pipeline import (
    PipelineResult,
    PipelineStats,
    check_pipeline_stages,
    streamed_pipeline,
)
from .relational import sharded_filter_indices, sharded_order_permutation

__all__ = [
    "PipelineResult",
    "PipelineStats",
    "ShardPart",
    "ShardedAggregateStats",
    "ShardedJoinStats",
    "ShardedMultiwayStats",
    "bitonic_merge_two",
    "check_pipeline_stages",
    "merge_comparator_count",
    "oblivious_merge_runs",
    "partition_pairs",
    "partition_plan",
    "run_tasks",
    "sharded_filter_indices",
    "sharded_group_by",
    "sharded_join_aggregate",
    "sharded_multiway_join",
    "sharded_oblivious_join",
    "sharded_order_permutation",
    "streamed_pipeline",
]
