"""Oblivious query operators over :class:`~repro.db.table.DBTable`.

An :class:`ObliviousEngine` wires the relational layer to the oblivious
core: join keys are dictionary-encoded to ints, row payloads travel through
the oblivious operators as opaque handles (indices into the client-side row
catalogue), and every data-dependent rearrangement happens inside an
oblivious primitive.  What the adversary sees is the primitives' traces —
determined by table sizes and (deliberately revealed) result sizes only.

Every relational operator — join, multiway join, group-by, join-aggregate,
filter, order-by — runs on a pluggable execution engine from
:mod:`repro.engines` (``engine="traced"`` for the per-access-traced
reference, ``engine="vector"`` for the numpy fast path, ``engine="sharded"``
for the multi-process scale-out path; results are identical).  Engine knobs
pass straight through — including the sharded engine's execution substrate:
``ObliviousEngine(engine="sharded", workers=4, executor="pool")`` (or
``executor="async"``; see :mod:`repro.plan.executors`).
``order_by`` is a *stable* sort (original row order breaks ties), which is
what keeps the permutation identical across engines.

Padded execution rides the same knobs:
``ObliviousEngine(engine="vector", padding="worst_case")`` (or
``padding="bounded", bound=...``) hides every intermediate size of
:meth:`ObliviousEngine.multiway_join` behind public bounds and pads single
joins to their bound too; the relational layer compacts the tagged dummy
rows out, so results stay bit-identical while only the *final* output size
is revealed.  See :mod:`repro.core.padding` and ``docs/leakage.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.padding import compact_pairs
from ..engines import Engine, get_engine
from ..errors import SchemaError
from ..memory.tracer import Tracer
from ..shard.pipeline import PipelineStats
from .encoding import DictionaryEncoder
from .encoding_cache import EncodingCache
from .schema import Schema
from .table import DBTable, require_int_column


@dataclass
class PipelineQueryResult:
    """Result of :meth:`ObliviousEngine.pipeline`: the rows plus the plan.

    ``stats.plan`` is the *full* compiled DAG the chain executed — every
    stage's sub-plan joined by streaming ``channel`` nodes — and
    ``stats.sizes`` the revealed per-stage output sizes (the same values
    running the operators one at a time would reveal one call at a time).
    """

    table: DBTable
    sizes: list[int]
    stats: PipelineStats

    def __len__(self) -> int:
        return len(self.table)


def _pair_rows(table: DBTable, role: str) -> list[tuple]:
    """A pipeline stage table must be two int columns (the (j, d) model)."""
    columns = table.schema.columns
    if len(columns) != 2 or any(column.type != "int" for column in columns):
        raise SchemaError(
            f"pipeline {role} table needs exactly two int columns "
            f"(join_value, data_value); got {table.schema.names()}"
        )
    return [tuple(row) for row in table.rows]


class ObliviousEngine:
    """Executes relational operators with oblivious access patterns."""

    def __init__(
        self,
        tracer: Tracer | None = None,
        engine: str | Engine = "traced",
        encoding_cache: EncodingCache | None = None,
        **engine_options,
    ) -> None:
        self.tracer = tracer or Tracer()
        self.encoder = DictionaryEncoder()
        # Encoder passes (and their downstream artifacts) are memoised per
        # (table, version); a private cache makes single queries no slower,
        # a shared one (the service layer's) makes repeats skip the scans.
        self.encoding = encoding_cache if encoding_cache is not None else EncodingCache()
        self.engine = get_engine(engine, **engine_options)

    # -- helpers -----------------------------------------------------------

    def _encode_key(self, table: DBTable, column: str) -> list[int]:
        return self.encoding.encoded_keys(table, column, self.encoder)

    # -- operators ----------------------------------------------------------

    def join(
        self,
        left: DBTable,
        right: DBTable,
        on: tuple[str, str],
        prefixes: tuple[str, str] = ("l", "r"),
    ) -> DBTable:
        """Oblivious equi-join of two tables on ``on = (left_col, right_col)``.

        The result contains all columns of both inputs (clashing names get
        dotted prefixes).  Core algorithm: the paper's Algorithm 1.
        """
        left_keys = self._encode_key(left, on[0])
        right_keys = self._encode_key(right, on[1])
        pairs_left = list(zip(left_keys, range(len(left))))
        pairs_right = list(zip(right_keys, range(len(right))))
        result = self.engine.join(pairs_left, pairs_right, tracer=self.tracer)
        schema = left.schema.concat(right.schema, prefixes)
        # Padded engines append (-1, -1) dummy pairs after the real rows;
        # compaction is exact because real handles are >= 0 (and a no-op
        # for unpadded engines).
        rows = [
            left.rows[li] + right.rows[ri]
            for li, ri in compact_pairs(result.pairs)
        ]
        return DBTable(schema, rows)

    def filter(self, table: DBTable, predicate: Callable[[tuple], bool]) -> DBTable:
        """Oblivious selection: mark-and-compact, revealing only the count.

        ``predicate`` is evaluated on rows held in local memory; the engine
        compacts the survivor indices obliviously (a traced routing network,
        or the vector/sharded bitonic fast paths).
        """
        n = len(table)
        if n == 0:
            return DBTable(table.schema, [])
        mask = [bool(predicate(row)) for row in table.rows]
        kept = self.engine.filter_indices(mask, tracer=self.tracer)
        return DBTable(table.schema, [table.rows[i] for i in kept])

    def order_by(self, table: DBTable, columns: list[tuple[str, bool]]) -> DBTable:
        """Oblivious, *stable* ORDER BY via the engine's sort permutation.

        Rows equal on every sort column keep their input order; int columns
        ride the vector/sharded numpy networks, other types fall back to
        the traced network — the permutation is identical either way.
        """
        n = len(table)
        if n <= 1 or not columns:  # ordering by nothing is the identity
            return DBTable(table.schema, table.rows)
        indices = [table.schema.index(name) for name, _ in columns]
        key_columns = [
            ([row[idx] for row in table.rows], asc)
            for idx, (_, asc) in zip(indices, columns)
        ]
        permutation = self.engine.order_permutation(key_columns, tracer=self.tracer)
        return DBTable(table.schema, [table.rows[i] for i in permutation])

    def group_by(
        self, table: DBTable, key: str, value: str
    ) -> DBTable:
        """Oblivious GROUP BY ``key`` with count/sum/min/max over ``value``."""
        require_int_column(table, value)
        keys = self._encode_key(table, key)
        value_index = table.schema.index(value)
        pairs = [(k, row[value_index]) for k, row in zip(keys, table.rows)]
        groups = self.engine.group_by(pairs, tracer=self.tracer)
        key_type = table.schema.column(key).type
        schema = Schema.of(
            f"{key}:{key_type}", "count:int", f"sum_{value}:int",
            f"min_{value}:int", f"max_{value}:int",
        )
        rows = []
        for g in groups:
            key_value = g.j if key_type == "int" else self.encoder.decode(g.j)
            rows.append((key_value, g.count1, g.sum_d1, g.min_d1, g.max_d1))
        return DBTable(schema, rows)

    def join_aggregate(
        self,
        left: DBTable,
        right: DBTable,
        on: tuple[str, str],
        values: tuple[str, str],
    ) -> DBTable:
        """Grouped aggregates over a join *without* materialising it (§7).

        Returns per-key: the joined-pair count, SUM of each side's value
        over the joined rows, and SUM of their product — all computed in
        `O(n log^2 n)` independent of the join size.
        """
        left_keys = self._encode_key(left, on[0])
        right_keys = self._encode_key(right, on[1])
        lv = require_int_column(left, values[0])
        rv = require_int_column(right, values[1])
        pairs_left = [(k, row[lv]) for k, row in zip(left_keys, left.rows)]
        pairs_right = [(k, row[rv]) for k, row in zip(right_keys, right.rows)]
        groups = self.engine.aggregate(pairs_left, pairs_right, tracer=self.tracer)
        key_type = left.schema.column(on[0]).type
        schema = Schema.of(
            f"{on[0]}:{key_type}", "pairs:int",
            f"sum_{values[0]}:int", f"sum_{values[1]}:int", "sum_product:int",
        )
        rows = []
        for g in groups:
            key_value = g.j if key_type == "int" else self.encoder.decode(g.j)
            rows.append(
                (key_value, g.pair_count, g.join_sum_d1, g.join_sum_d2,
                 g.join_sum_product)
            )
        return DBTable(schema, rows)

    def multiway_join(
        self,
        tables: list[DBTable],
        on: list[tuple[str, str]],
    ) -> DBTable:
        """Left-deep cascade of oblivious joins (§7): ``t0 ⋈ t1 ⋈ ...``.

        ``on[k] = (accumulated_col, next_col)`` names the key columns for
        step k; accumulated column names follow :meth:`join`'s prefixing.
        Every step runs on the engine selected at construction time.

        With a padding-configured engine, the cascade runs as *one* padded
        engine-level multiway join instead of a step-by-step loop — that is
        what keeps the intermediate sizes hidden: the intermediates (and
        their dummy tails) never surface as relational tables, and only the
        final compacted result does.  Both paths dictionary-encode ``str``
        key columns in base-table row order (the encoder is pre-warmed), so
        the canonical output order — which sorts by encoded code — is the
        same whichever path runs.
        """
        if len(tables) < 2 or len(on) != len(tables) - 1:
            raise SchemaError("need k tables and k-1 key column pairs")
        keys, encoded, offsets, folded = self._multiway_key_plan(tables, on)
        # Pre-warm the encoder so codes are assigned in base-table row
        # order; the step-by-step loop's per-step _encode_key then reuses
        # them (encoding is idempotent), keeping both paths' row order
        # identical even for str keys first seen mid-cascade.
        for owner, col in sorted(encoded):
            self.encoding.prewarm(tables[owner], col, self.encoder)
        if getattr(self.engine, "padding", "revealed") != "revealed":
            return self._padded_multiway_join(tables, keys, encoded, offsets, folded)
        current = tables[0]
        for step, next_table in enumerate(tables[1:]):
            current = self.join(
                current, next_table, on[step], prefixes=(f"t{step}", f"t{step + 1}")
            )
        return current

    def join_tree(self, tables: list[DBTable], tree) -> DBTable:
        """Acyclic multi-table join via the Yannakakis-style join tree.

        ``tree`` is the edge list: ``(parent, child, parent_col, child_col
        [, band])`` with tables indexed by position (table 0 the root) and
        key columns named (or given as indices).  ``band=w`` matches rows
        with ``|parent_key - child_key| <= w`` — the band/inequality
        predicate class the cascade cannot express.

        Unlike :meth:`multiway_join`, the engine pays **one** padding bound
        for the final output instead of one per binary step, and no
        intermediate relation is ever materialised; the result folds every
        table's full row in table order (same ``t<k>`` prefixing as the
        cascade), in the canonical join-tree slot order.
        """
        if len(tables) < 2:
            raise SchemaError("a join tree needs at least two tables")
        edges = []
        encoded: set[tuple[int, int]] = set()  # (table index, column index)
        for edge in tree:
            parts = tuple(edge)
            if len(parts) == 4:
                parts = parts + (0,)
            if len(parts) != 5:
                raise SchemaError(
                    "join-tree edges are (parent, child, parent_col, "
                    f"child_col[, band]) tuples, got {edge!r}"
                )
            parent, child, pcol, ccol, band = parts
            for node in (parent, child):
                if not 0 <= node < len(tables):
                    raise SchemaError(
                        f"join-tree edge references table {node}; "
                        f"only {len(tables)} tables were given"
                    )
            p_index = (
                tables[parent].schema.index(pcol) if isinstance(pcol, str) else pcol
            )
            c_index = (
                tables[child].schema.index(ccol) if isinstance(ccol, str) else ccol
            )
            if band and (
                tables[parent].schema.columns[p_index].type == "str"
                or tables[child].schema.columns[c_index].type == "str"
            ):
                raise SchemaError(
                    "band predicates need int key columns; a distance over "
                    "dictionary codes has no meaning"
                )
            edges.append((parent, child, p_index, c_index, band))
        # The join-tree engines carry whole rows as int arrays (no opaque
        # payload handles like the cascade), so *every* str column is
        # dictionary-encoded — in base-table row order, which keeps the
        # codes and with them the canonical output order deterministic.
        for index, table in enumerate(tables):
            for col, column in enumerate(table.schema.columns):
                if column.type == "str":
                    encoded.add((index, col))
        rows_per_table = [
            self.encoding.encoded_rows(
                table,
                {col for owner, col in encoded if owner == index},
                self.encoder,
            )
            for index, table in enumerate(tables)
        ]
        result = self.engine.join_tree(rows_per_table, edges, tracer=self.tracer)
        offsets = [0]
        folded = tables[0].schema
        for index, table in enumerate(tables[1:], start=1):
            offsets.append(offsets[-1] + len(tables[index - 1].schema.columns))
            folded = folded.concat(table.schema, (f"t{index - 1}", f"t{index}"))
        decode_positions = {offsets[owner] + col for owner, col in encoded}
        rows = [
            tuple(
                self.encoder.decode(value) if pos in decode_positions else value
                for pos, value in enumerate(row)
            )
            for row in result.rows
        ]
        return DBTable(folded, rows)

    def pipeline(self, source: DBTable, steps) -> PipelineQueryResult:
        """Run a whole operator chain as one compiled streaming query DAG.

        ``source`` (and every other stage table) is a two-int-column table
        in the paper's ``(join_value, data_value)`` model.  ``steps`` is a
        sequence of:

        ``("filter", predicate)``
            Oblivious selection over the source rows (first step only).
        ``("join", right)``
            Equi-join on the join columns; the result carries the two data
            columns (the join values are consumed by the match).
        ``("multiway", tables, keys)``
            Left-deep cascade; ``keys[k] = (left_col, right_col)`` are
            column *indices* into the accumulated row, as in
            :meth:`multiway_join`'s engine-level form.  The result folds
            every table's full row.
        ``("group_by",)``
            Terminal grouped count/sum/min/max keyed on the first column.
        ``("order_by", [(column_name, ascending), ...])``
            Stable oblivious sort of the current rows.

        The whole chain compiles into *one* plan before any data moves —
        ``stats.plan`` exposes that DAG end to end — and on the sharded
        engine in revealed mode the inter-operator edges stream: downstream
        shard tasks dispatch as upstream blocks complete, with results
        bit-identical to running the operators one at a time.
        """
        stages: list[tuple] = [("source", _pair_rows(source, "source"))]
        schema = source.schema
        for step in steps:
            name = step[0]
            if name == "filter":
                stages.append(
                    ("filter", [bool(step[1](row)) for row in source.rows])
                )
            elif name == "join":
                right = step[1]
                stages.append(("join", _pair_rows(right, "join right")))
                schema = Schema.of(
                    f"l_{schema.columns[1].name}:int",
                    f"r_{right.schema.columns[1].name}:int",
                )
            elif name == "multiway":
                tables = [
                    _pair_rows(table, f"multiway table {index + 1}")
                    for index, table in enumerate(step[1])
                ]
                stages.append(
                    ("multiway", tables, [tuple(key) for key in step[2]])
                )
                for index, table in enumerate(step[1]):
                    schema = schema.concat(
                        table.schema, (f"t{index}", f"t{index + 1}")
                    )
            elif name == "group_by":
                stages.append(("group_by",))
                key, value = schema.columns[0].name, schema.columns[1].name
                schema = Schema.of(
                    f"{key}:int", "count:int", f"sum_{value}:int",
                    f"min_{value}:int", f"max_{value}:int",
                )
            elif name == "order_by":
                spec = [
                    (schema.index(column), ascending)
                    for column, ascending in step[1]
                ]
                stages.append(("order_by", spec))
            else:
                raise SchemaError(f"unknown pipeline step {name!r}")
        result = self.engine.pipeline(stages, tracer=self.tracer)
        if result.groups is not None:
            rows = [
                (g.j, g.count1, g.sum_d1, g.min_d1, g.max_d1)
                for g in result.groups
            ]
        else:
            rows = list(result.rows)
        return PipelineQueryResult(
            table=DBTable(schema, rows), sizes=list(result.sizes),
            stats=result.stats,
        )

    def _multiway_key_plan(self, tables: list[DBTable], on: list[tuple[str, str]]):
        """Resolve a cascade's key columns against the folding schemas.

        Returns ``(keys, encoded, offsets, folded)``: per-step global/local
        key indices, the ``(table, column)`` pairs needing dictionary
        encoding, each table's column offset in the folded row, and the
        final folded schema (same ``t<k>`` prefixing as the join loop).
        """
        offsets = [0]
        for table in tables:
            offsets.append(offsets[-1] + len(table.schema.columns))
        folded = tables[0].schema
        keys: list[tuple[int, int]] = []
        encoded: set[tuple[int, int]] = set()  # (table index, column index)
        for step, next_table in enumerate(tables[1:]):
            left_index = folded.index(on[step][0])
            right_index = next_table.schema.index(on[step][1])
            keys.append((left_index, right_index))
            owner = max(t for t in range(len(tables)) if offsets[t] <= left_index)
            owner_col = left_index - offsets[owner]
            if tables[owner].schema.columns[owner_col].type == "str":
                encoded.add((owner, owner_col))
            if next_table.schema.columns[right_index].type == "str":
                encoded.add((step + 1, right_index))
            folded = folded.concat(
                next_table.schema, (f"t{step}", f"t{step + 1}")
            )
        return keys, encoded, offsets, folded

    def _padded_multiway_join(
        self,
        tables: list[DBTable],
        keys: list[tuple[int, int]],
        encoded: set[tuple[int, int]],
        offsets: list[int],
        folded: Schema,
    ) -> DBTable:
        """Run the cascade through ``engine.multiway_join`` with padding.

        Rows travel through the cascade as opaque tuples; only the key
        columns must be ints, so ``str`` key columns are dictionary-encoded
        in place and decoded again in the result.
        """
        rows_per_table = [
            self.encoding.encoded_rows(
                table,
                {col for owner, col in encoded if owner == index},
                self.encoder,
            )
            for index, table in enumerate(tables)
        ]
        result = self.engine.multiway_join(rows_per_table, keys, tracer=self.tracer)
        decode_positions = {offsets[owner] + col for owner, col in encoded}
        rows = [
            tuple(
                self.encoder.decode(value) if pos in decode_positions else value
                for pos, value in enumerate(row)
            )
            for row in result.rows
        ]
        return DBTable(folded, rows)
