"""Dictionary encoding: mapping rich column values onto engine integers.

The oblivious core operates on int64 join keys and payloads (fixed-width
cells are what make "one entry" a meaningful unit of local memory).  A
:class:`DictionaryEncoder` maps arbitrary hashable column values to dense
integer codes and back, the standard columnar-database technique.

The mapping is *not* order-preserving — equality joins and grouping only
need consistency — so ORDER BY over encoded columns decodes before
comparing (see :mod:`repro.db.query`).
"""

from __future__ import annotations

from typing import Hashable

from ..errors import InputError


class DictionaryEncoder:
    """Assigns dense integer codes to values, first-seen order."""

    def __init__(self) -> None:
        self._code_of: dict[Hashable, int] = {}
        self._value_of: list[Hashable] = []

    def encode(self, value: Hashable) -> int:
        """Code for ``value``, allocating a fresh one on first sight."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self._value_of)
            self._code_of[value] = code
            self._value_of.append(value)
        return code

    def encode_many(self, values) -> list[int]:
        return [self.encode(v) for v in values]

    def decode(self, code: int) -> Hashable:
        if not 0 <= code < len(self._value_of):
            raise InputError(f"unknown dictionary code {code}")
        return self._value_of[code]

    def __len__(self) -> int:
        return len(self._value_of)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._code_of
