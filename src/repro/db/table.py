"""In-memory tables for the mini relational engine."""

from __future__ import annotations

import csv
from typing import Iterable, Iterator

from ..errors import SchemaError
from .schema import Column, Schema


class DBTable:
    """An immutable-ish list of typed rows under a schema.

    ``version`` is the table's mutation counter: the encoding cache (and
    anything else that memoises per-table derived state) keys on
    ``(id(table), version)``, so going through :meth:`append_row` /
    :meth:`extend_rows` — or calling :meth:`touch` after editing ``rows``
    in place — invalidates every cached encoding and published column.
    """

    def __init__(self, schema: Schema, rows: Iterable[tuple] = ()) -> None:
        self.schema = schema
        self.version = 0
        self.rows: list[tuple] = []
        for row in rows:
            row = tuple(row)
            schema.validate_row(row)
            self.rows.append(row)

    def append_row(self, row: tuple) -> None:
        """Validate and append one row, bumping the mutation counter."""
        row = tuple(row)
        self.schema.validate_row(row)
        self.rows.append(row)
        self.version += 1

    def extend_rows(self, rows: Iterable[tuple]) -> None:
        """Validate and append rows, bumping the mutation counter once."""
        staged = []
        for row in rows:
            row = tuple(row)
            self.schema.validate_row(row)
            staged.append(row)
        self.rows.extend(staged)
        self.version += 1

    def touch(self) -> None:
        """Declare an in-place mutation of ``rows`` (invalidates caches)."""
        self.version += 1

    @classmethod
    def from_rows(cls, specs: list[str], rows: Iterable[tuple]) -> "DBTable":
        """Build a table with ``Schema.of(*specs)``."""
        return cls(Schema.of(*specs), rows)

    @classmethod
    def from_csv(cls, path: str, specs: list[str]) -> "DBTable":
        """Load a headered CSV, coercing columns per the schema.

        A schema column missing from the CSV header (or misnamed in it)
        raises :class:`~repro.errors.SchemaError` naming the column and
        the file, not a bare ``KeyError``.
        """
        schema = Schema.of(*specs)
        rows = []
        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv.DictReader(handle)
            for record in reader:
                row = []
                for c in schema.columns:
                    try:
                        value = record[c.name]
                    except KeyError:
                        raise SchemaError(
                            f"CSV file {path!r} has no column {c.name!r}; "
                            f"header: {reader.fieldnames}"
                        ) from None
                    row.append(int(value) if c.type == "int" else str(value))
                rows.append(tuple(row))
        return cls(schema, rows)

    @classmethod
    def open(
        cls,
        store,
        name: str,
        specs: list[str] | None = None,
        key: bytes | None = None,
        cache_bytes: int | None = None,
    ) -> "DBTable":
        """Open a store-backed table: a block store (or path) plus a name.

        Returns a read-only :class:`~repro.db.stored.StoredTable` whose
        columns stream block-wise from the store through a trusted-memory
        cache of ``cache_bytes``; see :meth:`to_store` for the writer.
        ``key`` decrypts an encrypted store; ``specs`` optionally asserts
        the stored schema.
        """
        from .stored import DEFAULT_CACHE_BYTES, open_table

        return open_table(
            store,
            name,
            specs=specs,
            key=key,
            cache_bytes=(
                cache_bytes if cache_bytes is not None else DEFAULT_CACHE_BYTES
            ),
        )

    def to_store(self, store, name: str, key: bytes | None = None):
        """Write this table's columns into a block store; returns the store.

        ``store`` is a :class:`~repro.store.BlockStore` or a directory
        path (which becomes a :class:`~repro.store.FileStore`, encrypted
        when ``key`` is given).  Read it back with :meth:`open`.
        """
        from .stored import save_table

        return save_table(self, store, name, key=key)

    def column(self, name: str) -> list:
        """All values of one column."""
        index = self.schema.index(name)
        return [row[index] for row in self.rows]

    def project(self, names: list[str]) -> "DBTable":
        """Keep only the named columns (in the given order).

        The result is an independent **snapshot**, not a view: it copies
        the row tuples into a fresh table with its own ``version`` counter
        and shares no lineage with the source.  Mutating or ``touch()``-ing
        the source afterwards neither changes the derived table nor
        invalidates encoding-cache entries keyed on it — which is correct,
        because the derived table's contents did not change.  The cache
        contract is per-table: invalidate a derived table by mutating *it*
        (tests pin this in ``tests/test_db_table.py``).
        """
        indices = [self.schema.index(n) for n in names]
        schema = Schema([self.schema.columns[i] for i in indices])
        return DBTable(schema, [tuple(row[i] for i in indices) for row in self.rows])

    def rename(self, mapping: dict[str, str]) -> "DBTable":
        """A copy with columns renamed per ``mapping``.

        Same snapshot/invalidation contract as :meth:`project`: the copy
        has independent rows and an independent ``version``; a later
        source ``touch()`` does not (and need not) invalidate caches for
        the derived table.
        """
        columns = [
            Column(mapping.get(c.name, c.name), c.type) for c in self.schema.columns
        ]
        return DBTable(Schema(columns), self.rows)

    def head(self, count: int = 5) -> list[tuple]:
        return self.rows[:count]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __eq__(self, other) -> bool:
        if not isinstance(other, DBTable):
            return NotImplemented
        return self.schema == other.schema and sorted(self.rows) == sorted(other.rows)

    def pretty(self, limit: int = 10) -> str:
        """A fixed-width text rendering (for examples and docs)."""
        names = self.schema.names()
        shown = [tuple(str(v) for v in row) for row in self.rows[:limit]]
        widths = [
            max(len(name), *(len(r[i]) for r in shown)) if shown else len(name)
            for i, name in enumerate(names)
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = [header, rule]
        for row in shown:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"DBTable({self.schema!r}, rows={len(self.rows)})"


def require_int_column(table: DBTable, name: str) -> int:
    """Index of an int column, with a schema-aware error."""
    column = table.schema.column(name)
    if column.type != "int":
        raise SchemaError(
            f"column {name!r} must be int for this operation, is {column.type}"
        )
    return table.schema.index(name)
