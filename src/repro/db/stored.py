"""Store-backed tables: ``DBTable`` over paged, optionally encrypted blocks.

A :class:`StoredTable` is a read-only :class:`~repro.db.table.DBTable`
whose columns live in a :class:`~repro.store.BlockStore` instead of a
resident row list.  Three access tiers, cheapest first:

* :meth:`StoredTable.store_pairs` — the out-of-core tier: an ``int`` key
  column as an engine-ready :class:`~repro.store.StorePairs`, which the
  sharded partitioner turns into block refs so *workers* fault in the
  blocks; the parent process never reads the column.
* :meth:`StoredTable.column` — streams one column block-wise through the
  trusted-memory cache and returns its values.
* ``rows`` — the resident fall-back: materialises the whole table once,
  lazily, after which every inherited ``DBTable`` operation (filter,
  order_by, group_by, iteration, equality) behaves **bit-identically** to
  a resident table built from the same rows.

Mutation is rejected: a stored table's contents are owned by the store,
and its cache identity is ``(id(table), (version, store generation))`` —
rewriting the store bumps the generation, which invalidates encodings the
same way ``touch()`` does for resident tables.
"""

from __future__ import annotations

from ..errors import InputError, SchemaError
from ..store import BlockStore, FileStore, StorePairs, adopt, attach
from ..store.blockstore import DEFAULT_BLOCK_BYTES
from ..store.columns import (
    block_rows_of,
    column_key,
    meta_key,
    read_str_block,
    write_table,
)
from ..store.runtime import DEFAULT_CACHE_BYTES, StoreSpec, block_count
from .schema import Column, Schema
from .table import DBTable


class StoredTable(DBTable):
    """A read-only ``DBTable`` view over stored column blocks."""

    def __init__(self, spec: StoreSpec, name: str, schema: Schema, n: int) -> None:
        # Deliberately not calling DBTable.__init__: it assigns a resident
        # ``rows`` list, which this class replaces with a lazy property.
        self.spec = spec
        self.name = name
        self.schema = schema
        self.version = 0
        self._n = n
        self._rows: list[tuple] | None = None
        self._columns: dict[str, list] = {}

    # -- identity / cache keys -----------------------------------------------

    @property
    def store_generation(self) -> int:
        """The store's mutation counter, as seen by this process's handle.

        Joins ``version`` in the encoding cache's entry key, so a store
        rewrite invalidates cached encodings exactly like ``touch()``.
        """
        return attach(self.spec).store.generation

    @property
    def block_rows(self) -> int:
        return self.spec.block_rows

    # -- read paths ----------------------------------------------------------

    def column(self, name: str) -> list:
        """One column's values, streamed block-wise through the cache."""
        cached = self._columns.get(name)
        if cached is not None:
            return list(cached)
        index = self.schema.index(name)
        kind = self.schema.columns[index].type
        key = column_key(self.name, name)
        handle = attach(self.spec)
        block_rows = self.block_rows
        values: list = []
        for block in range(block_count(self._n, block_rows)):
            real = min(block_rows, self._n - block * block_rows)
            if kind == "int":
                values.extend(
                    int(v) for v in handle.read_int_block(key, block)[:real]
                )
            else:
                values.extend(read_str_block(handle.read_block, key, block, real))
        self._columns[name] = values
        return list(values)

    @property
    def rows(self) -> list[tuple]:
        """The resident fall-back: materialised once, on first access."""
        if self._rows is None:
            columns = [self.column(c.name) for c in self.schema.columns]
            self._rows = list(zip(*columns)) if columns else []
            if self._n and not columns:
                raise SchemaError("stored table has rows but no columns")
        return self._rows

    def store_pairs(self, column: str) -> StorePairs:
        """An ``int`` key column as out-of-core engine pairs.

        ``(encoded key, row handle)`` shaped — the handle side is the
        virtual ``arange`` column, never stored or read.  ``str`` columns
        have no stored integer encoding, so callers fall back to the
        resident path for them.
        """
        if self.schema.column(column).type != "int":
            raise SchemaError(
                f"column {column!r} is not int; store-backed pairs cover "
                "int key columns (str keys take the resident encoded path)"
            )
        return StorePairs(
            self.spec, self._n, column_key(self.name, column), d_key=None
        )

    # -- shape / mutation ----------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def _read_only(self, operation: str):
        raise InputError(
            f"{operation} is not supported on a store-backed table; stored "
            "tables are read-only views — rebuild the store to change them"
        )

    def append_row(self, row: tuple) -> None:
        self._read_only("append_row")

    def extend_rows(self, rows) -> None:
        self._read_only("extend_rows")

    def touch(self) -> None:
        self._read_only("touch")

    def __repr__(self) -> str:
        return (
            f"StoredTable({self.name!r}, rows={self._n}, "
            f"block_rows={self.block_rows}, store={self.spec.path!r})"
        )


def save_table(
    table: DBTable,
    store: BlockStore | str,
    name: str,
    key: bytes | None = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> BlockStore:
    """Write a table into a store (``str`` = FileStore path); returns it."""
    if isinstance(store, str):
        store = FileStore(store, block_bytes, key)
    write_table(store, name, table.schema, list(table.rows))
    return store


def open_table(
    store: BlockStore | str,
    name: str,
    specs: list[str] | None = None,
    key: bytes | None = None,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
) -> StoredTable:
    """Open a stored table by name; ``store`` is an instance or a path.

    The schema comes from the store's meta entry; passing ``specs``
    additionally asserts it matches (same contract as ``from_csv``).
    ``cache_bytes`` is this process's trusted-memory budget for the store.
    """
    if isinstance(store, str):
        store = FileStore(store, None, key)
    spec = adopt(store, cache_bytes)
    meta = store.get_meta(meta_key(name))
    if meta is None:
        raise InputError(
            f"no table {name!r} in store "
            f"{getattr(store, 'path', '<memory>')!r}; "
            f"stored keys: {store.keys()}"
        )
    schema = Schema([Column(n, t) for n, t in meta["columns"]])
    if specs is not None and Schema.of(*specs) != schema:
        raise SchemaError(
            f"stored table {name!r} has schema {schema!r}, which does not "
            f"match the requested specs {specs!r}"
        )
    if meta["block_rows"] != block_rows_of(store.block_bytes):
        raise InputError(
            f"table {name!r} was written with block_rows="
            f"{meta['block_rows']} but the store's block size implies "
            f"{block_rows_of(store.block_bytes)}"
        )
    return StoredTable(spec, name, schema, meta["n"])
