"""Oblivious DISTINCT and UNION — further sorting-network operators.

§3.5 of the paper observes that most database operators are easy to make
oblivious by direct application of sorting networks; these two are the
canonical examples: sort, mark adjacent duplicates in one linear pass
(dummy-writing every cell), compact.  Both reveal only input sizes and the
(deliberately public) distinct count.
"""

from __future__ import annotations

from ..memory.public import PublicArray
from ..memory.tracer import Tracer
from ..obliv.bitonic import bitonic_sort
from ..obliv.compact import compact_by_routing
from ..obliv.compare import identity_key, spec
from ..obliv.network import NetworkStats

_IDENTITY = spec(identity_key())


def oblivious_distinct(
    values: list,
    tracer: Tracer | None = None,
    stats: NetworkStats | None = None,
) -> list:
    """Distinct values of ``values``, ascending, with an oblivious trace.

    Sort (`O(n log^2 n)`), one scan replacing each duplicate-of-previous
    with a null marker (every cell rewritten), compact (`O(n log n)`).
    """
    tracer = tracer or Tracer()
    n = len(values)
    if n == 0:
        return []
    array = PublicArray(list(values), name="DST", tracer=tracer)
    with tracer.phase("distinct:sort"):
        bitonic_sort(array, _IDENTITY, stats=stats)
    sentinel = object()
    with tracer.phase("distinct:mark"):
        previous = sentinel
        for i in range(n):
            value = array.read(i)
            if previous is not sentinel and value == previous:
                array.write(i, sentinel)
            else:
                array.write(i, value)
                previous = value
    with tracer.phase("distinct:compact"):
        count = compact_by_routing(array, lambda v: v is sentinel, stats=stats)
    return [array.read(i) for i in range(count)]


def oblivious_union(
    left: list,
    right: list,
    tracer: Tracer | None = None,
    stats: NetworkStats | None = None,
) -> list:
    """Set union (duplicates removed) with an oblivious trace."""
    return oblivious_distinct(list(left) + list(right), tracer=tracer, stats=stats)
