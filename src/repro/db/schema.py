"""Table schemas for the mini relational engine."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchemaError

#: Supported logical column types.
COLUMN_TYPES = ("int", "str")


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: str = "int"

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name cannot be empty")
        if self.type not in COLUMN_TYPES:
            raise SchemaError(
                f"column {self.name!r}: unsupported type {self.type!r}"
                f" (expected one of {COLUMN_TYPES})"
            )


class Schema:
    """An ordered set of columns with name lookup."""

    def __init__(self, columns: list[Column]) -> None:
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self.columns = list(columns)
        self._index = {c.name: i for i, c in enumerate(columns)}

    @classmethod
    def of(cls, *specs: str) -> "Schema":
        """Shorthand: ``Schema.of("id:int", "name:str", "qty")``."""
        columns = []
        for item in specs:
            name, _, ctype = item.partition(":")
            columns.append(Column(name, ctype or "int"))
        return cls(columns)

    def index(self, name: str) -> int:
        if name not in self._index:
            raise SchemaError(
                f"no column {name!r}; have {[c.name for c in self.columns]}"
            )
        return self._index[name]

    def column(self, name: str) -> Column:
        return self.columns[self.index(name)]

    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def validate_row(self, row: tuple) -> None:
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row arity {len(row)} != schema arity {len(self.columns)}"
            )
        for value, column in zip(row, self.columns):
            expected = int if column.type == "int" else str
            if not isinstance(value, expected):
                raise SchemaError(
                    f"column {column.name!r} expects {column.type}, got "
                    f"{type(value).__name__} ({value!r})"
                )

    def concat(self, other: "Schema", prefixes: tuple[str, str]) -> "Schema":
        """Joined-row schema; colliding names get dotted prefixes."""
        left_names = set(self.names())
        right_names = set(other.names())
        clash = left_names & right_names
        columns = [
            Column(f"{prefixes[0]}.{c.name}" if c.name in clash else c.name, c.type)
            for c in self.columns
        ]
        columns += [
            Column(f"{prefixes[1]}.{c.name}" if c.name in clash else c.name, c.type)
            for c in other.columns
        ]
        return Schema(columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.type}" for c in self.columns)
        return f"Schema({cols})"
