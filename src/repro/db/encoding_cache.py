"""Cross-query cache of dictionary encodings and published table columns.

Every relational operator starts the same way: scan a table's key columns,
dictionary-encode the ``str`` ones, and (on the sharded engine) partition
the encoded pairs into padded shards that get written into a shared-memory
arena for the workers.  All of that is a pure function of ``(table
contents, column, encoder)`` — so a persistent process serving a series of
queries over the same tables can do it *once*.

:class:`EncodingCache` memoises, per ``(table identity, table version)``:

* **encoded key columns** (:meth:`encoded_keys`) and whole **encoded rows**
  (:meth:`encoded_rows`) — the dictionary-encoder column scans;
* the **pre-warm passes** :class:`~repro.db.query.ObliviousEngine` runs
  before a multiway cascade (:meth:`prewarm`) — previously re-run on every
  call over the same tables;
* the ``(key, row-handle)`` **pairs arrays** the engines consume
  (:meth:`key_handle_pairs`), registered as stable *sources* for the
  partition cache; and
* the padded **shard parts** of those arrays (:meth:`lookup_parts` /
  :meth:`offer_parts`, the hook :func:`repro.shard.partition.partition_pairs`
  consults) — with the part columns *pinned* into parent-published
  shared-memory segments (:func:`repro.plan.executors.host_publish_arrays`)
  when ``publish=True``, so repeat queries skip the parent->worker column
  write entirely.

Invalidation is by table version: any mutation through
:class:`~repro.db.table.DBTable`'s mutation API (or an explicit
``table.touch()``) makes every cached value — and every pinned segment —
for that table stale on the next lookup.  Entries are keyed by
``id(table)`` with a weakref keepalive check, evicted LRU beyond
``max_tables``, and dropped when the table is garbage collected.

Thread safety: one re-entrant lock guards all state, so the service layer
can admit concurrent queries.  Cached values are immutable by convention —
list-valued results are returned as shallow copies; the pairs arrays are
returned by identity on purpose (identity is what keys the partition
cache) and every consumer treats them as read-only.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..plan.executors import host_publish_arrays, host_unpublish
from .encoding import DictionaryEncoder
from .table import DBTable

_INT = np.int64


@dataclass
class _TableEntry:
    """Cached derived state of one ``(table, version)``."""

    ref: "weakref.ref[DBTable]"
    version: int
    values: dict = field(default_factory=dict)
    #: Pinned shared-memory segment names owned by this entry.
    segments: set = field(default_factory=set)
    #: ``id(array)`` keys this entry registered as partition sources.
    sources: set = field(default_factory=set)


class EncodingCache:
    """Cross-query dictionary-encoding + published-column cache.

    ``publish=True`` additionally pins cached shard parts into
    parent-published shared-memory segments — only worth it when a remote
    executor will consume them (the service layer flips it on when the
    engine's executor reports ``remote_submit``).
    """

    def __init__(self, publish: bool = False, max_tables: int = 64) -> None:
        self.publish = publish
        self.max_tables = max_tables
        self._lock = threading.RLock()
        self._tables: "OrderedDict[int, _TableEntry]" = OrderedDict()
        #: id(array) -> (array keepalive, owning table key): the partition
        #: cache only ever acts on arrays registered here, which is what
        #: makes id() keying safe — a key cannot be reused while the
        #: registry holds the array.
        self._sources: dict[int, tuple[np.ndarray, int]] = {}
        #: Encoders seen, kept alive so id(encoder) cache keys stay unique.
        self._encoders: dict[int, DictionaryEncoder] = {}
        #: Keys of entries whose tables were garbage collected; appended
        #: from weakref callbacks (which may fire anywhere), drained under
        #: the lock at the next cache operation.
        self._dead: list[int] = []
        self.stats = {
            "hits": 0,
            "misses": 0,
            "encode_passes": 0,
            "published_segments": 0,
        }

    # -- entry lifecycle -----------------------------------------------------

    def _reap(self) -> None:
        while self._dead:
            self._drop(self._dead.pop())

    def _drop(self, key: int) -> None:
        entry = self._tables.pop(key, None)
        if entry is None:
            return
        for source_key in entry.sources:
            self._sources.pop(source_key, None)
        if entry.segments:
            host_unpublish(entry.segments)

    def _entry(self, table: DBTable) -> _TableEntry:
        key = id(table)
        # Store-backed tables never bump `version` (they are read-only
        # views) but the *store* can be rewritten underneath them; folding
        # the store generation into the entry version makes a rewrite
        # invalidate cached encodings exactly like a touch().
        version = (
            getattr(table, "version", 0),
            getattr(table, "store_generation", None),
        )
        entry = self._tables.get(key)
        if entry is not None:
            held = entry.ref()
            if held is table and entry.version == version:
                self._tables.move_to_end(key)
                return entry
            self._drop(key)  # mutated, or the id was reused after a gc
        entry = _TableEntry(
            ref=weakref.ref(table, lambda _, key=key: self._dead.append(key)),
            version=version,
        )
        self._tables[key] = entry
        while len(self._tables) > self.max_tables:
            oldest, _ = next(iter(self._tables.items()))
            self._drop(oldest)
        return entry

    def _remember_encoder(self, encoder: DictionaryEncoder) -> int:
        key = id(encoder)
        self._encoders[key] = encoder
        return key

    # -- encoder passes ------------------------------------------------------

    def encoded_keys(
        self, table: DBTable, column: str, encoder: DictionaryEncoder
    ) -> list[int]:
        """One key column as ints — ``str`` columns dictionary-encoded.

        The column scan runs once per ``(table version, column, encoder)``;
        repeats return a shallow copy of the cached list.
        """
        with self._lock:
            self._reap()
            entry = self._entry(table)
            key = ("keys", column, self._remember_encoder(encoder))
            cached = entry.values.get(key)
            if cached is not None:
                self.stats["hits"] += 1
                return list(cached)
            self.stats["misses"] += 1
            # column() instead of a row scan: resident tables build the
            # same list either way, store-backed tables stream the one
            # column's blocks without materialising the whole table.
            values = table.column(column)
            if table.schema.column(column).type == "int":
                keys = list(values)
            else:
                self.stats["encode_passes"] += 1
                keys = [encoder.encode(value) for value in values]
            entry.values[key] = keys
            return list(keys)

    def prewarm(
        self, table: DBTable, column_index: int, encoder: DictionaryEncoder
    ) -> None:
        """One encoder pre-warm pass over a column, at most once per version.

        Encoding is idempotent and first-seen ordered, so after the first
        pass the codes exist and re-running it is a pure waste — this is
        the pass :class:`~repro.db.query.ObliviousEngine` used to repeat
        on every multiway call over the same tables.
        """
        with self._lock:
            self._reap()
            entry = self._entry(table)
            key = ("prewarm", column_index, self._remember_encoder(encoder))
            if key in entry.values:
                self.stats["hits"] += 1
                return
            self.stats["misses"] += 1
            self.stats["encode_passes"] += 1
            for row in table.rows:
                encoder.encode(row[column_index])
            entry.values[key] = True

    def encoded_rows(
        self, table: DBTable, columns, encoder: DictionaryEncoder
    ) -> list[tuple]:
        """The table's rows with the given ``str`` columns encoded in place.

        ``columns`` is a set of column *indices*; an empty set returns the
        rows unchanged (still cached — the list copy is the whole cost).
        """
        cols = tuple(sorted(columns))
        with self._lock:
            self._reap()
            entry = self._entry(table)
            key = ("rows", cols, self._remember_encoder(encoder))
            cached = entry.values.get(key)
            if cached is not None:
                self.stats["hits"] += 1
                return list(cached)
            self.stats["misses"] += 1
            if not cols:
                rows = list(table.rows)
            else:
                self.stats["encode_passes"] += len(cols)
                wanted = set(cols)
                rows = [
                    tuple(
                        encoder.encode(value) if col in wanted else value
                        for col, value in enumerate(row)
                    )
                    for row in table.rows
                ]
            entry.values[key] = rows
            return list(rows)

    # -- engine-shaped pairs arrays (partition-cache sources) ----------------

    def key_handle_pairs(
        self, table: DBTable, column: str, encoder: DictionaryEncoder
    ) -> np.ndarray:
        """The join input ``(n, 2)`` array of ``(encoded key, row handle)``.

        Returned by *identity* across calls: the stable array object is
        what the partition cache keys its shard parts on, and consumers
        treat pairs inputs as read-only by contract.
        """
        with self._lock:
            self._reap()
            entry = self._entry(table)
            key = ("handles", column, self._remember_encoder(encoder))
            cached = entry.values.get(key)
            if cached is not None:
                self.stats["hits"] += 1
                return cached
            keys = self.encoded_keys(table, column, encoder)
            array = np.empty((len(keys), 2), dtype=_INT)
            array[:, 0] = keys
            array[:, 1] = np.arange(len(keys), dtype=_INT)
            entry.values[key] = array
            source_key = id(array)
            self._sources[source_key] = (array, id(table))
            entry.sources.add(source_key)
            return array

    # -- the partition-cache hook (repro.shard.partition consults this) ------

    def lookup_parts(self, array: np.ndarray, k: int):
        """Cached shard parts of a registered source array, or ``None``."""
        with self._lock:
            source = self._sources.get(id(array))
            if source is None or source[0] is not array:
                return None
            entry = self._tables.get(source[1])
            if entry is None:
                return None
            parts = entry.values.get(("parts", id(array), k))
            if parts is None:
                return None
            self.stats["hits"] += 1
            return parts

    def offer_parts(self, array: np.ndarray, k: int, parts) -> None:
        """Cache freshly computed shard parts of a registered source array.

        Unregistered arrays (every per-query intermediate) are ignored —
        caching them would pin arbitrary query state forever.  With
        ``publish`` on, the part columns are pinned into one
        parent-published segment so later dispatches ship refs, not bytes.
        """
        with self._lock:
            source = self._sources.get(id(array))
            if source is None or source[0] is not array:
                return
            entry = self._tables.get(source[1])
            if entry is None:
                return
            self.stats["misses"] += 1
            entry.values[("parts", id(array), k)] = list(parts)
            if self.publish and all(
                isinstance(part.j, np.ndarray) for part in parts
            ):
                # Store-backed parts are block refs, not arrays — workers
                # fault them in themselves, so there is nothing to pin.
                columns = [part.j for part in parts] + [part.d for part in parts]
                segment = host_publish_arrays(columns)
                if segment is not None:
                    entry.segments.add(segment)
                    self.stats["published_segments"] += 1

    # -- lifecycle -----------------------------------------------------------

    def invalidate(self, table: DBTable) -> None:
        """Drop everything cached for one table (and its pinned segments)."""
        with self._lock:
            self._reap()
            self._drop(id(table))

    def close(self) -> None:
        """Drop every entry and unpin every published segment."""
        with self._lock:
            self._reap()
            for key in list(self._tables):
                self._drop(key)
            self._encoders.clear()

    def snapshot(self) -> dict:
        """A point-in-time copy of the counters (per-query stats deltas)."""
        with self._lock:
            return dict(self.stats)
