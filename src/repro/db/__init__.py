"""Mini relational engine: schemas, tables, and oblivious query operators."""

from .distinct import oblivious_distinct, oblivious_union
from .encoding import DictionaryEncoder
from .encoding_cache import EncodingCache
from .query import ObliviousEngine, PipelineQueryResult
from .schema import COLUMN_TYPES, Column, Schema
from .table import DBTable

__all__ = [
    "oblivious_distinct",
    "oblivious_union",
    "DictionaryEncoder",
    "EncodingCache",
    "ObliviousEngine",
    "PipelineQueryResult",
    "COLUMN_TYPES",
    "Column",
    "Schema",
    "DBTable",
]
