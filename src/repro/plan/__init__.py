"""Compile-then-execute: the public oblivious plan IR and its executors.

The paper's security argument is that the schedule of oblivious primitives
is a function of public values only.  This package turns that from an
emergent property into an explicit, testable artifact:

:mod:`~repro.plan.ir`
    The Plan IR — a DAG of operator nodes with public shapes, canonical
    serialization, and a digest.  Plan equality *is* schedule equality.
:mod:`~repro.plan.compile`
    Compilers from workload shapes ``(n1, n2, …, k, padding, bound)`` to
    plans, reusing the padding planner and the partition-plan functions.
:mod:`~repro.plan.partition`
    The pure shard-layout functions (``partition_plan`` et al.) — f(n, k).
:mod:`~repro.plan.executors`
    Pluggable execution substrates: ``inline``, ``pool`` (shared-memory
    process pool), ``async`` (asyncio compute/gather overlap), ``shuffle``
    (adversarial completion order, for validation) — each exposing the
    ordered-completion seam (``imap``/``submit``) the streaming merge
    tournament folds through.

Usage::

    from repro.plan import compile_workload, get_executor

    plan = compile_workload("join", "sharded", n1=1024, n2=1024,
                            shards=4, padding="worst_case")
    print(plan.render())          # or plan.serialize() / plan.digest()

    engine = get_engine("sharded", workers=4, executor="pool")
    engine.join(left, right)      # consumes the same compiled plan

``python -m repro plan`` prints any query's plan from the command line.
"""

from .compile import (
    PIPELINE_OPS,
    WORKLOADS,
    compile_aggregate,
    compile_filter,
    compile_join,
    compile_multiway,
    compile_order_by,
    compile_pipeline,
    compile_workload,
)
from .executors import (
    AsyncExecutor,
    Executor,
    InlineExecutor,
    PoolExecutor,
    ShuffleExecutor,
    available_executors,
    completion_stream,
    executor_stats,
    get_executor,
    host_publish_arrays,
    host_unpublish,
    register_executor,
    resolve_executor,
    run_tasks,
    shutdown_pools,
    shutdown_warm_executors,
    submit_task,
    warm_executor,
    warm_pool,
)
from .ir import MergeNode, OpNode, Plan, PlanBuilder, tournament_schedule
from .memo import active_plan_memo, memoised, set_plan_memo
from .partition import check_shards, partition_plan, shard_capacity, shard_counts

__all__ = [
    "AsyncExecutor",
    "Executor",
    "InlineExecutor",
    "MergeNode",
    "OpNode",
    "PIPELINE_OPS",
    "Plan",
    "PlanBuilder",
    "PoolExecutor",
    "ShuffleExecutor",
    "WORKLOADS",
    "active_plan_memo",
    "available_executors",
    "check_shards",
    "compile_aggregate",
    "compile_filter",
    "compile_join",
    "compile_multiway",
    "compile_order_by",
    "compile_pipeline",
    "compile_workload",
    "completion_stream",
    "executor_stats",
    "get_executor",
    "host_publish_arrays",
    "host_unpublish",
    "memoised",
    "partition_plan",
    "register_executor",
    "resolve_executor",
    "run_tasks",
    "set_plan_memo",
    "shard_capacity",
    "shard_counts",
    "shutdown_pools",
    "shutdown_warm_executors",
    "submit_task",
    "tournament_schedule",
    "warm_executor",
    "warm_pool",
]
