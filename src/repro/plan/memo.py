"""The plan-memo hook: an optional cross-query cache for pure plan functions.

Every compiler in :mod:`repro.plan.compile` — and the schedule functions
they share with the runtime drivers (:func:`~repro.plan.ir.tournament_schedule`,
:func:`~repro.plan.partition.partition_plan`, …) — is a *pure function of
public values*, and its results (:class:`~repro.plan.ir.Plan`, tuples of
:class:`~repro.plan.ir.MergeNode`, count tuples) are immutable.  That makes
them safe to cache across queries: a cache hit is byte-identical to a fresh
compile by construction, and the service layer's tests pin it.

The hook is deliberately *not* a per-function ``functools.lru_cache``:

* Callers bind the compile functions at import time (``from ..plan.compile
  import sharded_join_plan``), so caching has to live *inside* the call,
  not on the module attribute.
* Whether to cache at all is a policy decision of the process hosting the
  query (a one-shot CLI run gains nothing; ``repro serve`` gains the whole
  compile), so the cache is pluggable: :func:`set_plan_memo` installs one
  process-wide, ``None`` (the default) compiles fresh on every call.

A memo object implements one method::

    memo.get_or_compute(kind, fn, args, kwargs) -> result

where ``kind`` is the coarse entry-point class (``"plan"`` for Plan
compilers, ``"schedule"`` for the pure schedule helpers).  The in-tree
implementation is :class:`repro.service.plan_cache.PlanCache`.
"""

from __future__ import annotations

import functools
from typing import Callable

#: The installed memo, or ``None`` — compile fresh on every call.
_ACTIVE = None


def set_plan_memo(memo):
    """Install (or, with ``None``, clear) the process-wide plan memo.

    Returns the previously installed memo so callers can restore it —
    the service layer brackets its lifetime with ``start()``/``close()``.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = memo
    return previous


def active_plan_memo():
    """The currently installed memo (``None`` when caching is off)."""
    return _ACTIVE


def memoised(kind: str) -> Callable:
    """Decorate a pure plan function with the memo hook.

    With no memo installed the wrapper is a single global read plus the
    call — the one-shot CLI path stays untouched.  The undecorated
    function stays reachable as ``fn.__wrapped__`` (tests use it to pin
    cache hits byte-identical to fresh compiles).
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            memo = _ACTIVE
            if memo is None:
                return fn(*args, **kwargs)
            return memo.get_or_compute(kind, fn, args, kwargs)

        return wrapper

    return decorate
