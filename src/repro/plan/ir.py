"""The public Plan IR: the oblivious schedule as an explicit artifact.

The paper's security argument is that the *schedule* of oblivious
primitives — which networks run, at which sizes, in which order — is a
function of public values only.  Until now that schedule was an emergent
property, re-derived ad hoc inside each engine; this module makes it a
first-class, serializable value.  A :class:`Plan` is a DAG of
:class:`OpNode` operator nodes whose shapes, bounds and shard grids are
computed *up front* from the public inputs (``n1, n2, …, k, padding
bounds``) by :mod:`repro.plan.compile`, before any data is touched.

Two properties make the IR useful:

1. **Obliviousness becomes checkable by equality.**  Two runs over inputs
   with the same public shapes must compile — and execute — byte-identical
   serialized plans (:meth:`Plan.serialize`); ``tests/test_plan.py`` pins
   this across adversarial key distributions, and ``python -m repro plan``
   prints the artifact for any query so it can be audited offline.
2. **Execution is substrate-independent.**  A plan says *what* runs at
   which public sizes; the :mod:`repro.plan.executors` layer decides *how*
   (inline, shared-memory process pool, asyncio overlap).  Nothing in a
   plan depends on the executor, so changing the substrate provably cannot
   change the leakage.

Attribute values are restricted to a JSON-safe, deterministic subset
(ints, strings, bools, ``None`` and nested sequences thereof);
``None`` marks a size that is *not* known at compile time and will be
revealed at run time (the ``"revealed"`` padding mode's deliberate leak).
"""

from __future__ import annotations

import hashlib
import json
import numbers
from dataclasses import dataclass

from ..errors import InputError
from .memo import memoised

#: Serialization format tag, bumped on any change to the byte layout.
#: Format 3 adds pipeline plans: ``channel`` edge nodes carrying public
#: per-block capacities between embedded per-operator sub-plans.
#: Format 4 adds ``expand_segment`` nodes under padded sharded joins: each
#: grid cell's distribute-expand is split into plan-bounded output windows
#: whose caps are a pure function of ``(n1, n2, k, target)``.
#: Format 5 adds ``join_tree`` plans: bottom-up ``multiplicity`` nodes (one
#: per tree edge), per-node ``finalize``/``markers`` nodes, one
#: ``distribute_expand`` stab per node (sharded: ``join_tree_window``
#: slot-space tasks feeding the merge bracket) and a final ``align_concat``
#: — every attribute a pure function of ``(sizes, edges, k, padding, bound)``.
PLAN_FORMAT = 5


def _freeze(value, context: str):
    """Normalise one public attribute value to a hashable, JSON-safe form.

    Sequences become tuples recursively; floats are rejected outright
    (their serialization is platform-dependent and no public shape in this
    system is fractional), as is any other type that could make two
    equal plans serialize differently.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)  # collapses numpy integer scalars too
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item, context) for item in value)
    raise InputError(
        f"plan attribute {context} must be int/str/bool/None or a sequence "
        f"of those, got {type(value).__name__}"
    )


def _thaw(value):
    """Tuples back to lists for JSON emission."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class OpNode:
    """One operator of a plan: a public op name, public attributes, edges.

    ``attrs`` is a name-sorted tuple of ``(name, value)`` pairs — sorted so
    that equal nodes are equal values and serialize identically.
    ``inputs`` are indices of upstream nodes in the owning plan's ``nodes``
    tuple (always smaller than the node's own index: plans are built in
    topological order).
    """

    op: str
    attrs: tuple[tuple[str, object], ...] = ()
    inputs: tuple[int, ...] = ()

    def attr(self, name: str, default=None):
        for key, value in self.attrs:
            if key == name:
                return value
        return default

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "attrs": {name: _thaw(value) for name, value in self.attrs},
            "inputs": list(self.inputs),
        }


@dataclass(frozen=True)
class Plan:
    """A compiled oblivious schedule: workload + public shapes + node DAG.

    ``shapes`` carries the public inputs the plan was compiled from
    (``n1``, ``n2``, ``k``, ``target``, ``bounds`` …) — everything the
    adversary view of the eventual execution is allowed to depend on, and
    *nothing else*.  Serialization is canonical (sorted keys, no
    whitespace), so byte equality of :meth:`serialize` is plan equality.
    """

    workload: str
    engine: str
    shapes: tuple[tuple[str, object], ...]
    nodes: tuple[OpNode, ...]

    def shape(self, name: str, default=None):
        for key, value in self.shapes:
            if key == name:
                return value
        return default

    def nodes_by_op(self, op: str) -> list[OpNode]:
        """All nodes with the given op name, in plan (topological) order."""
        return [node for node in self.nodes if node.op == op]

    def to_dict(self) -> dict:
        return {
            "format": PLAN_FORMAT,
            "workload": self.workload,
            "engine": self.engine,
            "shapes": {name: _thaw(value) for name, value in self.shapes},
            "nodes": [node.to_dict() for node in self.nodes],
        }

    def serialize(self) -> bytes:
        """Canonical bytes; byte equality ⇔ identical public schedule."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def digest(self) -> str:
        """SHA-256 of :meth:`serialize` — the plan's public fingerprint."""
        return hashlib.sha256(self.serialize()).hexdigest()

    def render(self) -> str:
        """Human-readable one-node-per-line view (the CLI ``plan`` output)."""
        shape_text = ", ".join(f"{k}={_thaw(v)!r}" for k, v in self.shapes)
        lines = [
            f"plan {self.workload} on {self.engine} ({shape_text})",
            f"digest {self.digest()}",
        ]
        for index, node in enumerate(self.nodes):
            attrs = " ".join(f"{k}={_thaw(v)!r}" for k, v in node.attrs)
            arrows = (
                " <- " + ",".join(str(i) for i in node.inputs)
                if node.inputs
                else ""
            )
            lines.append(f"  [{index:3d}] {node.op} {attrs}{arrows}")
        return "\n".join(lines)


# -- the merge tournament's public schedule ----------------------------------


@dataclass(frozen=True)
class MergeNode:
    """One slot of a bitonic merge tournament round, as public schedule.

    ``round`` counts from 1 (round 0 is the input runs); ``slot`` is the
    node's position within its round.  ``left``/``right`` are *slot*
    indices in the previous round; ``right is None`` marks a carry — an odd
    tail run promoted unmerged to the next round, executing zero
    comparators.  ``left_rows``/``right_rows``/``rows`` are the public run
    lengths (post-truncation), or ``None`` when the lengths are only
    revealed at run time (the ``"revealed"`` padding mode).

    The whole tournament — which pairs merge, in which bracket position,
    at which sizes — is produced by :func:`tournament_schedule`, a pure
    function of ``(run count, run lengths, truncate)``.  Both the plan
    compilers (which emit one ``merge_pair`` op node per pairing) and the
    runtime streaming tournament (:class:`repro.shard.merge.StreamingTournament`)
    consume this same function, so the executed pairing order cannot drift
    from the compiled artifact no matter in which order grid tasks finish.
    """

    round: int
    slot: int
    left: int
    right: int | None
    left_rows: int | None = None
    right_rows: int | None = None
    rows: int | None = None

    @property
    def is_carry(self) -> bool:
        return self.right is None


@memoised("schedule")
def tournament_schedule(
    runs: int,
    run_lengths=None,
    truncate: int | None = None,
) -> tuple[MergeNode, ...]:
    """The balanced tournament's full pairing schedule for ``runs`` runs.

    Pure in ``(runs, run_lengths, truncate)`` — the public values the merge
    schedule is allowed to depend on.  Round ``r`` pairs the previous
    round's slots ``(2s, 2s+1)`` in order; an odd tail slot is carried.
    With ``run_lengths`` given, every node also carries its public input
    and output lengths, with ``truncate`` applied to the inputs first and
    to every merge output (the fused expand-truncate of padded execution),
    mirroring :func:`repro.shard.merge.oblivious_merge_runs` exactly.
    """
    if runs < 0:
        raise InputError(f"tournament needs a non-negative run count, got {runs}")
    if run_lengths is not None and len(run_lengths) != runs:
        raise InputError(
            f"tournament over {runs} runs got {len(run_lengths)} run lengths"
        )
    if run_lengths is None:
        lengths: list[int | None] = [None] * runs
    else:
        lengths = [
            int(length) if truncate is None else min(int(length), truncate)
            for length in run_lengths
        ]
    nodes: list[MergeNode] = []
    rnd = 0
    while len(lengths) > 1:
        rnd += 1
        merged: list[int | None] = []
        for slot in range((len(lengths) + 1) // 2):
            li, ri = 2 * slot, 2 * slot + 1
            if ri >= len(lengths):
                nodes.append(
                    MergeNode(rnd, slot, li, None, lengths[li], None, lengths[li])
                )
                merged.append(lengths[li])
                continue
            la, lb = lengths[li], lengths[ri]
            if la is None or lb is None:
                rows = None
            else:
                rows = la + lb if truncate is None else min(la + lb, truncate)
            nodes.append(MergeNode(rnd, slot, li, ri, la, lb, rows))
            merged.append(rows)
        lengths = merged
    return tuple(nodes)


class PlanBuilder:
    """Accumulates nodes in topological order and freezes them into a Plan."""

    def __init__(self, workload: str, engine: str, **shapes) -> None:
        self.workload = workload
        self.engine = engine
        self.shapes = tuple(
            (name, _freeze(value, f"shape {name!r}"))
            for name, value in sorted(shapes.items())
        )
        self._nodes: list[OpNode] = []

    def add(self, op: str, inputs: tuple[int, ...] = (), **attrs) -> int:
        """Append a node; returns its index for downstream edges."""
        for index in inputs:
            if not 0 <= index < len(self._nodes):
                raise InputError(
                    f"plan node {op!r} references unknown input {index}"
                )
        self._nodes.append(
            OpNode(
                op=op,
                attrs=tuple(
                    (name, _freeze(value, f"{op}.{name}"))
                    for name, value in sorted(attrs.items())
                ),
                inputs=tuple(int(i) for i in inputs),
            )
        )
        return len(self._nodes) - 1

    def embed(self, plan: Plan, **extra_attrs) -> tuple[int, ...]:
        """Inline another plan's nodes (e.g. one cascade step's join plan).

        Node indices are offset to stay valid; ``extra_attrs`` (typically
        ``step=s``) are merged into every embedded node so the flattened
        DAG remains self-describing.  Returns the new indices.
        """
        offset = len(self._nodes)
        for node in plan.nodes:
            merged = dict(node.attrs)
            for name, value in extra_attrs.items():
                merged[name] = _freeze(value, f"{node.op}.{name}")
            self._nodes.append(
                OpNode(
                    op=node.op,
                    attrs=tuple(sorted(merged.items())),
                    inputs=tuple(i + offset for i in node.inputs),
                )
            )
        return tuple(range(offset, len(self._nodes)))

    def build(self) -> Plan:
        return Plan(
            workload=self.workload,
            engine=self.engine,
            shapes=self.shapes,
            nodes=tuple(self._nodes),
        )
