"""Pluggable executors: *how* a compiled plan's tasks run.

A :class:`~repro.plan.ir.Plan` fixes the public schedule — which tasks run
at which sizes, in which order.  Executors fix the substrate.  The contract
is deliberately tiny::

    executor.map(task, payloads) -> list   # results in payload order

``task`` must be a module-level (picklable) function of one payload; every
payload's *shape* is already data-independent (padded shards), so no
executor can change the leakage — only the wall clock.  Three ship
in-tree:

``inline``
    Runs the task list in the calling process.  Deterministic, fork-free,
    the default for ``workers=1`` and what the test suite hammers.
``pool``
    A persistent ``multiprocessing`` pool with **shared-memory column
    transport**: every distinct numpy array in a dispatch is written once
    into a ``multiprocessing.shared_memory`` segment and workers attach
    zero-copy, read-only views.  This replaces pickling the shard payloads
    — the sharded join's ``k x k`` grid references each shard's columns
    ``k`` times, which pickle would serialize ``k`` times per dispatch and
    shared memory writes exactly once.  A worker attaches a dispatch's
    segment once and keeps it mapped for the dispatch's remaining tasks
    (one segment per dispatch, so one resident slot captures all the reuse
    there is).
``async``
    An asyncio wrapper that overlaps shard compute with result gather:
    every payload is dispatched immediately (to the shared process pool,
    or to threads at ``workers=1``) and results are awaited as they
    complete.  This is the seam a streaming engine plugs into — a consumer
    can start folding result ``i`` while task ``i+1`` is still running.

Pools are *persistent*: the first ``workers=N`` dispatch forks the pool,
later dispatches reuse it (:func:`shutdown_pools` tears them down; an
``atexit`` hook does so at interpreter exit).  All executors return results
in payload order, so the execution strategy never changes the output — the
executor-parametrised differential suite pins that bit for bit.
"""

from __future__ import annotations

import asyncio
import atexit
import multiprocessing
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from ..errors import InputError

#: Live pools keyed by worker count (see :func:`_pool`).
_POOLS: dict[int, multiprocessing.pool.Pool] = {}

#: The segment a worker currently has attached (name -> SharedMemory).
#: One dispatch = one segment, so a single slot captures all the reuse
#: there is (consecutive tasks of the same dispatch); keeping more would
#: only pin dead, already-unlinked arenas in memory.
_ATTACHED: "OrderedDict[str, object]" = OrderedDict()

#: How many segments a worker keeps resident before closing the oldest.
_ATTACH_LIMIT = 1


def check_workers(workers: int) -> int:
    """Validate a worker count; returns it for chaining."""
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        raise InputError(f"worker count must be an int >= 1, got {workers!r}")
    return workers


def _context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, POSIX) and fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _pool(workers: int) -> multiprocessing.pool.Pool:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _context().Pool(processes=workers)
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Terminate every cached worker pool (idempotent)."""
    for pool in _POOLS.values():
        pool.terminate()
        pool.join()
    _POOLS.clear()


atexit.register(shutdown_pools)


def warm_pool(workers: int) -> None:
    """Fork the ``workers``-process pool ahead of time (bench warm-up)."""
    check_workers(workers)
    if workers > 1:
        _pool(workers)


# -- shared-memory column transport ------------------------------------------


@dataclass(frozen=True)
class _ArrayRef:
    """Wire stand-in for one ndarray: segment name + layout, no bytes."""

    segment: str
    offset: int
    dtype: str
    shape: tuple[int, ...]


def _encode(obj, arena: dict, chunks: list):
    """Replace every ndarray in a payload tree with an :class:`_ArrayRef`.

    ``arena`` maps ``id(array)`` to its assigned ref so an array referenced
    by many payloads (each shard's columns appear in ``k`` grid tasks) is
    written exactly once; ``chunks`` collects ``(offset, array)`` copy
    instructions for :func:`_pack`.  Offsets are 64-byte aligned.
    """
    if isinstance(obj, np.ndarray):
        if obj.nbytes == 0:
            return obj  # zero-size arrays ship inline (nothing to share)
        ref = arena.get(id(obj))
        if ref is None:
            contiguous = np.ascontiguousarray(obj)
            if chunks:
                last_offset, last = chunks[-1]
                offset = -(-(last_offset + last.nbytes) // 64) * 64
            else:
                offset = 0
            ref = _ArrayRef(
                segment="",  # patched by _pack once the segment exists
                offset=offset,
                dtype=contiguous.dtype.str,
                shape=tuple(contiguous.shape),
            )
            arena[id(obj)] = ref
            chunks.append((offset, contiguous))
        return ref
    if isinstance(obj, tuple):
        return tuple(_encode(item, arena, chunks) for item in obj)
    if isinstance(obj, list):
        return [_encode(item, arena, chunks) for item in obj]
    if isinstance(obj, dict):
        return {key: _encode(value, arena, chunks) for key, value in obj.items()}
    return obj


def _pack(payloads: Sequence) -> tuple[object, list]:
    """Encode a batch: one shared segment for all arrays, refs in payloads."""
    from multiprocessing import shared_memory

    arena: dict = {}
    chunks: list = []
    encoded = [_encode(payload, arena, chunks) for payload in payloads]
    if not chunks:
        return None, encoded
    last_offset, last = chunks[-1]
    segment = shared_memory.SharedMemory(
        create=True, size=last_offset + last.nbytes
    )
    for offset, array in chunks:
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf, offset=offset
        )
        view[...] = array
    encoded = _rename(encoded, segment.name)
    return segment, encoded


def _rename(obj, name: str):
    """Stamp the final segment name into every ref of an encoded tree."""
    if isinstance(obj, _ArrayRef):
        return _ArrayRef(name, obj.offset, obj.dtype, obj.shape)
    if isinstance(obj, tuple):
        return tuple(_rename(item, name) for item in obj)
    if isinstance(obj, list):
        return [_rename(item, name) for item in obj]
    if isinstance(obj, dict):
        return {key: _rename(value, name) for key, value in obj.items()}
    return obj


def _attach(name: str):
    """Worker side: map a segment by name, caching the current dispatch's.

    The parent owns the segment lifecycle (it unlinks after the dispatch);
    a worker's mapping stays valid until closed, which is what lets the
    tasks of one dispatch share a single attach.  The cache holds exactly
    one segment — a new dispatch's first task evicts (and frees) the
    previous dispatch's arena, so long-lived workers never pin dead
    segments.
    """
    from multiprocessing import shared_memory

    segment = _ATTACHED.get(name)
    if segment is None:
        # The parent owns the segment's lifecycle (it registered it and
        # will unlink it); attaching must not register it a second time
        # with the (shared, under fork) resource tracker, or the tracker's
        # books go inconsistent and it prints spurious KeyErrors at exit.
        # Pool workers are single-threaded, so the patch window is safe.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        _ATTACHED[name] = segment
        while len(_ATTACHED) > _ATTACH_LIMIT:
            _, oldest = _ATTACHED.popitem(last=False)
            try:
                oldest.close()
            except BufferError:  # a stale traceback still holds a view;
                pass  # dropping the reference frees it with the gc instead
    else:
        _ATTACHED.move_to_end(name)
    return segment


def _decode(obj):
    """Rebuild a payload tree, materialising refs as read-only shm views."""
    if isinstance(obj, _ArrayRef):
        segment = _attach(obj.segment)
        view = np.ndarray(
            obj.shape,
            dtype=np.dtype(obj.dtype),
            buffer=segment.buf,
            offset=obj.offset,
        )
        view.flags.writeable = False  # tasks must copy before mutating
        return view
    if isinstance(obj, tuple):
        return tuple(_decode(item) for item in obj)
    if isinstance(obj, list):
        return [_decode(item) for item in obj]
    if isinstance(obj, dict):
        return {key: _decode(value) for key, value in obj.items()}
    return obj


def _run_encoded(call):
    """Worker entry point: decode one payload and run the task on it."""
    task, payload = call
    return task(_decode(payload))


# -- executors ---------------------------------------------------------------


@runtime_checkable
class Executor(Protocol):
    """The execution substrate contract: ordered map over padded payloads."""

    name: str
    #: How payload bytes reach the compute: "none", "shared_memory", "pickle".
    transport: str

    def map(self, task: Callable, payloads: Sequence) -> list: ...


class InlineExecutor:
    """Run the task list in the calling process (no pool, no transport)."""

    name = "inline"
    transport = "none"

    def __init__(self, workers: int = 1) -> None:
        self.workers = check_workers(workers)  # accepted for uniformity

    def map(self, task: Callable, payloads: Sequence) -> list:
        return [task(payload) for payload in payloads]


class PoolExecutor:
    """Persistent process pool + shared-memory column transport."""

    name = "pool"
    transport = "shared_memory"

    def __init__(self, workers: int = 2) -> None:
        self.workers = check_workers(workers)

    def map(self, task: Callable, payloads: Sequence) -> list:
        if len(payloads) <= 1 or self.workers == 1:
            # A single task (or a 1-process pool) gains nothing from the
            # round-trip; inline keeps the fast path fast.  Results are
            # identical either way — executors cannot change outputs.
            return [task(payload) for payload in payloads]
        segment, encoded = _pack(payloads)
        try:
            return _pool(self.workers).map(
                _run_encoded, [(task, payload) for payload in encoded]
            )
        finally:
            if segment is not None:
                segment.close()
                segment.unlink()


class AsyncExecutor:
    """Asyncio overlap of shard compute and result gather.

    Every payload is dispatched up front; an asyncio task per payload then
    awaits its result, so results are gathered (and, in a streaming
    consumer, processed) as they complete rather than after a barrier.
    ``workers > 1`` dispatches to the shared process pool (pickle
    transport); ``workers = 1`` overlaps on threads, which keeps the
    executor fork-free for tests and small inputs.
    """

    name = "async"

    def __init__(self, workers: int = 1) -> None:
        self.workers = check_workers(workers)

    @property
    def transport(self) -> str:
        """Pickle through the process pool; nothing crosses at workers=1."""
        return "pickle" if self.workers > 1 else "none"

    def map(self, task: Callable, payloads: Sequence) -> list:
        if len(payloads) <= 1:
            return [task(payload) for payload in payloads]
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            return asyncio.run(self._gather(task, list(payloads)))
        # Called from inside a running event loop (e.g. a streaming
        # consumer driving queries from an async app): ``map`` is a
        # blocking call by contract, and a nested asyncio.run on this
        # thread would raise, so run the gather on its own loop in a
        # helper thread and block here.
        import concurrent.futures

        with concurrent.futures.ThreadPoolExecutor(1) as runner:
            return runner.submit(
                asyncio.run, self._gather(task, list(payloads))
            ).result()

    async def _gather(self, task: Callable, payloads: list) -> list:
        loop = asyncio.get_running_loop()
        if self.workers > 1:
            pending = [
                _pool(self.workers).apply_async(task, (payload,))
                for payload in payloads
            ]
            futures = [
                loop.run_in_executor(None, result.get) for result in pending
            ]
        else:
            futures = [
                loop.run_in_executor(None, task, payload)
                for payload in payloads
            ]
        return list(await asyncio.gather(*futures))


#: Executor factories by name (the ``--executor`` choices).
_EXECUTORS: dict[str, type] = {
    InlineExecutor.name: InlineExecutor,
    PoolExecutor.name: PoolExecutor,
    AsyncExecutor.name: AsyncExecutor,
}


def register_executor(factory: type) -> type:
    """Register an executor class under ``factory.name``; returns it."""
    if not getattr(factory, "name", ""):
        raise InputError("executors must carry a non-empty name")
    _EXECUTORS[factory.name] = factory
    return factory


def available_executors() -> list[str]:
    """Sorted names of all registered executors."""
    return sorted(_EXECUTORS)


def get_executor(executor: str | Executor, workers: int = 1) -> Executor:
    """Resolve an executor by name (instances pass straight through)."""
    if not isinstance(executor, str):
        return executor
    try:
        factory = _EXECUTORS[executor]
    except KeyError:
        raise InputError(
            f"unknown executor {executor!r}; "
            f"available: {', '.join(available_executors())}"
        ) from None
    return factory(workers=check_workers(workers))


def resolve_executor(executor: str | Executor | None, workers: int = 1) -> Executor:
    """The drivers' default rule: explicit choice wins, else by workers.

    ``None`` keeps the historical behaviour — ``workers=1`` runs inline,
    ``workers>1`` runs on the (shared-memory) process pool.
    """
    check_workers(workers)
    if executor is None:
        executor = "inline" if workers == 1 else "pool"
    return get_executor(executor, workers=workers)


def run_tasks(task: Callable, payloads: Sequence, workers: int = 1) -> list:
    """Back-compat shim: map ``payloads`` under the default executor rule."""
    return resolve_executor(None, workers=workers).map(task, payloads)
