"""Pluggable executors: *how* a compiled plan's tasks run.

A :class:`~repro.plan.ir.Plan` fixes the public schedule — which tasks run
at which sizes, in which order.  Executors fix the substrate.  The contract
has two seams::

    executor.map(task, payloads)  -> list                  # payload order
    executor.imap(task, payloads) -> iter[(index, result)] # completion order
    executor.submit(task, payload) -> completion           # one deferred task

``task`` must be a module-level (picklable) function of one payload; every
payload's *shape* is already data-independent (padded shards), so no
executor can change the leakage — only the wall clock.  ``imap`` is the
**ordered-completion seam**: it hands results back as they finish, so a
streaming consumer (the sharded drivers' merge tournaments) can fold
result ``i`` while task ``i + 1`` is still running, instead of waiting on
a barrier.  Consumers must therefore be *arrival-order independent* —
``tests/test_streaming_merge.py`` pins that with the adversarial
``shuffle`` executor.  ``submit`` dispatches one task (a tournament's
pairwise merge) and returns a completion whose ``.result()`` blocks.
Four executors ship in-tree:

``inline``
    Runs the task list in the calling process.  Deterministic, fork-free,
    the default for ``workers=1`` and what the test suite hammers.
``pool``
    A persistent ``multiprocessing`` pool with **shared-memory column
    transport**: every distinct numpy array in a dispatch is written once
    into a ``multiprocessing.shared_memory`` segment and workers attach
    zero-copy, read-only views.  This replaces pickling the shard payloads
    — the sharded join's ``k x k`` grid references each shard's columns
    ``k`` times, which pickle would serialize ``k`` times per dispatch and
    shared memory writes exactly once.
``async``
    An asyncio wrapper that overlaps shard compute with result gather:
    every payload is dispatched immediately (to the shared process pool —
    over the same shared-memory transport as ``pool`` — or to threads at
    ``workers=1``) and results are awaited as they complete, without
    parking a helper thread per pending result.
``shuffle``
    A validation substrate: inline compute, adversarially shuffled
    *completion* order.  It exists to prove (in tests and the CI
    differential matrix) that no consumer depends on arrival order.

Worker-side results can also stay in shared memory across dispatches (the
**cross-dispatch column cache**): a task calls :func:`publish_columns` to
write its output into a fresh segment and returns the ref tree instead of
the bytes; the parent holds the refs, ships them verbatim inside later
payloads (``_encode`` passes refs through), and only
:func:`materialize_columns` / :func:`release_segments` at the very end.
This is what lets a merge tournament run round after round on workers
without the intermediate runs ever round-tripping through the parent.

Pools are *persistent*: the first ``workers=N`` dispatch forks the pool,
later dispatches reuse it (:func:`shutdown_pools` tears them down; an
``atexit`` hook does so at interpreter exit).  ``map`` returns results in
payload order, so the execution strategy never changes the output — the
executor-parametrised differential suite pins that bit for bit.
"""

from __future__ import annotations

import asyncio
import atexit
import multiprocessing
import os
import queue as queue_module
import random
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from ..errors import InputError

#: Live pools keyed by worker count (see :func:`_pool`).
_POOLS: dict[int, multiprocessing.pool.Pool] = {}

#: The dispatch *arena* a worker currently has attached (name -> shm).
#: One dispatch = one arena, so a single slot captures all the reuse there
#: is (consecutive tasks of the same dispatch); keeping more would only
#: pin dead, already-unlinked arenas in memory — a new dispatch's first
#: task evicts (and frees) the previous dispatch's arena.
_ATTACHED_ARENAS: "OrderedDict[str, object]" = OrderedDict()
_ARENA_LIMIT = 1

#: Worker-*published* run segments (the merge tournament's cross-dispatch
#: column cache) a worker has attached.  A merge task touches two at
#: once, so a short LRU keeps round-to-round reuse warm; late tournament
#: rounds can be ``O(m)`` each, so the cache is *byte*-bounded as well as
#: count-bounded — a persistent worker must not pin dead, parent-unlinked
#: runs from a finished query until the next large attach evicts them.
_ATTACHED_RUNS: "OrderedDict[str, object]" = OrderedDict()
_RUN_LIMIT = 8
_RUN_BYTES_LIMIT = 64 * 2**20

#: *Pinned* table segments a worker has attached — columns the parent
#: published once (:func:`host_publish_arrays`) so repeat queries over the
#: same table skip the parent->worker column write entirely.  They outlive
#: dispatches *and* queries (the service layer unpublishes on table
#: mutation or shutdown), so they must never be evicted by a dispatch
#: arena or a run segment; they get their own LRU with its own byte
#: budget.
_ATTACHED_TABLES: "OrderedDict[str, object]" = OrderedDict()
_TABLE_LIMIT = 16
_TABLE_BYTES_LIMIT = 256 * 2**20


def check_workers(workers: int) -> int:
    """Validate a worker count; returns it for chaining."""
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        raise InputError(f"worker count must be an int >= 1, got {workers!r}")
    return workers


def _context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, POSIX) and fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _pool(workers: int) -> multiprocessing.pool.Pool:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _context().Pool(processes=workers)
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Terminate every cached worker pool (idempotent)."""
    for pool in _POOLS.values():
        pool.terminate()
        pool.join()
    _POOLS.clear()


atexit.register(shutdown_pools)


def warm_pool(workers: int) -> None:
    """Fork the ``workers``-process pool ahead of time (bench warm-up)."""
    check_workers(workers)
    if workers > 1:
        _pool(workers)


# -- shared-memory column transport ------------------------------------------


@dataclass(frozen=True)
class _ArrayRef:
    """Wire stand-in for one ndarray: segment name + layout, no bytes.

    ``published`` marks refs into worker-published run segments (the
    cross-dispatch cache) as opposed to a dispatch's arena; ``pinned``
    marks refs into *parent*-published table segments (the cross-query
    column cache).  The worker attach cache treats the three differently.
    """

    segment: str
    offset: int
    dtype: str
    shape: tuple[int, ...]
    published: bool = False
    pinned: bool = False


@contextmanager
def _borrowed_segment_ownership():
    """Suppress resource-tracker bookkeeping inside the block.

    One process owns each segment's tracker entry (the process that
    creates it under normal registration); every *borrowed* open — a
    worker attach, a worker creating a published-run segment whose
    lifecycle it immediately hands to the parent, the parent
    materialising or unlinking a published run it never registered — must
    neither register the name a second time with the (shared, under fork)
    resource tracker nor unregister a name the tracker never booked, or
    the tracker's books go inconsistent and it prints spurious KeyErrors
    at exit.  Pool workers and the parent's dispatch path are
    single-threaded, so the patch window is safe.
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    original_unregister = resource_tracker.unregister
    resource_tracker.register = lambda *args, **kwargs: None
    resource_tracker.unregister = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original_register
        resource_tracker.unregister = original_unregister


def _map_tree(node, leaf):
    """Rebuild a payload tree (tuples/lists/dicts), applying ``leaf`` to
    every non-container value — the one traversal all transport walkers
    (:func:`_encode`, :func:`_rename`, :func:`_decode`,
    :func:`materialize_columns`) share."""
    if isinstance(node, tuple):
        return tuple(_map_tree(item, leaf) for item in node)
    if isinstance(node, list):
        return [_map_tree(item, leaf) for item in node]
    if isinstance(node, dict):
        return {key: _map_tree(value, leaf) for key, value in node.items()}
    return leaf(node)


def _encode(obj, arena: dict, chunks: list):
    """Replace every ndarray in a payload tree with an :class:`_ArrayRef`.

    ``arena`` maps ``id(array)`` to its assigned ref so an array referenced
    by many payloads (each shard's columns appear in ``k`` grid tasks) is
    written exactly once; ``chunks`` collects ``(offset, array)`` copy
    instructions for :func:`_pack`.  Offsets are 64-byte aligned.
    :class:`_ArrayRef` leaves already in the tree (runs published by a
    worker in an earlier dispatch) pass through untouched — that is the
    cross-dispatch cache's no-round-trip property.
    """

    def leaf(value):
        if not isinstance(value, np.ndarray):
            return value
        if value.nbytes == 0:
            return value  # zero-size arrays ship inline (nothing to share)
        hosted = _HOST_PUBLISHED.get(id(value))
        if hosted is not None and hosted[0] is value:
            # A column the parent already published cross-query: ship the
            # pinned ref instead of re-writing the bytes into the arena.
            return hosted[1]
        ref = arena.get(id(value))
        if ref is None:
            contiguous = np.ascontiguousarray(value)
            if chunks:
                last_offset, last = chunks[-1]
                offset = -(-(last_offset + last.nbytes) // 64) * 64
            else:
                offset = 0
            ref = _ArrayRef(
                segment="",  # patched by _pack once the segment exists
                offset=offset,
                dtype=contiguous.dtype.str,
                shape=tuple(contiguous.shape),
            )
            arena[id(value)] = ref
            chunks.append((offset, contiguous))
        return ref

    return _map_tree(obj, leaf)


def _pack(
    payloads: Sequence, run_sized: bool = False, owned: bool = True
) -> tuple[object, list]:
    """Encode a batch: one shared segment for all arrays, refs in payloads.

    ``run_sized`` marks the segment for the worker's published-run LRU
    rather than the single dispatch-arena slot — used by ``submit`` (one
    merge's pair of runs), whose small segments must not evict a live
    grid arena between two of its dispatch's tasks.  ``owned=False``
    creates the segment under borrowed ownership (no tracker entry):
    the caller is handing the lifecycle to another process
    (:func:`publish_columns`).
    """
    from multiprocessing import shared_memory

    arena: dict = {}
    chunks: list = []
    encoded = [_encode(payload, arena, chunks) for payload in payloads]
    if not chunks:
        return None, encoded
    last_offset, last = chunks[-1]
    size = last_offset + last.nbytes
    if owned:
        segment = shared_memory.SharedMemory(create=True, size=size)
    else:
        with _borrowed_segment_ownership():
            segment = shared_memory.SharedMemory(create=True, size=size)
    for offset, array in chunks:
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf, offset=offset
        )
        view[...] = array
    encoded = _rename(encoded, segment.name, published=run_sized)
    return segment, encoded


def _rename(obj, name: str, published: bool = False):
    """Stamp the final segment name into every *unnamed* ref of a tree.

    Refs that already carry a segment name (published runs from earlier
    dispatches) keep it — only the refs this pack created are patched.
    """

    def leaf(value):
        if isinstance(value, _ArrayRef) and not value.segment:
            return _ArrayRef(name, value.offset, value.dtype, value.shape, published)
        return value

    return _map_tree(obj, leaf)


def _attach(name: str, published: bool = False, pinned: bool = False):
    """Worker side: map a segment by name, caching recent attachments.

    The parent owns every segment's lifecycle (it unlinks after the
    dispatch, or — for published runs — when the consuming tournament
    finishes, or — for pinned table columns — when the table mutates or
    the service shuts down); a worker's mapping stays valid until closed,
    which is what lets the tasks of one dispatch share a single attach.
    Dispatch arenas, published run segments and pinned table segments
    cache separately: a new dispatch's first task evicts (and frees) the
    previous dispatch's O(n) arena immediately, the small published-run
    segments keep a short LRU of their own, and pinned table columns —
    reused query after query — keep the longest-lived LRU, so a dispatch's
    churn can never flush the cross-query cache.
    """
    from multiprocessing import shared_memory

    if pinned:
        cache, limit, bytes_limit = _ATTACHED_TABLES, _TABLE_LIMIT, _TABLE_BYTES_LIMIT
    elif published:
        cache, limit, bytes_limit = _ATTACHED_RUNS, _RUN_LIMIT, _RUN_BYTES_LIMIT
    else:
        cache, limit, bytes_limit = _ATTACHED_ARENAS, _ARENA_LIMIT, None
    segment = cache.get(name)
    if segment is None:
        with _borrowed_segment_ownership():
            segment = shared_memory.SharedMemory(name=name)
        cache[name] = segment

        def over_budget() -> bool:
            if len(cache) > limit:
                return True
            return bytes_limit is not None and len(cache) > 1 and (
                sum(entry.size for entry in cache.values()) > bytes_limit
            )

        while over_budget():
            _, oldest = cache.popitem(last=False)
            try:
                oldest.close()
            except BufferError:  # a live view still references the buffer;
                pass  # dropping the reference frees it with the gc instead
    else:
        cache.move_to_end(name)
    return segment


def _decode(obj):
    """Rebuild a payload tree, materialising refs as read-only shm views."""

    def leaf(value):
        if not isinstance(value, _ArrayRef):
            return value
        segment = _attach(value.segment, value.published, value.pinned)
        view = np.ndarray(
            value.shape,
            dtype=np.dtype(value.dtype),
            buffer=segment.buf,
            offset=value.offset,
        )
        view.flags.writeable = False  # tasks must copy before mutating
        return view

    return _map_tree(obj, leaf)


def _run_encoded(call):
    """Worker entry point: decode one payload and run the task on it."""
    task, payload = call
    return task(_decode(payload))


# -- store-handle payload resolvers ------------------------------------------

#: leaf type -> resolver: how a worker turns a storage ref (e.g. a
#: :class:`repro.store.runtime.StoreBlocksRef`) into its column array.
_PAYLOAD_RESOLVERS: dict[type, Callable] = {}


def register_payload_resolver(leaf_type: type, resolve: Callable) -> None:
    """Teach tasks to resolve a custom payload leaf type worker-side.

    Storage refs are plain picklable dataclasses, so they pass through
    :func:`_encode`/:func:`_decode` untouched and cross to pool/async
    workers as a few hundred bytes; the *task* then calls
    :func:`resolve_payload` and each ref faults in its own blocks through
    a store handle attached in the worker process — the parent never
    materialises (or ships) the columns.  Registration happens at the
    ref module's import time, and unpickling a ref imports that module,
    so any process that can receive a ref can resolve it.
    """
    _PAYLOAD_RESOLVERS[leaf_type] = resolve


def resolve_payload(tree):
    """Resolve every registered storage-ref leaf of a payload tree.

    Idempotent (resolved leaves are plain arrays) and free for ref-less
    payloads beyond the tree walk; every shard task calls it first so
    inline and remote substrates see identical inputs.
    """
    if not _PAYLOAD_RESOLVERS:
        return tree

    def leaf(value):
        resolve = _PAYLOAD_RESOLVERS.get(type(value))
        return resolve(value) if resolve is not None else value

    return _map_tree(tree, leaf)


# -- cross-dispatch column cache ---------------------------------------------


def publish_columns(tree) -> tuple[object, str | None]:
    """Worker side: park a task's output arrays in a fresh shm segment.

    Returns ``(encoded, segment_name)`` — the encoded tree references the
    new segment by name and the calling process keeps **no** mapping, so
    the result can be handed to the parent as a few hundred bytes of refs
    instead of the array payload.  The parent adopts ownership: it should
    :func:`adopt_segments` the name on receipt (crash-safe tracker
    booking) and must eventually :func:`release_segments` it (the
    streaming tournament does both).  A tree with no (non-empty) arrays
    publishes nothing and comes back with ``segment_name=None``.
    """
    segment, encoded = _pack([tree], run_sized=True, owned=False)
    if segment is None:
        return encoded[0], None
    name = segment.name
    segment.close()
    return encoded[0], name


def adopt_segments(names) -> None:
    """Parent side: take resource-tracker ownership of published segments.

    The worker created each segment under borrowed ownership — no tracker
    entry anywhere — so a hard parent crash (SIGKILL, OOM) between publish
    and release would orphan the shm until reboot.  Booking the name here,
    the moment the parent learns it, leaves the (shared, under fork)
    resource tracker to unlink it when the process tree dies.
    :func:`release_segments` unlinks normally, which unregisters the
    booking again.  POSIX only; Windows shared memory has no tracker and
    frees on last close.
    """
    if os.name != "posix":
        return
    from multiprocessing import resource_tracker

    for name in names:
        # SharedMemory registers the slash-prefixed internal name on
        # POSIX; book the same form so unlink()'s unregister matches.
        resource_tracker.register(f"/{name}", "shared_memory")


def materialize_columns(tree):
    """Parent side: copy a (possibly ref-encoded) result tree into local arrays.

    Plain trees pass through unchanged; :class:`_ArrayRef` leaves are read
    out of their segments into fresh owned copies, and every mapping this
    call opened is closed before returning (unlinking stays the caller's
    job — :func:`release_segments`).
    """
    from multiprocessing import shared_memory

    segments: dict[str, object] = {}

    def leaf(value):
        if not isinstance(value, _ArrayRef):
            return value
        segment = segments.get(value.segment)
        if segment is None:
            with _borrowed_segment_ownership():
                segment = shared_memory.SharedMemory(name=value.segment)
            segments[value.segment] = segment
        view = np.ndarray(
            value.shape,
            dtype=np.dtype(value.dtype),
            buffer=segment.buf,
            offset=value.offset,
        )
        return view.copy()

    try:
        return _map_tree(tree, leaf)
    finally:
        for segment in segments.values():
            segment.close()


def release_segments(names) -> None:
    """Unlink published segments the parent adopted and has finished with.

    Pairs with :func:`adopt_segments`: the unlink also unregisters the
    tracker booking made there.  Idempotent and tolerant of already-gone
    names (a crashed worker, a double release) — and a name released
    without ever being unlinked here is still reclaimed by the tracker at
    process-tree death, never leaked past it.
    """
    from multiprocessing import shared_memory

    for name in names:
        try:
            with _borrowed_segment_ownership():
                segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        segment.close()
        try:
            segment.unlink()  # unregisters the adopt_segments() booking
        except FileNotFoundError:
            pass


# -- cross-query column cache (parent-published, pinned) ---------------------

#: Parent-published table columns: ``id(array)`` -> ``(array, ref)``.  The
#: strong array reference is the keepalive that makes ``id()`` keys safe —
#: an entry's key can only collide after the entry itself is unpublished.
_HOST_PUBLISHED: dict[int, tuple[np.ndarray, _ArrayRef]] = {}

#: Parent-owned pinned segments by name (the parent keeps the mapping and
#: the resource-tracker entry; workers attach borrowed).
_HOST_SEGMENTS: dict[str, object] = {}


def host_publish_arrays(arrays) -> str | None:
    """Parent side: pin table columns in one long-lived shm segment.

    The cross-*query* analogue of a dispatch arena: every later dispatch
    whose payload tree references one of these exact array objects ships a
    pinned ref instead of the bytes (:func:`_encode` checks the registry),
    so repeat queries over the same table skip the parent->worker column
    write entirely.  The parent owns the segment — normal resource-tracker
    entry, unlinked by :func:`host_unpublish` — and workers keep their own
    pinned-attach LRU, separate from the per-dispatch caches.

    Arrays already registered (or empty) are skipped; returns the new
    segment's name, or ``None`` when nothing needed publishing.
    """
    from multiprocessing import shared_memory

    entries = []
    offset = 0
    for array in arrays:
        if not isinstance(array, np.ndarray) or array.nbytes == 0:
            continue
        hosted = _HOST_PUBLISHED.get(id(array))
        if hosted is not None and hosted[0] is array:
            continue
        contiguous = np.ascontiguousarray(array)
        offset = -(-offset // 64) * 64
        entries.append((array, contiguous, offset))
        offset += contiguous.nbytes
    if not entries:
        return None
    segment = shared_memory.SharedMemory(create=True, size=offset)
    for original, contiguous, start in entries:
        view = np.ndarray(
            contiguous.shape,
            dtype=contiguous.dtype,
            buffer=segment.buf,
            offset=start,
        )
        view[...] = contiguous
        _HOST_PUBLISHED[id(original)] = (
            original,
            _ArrayRef(
                segment.name,
                start,
                contiguous.dtype.str,
                tuple(contiguous.shape),
                published=False,
                pinned=True,
            ),
        )
    _HOST_SEGMENTS[segment.name] = segment
    return segment.name


def host_unpublish(names=None) -> None:
    """Unpin published table segments (all of them when ``names`` is None).

    Drops the registry entries (later dispatches fall back to arena
    transport for those arrays) and unlinks the segments.  Workers that
    still hold a mapping keep reading valid bytes until their pinned LRU
    evicts it — the name is never reused, so there is no aliasing hazard.
    Idempotent.
    """
    if names is None:
        names = list(_HOST_SEGMENTS)
    names = set(names)
    stale = [
        key
        for key, (_, ref) in _HOST_PUBLISHED.items()
        if ref.segment in names
    ]
    for key in stale:
        del _HOST_PUBLISHED[key]
    for name in names:
        segment = _HOST_SEGMENTS.pop(name, None)
        if segment is None:
            continue
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


def host_published_count() -> int:
    """How many pinned table segments the parent currently holds."""
    return len(_HOST_SEGMENTS)


atexit.register(host_unpublish)


# -- completions -------------------------------------------------------------


@dataclass
class _Immediate:
    """A completion whose task already ran (inline substrates)."""

    value: object

    def result(self):
        return self.value


class _LazyCall:
    """A completion that runs its task on first ``result()`` (shuffle)."""

    def __init__(self, task: Callable, payload) -> None:
        self._task = task
        self._payload = payload
        self._value = None
        self._ran = False

    def result(self):
        if not self._ran:
            self._value = self._task(self._payload)
            self._task = self._payload = None
            self._ran = True
        return self._value


class _PoolCompletion:
    """A completion backed by ``apply_async``; owns its dispatch segment."""

    def __init__(self, async_result, segment) -> None:
        self._async_result = async_result
        self._segment = segment

    def result(self):
        try:
            return self._async_result.get()
        finally:
            if self._segment is not None:
                self._segment.close()
                self._segment.unlink()
                self._segment = None


def _published_result_segments(tree) -> set[str]:
    """Worker-published (non-pinned) segment names a result tree references."""
    names: set[str] = set()

    def leaf(value):
        if isinstance(value, _ArrayRef) and value.published and not value.pinned:
            names.add(value.segment)
        return value

    _map_tree(tree, leaf)
    return names


def _pool_imap(
    pool, task: Callable, payloads: Sequence
) -> Iterator[tuple[int, object]]:
    """Dispatch a packed batch and yield ``(index, result)`` as they finish.

    One shared-memory arena for the whole batch; per-task completion
    callbacks push into a thread-safe queue (no helper thread per pending
    result), and the arena is unlinked once every result is in.

    The error path must not abandon the stragglers: a failing task aborts
    the stream, but sibling tasks that already completed — or complete
    while the abort propagates — may have *published* their results
    (:func:`publish_columns`), and a published segment has no
    resource-tracker entry until the parent adopts it.  Dropping those
    results on the floor would leak the segments until reboot, so the
    abort drains the remaining completions and releases every published
    segment nobody will ever adopt before re-raising.
    """
    segment, encoded = _pack(payloads)
    results: queue_module.SimpleQueue = queue_module.SimpleQueue()
    try:
        for index, payload in enumerate(encoded):
            pool.apply_async(
                _run_encoded,
                ((task, payload),),
                callback=lambda value, index=index: results.put(
                    (index, value, None)
                ),
                error_callback=lambda error, index=index: results.put(
                    (index, None, error)
                ),
            )
        pending = len(encoded)
        failure: BaseException | None = None
        while pending:
            index, value, error = results.get()
            pending -= 1
            if error is not None:
                failure = error
                break
            yield index, value
        if failure is not None:
            orphaned: set[str] = set()
            while pending:
                try:
                    _, value, error = results.get(timeout=60.0)
                except queue_module.Empty:
                    break  # a wedged worker; the tracker reclaims at exit
                pending -= 1
                if error is None:
                    orphaned |= _published_result_segments(value)
            if orphaned:
                adopt_segments(orphaned)
                release_segments(orphaned)
            raise failure
    finally:
        if segment is not None:
            segment.close()
            segment.unlink()


def _pool_submit(pool, task: Callable, payload) -> _PoolCompletion:
    """Dispatch one task over its own (run-sized) shared-memory segment."""
    segment, encoded = _pack([payload], run_sized=True)
    return _PoolCompletion(
        pool.apply_async(_run_encoded, ((task, encoded[0]),)), segment
    )


# -- executors ---------------------------------------------------------------


@runtime_checkable
class Executor(Protocol):
    """The execution substrate contract: ordered map over padded payloads.

    ``transport`` reports how the *last* dispatch's payload bytes reached
    the compute ("none" for in-process calls, "shared_memory" for the
    column transport) — before any dispatch it reports the configured
    default.  ``imap``/``submit`` are optional seams; drivers reach them
    through :func:`completion_stream` / :func:`submit_task`, which fall
    back to ordered ``map`` / inline execution for executors that only
    implement the minimal contract.
    """

    name: str
    #: How the most recent dispatch's bytes reached the compute.
    transport: str

    def map(self, task: Callable, payloads: Sequence) -> list: ...


def completion_stream(
    executor, task: Callable, payloads: Sequence
) -> Iterator[tuple[int, object]]:
    """Yield ``(index, result)`` pairs as tasks complete.

    The streaming seam the sharded drivers consume: uses the executor's
    ``imap`` when it has one (completion order — arbitrary, even
    adversarial), else falls back to ``map`` and yields in payload order.
    Consumers must not depend on arrival order; the fold they feed must be
    a pure function of the index space (the compiled bracket).
    """
    payloads = list(payloads)
    imap = getattr(executor, "imap", None)
    if imap is not None:
        yield from imap(task, payloads)
        return
    for index, result in enumerate(executor.map(task, payloads)):
        yield index, result


def submit_task(executor, task: Callable, payload):
    """Dispatch one task; returns a completion with ``.result()``.

    Falls back to running inline for executors without ``submit``.
    """
    submit = getattr(executor, "submit", None)
    if submit is not None:
        return submit(task, payload)
    return _Immediate(task(payload))


class InlineExecutor:
    """Run the task list in the calling process (no pool, no transport)."""

    name = "inline"
    transport = "none"
    #: Inline submits stay in-process: published runs would be pure waste.
    remote_submit = False

    def __init__(self, workers: int = 1) -> None:
        self.workers = check_workers(workers)  # accepted for uniformity

    def map(self, task: Callable, payloads: Sequence) -> list:
        return [task(payload) for payload in payloads]

    def imap(self, task: Callable, payloads: Sequence):
        for index, payload in enumerate(payloads):
            yield index, task(payload)

    def submit(self, task: Callable, payload):
        return _Immediate(task(payload))


class ShuffleExecutor:
    """Inline compute, adversarial completion order (a validation substrate).

    Every task runs in the calling process, but ``map``/``imap`` *execute*
    (and ``imap`` yields) the tasks in a deterministic shuffled order, and
    ``submit`` defers execution until the consumer first blocks on the
    completion.  Outputs are bit-identical to ``inline`` by the executor
    contract; what this substrate exists to falsify is any *consumer*
    assumption about arrival order — the streaming-merge suite and the CI
    differential matrix run the sharded engine on it.  The shuffle is
    seeded (``seed`` plus a per-dispatch counter), so failures reproduce.
    """

    name = "shuffle"
    transport = "none"
    remote_submit = False

    def __init__(self, workers: int = 1, seed: int = 0) -> None:
        self.workers = check_workers(workers)  # accepted for uniformity
        self.seed = seed
        self._dispatches = 0

    def _order(self, count: int) -> list[int]:
        order = list(range(count))
        random.Random(1_000_003 * self.seed + self._dispatches).shuffle(order)
        self._dispatches += 1
        return order

    def map(self, task: Callable, payloads: Sequence) -> list:
        payloads = list(payloads)
        results: dict[int, object] = {}
        for index in self._order(len(payloads)):
            results[index] = task(payloads[index])
        return [results[index] for index in range(len(payloads))]

    def imap(self, task: Callable, payloads: Sequence):
        payloads = list(payloads)
        for index in self._order(len(payloads)):
            yield index, task(payloads[index])

    def submit(self, task: Callable, payload):
        return _LazyCall(task, payload)


class PoolExecutor:
    """Persistent process pool + shared-memory column transport."""

    name = "pool"

    def __init__(self, workers: int = 2) -> None:
        self.workers = check_workers(workers)
        self._last_transport: str | None = None

    @property
    def transport(self) -> str:
        """The path the last dispatch actually took.

        ``workers=1`` always runs inline, so nothing ever crosses; above
        that, single-payload dispatches short-circuit inline ("none") and
        real batches ship over shared memory.
        """
        if self.workers == 1:
            return "none"
        return self._last_transport or "shared_memory"

    @property
    def remote_submit(self) -> bool:
        """Submits cross a process boundary (so published runs pay off).

        POSIX-only: publishing relies on a segment surviving after its
        creating worker closes its mapping, which Windows named shared
        memory (freed on last close) does not guarantee — there the
        tournament falls back to plain result dicts.
        """
        return self.workers > 1 and os.name == "posix"

    def map(self, task: Callable, payloads: Sequence) -> list:
        if len(payloads) <= 1 or self.workers == 1:
            # A single task (or a 1-process pool) gains nothing from the
            # round-trip; inline keeps the fast path fast.  Results are
            # identical either way — executors cannot change outputs.
            self._last_transport = "none"
            return [task(payload) for payload in payloads]
        self._last_transport = "shared_memory"
        segment, encoded = _pack(payloads)
        try:
            return _pool(self.workers).map(
                _run_encoded, [(task, payload) for payload in encoded]
            )
        finally:
            if segment is not None:
                segment.close()
                segment.unlink()

    def imap(self, task: Callable, payloads: Sequence):
        payloads = list(payloads)
        if len(payloads) <= 1 or self.workers == 1:
            self._last_transport = "none"
            for index, payload in enumerate(payloads):
                yield index, task(payload)
            return
        self._last_transport = "shared_memory"
        yield from _pool_imap(_pool(self.workers), task, payloads)

    def submit(self, task: Callable, payload):
        if self.workers == 1:
            self._last_transport = "none"
            return _Immediate(task(payload))
        self._last_transport = "shared_memory"
        return _pool_submit(_pool(self.workers), task, payload)


class AsyncExecutor:
    """Asyncio overlap of shard compute and result gather.

    Every payload is dispatched up front; per-task completion callbacks
    resolve asyncio futures, so results are gathered (and, in a streaming
    consumer, processed) as they complete rather than after a barrier —
    without parking a helper thread per pending result (the old
    ``run_in_executor(None, result.get)`` pattern silently degraded to
    batched gathers past the default thread cap).  ``workers > 1``
    dispatches to the shared process pool over the same shared-memory
    column transport as ``pool`` (payloads are packed once per dispatch,
    never pickled per task); ``workers = 1`` overlaps on threads, which
    keeps the executor fork-free for tests and small inputs.
    """

    name = "async"

    def __init__(self, workers: int = 1) -> None:
        self.workers = check_workers(workers)
        self._last_transport: str | None = None

    @property
    def transport(self) -> str:
        """Shared memory through the process pool; in-memory at workers=1."""
        if self.workers == 1:
            return "none"
        return self._last_transport or "shared_memory"

    @property
    def remote_submit(self) -> bool:
        """See :attr:`PoolExecutor.remote_submit` (POSIX-only publish)."""
        return self.workers > 1 and os.name == "posix"

    def map(self, task: Callable, payloads: Sequence) -> list:
        if len(payloads) <= 1:
            self._last_transport = "none"
            return [task(payload) for payload in payloads]
        if self.workers > 1:
            self._last_transport = "shared_memory"
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            return asyncio.run(self._gather(task, list(payloads)))
        # Called from inside a running event loop (e.g. a streaming
        # consumer driving queries from an async app): ``map`` is a
        # blocking call by contract, and a nested asyncio.run on this
        # thread would raise, so run the gather on its own loop in a
        # helper thread and block here.
        import concurrent.futures

        with concurrent.futures.ThreadPoolExecutor(1) as runner:
            return runner.submit(
                asyncio.run, self._gather(task, list(payloads))
            ).result()

    async def _gather(self, task: Callable, payloads: list) -> list:
        loop = asyncio.get_running_loop()
        if self.workers == 1:
            futures = [
                loop.run_in_executor(None, task, payload)
                for payload in payloads
            ]
            return list(await asyncio.gather(*futures))
        segment, encoded = _pack(payloads)
        try:
            pool = _pool(self.workers)
            futures = []
            for payload in encoded:
                future = loop.create_future()
                pool.apply_async(
                    _run_encoded,
                    ((task, payload),),
                    callback=lambda value, future=future: _post_to_loop(
                        loop, future, value, None
                    ),
                    error_callback=lambda error, future=future: _post_to_loop(
                        loop, future, None, error
                    ),
                )
                futures.append(future)
            return list(await asyncio.gather(*futures))
        finally:
            if segment is not None:
                segment.close()
                segment.unlink()

    def imap(self, task: Callable, payloads: Sequence):
        payloads = list(payloads)
        if len(payloads) <= 1:
            self._last_transport = "none"
            for index, payload in enumerate(payloads):
                yield index, task(payload)
            return
        if self.workers > 1:
            self._last_transport = "shared_memory"
            yield from _pool_imap(_pool(self.workers), task, payloads)
            return
        # Thread overlap at workers=1: completion order, no forks.  The
        # pool is sized to the batch (not the default cpu-derived cap) so
        # small dispatches don't pay for threads they never use.
        import concurrent.futures

        with concurrent.futures.ThreadPoolExecutor(
            max_workers=min(32, len(payloads))
        ) as threads:
            futures = {
                threads.submit(task, payload): index
                for index, payload in enumerate(payloads)
            }
            for future in concurrent.futures.as_completed(futures):
                yield futures[future], future.result()

    def submit(self, task: Callable, payload):
        if self.workers == 1:
            return _Immediate(task(payload))
        self._last_transport = "shared_memory"
        return _pool_submit(_pool(self.workers), task, payload)


def _post_to_loop(loop, future, value, error) -> None:
    """Pool-thread half of the apply_async callback handshake.

    Runs on the pool's result-handler thread, so it must never raise: an
    escaped exception would kill that thread and hang every later dispatch
    on the shared persistent pool.  A closed loop (the gather already
    aborted on a sibling task's error) just drops the straggler.
    """
    try:
        loop.call_soon_threadsafe(_resolve_future, future, value, error)
    except RuntimeError:
        pass


def _resolve_future(future, value, error) -> None:
    """Loop-thread half of the apply_async callback handshake."""
    if future.cancelled():
        return
    if error is not None:
        future.set_exception(error)
    else:
        future.set_result(value)


#: Executor factories by name (the ``--executor`` choices).
_EXECUTORS: dict[str, type] = {
    InlineExecutor.name: InlineExecutor,
    PoolExecutor.name: PoolExecutor,
    AsyncExecutor.name: AsyncExecutor,
    ShuffleExecutor.name: ShuffleExecutor,
}


def register_executor(factory: type) -> type:
    """Register an executor class under ``factory.name``; returns it."""
    if not getattr(factory, "name", ""):
        raise InputError("executors must carry a non-empty name")
    _EXECUTORS[factory.name] = factory
    return factory


def available_executors() -> list[str]:
    """Sorted names of all registered executors."""
    return sorted(_EXECUTORS)


def get_executor(executor: str | Executor, workers: int = 1) -> Executor:
    """Resolve an executor by name (instances pass straight through)."""
    if not isinstance(executor, str):
        return executor
    try:
        factory = _EXECUTORS[executor]
    except KeyError:
        raise InputError(
            f"unknown executor {executor!r}; "
            f"available: {', '.join(available_executors())}"
        ) from None
    return factory(workers=check_workers(workers))


def resolve_executor(executor: str | Executor | None, workers: int = 1) -> Executor:
    """The drivers' default rule: explicit choice wins, else by workers.

    ``None`` keeps the historical behaviour — ``workers=1`` runs inline,
    ``workers>1`` runs on the (shared-memory) process pool.
    """
    check_workers(workers)
    if executor is None:
        executor = "inline" if workers == 1 else "pool"
    return get_executor(executor, workers=workers)


#: Warm executor instances the service layer reuses across queries,
#: keyed by ``(name, workers)``.
_WARM_EXECUTORS: dict[tuple[str, int], Executor] = {}


def warm_executor(executor: str | Executor | None, workers: int = 1) -> Executor:
    """The cross-query warm executor registry.

    Same resolution rule as :func:`resolve_executor`, but the instance is
    cached by ``(name, workers)`` and handed out again on the next query —
    so the executor's process pool (already persistent in :data:`_POOLS`)
    *and* its workers' attach caches stay warm across queries, and the
    pool is forked eagerly rather than on the first dispatch.  Instances
    pass straight through (the caller already owns their lifetime).
    """
    check_workers(workers)
    if executor is not None and not isinstance(executor, str):
        return executor
    name = executor if executor is not None else (
        "inline" if workers == 1 else "pool"
    )
    key = (name, workers)
    instance = _WARM_EXECUTORS.get(key)
    if instance is None:
        instance = get_executor(name, workers=workers)
        _WARM_EXECUTORS[key] = instance
        if workers > 1 and name in ("pool", "async"):
            warm_pool(workers)
    return instance


def shutdown_warm_executors() -> None:
    """Forget the warm executor instances (their pools stay in _POOLS)."""
    _WARM_EXECUTORS.clear()


def executor_stats() -> dict:
    """Live substrate state, for the service layer's queue stats."""
    return {
        "pools": sorted(_POOLS),
        "warm_executors": sorted(
            f"{name}:{workers}" for name, workers in _WARM_EXECUTORS
        ),
        "pinned_segments": host_published_count(),
    }


def run_tasks(task: Callable, payloads: Sequence, workers: int = 1) -> list:
    """Back-compat shim: map ``payloads`` under the default executor rule."""
    return resolve_executor(None, workers=workers).map(task, payloads)
