"""Compilers: public workload shapes -> :class:`~repro.plan.ir.Plan`.

One compiler per workload (join / multiway cascade / aggregate / group-by /
filter / order-by), each a *pure function of public values* — input sizes,
the shard count ``k``, and the padding bounds.  They reuse the padding
planner (:mod:`repro.core.padding`: ``join_bound`` / ``cascade_bounds``)
and the partitioner's plan functions (:mod:`repro.shard.partition`:
``partition_plan``), so a compiled plan and the engine that executes it
agree by construction.

Two levels of entry point:

* the ``sharded_*_plan`` / ``inline_*_plan`` functions take already
  resolved bounds (``target``/``bounds``/``pad`` arguments) — these are
  what the shard drivers consume at run time;
* :func:`compile_workload` (and the per-workload ``compile_*`` wrappers)
  additionally resolve a ``padding`` mode + ``bound`` cap into bounds, and
  are what the engines' ``compile_plan`` method and the CLI ``plan``
  subcommand call.

Everywhere, an attribute value of ``None`` means "not fixed at compile
time": the size will be *revealed* at run time, which is exactly the
``"revealed"`` padding mode's documented leak.  Under
``"bounded"``/``"worst_case"`` every size is resolved up front, so the
serialized plan — and therefore the execution schedule — is a function of
``(sizes, k, bounds)`` alone.
"""

from __future__ import annotations

from ..core.join_tree import (
    child_edge_indices,
    join_tree_bound,
    topdown_edge_order,
    validate_join_tree,
)
from ..core.padding import cascade_bounds, check_padding, join_bound
from ..errors import InputError
from .ir import Plan, PlanBuilder, tournament_schedule
from .memo import memoised
from .partition import (
    block_aligned_partition_plan,
    check_shards,
    expand_segment_plan,
    join_tree_window_plan,
    partition_plan,
    shard_block_ids,
)

#: Workload names `compile_workload` accepts.
WORKLOADS = (
    "join",
    "multiway",
    "join_tree",
    "aggregate",
    "group_by",
    "filter",
    "order_by",
)

#: Engines whose plans are a single-process primitive pipeline.
_INLINE_ENGINES = ("traced", "vector")

#: Stage names `compile_pipeline` accepts (``source`` must come first).
PIPELINE_OPS = (
    "source",
    "filter",
    "join",
    "multiway",
    "group_by",
    "order_by",
)


# -- merge tournaments -------------------------------------------------------


def _add_merge_tournament(
    builder: PlanBuilder,
    leaves: tuple[int, ...],
    run_lengths,
    truncate: int | None,
    stage: str,
) -> int:
    """Emit one ``merge_pair`` node per tournament pairing; returns the root.

    The pairing schedule comes from :func:`~repro.plan.ir.tournament_schedule`
    — the same pure function the runtime streaming tournament walks — so a
    plan's ``merge_pair`` nodes *are* the bracket the drivers execute, with
    carries (odd tail runs) skipping straight to the next round without a
    node (they execute zero comparators).  ``run_lengths=None`` compiles
    the bracket structure with run-time-revealed lengths (``rows=None``).
    """
    current = list(leaves)
    schedule = tournament_schedule(len(leaves), run_lengths, truncate)
    rnd = 0
    nxt: list[int] = []
    for node in schedule:
        if node.round != rnd:
            if rnd:
                current = nxt
            nxt = []
            rnd = node.round
        if node.is_carry:
            nxt.append(current[node.left])
            continue
        nxt.append(
            builder.add(
                "merge_pair",
                inputs=(current[node.left], current[node.right]),
                stage=stage,
                round=node.round,
                slot=node.slot,
                left_rows=node.left_rows,
                right_rows=node.right_rows,
                rows=node.rows,
            )
        )
    if schedule:
        current = nxt
    return current[0]


# -- join --------------------------------------------------------------------


@memoised("plan")
def inline_join_plan(engine: str, n1: int, n2: int, target: int | None) -> Plan:
    """Algorithm 1 as a linear pipeline at public sizes.

    ``target`` is the padded output bound (``None`` = unpadded; the
    expansion sizes are then the revealed ``m``).  Padded runs append one
    anchor row per input, hence the ``+ 1`` input sizes.
    """
    builder = PlanBuilder("join", engine, n1=n1, n2=n2, target=target)
    extra = 0 if target is None else 1
    left = builder.add("input", side="left", rows=n1 + extra)
    right = builder.add("input", side="right", rows=n2 + extra)
    augment = builder.add(
        "augment", inputs=(left, right), rows=n1 + n2 + 2 * extra
    )
    expand_1 = builder.add("expand", inputs=(augment,), side="left", rows=target)
    expand_2 = builder.add("expand", inputs=(augment,), side="right", rows=target)
    align = builder.add("align", inputs=(expand_2,), rows=target)
    builder.add("zip", inputs=(expand_1, align), rows=target)
    return builder.build()


@memoised("plan")
def sharded_join_plan(
    n1: int,
    n2: int,
    k: int,
    target: int | None,
    expand_segments: int | None = None,
    block_rows: tuple[int | None, int | None] | None = None,
) -> Plan:
    """The sharded join's full public schedule: presort, grid, merge.

    Everything here — the partition plans, each grid cell's input sizes and
    padded output bound, the expansion segment windows, the merge
    tournament's run lengths, the output truncation point — is derived from
    ``(n1, n2, k, target)`` only.  The driver
    (:func:`repro.shard.join.sharded_oblivious_join`) *consumes* this plan:
    its per-task bounds come from the ``grid_join`` nodes and their child
    ``expand_segment`` nodes.

    Under padded modes every grid cell's distribute-expand is split into
    ``expand_segment`` nodes — contiguous output windows ``[lo, hi)`` from
    :func:`~repro.plan.partition.expand_segment_plan`, each a separately
    dispatchable task whose sorted sub-run is a leaf of the output merge
    tournament.  ``expand_segments`` overrides the per-cell segment count
    (``None`` = the default shape-driven policy, which splits only
    output-heavy cells).  Unpadded (``target is None``) cells reveal their
    output size at run time, so they stay whole: a data-dependent split
    point would itself be a leak.
    """
    check_shards(k)
    shapes: dict = {"n1": n1, "n2": n2, "k": k, "target": target}
    if expand_segments is not None:
        shapes["segments"] = expand_segments
    # Store-backed inputs: `block_rows` is the per-side block-alignment
    # unit ((left, right), None per resident side).  A store-backed side's
    # *input* partition is block-aligned — whole blocks per shard, so each
    # worker faults in only its own blocks, whose ids become `blocks`
    # attrs on the partition node.  The ranked-left partition (the
    # presort's output, always parent-resident) stays row-aligned.  All of
    # it remains a pure function of the shapes dict: block_rows is public
    # store configuration, and omitting it keeps resident plans
    # byte-identical to before.
    b1, b2 = block_rows if block_rows is not None else (None, None)
    if block_rows is not None:
        shapes["block_rows"] = block_rows
    builder = PlanBuilder("join", "sharded", **shapes)
    cap1, counts1 = partition_plan(n1, k)
    if b1 is not None:
        in_cap1, in_counts1 = block_aligned_partition_plan(n1, k, b1)
        left_blocks = shard_block_ids(n1, k, b1)
    else:
        in_cap1, in_counts1, left_blocks = cap1, counts1, None
    if b2 is not None:
        cap2, counts2 = block_aligned_partition_plan(n2, k, b2)
        right_blocks = shard_block_ids(n2, k, b2)
    else:
        cap2, counts2 = partition_plan(n2, k)
        right_blocks = None

    presort_attrs: dict = {}
    if left_blocks is not None:
        presort_attrs = {"block_rows": b1, "blocks": left_blocks}
    presort_part = builder.add(
        "partition",
        side="left",
        n=n1,
        k=k,
        capacity=in_cap1,
        counts=in_counts1,
        **presort_attrs,
    )
    sorts = tuple(
        builder.add(
            "shard_sort", inputs=(presort_part,), shard=i, rows=in_counts1[i]
        )
        for i in range(k)
    )
    presort_root = _add_merge_tournament(
        builder, sorts, in_counts1, None, "presort"
    )
    presort_merge = builder.add(
        "merge", inputs=(presort_root,), stage="presort", run_lengths=in_counts1
    )
    left_part = builder.add(
        "partition",
        inputs=(presort_merge,),
        side="left_ranked",
        n=n1,
        k=k,
        capacity=cap1,
        counts=counts1,
    )
    right_attrs: dict = {}
    if right_blocks is not None:
        right_attrs = {"block_rows": b2, "blocks": right_blocks}
    right_part = builder.add(
        "partition",
        side="right",
        n=n2,
        k=k,
        capacity=cap2,
        counts=counts2,
        **right_attrs,
    )
    leaves: list[int] = []
    leaf_lengths: list[int] = []
    for i in range(k):
        for j in range(k):
            cell_target = None if target is None else counts1[i] * counts2[j]
            cell = builder.add(
                "grid_join",
                inputs=(left_part, right_part),
                cell=(i, j),
                n1=counts1[i],
                n2=counts2[j],
                target=cell_target,
            )
            if cell_target is None:
                # Revealed mode: the cell's output size is a run-time leak,
                # so it executes whole — a split point would leak more.
                leaves.append(cell)
                continue
            _, seg_rows = expand_segment_plan(
                cell_target, counts1[i], counts2[j], expand_segments
            )
            offset = 0
            for s, rows in enumerate(seg_rows):
                leaves.append(
                    builder.add(
                        "expand_segment",
                        inputs=(cell,),
                        cell=(i, j),
                        segment=s,
                        lo=offset,
                        hi=offset + rows,
                        rows=rows,
                    )
                )
                leaf_lengths.append(rows)
                offset += rows
    run_lengths = None if target is None else tuple(leaf_lengths)
    output_root = _add_merge_tournament(
        builder, tuple(leaves), run_lengths, target, "output"
    )
    merge = builder.add(
        "merge",
        inputs=(output_root,),
        stage="output",
        run_lengths=run_lengths,
        truncate=target,
    )
    builder.add("gather", inputs=(merge,), rows=target)
    return builder.build()


# -- aggregate / group-by ----------------------------------------------------


@memoised("plan")
def inline_aggregate_plan(engine: str, workload: str, n1: int, n2: int) -> Plan:
    """Single-shot aggregation: one sort + segmented reduce at ``n1 + n2``."""
    builder = PlanBuilder(workload, engine, n1=n1, n2=n2)
    left = builder.add("input", side="left", rows=n1)
    right = builder.add("input", side="right", rows=n2)
    sort = builder.add("sort", inputs=(left, right), rows=n1 + n2)
    builder.add("reduce", inputs=(sort,), rows=n1 + n2)
    return builder.build()


@memoised("plan")
def sharded_aggregate_plan(
    workload: str, n1: int, n2: int, k: int, padded: bool
) -> Plan:
    """Per-shard partial aggregation + one combine, at public sizes.

    ``padded`` pads every shard's partial table to its public worst case
    (the block's row count), so the combine's input size — and with it the
    whole schedule — is fixed by ``(n1, n2, k)``.  Unpadded, each partial
    table ships at its revealed distinct-key count (``pad = None``).
    """
    check_shards(k)
    builder = PlanBuilder(workload, "sharded", n1=n1, n2=n2, k=k, padded=padded)
    cap1, counts1 = partition_plan(n1, k)
    cap2, counts2 = partition_plan(n2, k)
    left_part = builder.add(
        "partition", side="left", n=n1, k=k, capacity=cap1, counts=counts1
    )
    right_part = builder.add(
        "partition", side="right", n=n2, k=k, capacity=cap2, counts=counts2
    )
    tasks = []
    for i in range(k):
        rows = counts1[i] + counts2[i]
        tasks.append(
            builder.add(
                "partial_aggregate",
                inputs=(left_part, right_part),
                shard=i,
                rows=rows,
                pad=rows if padded else None,
            )
        )
    builder.add(
        "combine",
        inputs=tuple(tasks),
        rows=n1 + n2 if padded else None,
    )
    return builder.build()


# -- filter ------------------------------------------------------------------


@memoised("plan")
def inline_filter_plan(engine: str, n: int) -> Plan:
    builder = PlanBuilder("filter", engine, n=n)
    mask = builder.add("input", side="mask", rows=n)
    builder.add("compact", inputs=(mask,), rows=n)
    return builder.build()


@memoised("plan")
def sharded_filter_plan(n: int, k: int, padded: bool) -> Plan:
    """Per-block compaction; ``padded`` ships every survivor list at the
    block capacity (tagged tail), hiding the per-shard survivor counts."""
    check_shards(k)
    builder = PlanBuilder("filter", "sharded", n=n, k=k, padded=padded)
    capacity, counts = partition_plan(n, k)
    part = builder.add(
        "partition", side="mask", n=n, k=k, capacity=capacity, counts=counts
    )
    blocks = tuple(
        builder.add(
            "block_filter",
            inputs=(part,),
            shard=i,
            rows=counts[i],
            pad=capacity if padded else None,
        )
        for i in range(k)
    )
    builder.add("concat", inputs=blocks, rows=n if padded else None)
    return builder.build()


# -- order-by ----------------------------------------------------------------


@memoised("plan")
def inline_order_plan(engine: str, n: int) -> Plan:
    builder = PlanBuilder("order_by", engine, n=n)
    rows = builder.add("input", side="keys", rows=n)
    builder.add("sort", inputs=(rows,), rows=n)
    return builder.build()


@memoised("plan")
def sharded_order_plan(n: int, k: int) -> Plan:
    check_shards(k)
    builder = PlanBuilder("order_by", "sharded", n=n, k=k)
    capacity, counts = partition_plan(n, k)
    part = builder.add(
        "partition", side="keys", n=n, k=k, capacity=capacity, counts=counts
    )
    sorts = tuple(
        builder.add("shard_sort", inputs=(part,), shard=i, rows=counts[i])
        for i in range(k)
    )
    root = _add_merge_tournament(builder, sorts, counts, None, "output")
    builder.add("merge", inputs=(root,), stage="output", run_lengths=counts)
    return builder.build()


# -- multiway ----------------------------------------------------------------


def multiway_step_shapes(
    sizes: list[int], bounds: tuple[int, ...]
) -> list[tuple[int | None, int, int | None]]:
    """Per-step ``(left_size, right_size, target)`` of a padded cascade.

    The left input of step ``s`` is the previous step's *bound* (the padded
    intermediate never reveals its true size); unpadded cascades
    (``bounds == ()``) have data-dependent left sizes from step 1 on, so
    those come back ``None``.
    """
    shapes: list[tuple[int | None, int, int | None]] = []
    for step in range(len(sizes) - 1):
        if bounds:
            left = sizes[0] if step == 0 else bounds[step - 1]
            shapes.append((left, sizes[step + 1], bounds[step]))
        else:
            left = sizes[0] if step == 0 else None
            shapes.append((left, sizes[step + 1], None))
    return shapes


@memoised("plan")
def multiway_plan(
    sizes: list[int],
    engine: str,
    bounds: tuple[int, ...] = (),
    k: int | None = None,
    expand_segments: int | None = None,
) -> Plan:
    """A whole cascade's public schedule: one embedded join plan per step.

    ``bounds`` comes from :func:`repro.core.padding.cascade_bounds` (empty
    = unpadded).  The per-step sub-plans are produced by the *same*
    functions the drivers consume, so the cascade artifact and the executed
    schedule cannot drift apart.
    """
    if len(sizes) < 2:
        raise InputError("a multiway plan needs at least two table sizes")
    if bounds and len(bounds) != len(sizes) - 1:
        raise InputError(
            f"{len(sizes) - 1}-step cascade needs {len(sizes) - 1} bounds, "
            f"got {len(bounds)}"
        )
    shapes: dict = {"sizes": tuple(sizes), "bounds": tuple(bounds)}
    if engine == "sharded":
        shapes["k"] = check_shards(k if k is not None else 2)
    builder = PlanBuilder("multiway", engine, **shapes)
    last: tuple[int, ...] = ()
    for step, (left, right, target) in enumerate(
        multiway_step_shapes(sizes, bounds)
    ):
        if engine == "sharded":
            if left is None:
                step_plan = PlanBuilder("join", "sharded")
                step_plan.add(
                    "grid_join_deferred",
                    n1=None,
                    n2=right,
                    k=shapes["k"],
                    target=None,
                )
                sub = step_plan.build()
            else:
                sub = sharded_join_plan(
                    left, right, shapes["k"], target, expand_segments
                )
        else:
            if left is None:
                step_plan = PlanBuilder("join", engine)
                step_plan.add("join_deferred", n1=None, n2=right, target=None)
                sub = step_plan.build()
            else:
                sub = inline_join_plan(engine, left, right, target)
        last = builder.embed(sub, step=step)
    builder.add("compact", inputs=(last[-1],) if last else ())
    return builder.build()


# -- join tree ---------------------------------------------------------------


def join_tree_sizes(tables) -> tuple[int, ...]:
    """Public per-table sizes from either a table list or a size list."""
    sizes = []
    for entry in tables:
        if isinstance(entry, bool):
            raise InputError(f"join-tree sizes must be ints, got {entry!r}")
        if isinstance(entry, int):
            if entry < 0:
                raise InputError(f"table sizes must be >= 0, got {entry}")
            sizes.append(entry)
        else:
            sizes.append(len(entry))
    return tuple(sizes)


def _plan_tree(sizes, edges):
    """Validate a tree given only sizes; returns ``(edges, children, order)``.

    The plan layer never sees table widths, so key columns are validated
    against the widest width any edge implies — the table-level drivers
    re-validate against the real widths.
    """
    from ..core.join_tree import normalize_edges

    edges = normalize_edges(edges)
    count = len(sizes)
    widths = [1] * count
    for edge in edges:
        if 0 <= edge.parent < count:
            widths[edge.parent] = max(widths[edge.parent], edge.parent_col + 1)
        if 0 <= edge.child < count:
            widths[edge.child] = max(widths[edge.child], edge.child_col + 1)
    edges = validate_join_tree(widths, edges)
    return edges, child_edge_indices(edges), topdown_edge_order(edges, count)


def _edge_shapes(edges) -> tuple:
    return tuple(
        (e.parent, e.child, e.parent_col, e.child_col, e.band) for e in edges
    )


@memoised("plan")
def inline_join_tree_plan(engine: str, sizes, edges, target: int | None) -> Plan:
    """A join tree's single-process schedule at public sizes.

    One ``multiplicity`` node per edge (bottom-up, deepest first — size
    ``2 * n_parent + n_child``: two band endpoints per parent row plus the
    child markers), one ``finalize`` per internal node, one
    ``distribute_expand`` stab per node over the slot space, and the final
    ``align_concat``.  ``target=None`` (revealed mode) leaves the
    slot-space sizes to be revealed at run time (``rows=None``).
    """
    sizes = tuple(int(n) for n in sizes)
    edges, children, order = _plan_tree(sizes, edges)
    builder = PlanBuilder(
        "join_tree",
        engine,
        sizes=sizes,
        edges=_edge_shapes(edges),
        target=target,
    )
    inputs = tuple(
        builder.add("input", table=v, rows=sizes[v]) for v in range(len(sizes))
    )
    mult: dict[int, int] = {}
    for e in reversed(order):
        edge = edges[e]
        mult[e] = builder.add(
            "multiplicity",
            inputs=(inputs[edge.parent], inputs[edge.child])
            + tuple(mult[e2] for e2 in children.get(edge.child, ())),
            edge=e,
            band=edge.band,
            rows=2 * sizes[edge.parent] + sizes[edge.child],
        )
    fin: dict[int, int] = {}
    for v in range(len(sizes)):
        kids = children.get(v, ())
        if kids:
            fin[v] = builder.add(
                "finalize",
                inputs=tuple(mult[e] for e in kids),
                node=v,
                rows=sizes[v],
            )
    extra = 0 if target is None else 1  # the root's padding anchor
    expand: dict[int, int] = {}
    expand[0] = builder.add(
        "distribute_expand",
        inputs=(inputs[0],) + ((fin[0],) if 0 in fin else ()),
        node=0,
        rows=None if target is None else target + sizes[0] + extra,
    )
    for e in order:
        edge = edges[e]
        expand[edge.child] = builder.add(
            "distribute_expand",
            inputs=(expand[edge.parent], inputs[edge.child])
            + ((fin[edge.child],) if edge.child in fin else ()),
            node=edge.child,
            edge=e,
            rows=None if target is None else target + sizes[edge.child],
        )
    builder.add(
        "align_concat",
        inputs=tuple(expand[v] for v in range(len(sizes))),
        rows=target,
    )
    return builder.build()


@memoised("plan")
def sharded_join_tree_plan(
    sizes,
    edges,
    k: int,
    target: int | None,
    expand_segments: int | None = None,
) -> Plan:
    """The sharded join tree's full public schedule.

    Bottom-up ``multiplicity`` nodes are per-edge worker tasks (grouped by
    child depth: same-depth edges have no data dependency and dispatch
    concurrently); ``finalize`` and the ``markers`` catalogues are
    client-side vector passes; the top-down phase fans out as
    ``join_tree_window`` tasks — contiguous slot windows from
    :func:`~repro.plan.partition.join_tree_window_plan` (``expand_segments``
    overrides the window count; default ``k``, one window per shard slot) —
    whose sorted sub-runs feed the output merge tournament exactly like the
    binary join's expansion segments.  Revealed mode (``target=None``)
    keeps the slot space whole: window boundaries would be a function of
    the secret ``M``.
    """
    check_shards(k)
    sizes = tuple(int(n) for n in sizes)
    edges, children, order = _plan_tree(sizes, edges)
    shapes: dict = {
        "sizes": sizes,
        "edges": _edge_shapes(edges),
        "k": k,
        "target": target,
    }
    if expand_segments is not None:
        shapes["segments"] = expand_segments
    builder = PlanBuilder("join_tree", "sharded", **shapes)
    inputs = tuple(
        builder.add("input", table=v, rows=sizes[v]) for v in range(len(sizes))
    )
    mult: dict[int, int] = {}
    for e in reversed(order):
        edge = edges[e]
        mult[e] = builder.add(
            "multiplicity",
            inputs=(inputs[edge.parent], inputs[edge.child])
            + tuple(mult[e2] for e2 in children.get(edge.child, ())),
            edge=e,
            band=edge.band,
            rows=2 * sizes[edge.parent] + sizes[edge.child],
        )
    fin: dict[int, int] = {}
    for v in range(len(sizes)):
        kids = children.get(v, ())
        if kids:
            fin[v] = builder.add(
                "finalize",
                inputs=tuple(mult[e] for e in kids),
                node=v,
                rows=sizes[v],
            )
    extra = 0 if target is None else 1
    markers: list[int] = [
        builder.add(
            "markers",
            inputs=(inputs[0],) + ((fin[0],) if 0 in fin else ()),
            node=0,
            rows=sizes[0] + extra,
        )
    ]
    for e in order:
        edge = edges[e]
        markers.append(
            builder.add(
                "markers",
                inputs=(inputs[edge.child],)
                + ((fin[edge.child],) if edge.child in fin else ()),
                node=edge.child,
                edge=e,
                rows=sizes[edge.child],
            )
        )
    if target is None:
        # Revealed mode: the slot space is the run-time-revealed M, so the
        # expansion executes whole — a window split would leak more.
        whole = builder.add(
            "join_tree_expand", inputs=tuple(markers), rows=None
        )
        merge = builder.add(
            "merge", inputs=(whole,), stage="output", run_lengths=None
        )
        builder.add("gather", inputs=(merge,), rows=None)
        return builder.build()
    _, win_rows = join_tree_window_plan(
        target, sizes, expand_segments if expand_segments is not None else k
    )
    leaves = []
    offset = 0
    for s, rows in enumerate(win_rows):
        leaves.append(
            builder.add(
                "join_tree_window",
                inputs=tuple(markers),
                window=s,
                lo=offset,
                hi=offset + rows,
                rows=rows,
            )
        )
        offset += rows
    root = _add_merge_tournament(builder, tuple(leaves), win_rows, target, "output")
    merge = builder.add(
        "merge",
        inputs=(root,),
        stage="output",
        run_lengths=win_rows,
        truncate=target,
    )
    builder.add("gather", inputs=(merge,), rows=target)
    return builder.build()


def compile_join_tree(
    tables,
    tree,
    engine: str = "vector",
    *,
    shards: int | None = None,
    padding: str | None = None,
    bound=None,
    expand_segments: int | None = None,
) -> Plan:
    """Compile a join tree's plan, resolving ``padding`` into one bound.

    ``tables`` may be the tables themselves or just their sizes — only the
    sizes enter the plan, which is a pure function of
    ``(sizes, tree, k, padding, bound)``.  ``tree`` is the edge list
    (``(parent, child, parent_col, child_col[, band])``).
    """
    sizes = join_tree_sizes(tables)
    target = join_tree_bound(sizes, padding, bound)
    if engine == "sharded":
        return sharded_join_tree_plan(
            sizes,
            tree,
            shards if shards is not None else 2,
            target,
            expand_segments,
        )
    if engine not in _INLINE_ENGINES:
        raise InputError(f"no plan compiler for engine {engine!r}")
    return inline_join_tree_plan(engine, sizes, tree, target)


# -- mode-resolving front door ----------------------------------------------


def compile_join(
    n1: int,
    n2: int,
    engine: str = "vector",
    *,
    shards: int | None = None,
    padding: str | None = None,
    bound=None,
    target_m: int | None = None,
    expand_segments: int | None = None,
) -> Plan:
    """Compile a binary join's plan, resolving ``padding`` into a bound."""
    target = target_m if target_m is not None else join_bound(n1, n2, padding, bound)
    if engine == "sharded":
        return sharded_join_plan(
            n1, n2, shards if shards is not None else 2, target, expand_segments
        )
    if engine not in _INLINE_ENGINES:
        raise InputError(f"no plan compiler for engine {engine!r}")
    return inline_join_plan(engine, n1, n2, target)


def compile_multiway(
    sizes: list[int],
    engine: str = "vector",
    *,
    shards: int | None = None,
    padding: str | None = None,
    bound=None,
    expand_segments: int | None = None,
) -> Plan:
    bounds = cascade_bounds(list(sizes), padding, bound)
    if engine != "sharded" and engine not in _INLINE_ENGINES:
        raise InputError(f"no plan compiler for engine {engine!r}")
    return multiway_plan(
        list(sizes), engine, bounds=bounds, k=shards,
        expand_segments=expand_segments,
    )


def compile_aggregate(
    n1: int,
    n2: int,
    engine: str = "vector",
    *,
    workload: str = "aggregate",
    shards: int | None = None,
    padding: str | None = None,
) -> Plan:
    padded = check_padding(padding) != "revealed"
    if engine == "sharded":
        return sharded_aggregate_plan(
            workload, n1, n2, shards if shards is not None else 2, padded
        )
    if engine not in _INLINE_ENGINES:
        raise InputError(f"no plan compiler for engine {engine!r}")
    return inline_aggregate_plan(engine, workload, n1, n2)


def compile_filter(
    n: int,
    engine: str = "vector",
    *,
    shards: int | None = None,
    padding: str | None = None,
) -> Plan:
    padded = check_padding(padding) != "revealed"
    if engine == "sharded":
        return sharded_filter_plan(n, shards if shards is not None else 2, padded)
    if engine not in _INLINE_ENGINES:
        raise InputError(f"no plan compiler for engine {engine!r}")
    return inline_filter_plan(engine, n)


def compile_order_by(
    n: int, engine: str = "vector", *, shards: int | None = None
) -> Plan:
    if engine == "sharded":
        return sharded_order_plan(n, shards if shards is not None else 2)
    if engine not in _INLINE_ENGINES:
        raise InputError(f"no plan compiler for engine {engine!r}")
    return inline_order_plan(engine, n)


# -- pipeline DAGs -----------------------------------------------------------


def _deferred_stage_plan(workload: str, engine: str, op: str, **attrs) -> Plan:
    """A one-node sub-plan standing in for a stage whose input size is only
    revealed at run time (the ``"revealed"`` padding mode mid-chain)."""
    builder = PlanBuilder(workload, engine)
    builder.add(op, **attrs)
    return builder.build()


@memoised("plan")
def compile_pipeline(
    ops,
    engine: str = "traced",
    *,
    shards: int | None = None,
    padding: str | None = None,
    bound=None,
    expand_segments: int | None = None,
) -> Plan:
    """Compile a whole query DAG into one Plan with streaming channel edges.

    ``ops`` is a sequence of ``(name, params)`` stage descriptors:
    ``("source", {"n": n})`` (always first), then any chain of
    ``("filter", {})``, ``("join", {"n2": m})``,
    ``("multiway", {"sizes": [...]})`` (sizes of the *remaining* cascade
    tables), ``("group_by", {})`` and ``("order_by", {})``.

    Each operator stage is the per-workload compiler's sub-plan embedded
    verbatim (``stage=s`` merged into every node), and consecutive stages
    are connected by a ``channel`` node — the streaming block edge.  A
    channel's attributes are the *public* block layout of the data crossing
    it (``blocks``/``capacity``/``counts``/``rows``), straight from the
    partition planner, so the whole DAG — including when a downstream
    shard task may dispatch — is a pure function of
    ``(stage shapes, k, bounds)``.  ``rows=None`` marks a size revealed at
    run time (only ever downstream of a revealed-mode filter/join), which
    is the same deliberate leak the operator-at-a-time path makes.
    """
    mode = check_padding(padding)
    padded = mode != "revealed"
    stages = [(name, dict(params)) for name, params in ops]
    if not stages:
        raise InputError("a pipeline needs at least a source stage")
    for name, _ in stages:
        if name not in PIPELINE_OPS:
            raise InputError(
                f"unknown pipeline stage {name!r}; expected one of {PIPELINE_OPS}"
            )
    if stages[0][0] != "source" or any(
        name == "source" for name, _ in stages[1:]
    ):
        raise InputError(
            "a pipeline starts with one ('source', {'n': ...}) stage"
        )
    if len(stages) < 2:
        raise InputError("a pipeline needs at least one operator stage")

    k = check_shards(shards if shards is not None else 2) if engine == "sharded" else None
    if engine != "sharded" and engine not in _INLINE_ENGINES:
        raise InputError(f"no plan compiler for engine {engine!r}")

    stage_shapes: list[tuple] = []
    for name, params in stages:
        if name == "source":
            stage_shapes.append((name, int(params["n"])))
        elif name == "join":
            if "n2" not in params:
                raise InputError("pipeline join stages need n2")
            stage_shapes.append((name, int(params["n2"])))
        elif name == "multiway":
            sizes = tuple(int(s) for s in params.get("sizes", ()))
            if not sizes:
                raise InputError(
                    "pipeline multiway stages need sizes (one per extra table)"
                )
            stage_shapes.append((name, sizes))
        else:
            stage_shapes.append((name,))

    shapes: dict = {"stages": tuple(stage_shapes), "padding": mode}
    if engine == "sharded":
        shapes["k"] = k
    if bound is not None:
        shapes["bound"] = bound
    builder = PlanBuilder("pipeline", engine, **shapes)

    current: int | None = int(stages[0][1]["n"])
    prev = builder.add("input", side="pipeline", rows=current, stage=0)
    for stage_index, (name, params) in enumerate(stages[1:], start=1):
        if current is None:
            blocks = k if engine == "sharded" else 1
            capacity, counts = None, None
        elif engine == "sharded":
            blocks = k
            capacity, counts = partition_plan(current, k)
        else:
            blocks, capacity, counts = 1, current, (current,)
        prev = builder.add(
            "channel",
            inputs=(prev,),
            stage=stage_index,
            blocks=blocks,
            capacity=capacity,
            counts=counts,
            rows=current,
        )
        if name == "filter":
            if current is None:
                sub = _deferred_stage_plan(
                    "filter", engine, "block_filter_deferred", n=None, k=k
                )
            elif engine == "sharded":
                sub = sharded_filter_plan(current, k, padded)
            else:
                sub = inline_filter_plan(engine, current)
            # A padded filter's output occupies its full input bound; a
            # revealed filter's survivor count is a run-time leak.
            current = current if padded else None
        elif name == "join":
            n2 = int(params["n2"])
            if current is None:
                if engine == "sharded":
                    sub = _deferred_stage_plan(
                        "join",
                        engine,
                        "grid_join_deferred",
                        n1=None,
                        n2=n2,
                        k=k,
                        target=None,
                    )
                else:
                    sub = _deferred_stage_plan(
                        "join", engine, "join_deferred", n1=None, n2=n2, target=None
                    )
                current = None
            else:
                target = join_bound(current, n2, mode, bound)
                if engine == "sharded":
                    sub = sharded_join_plan(
                        current, n2, k, target, expand_segments
                    )
                else:
                    sub = inline_join_plan(engine, current, n2, target)
                current = target
        elif name == "multiway":
            rest = [int(s) for s in params["sizes"]]
            if current is None:
                sub = _deferred_stage_plan(
                    "multiway",
                    engine,
                    "cascade_deferred",
                    sizes=(None, *rest),
                    k=k,
                )
                current = None
            else:
                sizes = [current, *rest]
                bounds = cascade_bounds(list(sizes), mode, bound)
                sub = multiway_plan(
                    sizes, engine, bounds=bounds, k=k,
                    expand_segments=expand_segments,
                )
                current = bounds[-1] if bounds else None
        elif name == "group_by":
            if current is None:
                sub = _deferred_stage_plan(
                    "group_by", engine, "partial_aggregate_deferred", n=None, k=k
                )
            elif engine == "sharded":
                sub = sharded_aggregate_plan("group_by", current, 0, k, padded)
            else:
                sub = inline_aggregate_plan(engine, "group_by", current, 0)
            current = None  # group count is always revealed on output
        else:  # order_by
            if current is None:
                sub = _deferred_stage_plan(
                    "order_by", engine, "shard_sort_deferred", n=None, k=k
                )
            elif engine == "sharded":
                sub = sharded_order_plan(current, k)
            else:
                sub = inline_order_plan(engine, current)
        embedded = builder.embed(sub, stage=stage_index)
        prev = embedded[-1]
    builder.add("output", inputs=(prev,), rows=current)
    return builder.build()


@memoised("plan")
def compile_workload(
    workload: str,
    engine: str = "vector",
    *,
    n1: int | None = None,
    n2: int | None = None,
    n: int | None = None,
    sizes: list[int] | None = None,
    edges=None,
    shards: int | None = None,
    padding: str | None = None,
    bound=None,
    expand_segments: int | None = None,
) -> Plan:
    """Dispatch to the right compiler from CLI-shaped arguments."""
    if workload not in WORKLOADS:
        raise InputError(
            f"unknown workload {workload!r}; expected one of {WORKLOADS}"
        )
    if workload == "join_tree":
        if not sizes:
            raise InputError("join_tree plans need sizes (one per table)")
        if not edges:
            raise InputError(
                "join_tree plans need edges "
                "((parent, child, parent_col, child_col[, band]) per edge)"
            )
        return compile_join_tree(
            list(sizes), edges, engine, shards=shards, padding=padding,
            bound=bound, expand_segments=expand_segments,
        )
    if workload == "join":
        if n1 is None or n2 is None:
            raise InputError("join plans need n1 and n2")
        return compile_join(
            n1, n2, engine, shards=shards, padding=padding, bound=bound,
            expand_segments=expand_segments,
        )
    if workload == "multiway":
        if not sizes:
            raise InputError("multiway plans need sizes (one per table)")
        return compile_multiway(
            sizes, engine, shards=shards, padding=padding, bound=bound,
            expand_segments=expand_segments,
        )
    if workload == "aggregate":
        if n1 is None or n2 is None:
            raise InputError("aggregate plans need n1 and n2")
        return compile_aggregate(
            n1, n2, engine, shards=shards, padding=padding
        )
    if workload == "group_by":
        if n is None:
            raise InputError("group_by plans need n")
        return compile_aggregate(
            n, 0, engine, workload="group_by", shards=shards, padding=padding
        )
    if workload == "filter":
        if n is None:
            raise InputError("filter plans need n")
        return compile_filter(n, engine, shards=shards, padding=padding)
    if n is None:
        raise InputError("order_by plans need n")
    return compile_order_by(n, engine, shards=shards)
