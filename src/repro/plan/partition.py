"""Pure partition-plan functions: shard layout as f(n, k) and nothing else.

These used to live in :mod:`repro.shard.partition` next to the code that
actually moves rows; they are the *public* half of partitioning — the shard
capacity and per-shard real counts an adversary is allowed to learn — and
the plan compiler is their primary consumer now, so they live in the plan
layer.  :mod:`repro.shard.partition` re-exports them unchanged.

Rows are assigned to shards by *position* — shard ``i`` receives the
``i``-th contiguous block — so shard membership is independent of every key
and payload byte, and the whole layout is a pure function of ``(n, k)``:
the first ``n mod k`` shards carry ``ceil(n / k)`` rows, the rest
``floor(n / k)``, and every shard is padded to the common capacity
``ceil(n / k)``.
"""

from __future__ import annotations

from ..errors import InputError
from .memo import memoised


def check_shards(shards: int) -> int:
    """Validate a shard count; returns it for chaining."""
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise InputError(f"shard count must be an int >= 1, got {shards!r}")
    return shards


def shard_capacity(n: int, k: int) -> int:
    """Common padded size of every shard: ``ceil(n / k)`` — f(n, k) only."""
    check_shards(k)
    if n < 0:
        raise InputError(f"table size must be >= 0, got {n}")
    return -(-n // k)


def shard_counts(n: int, k: int) -> tuple[int, ...]:
    """Real rows per shard — a pure function of ``(n, k)``."""
    check_shards(k)
    base, rem = divmod(n, k)
    return tuple(base + (1 if i < rem else 0) for i in range(k))


@memoised("schedule")
def partition_plan(n: int, k: int) -> tuple[int, tuple[int, ...]]:
    """The public partition plan ``(capacity, per-shard real counts)``.

    This tuple is everything the adversary learns from the partitioning
    step; the obliviousness suite asserts it is identical across any two
    inputs of the same size.
    """
    return shard_capacity(n, k), shard_counts(n, k)


def check_block_rows(block_rows: int) -> int:
    """Validate a store block's row count; returns it for chaining."""
    if (
        not isinstance(block_rows, int)
        or isinstance(block_rows, bool)
        or block_rows < 1
    ):
        raise InputError(f"block_rows must be an int >= 1, got {block_rows!r}")
    return block_rows


def block_count(n: int, block_rows: int) -> int:
    """Blocks a stored column of ``n`` rows occupies: ``ceil(n / B)``."""
    check_block_rows(block_rows)
    if n < 0:
        raise InputError(f"table size must be >= 0, got {n}")
    return -(-n // block_rows)


@memoised("schedule")
def block_aligned_partition_plan(
    n: int, k: int, block_rows: int
) -> tuple[int, tuple[int, ...]]:
    """The partition plan for a store-backed input: whole blocks per shard.

    Shard ``i`` receives the ``i``-th contiguous run of *blocks* (the same
    positional rule as :func:`partition_plan`, lifted from rows to blocks),
    so a worker faults in exactly its own blocks — no block is shared
    between two shards.  Row counts follow: every block contributes
    ``block_rows`` rows except the final partial one.  Still a pure
    function of ``(n, k, block_rows)`` — ``block_rows`` is public store
    configuration — so the obliviousness-by-plan-equality story is
    unchanged.
    """
    check_shards(k)
    nblocks = block_count(n, block_rows)
    counts = []
    offset = 0
    for blocks in shard_counts(nblocks, k):
        rows = min(blocks * block_rows, n - offset)
        counts.append(rows)
        offset += rows
    capacity = max(counts) if counts else 0
    return capacity, tuple(counts)


@memoised("schedule")
def shard_block_ids(
    n: int, k: int, block_rows: int
) -> tuple[tuple[int, ...], ...]:
    """Per-shard block-id tuples of the block-aligned partition.

    These are the attrs the plan compiler stamps onto ``partition`` nodes:
    the complete, public statement of which store blocks each shard worker
    is allowed to touch — a pure function of ``(n, k, block_rows)``.
    """
    check_shards(k)
    nblocks = block_count(n, block_rows)
    ids = []
    offset = 0
    for blocks in shard_counts(nblocks, k):
        ids.append(tuple(range(offset, offset + blocks)))
        offset += blocks
    return tuple(ids)


#: Default floor on one expansion segment's output rows.  Every segment
#: re-runs its cell's ``O((n1 + n2) log^2)`` augment sorts, so segments far
#: smaller than the cell's input would be all overhead and no parallelism.
EXPAND_SEGMENT_MIN_ROWS = 4096


def check_expand_segments(segments: int) -> int:
    """Validate an explicit per-cell segment count; returns it for chaining."""
    if not isinstance(segments, int) or isinstance(segments, bool) or segments < 1:
        raise InputError(
            f"expand_segments must be an int >= 1, got {segments!r}"
        )
    return segments


@memoised("schedule")
def expand_segment_plan(
    target: int, n1: int, n2: int, segments: int | None = None
) -> tuple[int, tuple[int, ...]]:
    """One padded grid cell's expansion split: ``(capacity, per-segment rows)``.

    A pure function of the cell's public shapes ``(target, n1, n2)`` and the
    optional explicit ``segments`` override — never of the data, which is
    what lets the plan compiler emit the windows as ``expand_segment``
    nodes.  The default policy floors each segment at
    ``max(EXPAND_SEGMENT_MIN_ROWS, 4 * (n1 + n2 + 2))`` output rows (the
    ``+ 2`` counts the padded anchor rows), so small cells compile to a
    single segment and only output-heavy (skewed) cells split.  An explicit
    ``segments`` asks for that many per cell, clamped so no segment is
    empty.  The split itself reuses :func:`partition_plan`: windows are
    contiguous and differ by at most one row.
    """
    if not isinstance(target, int) or isinstance(target, bool) or target < 0:
        raise InputError(f"segment plan needs a target >= 0, got {target!r}")
    if segments is None:
        floor = max(EXPAND_SEGMENT_MIN_ROWS, 4 * (n1 + n2 + 2))
        segments = max(1, target // floor)
    else:
        check_expand_segments(segments)
    segments = min(segments, max(target, 1))
    return partition_plan(target, segments)


@memoised("schedule")
def join_tree_window_plan(
    target: int, sizes, segments: int | None = None
) -> tuple[int, tuple[int, ...]]:
    """A join tree's slot-space split: ``(capacity, per-window rows)``.

    The top-down distribute-expand of a join tree runs over the public slot
    space ``[0, target)`` and every window's output is independent of every
    other (each stabs the same per-node marker catalogues), so the split is
    the unit of sharded dispatch.  A pure function of ``(target, sizes)``
    plus the optional explicit ``segments`` override.  Each window re-stabs
    all ``sum(sizes)`` markers, so the default policy floors windows at
    ``max(EXPAND_SEGMENT_MIN_ROWS, 4 * (sum(sizes) + 1))`` rows (the
    ``+ 1`` counts the padded root anchor) — small queries compile to one
    window and only output-heavy targets split.
    """
    if not isinstance(target, int) or isinstance(target, bool) or target < 0:
        raise InputError(f"window plan needs a target >= 0, got {target!r}")
    if segments is None:
        floor = max(EXPAND_SEGMENT_MIN_ROWS, 4 * (sum(sizes) + 1))
        segments = max(1, target // floor)
    else:
        check_expand_segments(segments)
    segments = min(segments, max(target, 1))
    return partition_plan(target, segments)
