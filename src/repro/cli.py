"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``join``     oblivious equi-join of two CSV files — or, with ``--join-tree
             EDGE ...``, an acyclic multiway join of three or more CSVs in
             one Yannakakis-style pass
             (``--engine traced|vector|sharded``, ``--workers``/``--shards``/
             ``--executor inline|pool|async|shuffle``,
             ``--padding revealed|bounded|worst_case`` with ``--bound``)
``plan``     compile and print a query's *public plan* — the serialized
             schedule of oblivious primitives, a pure function of input
             sizes, the shard count and the padding bounds
             (``python -m repro plan --engine sharded --padding worst_case
             --n1 1024 --n2 1024``)
``verify``   run the §6.1 trace-equality experiment and print the hashes
``trace``    print a Figure-7-style access-pattern raster for a small join
``predict``  Figure-8 enclave cost predictions for a given input size
``engines``  list the registered execution engines and their options
``serve``    start the query service: one warm engine + cross-query plan/
             encoding caches behind a JSON-lines TCP server
             (``python -m repro serve --engine sharded --workers 4
             --table orders=orders.csv``); prints ``listening on
             HOST:PORT`` once bound (``--port 0`` picks a free port)
``client``   talk to a running server: ``--register NAME=CSV``,
             ``--query '{"op": "join", ...}'``, ``--stats``,
             ``--shutdown`` (results as CSV on stdout, per-query cache
             stats on stderr)

Every engine produces identical results; ``traced`` is the per-access-traced
reference implementation, ``vector`` the numpy fast path (~10^3x faster),
``sharded`` the multi-process scale-out path (``--engine sharded --workers 4``,
with ``--executor`` selecting inline / shared-memory pool / async overlap /
adversarially shuffled completion order; grid results stream into the merge
tournament as tasks complete, on every substrate).
"""

from __future__ import annotations

import argparse
import csv
import sys

from .analysis.viz import rasterize, render_text
from .core.join import oblivious_join
from .core.padding import PADDING_MODES
from .db.query import ObliviousEngine
from .engines import available_engines, engine_option_names, get_engine
from .db.schema import Schema
from .db.table import DBTable
from .enclave.costmodel import EnclaveCostModel
from .errors import BoundError, InputError
from .memory.monitor import run_hashed, run_logged
from .plan import WORKLOADS, available_executors
from .workloads.generators import matched_class


def _infer_table(path: str) -> DBTable:
    """Load a headered CSV, inferring int columns when every value parses."""
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise SystemExit(f"{path}: empty file")
    header, data = rows[0], rows[1:]

    def is_int(col: int) -> bool:
        try:
            for row in data:
                int(row[col])
        except (ValueError, IndexError):
            return False
        return True

    specs = [
        f"{name}:{'int' if is_int(i) else 'str'}" for i, name in enumerate(header)
    ]
    schema = Schema.of(*specs)
    typed = [
        tuple(
            int(value) if column.type == "int" else value
            for value, column in zip(row, schema.columns)
        )
        for row in data
    ]
    return DBTable(schema, typed)


def check_padding_args(padding: str, bound) -> None:
    """Reject ``--padding``/``--bound`` combinations that silently no-op.

    Shared by the CLI join command and the bench script: a bound without
    bounded padding would leave the trace fully revealed while the user
    believes it capped, and bounded padding without a bound has no public
    cap to pad to.
    """
    if bound is not None and padding != "bounded":
        raise SystemExit(
            f"--bound only applies with --padding bounded (got --padding {padding})"
        )
    if padding == "bounded" and bound is None:
        raise SystemExit("--padding bounded needs an explicit --bound")
    if bound is not None and bound < 0:
        raise SystemExit(f"--bound must be >= 0, got {bound}")


def engine_options(args: argparse.Namespace) -> dict:
    """Collect the engine knobs that were set on the command line.

    ``--workers``/``--shards``/``--executor`` configure the sharded engine;
    ``--padding``/``--bound`` configure padded execution on any engine.
    """
    options = {}
    if getattr(args, "workers", None) is not None:
        options["workers"] = args.workers
    if getattr(args, "shards", None) is not None:
        options["shards"] = args.shards
    if getattr(args, "executor", None) is not None:
        options["executor"] = args.executor
    if getattr(args, "expand_segments", None) is not None:
        options["expand_segments"] = args.expand_segments
    if getattr(args, "padding", None) not in (None, "revealed"):
        options["padding"] = args.padding
    if getattr(args, "bound", None) is not None:
        options["bound"] = args.bound
    return options


def _parse_tree_edge(text: str, numeric: bool = False):
    """One join-tree edge token: ``PARENT:CHILD:PCOL:CCOL[:BAND]``.

    Tables are numbered by position (0 = first CSV / the root); columns are
    names on the ``join`` command and integer indices on ``plan``
    (``numeric=True``); ``BAND=w`` matches ``|parent - child| <= w``.
    """
    parts = text.split(":")
    if len(parts) not in (4, 5):
        raise SystemExit(
            f"join-tree edges are PARENT:CHILD:PCOL:CCOL[:BAND], got {text!r}"
        )
    try:
        parent, child = int(parts[0]), int(parts[1])
        band = int(parts[4]) if len(parts) == 5 else 0
        pcol = int(parts[2]) if numeric else parts[2]
        ccol = int(parts[3]) if numeric else parts[3]
    except ValueError:
        raise SystemExit(
            f"join-tree edge {text!r}: table indices"
            f"{' and columns' if numeric else ''} and BAND must be integers"
        )
    return (parent, child, pcol, ccol, band)


def _cmd_join(args: argparse.Namespace) -> int:
    check_padding_args(args.padding, args.bound)
    engine = ObliviousEngine(engine=args.engine, **engine_options(args))
    try:
        if args.join_tree:
            tables = [
                _infer_table(path)
                for path in [args.left, args.right, *args.tables]
            ]
            edges = [_parse_tree_edge(token) for token in args.join_tree]
            result = engine.join_tree(tables, edges)
        else:
            if args.tables:
                raise SystemExit(
                    "extra table arguments need --join-tree edge specs"
                )
            if args.left_on is None or args.right_on is None:
                raise SystemExit(
                    "--left-on and --right-on are required without --join-tree"
                )
            left = _infer_table(args.left)
            right = _infer_table(args.right)
            result = engine.join(left, right, on=(args.left_on, args.right_on))
    except BoundError as error:
        # The documented bounded-mode abort (a deliberate one-bit leak, see
        # docs/leakage.md) — a clean message, not a traceback.
        raise SystemExit(f"padding bound exceeded: {error}") from None
    writer = csv.writer(sys.stdout if args.output == "-" else open(args.output, "w", newline=""))
    writer.writerow(result.schema.names())
    for row in result.rows:
        writer.writerow(row)
    note = ""
    if args.padding != "revealed":
        note = f" (trace padded: {args.padding})"
    print(f"m = {len(result)} rows{note}", file=sys.stderr)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    inputs = matched_class(args.n1, args.n2, seed=args.seed)
    hashes = []
    for workload in inputs:
        digest, count, _ = run_hashed(
            lambda t, w=workload: oblivious_join(w.left, w.right, tracer=t)
        )
        hashes.append(digest)
        print(f"{workload.name:10s} (n1={workload.n1}, n2={workload.n2}, "
              f"m={workload.m}): {digest[:40]}... [{count} accesses]")
    if len(set(hashes)) == 1:
        print("OBLIVIOUS: all trace hashes in the class are identical")
        return 0
    print("VIOLATION: trace hashes differ within one input class")
    return 1


def _cmd_trace(args: argparse.Namespace) -> int:
    half = max(args.n // 2, 1)
    left = [(k, k) for k in range(half)]
    right = [(k, k + 100) for k in range(half)]
    events, result = run_logged(
        lambda t: oblivious_join(left, right, tracer=t)
    )
    raster = rasterize(events, width=args.width, height=args.height)
    print(f"join {half}x{half} -> m={result.m}: {len(events)} accesses")
    print(render_text(raster))
    return 0


def _parse_pipeline_stage(text: str) -> tuple[str, dict]:
    """One ``--stages`` token: ``filter``, ``join:N2``, ``multiway:S1,S2``,
    ``group_by`` or ``order_by``."""
    name, _, argument = text.partition(":")
    if name == "join":
        try:
            return "join", {"n2": int(argument)}
        except ValueError:
            raise SystemExit(f"--stages join needs a size, e.g. join:64 (got {text!r})")
    if name == "multiway":
        try:
            sizes = [int(size) for size in argument.split(",") if size]
        except ValueError:
            sizes = []
        if not sizes:
            raise SystemExit(
                f"--stages multiway needs sizes, e.g. multiway:16,8 (got {text!r})"
            )
        return "multiway", {"sizes": sizes}
    if name in ("filter", "group_by", "order_by") and not argument:
        return name, {}
    raise SystemExit(
        f"unknown pipeline stage {text!r}; stages are filter, join:N2, "
        f"multiway:S1,S2,..., group_by, order_by"
    )


def _cmd_plan(args: argparse.Namespace) -> int:
    """Compile and print a workload's public plan (no data touched).

    The serialization is a pure function of the sizes, the shard count and
    the padding bounds — ``tests/test_plan.py`` pins that — so the printed
    artifact is exactly what an adversary may learn from the eventual run.
    With ``--stages``, a whole pipeline DAG is compiled instead: the
    source size comes from ``--n`` and each stage token adds one operator
    (``--n 64 --stages filter join:32 group_by``).
    """
    check_padding_args(args.padding, args.bound)
    shapes = {}
    if args.n1 is not None:
        shapes["n1"] = args.n1
    if args.n2 is not None:
        shapes["n2"] = args.n2
    if args.n is not None:
        shapes["n"] = args.n
    if args.sizes is not None:
        shapes["sizes"] = args.sizes
    if getattr(args, "edges", None) is not None:
        shapes["edges"] = [
            _parse_tree_edge(token, numeric=True) for token in args.edges
        ]
    try:
        engine = get_engine(args.engine, **engine_options(args))
        if args.stages:
            if args.n is None:
                raise SystemExit("--stages needs --n (the source table size)")
            ops = [("source", {"n": args.n})] + [
                _parse_pipeline_stage(stage) for stage in args.stages
            ]
            plan = engine.compile_pipeline(ops)
        else:
            plan = engine.compile_plan(args.workload, **shapes)
    except InputError as error:
        raise SystemExit(str(error)) from None
    if args.json:
        sys.stdout.write(plan.serialize().decode("utf-8") + "\n")
    else:
        print(plan.render())
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    for name in available_engines():
        engine = get_engine(name)
        lines = (type(engine).__doc__ or "").strip().splitlines()
        print(f"{name:10s} {lines[0] if lines else ''}".rstrip())
        options = engine_option_names(engine)
        if options:
            print(f"{'':10s} options: {', '.join(options)}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    check_padding_args(args.padding, args.bound)
    from .service import ServiceEngine, run_server

    try:
        service = ServiceEngine(engine=args.engine, **engine_options(args))
        for token in args.table or []:
            name, _, path = token.partition("=")
            if not name or not path:
                raise SystemExit(f"--table takes NAME=CSV, got {token!r}")
            service.register_table(name, _infer_table(path))
    except InputError as error:
        raise SystemExit(str(error)) from None
    run_server(service, host=args.host, port=args.port)
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from .service import ServiceClient, ServiceError

    try:
        with ServiceClient(host=args.host, port=args.port) as client:
            for token in args.register or []:
                name, _, path = token.partition("=")
                if not name or not path:
                    raise SystemExit(f"--register takes NAME=CSV, got {token!r}")
                rows = client.register_table(name, _infer_table(path))
                print(f"registered {name}: {rows} rows", file=sys.stderr)
            if args.query is not None:
                try:
                    spec = json.loads(args.query)
                except json.JSONDecodeError as error:
                    raise SystemExit(f"--query is not valid JSON: {error}")
                table, stats = client.query(spec)
                writer = csv.writer(sys.stdout)
                writer.writerow(table.schema.names())
                for row in table.rows:
                    writer.writerow(row)
                print(json.dumps(stats), file=sys.stderr)
            if args.stats:
                print(json.dumps(client.stats(), indent=2))
            if args.shutdown:
                client.shutdown()
                print("server shut down", file=sys.stderr)
            if not (args.register or args.query or args.stats or args.shutdown):
                client.ping()
                print("pong", file=sys.stderr)
    except ServiceError as error:
        raise SystemExit(f"server error ({error.kind}): {error}") from None
    except OSError as error:
        raise SystemExit(
            f"cannot reach {args.host}:{args.port}: {error}"
        ) from None
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    model = EnclaveCostModel()
    point = model.figure8_point(args.n)
    print(f"predicted runtimes at n = {args.n:,} (m ~ n1 = n2 = n/2):")
    for variant, seconds in point.items():
        print(f"  {variant:22s} {seconds:10.3f} s")
    knee = model.epc_knee_input_size()
    print(f"EPC paging knee at n ~ {knee:,}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Oblivious database joins (VLDB 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    join = sub.add_parser("join", help="oblivious equi-join of two CSV files")
    join.add_argument("left")
    join.add_argument("right")
    join.add_argument(
        "tables",
        nargs="*",
        help="additional CSV tables (indices 2, 3, ... for --join-tree)",
    )
    join.add_argument("--left-on", default=None, help="left join column")
    join.add_argument("--right-on", default=None, help="right join column")
    join.add_argument(
        "--join-tree",
        nargs="+",
        default=None,
        metavar="EDGE",
        dest="join_tree",
        help="acyclic multiway join: tree edges PARENT:CHILD:PCOL:CCOL[:BAND] "
        "over the tables by position (0 = first CSV, the root); column names "
        "from each table's header; BAND=w matches |parent - child| <= w; "
        "replaces --left-on/--right-on",
    )
    join.add_argument("--output", default="-", help="output CSV ('-' = stdout)")
    join.add_argument(
        "--engine",
        default="traced",
        choices=available_engines(),
        help="execution engine: 'traced' = per-access-traced reference, "
        "'vector' = numpy fast path, 'sharded' = multi-process scale-out; "
        "identical results (default: traced)",
    )
    join.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sharded engine: process-pool size (default: 1 = inline)",
    )
    join.add_argument(
        "--shards",
        type=int,
        default=None,
        help="sharded engine: partitions per input (default: workers, min 2)",
    )
    join.add_argument(
        "--executor",
        default=None,
        choices=available_executors(),
        help="sharded engine: execution substrate — 'inline' (calling "
        "process), 'pool' (persistent process pool, shared-memory column "
        "transport), 'async' (asyncio compute/gather overlap), 'shuffle' "
        "(inline compute, adversarial completion order — validates the "
        "streaming merge); default: inline at --workers 1, pool above",
    )
    join.add_argument(
        "--expand-segments",
        type=int,
        default=None,
        dest="expand_segments",
        help="sharded engine, padded modes: split each grid cell's "
        "distribute-expand into this many plan-bounded segment tasks "
        "(default: shape-driven — only output-heavy cells split)",
    )
    join.add_argument(
        "--padding",
        default="revealed",
        choices=PADDING_MODES,
        help="output-size padding: 'revealed' leaks m (default), 'bounded' "
        "pads the trace to --bound, 'worst_case' pads to n1*n2; the CSV "
        "output is compacted either way (see docs/leakage.md)",
    )
    join.add_argument(
        "--bound",
        type=int,
        default=None,
        help="public output bound for --padding bounded",
    )
    join.set_defaults(func=_cmd_join)

    plan = sub.add_parser(
        "plan",
        help="compile and print a query's public plan (no data touched)",
    )
    plan.add_argument(
        "--workload",
        default="join",
        choices=WORKLOADS,
        help="which workload to compile (default: join)",
    )
    plan.add_argument(
        "--engine",
        default="vector",
        choices=available_engines(),
        help="engine whose schedule to compile (default: vector)",
    )
    plan.add_argument("--n1", type=int, default=None, help="left table size")
    plan.add_argument("--n2", type=int, default=None, help="right table size")
    plan.add_argument(
        "--n", type=int, default=None, help="table size (filter/group_by/order_by)"
    )
    plan.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="table sizes of a multiway cascade (one per table)",
    )
    plan.add_argument(
        "--edges",
        nargs="+",
        default=None,
        metavar="EDGE",
        help="join-tree edges PARENT:CHILD:PCOL:CCOL[:BAND] with integer "
        "column indices (--workload join_tree, together with --sizes)",
    )
    plan.add_argument(
        "--stages",
        nargs="+",
        default=None,
        metavar="STAGE",
        help="compile a whole pipeline DAG instead of one workload: stage "
        "tokens after a --n-sized source, e.g. --n 64 --stages filter "
        "join:32 group_by (tokens: filter, join:N2, multiway:S1,S2,..., "
        "group_by, order_by); ignores --workload",
    )
    plan.add_argument(
        "--shards",
        type=int,
        default=None,
        help="sharded engine: partitions per input (default: 2)",
    )
    plan.add_argument(
        "--expand-segments",
        type=int,
        default=None,
        dest="expand_segments",
        help="sharded engine, padded modes: per-cell expansion segment "
        "count shown as expand_segment plan nodes (default: shape-driven)",
    )
    plan.add_argument(
        "--padding",
        default="revealed",
        choices=PADDING_MODES,
        help="padding mode to compile for (default: revealed; sizes the "
        "plan cannot fix at compile time print as null)",
    )
    plan.add_argument(
        "--bound",
        type=int,
        default=None,
        help="public output bound for --padding bounded",
    )
    plan.add_argument(
        "--json",
        action="store_true",
        help="print the canonical serialization instead of the rendering "
        "(byte equality of this output is plan equality)",
    )
    plan.set_defaults(func=_cmd_plan)

    verify = sub.add_parser("verify", help="trace-equality experiment (§6.1)")
    verify.add_argument("--n1", type=int, default=8)
    verify.add_argument("--n2", type=int, default=8)
    verify.add_argument("--seed", type=int, default=0)
    verify.set_defaults(func=_cmd_verify)

    trace = sub.add_parser("trace", help="Figure-7-style access raster")
    trace.add_argument("--n", type=int, default=8, help="total input size")
    trace.add_argument("--width", type=int, default=100)
    trace.add_argument("--height", type=int, default=30)
    trace.set_defaults(func=_cmd_trace)

    predict = sub.add_parser("predict", help="Figure-8 enclave predictions")
    predict.add_argument("--n", type=int, default=1_000_000)
    predict.set_defaults(func=_cmd_predict)

    engines = sub.add_parser("engines", help="list registered execution engines")
    engines.set_defaults(func=_cmd_engines)

    serve = sub.add_parser(
        "serve",
        help="start the query service (warm engine + cross-query caches)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: pick a free one; the chosen port is "
        "printed as 'listening on HOST:PORT')",
    )
    serve.add_argument(
        "--engine",
        default="vector",
        choices=available_engines(),
        help="engine every query runs on (default: vector)",
    )
    serve.add_argument(
        "--table",
        action="append",
        default=None,
        metavar="NAME=CSV",
        help="preload a table (repeatable); clients can also register "
        "tables over the wire",
    )
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument("--shards", type=int, default=None)
    serve.add_argument(
        "--executor", default=None, choices=available_executors()
    )
    serve.add_argument(
        "--expand-segments", type=int, default=None, dest="expand_segments"
    )
    serve.add_argument("--padding", default="revealed", choices=PADDING_MODES)
    serve.add_argument("--bound", type=int, default=None)
    serve.set_defaults(func=_cmd_serve)

    client = sub.add_parser(
        "client",
        help="talk to a running query server (register/query/stats/shutdown)",
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument(
        "--register",
        action="append",
        default=None,
        metavar="NAME=CSV",
        help="register a CSV as a named table (repeatable)",
    )
    client.add_argument(
        "--query",
        default=None,
        metavar="JSON",
        help="a query spec, e.g. "
        '\'{"op": "join", "left": "a", "right": "b", "on": ["k", "k"]}\'',
    )
    client.add_argument(
        "--stats", action="store_true", help="print service-level stats"
    )
    client.add_argument(
        "--shutdown", action="store_true", help="stop the server"
    )
    client.set_defaults(func=_cmd_client)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
