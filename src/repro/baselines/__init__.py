"""Comparator algorithms from Table 1 of the paper (plus a test oracle)."""

from .hash_join import hash_join, join_multiset
from .nested_loop import nested_loop_join
from .opaque_join import opaque_pkfk_join
from .sort_merge import sort_merge_join

__all__ = [
    "hash_join",
    "join_multiset",
    "nested_loop_join",
    "opaque_pkfk_join",
    "sort_merge_join",
]
