"""Opaque-style oblivious sort-merge join (primary–foreign key only).

Opaque [45] (and ObliDB's variant [13]) implement an oblivious join that
works only for primary–foreign key joins: after sorting the tagged union of
both tables by ``(j, tid)``, each foreign row's unique matching primary row
is the last primary row above it, so one linear scan with a one-row local
carry produces the output — no expansion machinery is ever needed because
``m <= n2``.  Cost is `O(n log^2 n)` with a bitonic sorter, matching the
paper's Table 1 row (their `O(n log^2 (n/t))` with ``t`` oblivious-memory
entries, at ``t = O(1)``).

This is the §6.2 comparison point: the paper reports its general join runs
about five times *faster* than Opaque's distributed SGX implementation at
n = 10^6 even though Opaque solves the easier PK–FK special case;
``benchmarks/bench_opaque_pkfk.py`` compares the two algorithms on equal
footing inside our engine.
"""

from __future__ import annotations

from ..errors import InputError
from ..memory.local import LocalContext
from ..memory.public import PublicArray
from ..memory.tracer import Tracer
from ..obliv.bitonic import bitonic_sort
from ..obliv.compact import compact_by_routing
from ..obliv.compare import SortKey, SortSpec
from ..obliv.network import NetworkStats

_SPEC_J_TID = SortSpec(
    SortKey(getter=lambda c: c[0], name="j"),
    SortKey(getter=lambda c: c[1], name="tid"),
)


def opaque_pkfk_join(
    primary: list[tuple[int, int]],
    foreign: list[tuple[int, int]],
    tracer: Tracer | None = None,
    stats: NetworkStats | None = None,
    local: LocalContext | None = None,
) -> list[tuple[int, int]]:
    """Oblivious PK–FK equi-join; returns ``(d_primary, d_foreign)`` pairs.

    ``primary`` must have unique join values (checked up front — violating
    the precondition is a caller bug, and Opaque's algorithm is simply not
    defined for it; this is the "restricted to primary-foreign key joins"
    limitation in Table 1).
    """
    keys = [j for j, _ in primary]
    if len(set(keys)) != len(keys):
        raise InputError("primary table join values must be unique for a PK-FK join")
    tracer = tracer or Tracer()
    local = local or LocalContext()
    n1 = len(primary)
    n2 = len(foreign)
    n = n1 + n2
    if n2 == 0:
        return []

    # Cells: (j, tid, d) for inputs; the scan rewrites them to outputs.
    cells = PublicArray(n, name="OPQ", tracer=tracer)
    for i, (j, d) in enumerate(primary):
        cells.write(i, (j, 1, d))
    for i, (j, d) in enumerate(foreign):
        cells.write(n1 + i, (j, 2, d))

    with tracer.phase("opaque:sort(j,tid)"):
        bitonic_sort(cells, _SPEC_J_TID, stats=stats)

    # One forward pass: carry the current primary row; rewrite each cell to
    # either a joined pair or a null marker (same accesses either way).
    with tracer.phase("opaque:scan"), local.slot(2):
        carry_j = None
        carry_d = None
        for i in range(n):
            j, tid, d = cells.read(i)
            if tid == 1:
                carry_j = j
                carry_d = d
                cells.write(i, None)
            elif carry_j == j:
                cells.write(i, (carry_d, d))
            else:
                # Orphan foreign row (no matching primary): drop it.
                cells.write(i, None)

    with tracer.phase("opaque:compact"):
        m = compact_by_routing(cells, lambda c: c is None, stats=stats)

    return [cells.read(i) for i in range(m)]
