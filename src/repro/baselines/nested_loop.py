"""The trivial oblivious nested-loop join — Table 1's quadratic comparator.

§4.2 notes that an `O(n1·n2 log^2(n1·n2))` oblivious join is trivially
obtained from a nested-loop join: compare every pair at fixed positions,
write a match-or-null to a quadratic scratch table, and compact the real
outputs to the front.  (Agrawal et al.'s "sovereign join" has the same
`O(n1·n2)` pair-scan core; their output handling was shown insecure in
[27], which is exactly what the null-padding + compaction here repairs.)

Every access — the pair scan and the compaction — is input-independent, so
this baseline is *secure* but asymptotically hopeless; the Table 1 bench
shows the crossover against Algorithm 1 at tiny input sizes.
"""

from __future__ import annotations

from ..memory.public import PublicArray
from ..memory.tracer import Tracer
from ..obliv.compact import compact_by_routing
from ..obliv.network import NetworkStats


def nested_loop_join(
    left: list[tuple[int, int]],
    right: list[tuple[int, int]],
    tracer: Tracer | None = None,
    stats: NetworkStats | None = None,
) -> list[tuple[int, int]]:
    """Oblivious quadratic equi-join; returns ``(d1, d2)`` pairs.

    Access pattern depends only on ``(n1, n2)`` — the scratch table has a
    cell per pair and the compaction is oblivious; even the output length is
    only revealed at the end (better than Algorithm 1 needs!), at the price
    of quadratic work.
    """
    tracer = tracer or Tracer()
    n1 = len(left)
    n2 = len(right)
    if n1 == 0 or n2 == 0:
        return []
    a = PublicArray(list(left), name="NL1", tracer=tracer)
    b = PublicArray(list(right), name="NL2", tracer=tracer)
    scratch = PublicArray(n1 * n2, name="NLpairs", tracer=tracer)

    with tracer.phase("nested:scan"):
        for i in range(n1):
            j1, d1 = a.read(i)
            for k in range(n2):
                j2, d2 = b.read(k)
                # Both branches write the same cell: match or null marker.
                if j1 == j2:
                    scratch.write(i * n2 + k, (d1, d2))
                else:
                    scratch.write(i * n2 + k, None)
                if stats is not None:
                    stats.comparisons += 1

    with tracer.phase("nested:compact"):
        m = compact_by_routing(scratch, lambda c: c is None, stats=stats)

    out = []
    with tracer.phase("nested:emit"):
        for i in range(m):
            out.append(scratch.read(i))
    return out
