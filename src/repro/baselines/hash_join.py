"""Non-oblivious hash join — the fast correctness oracle.

Not part of the paper's comparison table, but every serious join test suite
needs an independent reference implementation; the property-based tests
check the oblivious join against this one on randomly generated tables.
"""

from __future__ import annotations

from collections import defaultdict


def hash_join(
    left: list[tuple[int, int]],
    right: list[tuple[int, int]],
) -> list[tuple[int, int]]:
    """Equi-join via build + probe; returns ``(d1, d2)`` pairs (unordered)."""
    buckets: dict[int, list[int]] = defaultdict(list)
    for j, d in left:
        buckets[j].append(d)
    out: list[tuple[int, int]] = []
    for j, d2 in right:
        for d1 in buckets.get(j, ()):
            out.append((d1, d2))
    return out


def join_multiset(
    left: list[tuple[int, int]],
    right: list[tuple[int, int]],
) -> list[tuple[int, int]]:
    """The join as a canonically sorted list — the oracle used in tests."""
    return sorted(hash_join(left, right))
