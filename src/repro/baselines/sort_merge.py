"""The standard (non-oblivious) sort-merge join — Table 1's first row.

This is the `O(m' log m')` classic the paper benchmarks against in Figure 8
(the "insecure sort-merge" series) and uses in its introduction to explain
the leakage problem: at every merge step the adversary learns which input
entries are read and whether they matched (an output write follows).

The merge phase runs over traced :class:`~repro.memory.public.PublicArray`s
so the leakage is *demonstrable*: ``repro.memory.distinguishing_events``
pinpoints the first data-dependent access, and the adversary demo in
``examples/adversary_view.py`` reconstructs group structure from the trace.
The sorting step stands in for a regular in-place sort (it is non-oblivious
anyway and its trace is not the interesting part).
"""

from __future__ import annotations

from ..memory.public import PublicArray
from ..memory.tracer import Tracer


def sort_merge_join(
    left: list[tuple[int, int]],
    right: list[tuple[int, int]],
    tracer: Tracer | None = None,
) -> list[tuple[int, int]]:
    """Classic sort-merge equi-join; returns ``(d1, d2)`` pairs.

    Handles duplicate join values on both sides with the standard
    block-rescan: when a run of equal keys is found on both sides, the right
    run is rescanned for every left entry in the run.
    """
    tracer = tracer or Tracer()
    a = PublicArray(sorted(left), name="SM1", tracer=tracer)
    b = PublicArray(sorted(right), name="SM2", tracer=tracer)
    out: list[tuple[int, int]] = []
    output = PublicArray(len(left) * len(right) + 1, name="SMout", tracer=tracer)

    n1 = len(a)
    n2 = len(b)
    i = 0
    k = 0
    cursor = 0
    with tracer.phase("merge"):
        while i < n1 and k < n2:
            j1, d1 = a.read(i)
            j2, d2 = b.read(k)
            if j1 < j2:
                i += 1
            elif j1 > j2:
                k += 1
            else:
                # Equal keys: scan the whole right-side run for this left row.
                run = k
                while run < n2:
                    j2r, d2r = b.read(run)
                    if j2r != j1:
                        break
                    output.write(cursor, (d1, d2r))
                    out.append((d1, d2r))
                    cursor += 1
                    run += 1
                i += 1
                # The right pointer only advances once the left run ends.
                if i < n1 and a.read(i)[0] != j1:
                    k = run
    return out
