"""Column <-> block serialization for store-backed tables.

A stored table is one store key per column (``"<table>/<column>"``) plus a
meta entry recording the schema, row count and rows-per-block, written by
:func:`write_table` and consumed by :class:`~repro.db.stored.StoredTable`.

``int`` columns pack ``block_rows`` little-endian int64 values per block —
``block_rows = block_bytes // 8`` is fixed by the store's block size, so a
block id maps to a row range by arithmetic alone.  ``str`` columns pack the
same row count per block as length-prefixed UTF-8; a block whose strings
overflow ``block_bytes`` raises :class:`~repro.errors.CapacityError` (pick
a larger block size).  Either way every block is padded to the full
``block_bytes``, so transfer sizes never depend on the values.
"""

from __future__ import annotations

import numpy as np

from ..errors import CapacityError, InputError

_INT = np.int64


def block_rows_of(block_bytes: int) -> int:
    """Rows per block: fixed by the store's block size (8 bytes per int)."""
    return block_bytes // 8


def column_key(table: str, column: str) -> str:
    return f"{table}/{column}"


def meta_key(table: str) -> str:
    return f"{table}"


def write_int_column(store, key: str, values) -> int:
    """Write an int column block-wise; returns the block count."""
    array = np.asarray(values, dtype=_INT)
    block_rows = block_rows_of(store.block_bytes)
    nblocks = -(-len(array) // block_rows)
    for index in range(nblocks):
        chunk = array[index * block_rows : (index + 1) * block_rows]
        store.write_block(key, index, chunk.tobytes())
    return nblocks


def read_int_block(store_read, key: str, index: int) -> np.ndarray:
    """One int block as a full-width int64 array (tail blocks zero-padded)."""
    return np.frombuffer(store_read(key, index), dtype=_INT)


def write_str_column(store, key: str, values: list[str]) -> int:
    """Write a str column block-wise; returns the block count."""
    block_rows = block_rows_of(store.block_bytes)
    nblocks = -(-len(values) // block_rows)
    for index in range(nblocks):
        chunk = values[index * block_rows : (index + 1) * block_rows]
        parts = []
        for value in chunk:
            data = str(value).encode("utf-8")
            parts.append(len(data).to_bytes(4, "little") + data)
        payload = b"".join(parts)
        if len(payload) > store.block_bytes:
            raise CapacityError(
                f"str block {index} of {key!r} needs {len(payload)} bytes "
                f"but the store's block_bytes is {store.block_bytes}; "
                "rebuild the store with a larger block size"
            )
        store.write_block(key, index, payload)
    return nblocks


def read_str_block(store_read, key: str, index: int, count: int) -> list[str]:
    """One str block's first ``count`` values (``count`` from row math)."""
    payload = store_read(key, index)
    values, offset = [], 0
    for _ in range(count):
        length = int.from_bytes(payload[offset : offset + 4], "little")
        offset += 4
        values.append(payload[offset : offset + length].decode("utf-8"))
        offset += length
    return values


def write_table(store, name: str, schema, rows: list[tuple]) -> dict:
    """Write a whole table column-wise; returns (and stores) its meta.

    ``schema`` is a :class:`~repro.db.schema.Schema`; the meta entry is
    what :meth:`DBTable.open <repro.db.table.DBTable.open>` reads back.
    """
    n = len(rows)
    block_rows = block_rows_of(store.block_bytes)
    if block_rows < 1:
        raise InputError(
            f"block_bytes={store.block_bytes} holds no rows; need >= 8"
        )
    for index, column in enumerate(schema.columns):
        key = column_key(name, column.name)
        values = [row[index] for row in rows]
        if column.type == "int":
            write_int_column(store, key, values)
        else:
            write_str_column(store, key, values)
    meta = {
        "name": name,
        "columns": [[c.name, c.type] for c in schema.columns],
        "n": n,
        "block_rows": block_rows,
    }
    store.put_meta(meta_key(name), meta)
    return meta
