"""Out-of-core encrypted block storage (the paper's untrusted memory).

Layered bottom-up:

* :mod:`repro.store.blockstore` — the :class:`BlockStore` contract with
  :class:`InMemoryStore` / :class:`FileStore` backends (fixed-size blocks,
  optional per-block probabilistic encryption) and the byte-budgeted
  :class:`BlockCache` trusted-memory LRU;
* :mod:`repro.store.columns` — column <-> block serialization for tables;
* :mod:`repro.store.runtime` — per-process :class:`StoreHandle` attach
  registry, the :class:`StoreBlocksRef` payload leaves shard workers
  resolve, and the engine-facing :class:`StorePairs`.

See ``docs/architecture.md`` (storage layer) and the block-access-pattern
section of ``docs/leakage.md``.
"""

from .blockstore import (
    BlockCache,
    BlockStore,
    FileStore,
    InMemoryStore,
)
from .columns import write_table
from .runtime import (
    DEFAULT_CACHE_BYTES,
    StoreBlocksRef,
    StoreHandle,
    StorePairs,
    StoreSpec,
    adopt,
    attach,
    detach_all,
    residency_snapshot,
    resolve_blocks,
    stats_snapshot,
    store_pairs_block_rows,
    trace_faults,
)

__all__ = [
    "BlockCache",
    "BlockStore",
    "FileStore",
    "InMemoryStore",
    "write_table",
    "DEFAULT_CACHE_BYTES",
    "StoreBlocksRef",
    "StoreHandle",
    "StorePairs",
    "StoreSpec",
    "adopt",
    "attach",
    "detach_all",
    "residency_snapshot",
    "resolve_blocks",
    "stats_snapshot",
    "store_pairs_block_rows",
    "trace_faults",
]
