"""Paged block stores: fixed-size encrypted blocks in untrusted memory.

The paper's machine model (§3.1) is a small *trusted* memory over a large
*untrusted* store whose cells are probabilistically encrypted — the
adversary sees which blocks are touched, never their contents, and cannot
tell whether a rewritten block changed.  This module is that store made
concrete:

:class:`BlockStore`
    The contract — fixed-size blocks addressed by ``(key, index)``, a JSON
    metadata side-channel per key, and a ``generation`` counter every write
    bumps (what the encoding cache keys on for store-backed tables).

:class:`InMemoryStore`
    Dict-backed, for tests and single-process runs.

:class:`FileStore`
    One file per key in a directory, block ``i`` at byte offset
    ``i * slot_bytes`` — offsets are pure functions of the index, so the
    *file-level* access pattern equals the block-id access pattern the plan
    already declares.  With an encryption ``key``, every slot holds
    ``nonce || ciphertext`` from
    :class:`~repro.memory.encryption.ProbabilisticEncryptor`: rewriting a
    block draws a fresh nonce, so identical plaintexts are unlinkable at
    rest.

:class:`BlockCache`
    The byte-budgeted LRU standing in for trusted memory.  Its
    hit/miss/evict counters — together with the stores' read/write/decrypt
    counters — feed :class:`~repro.enclave.epc.EPCModel` for the modeled
    paging cost (see :mod:`repro.store.runtime`).

Stores always read and write *whole* blocks of exactly ``block_bytes``
payload bytes (writers zero-pad the final partial block): uniform transfer
sizes keep the observable I/O a function of block ids alone.
"""

from __future__ import annotations

import json
import os
import urllib.parse
from collections import OrderedDict

from ..errors import InputError
from ..memory.encryption import Ciphertext, ProbabilisticEncryptor

#: Nonce width of :class:`ProbabilisticEncryptor` ciphertexts.
NONCE_BYTES = 16

#: Default block payload size: 4 KiB, one EPC page.
DEFAULT_BLOCK_BYTES = 4096


def _fresh_stats() -> dict[str, int]:
    return {
        "reads": 0,
        "writes": 0,
        "bytes_read": 0,
        "bytes_written": 0,
        "decryptions": 0,
        "encryptions": 0,
    }


class BlockStore:
    """Fixed-size block storage addressed by ``(key, index)``.

    Subclasses implement the raw slot I/O (:meth:`_load` / :meth:`_save` /
    :meth:`num_blocks` / :meth:`keys`); this base owns the shared contract:
    block-size validation, optional probabilistic encryption, the I/O
    counters in ``stats``, per-key JSON metadata, and the ``generation``
    counter that makes store mutations visible to caches.
    """

    def __init__(
        self, block_bytes: int = DEFAULT_BLOCK_BYTES, key: bytes | None = None
    ) -> None:
        if not isinstance(block_bytes, int) or block_bytes < 8:
            raise InputError(
                f"block_bytes must be an int >= 8, got {block_bytes!r}"
            )
        self.block_bytes = block_bytes
        self._encryptor = (
            ProbabilisticEncryptor(key) if key is not None else None
        )
        self.generation = 0
        self.stats = _fresh_stats()

    # -- subclass surface ----------------------------------------------------

    def _load(self, key: str, index: int) -> bytes:
        raise NotImplementedError

    def _save(self, key: str, index: int, slot: bytes) -> None:
        raise NotImplementedError

    def num_blocks(self, key: str) -> int:
        raise NotImplementedError

    def keys(self) -> list[str]:
        raise NotImplementedError

    def get_meta(self, key: str) -> dict | None:
        raise NotImplementedError

    def _save_meta(self, key: str, meta: dict) -> None:
        raise NotImplementedError

    # -- the shared contract -------------------------------------------------

    @property
    def encrypted(self) -> bool:
        return self._encryptor is not None

    @property
    def slot_bytes(self) -> int:
        """On-store size of one block: payload plus nonce when encrypted."""
        return self.block_bytes + (NONCE_BYTES if self.encrypted else 0)

    def write_block(self, key: str, index: int, payload: bytes) -> None:
        """Write one block; short payloads are zero-padded to the slot."""
        if index < 0:
            raise InputError(f"block index must be >= 0, got {index}")
        if len(payload) > self.block_bytes:
            raise InputError(
                f"block payload of {len(payload)} bytes exceeds the store's "
                f"block_bytes={self.block_bytes}"
            )
        payload = payload.ljust(self.block_bytes, b"\x00")
        if self._encryptor is not None:
            ciphertext = self._encryptor.encrypt(payload)
            slot = ciphertext.nonce + ciphertext.payload
            self.stats["encryptions"] += 1
        else:
            slot = payload
        self._save(key, index, slot)
        self.stats["writes"] += 1
        self.stats["bytes_written"] += len(slot)
        self.generation += 1

    def read_block(self, key: str, index: int) -> bytes:
        """Read one block's ``block_bytes`` plaintext payload."""
        slot = self._load(key, index)
        self.stats["reads"] += 1
        self.stats["bytes_read"] += len(slot)
        if self._encryptor is not None:
            ciphertext = Ciphertext(
                nonce=slot[:NONCE_BYTES], payload=slot[NONCE_BYTES:]
            )
            self.stats["decryptions"] += 1
            return self._encryptor.decrypt(ciphertext)
        return slot

    def put_meta(self, key: str, meta: dict) -> None:
        """Attach JSON metadata to a key (schema, row count, ...)."""
        self.generation += 1
        self._save_meta(key, dict(meta, generation=self.generation))

    def flush(self) -> None:
        """Persist any deferred bookkeeping (no-op by default)."""


class InMemoryStore(BlockStore):
    """Blocks in a process-local dict — tests and single-process runs.

    Encryption still applies at rest (the dict holds ciphertext slots), so
    the fresh-nonce property is testable without touching a filesystem.
    """

    def __init__(
        self, block_bytes: int = DEFAULT_BLOCK_BYTES, key: bytes | None = None
    ) -> None:
        super().__init__(block_bytes, key)
        self._blocks: dict[str, dict[int, bytes]] = {}
        self._meta: dict[str, dict] = {}

    def _load(self, key: str, index: int) -> bytes:
        try:
            return self._blocks[key][index]
        except KeyError:
            raise InputError(f"no block {index} under store key {key!r}") from None

    def _save(self, key: str, index: int, slot: bytes) -> None:
        self._blocks.setdefault(key, {})[index] = slot

    def num_blocks(self, key: str) -> int:
        return len(self._blocks.get(key, ()))

    def keys(self) -> list[str]:
        return sorted(self._blocks)

    def get_meta(self, key: str) -> dict | None:
        meta = self._meta.get(key)
        return dict(meta) if meta is not None else None

    def _save_meta(self, key: str, meta: dict) -> None:
        self._meta[key] = dict(meta)

    def raw_slot(self, key: str, index: int) -> bytes:
        """The at-rest slot bytes (ciphertext when encrypted) — test hook."""
        return self._load(key, index)


def _key_filename(key: str) -> str:
    return urllib.parse.quote(key, safe="") + ".blk"


class FileStore(BlockStore):
    """One file per key in ``path``; block ``i`` at offset ``i * slot``.

    The directory is the untrusted store: with an encryption ``key`` every
    slot on disk is ``nonce || ciphertext`` and a rewrite is unlinkable
    from the original.  ``store.json`` records the public configuration
    (``block_bytes``, whether slots carry nonces, the committed
    ``generation``) so :func:`open_store` — and worker processes attaching
    by path — reconstruct a compatible view.  ``meta.json`` holds the
    per-key metadata map.

    ``generation`` is committed by :meth:`put_meta`/:meth:`flush`, not on
    every block write: table writers end with a ``put_meta``, which is the
    point other processes may rely on seeing the new generation.
    """

    def __init__(
        self,
        path: str,
        block_bytes: int | None = None,
        key: bytes | None = None,
    ) -> None:
        self.path = path
        os.makedirs(path, exist_ok=True)
        config = self._read_config()
        if config is not None:
            stored_block_bytes = config["block_bytes"]
            if block_bytes is not None and block_bytes != stored_block_bytes:
                raise InputError(
                    f"store at {path!r} has block_bytes="
                    f"{stored_block_bytes}, not {block_bytes}"
                )
            if config["encrypted"] != (key is not None):
                raise InputError(
                    f"store at {path!r} is "
                    f"{'encrypted' if config['encrypted'] else 'plaintext'}; "
                    "open it with a matching key argument"
                )
            super().__init__(stored_block_bytes, key)
            self.generation = config.get("generation", 0)
        else:
            super().__init__(
                block_bytes if block_bytes is not None else DEFAULT_BLOCK_BYTES,
                key,
            )
            self.flush()

    # -- config / meta persistence -------------------------------------------

    def _read_config(self) -> dict | None:
        try:
            with open(
                os.path.join(self.path, "store.json"), encoding="utf-8"
            ) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None

    def flush(self) -> None:
        config = {
            "block_bytes": self.block_bytes,
            "encrypted": self.encrypted,
            "generation": self.generation,
        }
        with open(
            os.path.join(self.path, "store.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(config, handle)

    def _meta_map(self) -> dict:
        try:
            with open(
                os.path.join(self.path, "meta.json"), encoding="utf-8"
            ) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return {}

    def get_meta(self, key: str) -> dict | None:
        return self._meta_map().get(key)

    def _save_meta(self, key: str, meta: dict) -> None:
        metas = self._meta_map()
        metas[key] = meta
        with open(
            os.path.join(self.path, "meta.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(metas, handle)
        self.flush()

    # -- slot I/O ------------------------------------------------------------

    def _file(self, key: str) -> str:
        return os.path.join(self.path, _key_filename(key))

    def _load(self, key: str, index: int) -> bytes:
        try:
            with open(self._file(key), "rb") as handle:
                handle.seek(index * self.slot_bytes)
                slot = handle.read(self.slot_bytes)
        except FileNotFoundError:
            raise InputError(f"no stored column {key!r} in {self.path!r}") from None
        if len(slot) != self.slot_bytes:
            raise InputError(
                f"short read of block {index} under {key!r}: "
                f"{len(slot)} of {self.slot_bytes} bytes"
            )
        return slot

    def _save(self, key: str, index: int, slot: bytes) -> None:
        path = self._file(key)
        mode = "r+b" if os.path.exists(path) else "w+b"
        with open(path, mode) as handle:
            handle.seek(index * self.slot_bytes)
            handle.write(slot)

    def num_blocks(self, key: str) -> int:
        try:
            return os.path.getsize(self._file(key)) // self.slot_bytes
        except OSError:
            return 0

    def keys(self) -> list[str]:
        names = []
        for entry in os.listdir(self.path):
            if entry.endswith(".blk"):
                names.append(urllib.parse.unquote(entry[: -len(".blk")]))
        return sorted(names)

    def raw_slot(self, key: str, index: int) -> bytes:
        """The at-rest slot bytes (ciphertext when encrypted) — test hook."""
        return self._load(key, index)


class BlockCache:
    """Byte-budgeted LRU of decrypted blocks: the trusted-memory stand-in.

    Keys are ``(store key, block index)``; values are plaintext payloads.
    ``budget_bytes`` is the trusted-memory size — exceeding it evicts LRU
    entries, which is exactly the paging event
    :class:`~repro.enclave.epc.EPCModel` prices.
    """

    def __init__(self, budget_bytes: int) -> None:
        if not isinstance(budget_bytes, int) or budget_bytes < 1:
            raise InputError(
                f"cache budget must be an int >= 1 byte, got {budget_bytes!r}"
            )
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[tuple[str, int], bytes]" = OrderedDict()
        self._bytes = 0
        self.stats = {"hits": 0, "misses": 0, "evictions": 0}

    def get(self, key: tuple[str, int]) -> bytes | None:
        entry = self._entries.get(key)
        if entry is None:
            self.stats["misses"] += 1
            return None
        self._entries.move_to_end(key)
        self.stats["hits"] += 1
        return entry

    def put(self, key: tuple[str, int], payload: bytes) -> None:
        previous = self._entries.pop(key, None)
        if previous is not None:
            self._bytes -= len(previous)
        self._entries[key] = payload
        self._bytes += len(payload)
        while self._bytes > self.budget_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= len(evicted)
            self.stats["evictions"] += 1

    @property
    def cached_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
