"""Per-process store handles, block refs, and engine-ready stored pairs.

This is the seam between the block store and the execution layers:

:class:`StoreSpec`
    A tiny frozen, picklable description of a store (kind, path, block
    size, encryption key, trusted-memory budget).  It is the *address* a
    worker process uses to attach its own handle — shipping a spec instead
    of column bytes is what makes shard dispatch out-of-core.  The
    encryption key rides in the spec because workers play the role of
    enclaves in the simulated trust split: they hold the key; the store
    directory is the untrusted side.

:class:`StoreHandle`
    One process's view of one store: the store itself plus the
    byte-budgeted :class:`~repro.store.blockstore.BlockCache` (trusted
    memory) and an :class:`~repro.enclave.epc.EPCModel` sized to the same
    budget, so the handle can report both measured counters and the
    modeled paging multiplier.  :func:`attach` memoises handles per spec
    per process — every task in a worker shares one cache.

:class:`StoreBlocksRef`
    A picklable payload leaf naming exactly the blocks one shard task may
    touch (the plan's ``block_ids`` attrs), plus the row window and the
    padded capacity.  :func:`resolve_blocks` turns it into the padded
    column array worker-side; the executors' payload-resolver hook (see
    :func:`repro.plan.executors.register_payload_resolver`) applies it
    inside every task, so inline and remote substrates behave identically.
    A ref with ``arange_base`` set is a *virtual* column (row handles) and
    faults zero blocks.

:class:`StorePairs`
    The engine-facing ``(j, d)`` pairs view of stored columns: a sequence
    (so the traced engine iterates it and ``np.asarray`` materialises it)
    that the sharded partitioner special-cases into block-aligned
    :class:`~repro.shard.partition.ShardPart`\\ s of refs.

``stats_snapshot()`` aggregates every attached handle's counters — the
service layer reports the per-query delta.  The counters are *local-only*
observability: they never feed any schedule or plan (see
``docs/leakage.md``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..enclave.epc import EPCModel
from ..errors import InputError
from ..plan.executors import register_payload_resolver
from ..plan.partition import (
    block_aligned_partition_plan,
    block_count,
    check_block_rows,
    shard_block_ids,
)
from .blockstore import BlockCache, FileStore, InMemoryStore
from .columns import block_rows_of, read_int_block

_INT = np.int64

#: Default trusted-memory budget per attached store: 64 MiB.
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class StoreSpec:
    """Where a store lives and how to attach it, as picklable data."""

    kind: str  # "file" | "memory"
    path: str | None
    block_bytes: int
    key: bytes | None = None
    cache_bytes: int = DEFAULT_CACHE_BYTES

    @property
    def block_rows(self) -> int:
        return block_rows_of(self.block_bytes)


class StoreHandle:
    """One process's cached, budgeted view of one block store."""

    def __init__(self, store, cache_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.store = store
        self.cache = BlockCache(cache_bytes)
        self.epc = EPCModel(capacity_bytes=cache_bytes)
        self._generation = store.generation

    def read_block(self, key: str, index: int) -> bytes:
        """One plaintext block through the trusted-memory cache.

        A store whose ``generation`` moved since the last read has been
        rewritten; every cached plaintext block is then stale and the
        whole cache is dropped before serving (same invalidation signal
        the encoding cache keys on).
        """
        if self.store.generation != self._generation:
            self.cache.clear()
            self._generation = self.store.generation
        cached = self.cache.get((key, index))
        if cached is not None:
            return cached
        payload = self.store.read_block(key, index)
        self.cache.put((key, index), payload)
        _record_fault(key, index)
        return payload

    def read_int_block(self, key: str, index: int) -> np.ndarray:
        return read_int_block(self.read_block, key, index)

    # -- observability -------------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        """Merged store + cache counters (a plain dict of ints)."""
        merged = dict(self.store.stats)
        merged.update(self.cache.stats)
        return merged

    def residency(self) -> dict:
        """Trusted-memory residency: cached bytes against the budget."""
        return {
            "cached_bytes": self.cache.cached_bytes,
            "budget_bytes": self.cache.budget_bytes,
            "cached_blocks": len(self.cache),
        }

    def modeled_slowdown(self) -> float:
        """Measured-miss-rate paging multiplier, priced by the EPC model.

        The EPC model's ``penalty`` is the cost multiplier of one access
        that misses trusted memory; with a measured miss rate ``p`` over
        the cache the expected multiplier is ``1 + penalty * p`` — the
        same form as :meth:`EPCModel.slowdown`, with the measured rate in
        place of the uniform-access estimate.
        """
        total = self.cache.stats["hits"] + self.cache.stats["misses"]
        if total == 0:
            return 1.0
        return 1.0 + self.epc.penalty * (self.cache.stats["misses"] / total)

    def epc_slowdown(self, footprint_bytes: int) -> float:
        """The uniform-access estimate for a given working-set size."""
        return self.epc.slowdown(footprint_bytes)


# -- the per-process handle registry -----------------------------------------

_LOCK = threading.Lock()
_HANDLES: dict[StoreSpec, StoreHandle] = {}


def attach(spec: StoreSpec) -> StoreHandle:
    """The process-wide handle for ``spec``, created on first use.

    Workers call this (through :func:`resolve_blocks`) with specs that
    arrived inside task payloads; the parent calls it when opening tables.
    One handle per spec per process means every task shares one trusted
    memory of ``spec.cache_bytes``.
    """
    with _LOCK:
        handle = _HANDLES.get(spec)
        if handle is None:
            if spec.kind == "file":
                store = FileStore(spec.path, spec.block_bytes, spec.key)
            elif spec.kind == "memory":
                raise InputError(
                    "an InMemoryStore cannot be attached by spec; register "
                    "its handle with adopt() in the owning process"
                )
            else:
                raise InputError(f"unknown store kind {spec.kind!r}")
            handle = StoreHandle(store, spec.cache_bytes)
            _HANDLES[spec] = handle
        return handle


def adopt(store, cache_bytes: int = DEFAULT_CACHE_BYTES) -> StoreSpec:
    """Register an in-process store under a synthetic spec; returns it.

    This is how :class:`InMemoryStore`-backed tables join the runtime: the
    spec's path is an opaque token only this process can resolve, so such
    tables work on the inline/shuffle executors (same process) and fail
    loudly if shipped to a process pool.
    """
    with _LOCK:
        if isinstance(store, FileStore):
            spec = StoreSpec(
                kind="file",
                path=store.path,
                block_bytes=store.block_bytes,
                key=store._encryptor.key if store.encrypted else None,
                cache_bytes=cache_bytes,
            )
        else:
            spec = StoreSpec(
                kind="memory",
                path=f"mem:{id(store)}",
                block_bytes=store.block_bytes,
                key=None,
                cache_bytes=cache_bytes,
            )
        handle = _HANDLES.get(spec)
        if handle is None or handle.store is not store:
            _HANDLES[spec] = StoreHandle(store, cache_bytes)
        return spec


def detach_all() -> None:
    """Drop every attached handle (tests; frees caches)."""
    with _LOCK:
        _HANDLES.clear()


def stats_snapshot() -> dict[str, int]:
    """Summed counters of every handle attached in this process."""
    totals: dict[str, int] = {
        "reads": 0,
        "writes": 0,
        "bytes_read": 0,
        "bytes_written": 0,
        "decryptions": 0,
        "encryptions": 0,
        "hits": 0,
        "misses": 0,
        "evictions": 0,
    }
    with _LOCK:
        handles = list(_HANDLES.values())
    for handle in handles:
        for name, value in handle.snapshot().items():
            totals[name] = totals.get(name, 0) + value
    return totals


def residency_snapshot() -> list[dict]:
    """Per-attached-store residency and modeled paging cost."""
    with _LOCK:
        items = list(_HANDLES.items())
    report = []
    for spec, handle in items:
        entry = {"store": spec.path, "kind": spec.kind}
        entry.update(handle.residency())
        entry["modeled_slowdown"] = handle.modeled_slowdown()
        report.append(entry)
    return report


# -- fault tracing (tests assert workers touch only plan-named blocks) -------

_TRACED_FAULTS: set[tuple[str, int]] | None = None


def trace_faults(enable: bool) -> set[tuple[str, int]]:
    """Toggle recording of ``(column key, block id)`` store faults.

    Returns the live set; only faults *through a cache miss* are recorded
    (hits touch no untrusted memory).  Test-only instrumentation — the
    acceptance test compares the set against the plan's ``block_ids``.
    """
    global _TRACED_FAULTS
    if enable:
        _TRACED_FAULTS = set()
    else:
        _TRACED_FAULTS = None
    return _TRACED_FAULTS if _TRACED_FAULTS is not None else set()


def _record_fault(key: str, index: int) -> None:
    if _TRACED_FAULTS is not None:
        _TRACED_FAULTS.add((key, index))


# -- block refs: the payload leaves workers resolve --------------------------


@dataclass(frozen=True)
class StoreBlocksRef:
    """A shard column as (spec, blocks, window): resolved worker-side.

    ``blocks`` are the plan-named block ids this task may touch (empty for
    virtual columns); ``start`` is the row offset of the window inside the
    first block (always 0 for block-aligned partitions); ``rows`` the real
    row count; ``capacity`` the padded length the resolved array must
    have.  With ``arange_base`` set the column is the virtual row-handle
    sequence ``arange_base + [0, rows)`` and no store access happens.
    """

    spec: StoreSpec
    column: str
    blocks: tuple[int, ...]
    start: int
    rows: int
    capacity: int
    arange_base: int | None = None

    def __len__(self) -> int:
        return self.capacity


def resolve_blocks(ref: StoreBlocksRef) -> np.ndarray:
    """Materialise one ref as its padded int64 column array."""
    out = np.zeros(ref.capacity, dtype=_INT)
    if ref.arange_base is not None:
        out[: ref.rows] = np.arange(
            ref.arange_base, ref.arange_base + ref.rows, dtype=_INT
        )
        return out
    if ref.rows == 0:
        return out
    handle = attach(ref.spec)
    parts = [handle.read_int_block(ref.column, index) for index in ref.blocks]
    window = np.concatenate(parts)[ref.start : ref.start + ref.rows]
    out[: ref.rows] = window
    return out


register_payload_resolver(StoreBlocksRef, resolve_blocks)


# -- engine-facing stored pairs ----------------------------------------------


class StorePairs:
    """A stored table's ``(j, d)`` join input, faulted in block-wise.

    ``j_key`` names the stored key column; ``d_key`` names a stored data
    column, or ``None`` for the virtual row-handle column (the form the
    db layer's ``(encoded key, row handle)`` inputs take — handles are
    ``arange(n)``, so they are never stored at all).

    Sequence-shaped on purpose: the traced engine iterates it, the vector
    engine materialises it through ``__array__``, and the sharded
    partitioner recognises the type and emits block-aligned shard parts
    of :class:`StoreBlocksRef` columns instead of resident arrays.
    """

    def __init__(
        self, spec: StoreSpec, n: int, j_key: str, d_key: str | None = None
    ) -> None:
        check_block_rows(spec.block_rows)
        if n < 0:
            raise InputError(f"table size must be >= 0, got {n}")
        self.spec = spec
        self.n = n
        self.j_key = j_key
        self.d_key = d_key
        self._materialized: np.ndarray | None = None

    @property
    def block_rows(self) -> int:
        return self.spec.block_rows

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"StorePairs(n={self.n}, j={self.j_key!r}, d={self.d_key!r}, "
            f"block_rows={self.block_rows})"
        )

    # -- whole-table materialisation (resident fall-back) --------------------

    def _column(self, key: str | None) -> np.ndarray:
        if key is None:
            return np.arange(self.n, dtype=_INT)
        handle = attach(self.spec)
        nblocks = block_count(self.n, self.block_rows)
        if nblocks == 0:
            return np.zeros(0, dtype=_INT)
        parts = [handle.read_int_block(key, index) for index in range(nblocks)]
        return np.concatenate(parts)[: self.n]

    def materialize(self) -> np.ndarray:
        """The resident ``(n, 2)`` pairs array, read once and kept."""
        if self._materialized is None:
            pairs = np.empty((self.n, 2), dtype=_INT)
            pairs[:, 0] = self._column(self.j_key)
            pairs[:, 1] = self._column(self.d_key)
            self._materialized = pairs
        return self._materialized

    def __array__(self, dtype=None, copy=None):
        pairs = self.materialize()
        if dtype is not None and np.dtype(dtype) != pairs.dtype:
            return pairs.astype(dtype)
        return pairs

    def __iter__(self):
        for j, d in self.materialize():
            yield (int(j), int(d))

    def __getitem__(self, index):
        row = self.materialize()[index]
        if isinstance(index, (int, np.integer)):
            return (int(row[0]), int(row[1]))
        return row

    # -- streaming reductions (padded-input validation) ----------------------

    def _block_reduce(self, key: str | None, reducer, empty: int) -> int:
        if self.n == 0:
            return empty
        if key is None:
            return reducer(0, self.n - 1)
        handle = attach(self.spec)
        nblocks = block_count(self.n, self.block_rows)
        best = None
        for index in range(nblocks):
            block = handle.read_int_block(key, index)
            lo = index * self.block_rows
            real = min(self.block_rows, self.n - lo)
            value = reducer(*_minmax(block[:real]))
            best = value if best is None else reducer(best, value)
        return int(best)

    def max_j(self) -> int:
        """Streaming ``max`` of the key column (anchor-headroom check)."""
        return self._block_reduce(self.j_key, max, 0)

    def min_d(self) -> int:
        """Streaming ``min`` of the data column (payload-headroom check)."""
        return self._block_reduce(self.d_key, min, 0)

    # -- shard refs (the block-aligned partition path) -----------------------

    def shard_parts(self, k: int) -> list[tuple[StoreBlocksRef, StoreBlocksRef, int]]:
        """Block-aligned ``(j ref, d ref, real)`` triples for ``k`` shards.

        Shard layout comes from
        :func:`~repro.plan.partition.block_aligned_partition_plan` /
        :func:`~repro.plan.partition.shard_block_ids` — the same pure
        functions the plan compiler stamps onto ``partition`` nodes — so
        the refs name exactly the plan's blocks.
        """
        capacity, counts = block_aligned_partition_plan(self.n, k, self.block_rows)
        ids = shard_block_ids(self.n, k, self.block_rows)
        parts = []
        offset = 0
        for shard in range(k):
            real = counts[shard]
            blocks = ids[shard]
            j_ref = StoreBlocksRef(
                spec=self.spec,
                column=self.j_key,
                blocks=blocks,
                start=0,
                rows=real,
                capacity=capacity,
            )
            if self.d_key is None:
                d_ref = StoreBlocksRef(
                    spec=self.spec,
                    column="",
                    blocks=(),
                    start=0,
                    rows=real,
                    capacity=capacity,
                    arange_base=offset,
                )
            else:
                d_ref = StoreBlocksRef(
                    spec=self.spec,
                    column=self.d_key,
                    blocks=blocks,
                    start=0,
                    rows=real,
                    capacity=capacity,
                )
            parts.append((j_ref, d_ref, real))
            offset += real
        return parts


def _minmax(array: np.ndarray) -> tuple[int, int]:
    return int(array.min()), int(array.max())


def store_pairs_block_rows(pairs) -> int | None:
    """The block-alignment unit of a pairs input (``None`` = resident)."""
    if isinstance(pairs, StorePairs):
        return pairs.block_rows
    return None
