"""Workload generators for the §6 correctness and obliviousness protocols."""

from .distributions import power_law_sizes, zipf_keys
from .generators import (
    Table,
    Workload,
    balanced_output,
    matched_class,
    ones_groups,
    paper_protocol_suite,
    pk_fk,
    power_law_groups,
    single_group,
    uniform_random,
)

__all__ = [
    "power_law_sizes",
    "zipf_keys",
    "Table",
    "Workload",
    "balanced_output",
    "matched_class",
    "ones_groups",
    "paper_protocol_suite",
    "pk_fk",
    "power_law_groups",
    "single_group",
    "uniform_random",
]
