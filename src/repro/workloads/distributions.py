"""Group-size distributions used by the workload generators."""

from __future__ import annotations

import random

from ..errors import InputError


def power_law_sizes(
    total: int, alpha: float = 2.0, max_size: int | None = None, rng: random.Random | None = None
) -> list[int]:
    """Group sizes summing exactly to ``total``, drawn from a power law.

    Sizes follow ``P(s) ∝ s^-alpha`` (discrete, s >= 1), the distribution
    the paper's §6 test generator draws group sizes from.  The final draw
    is clipped so the sizes sum to ``total`` exactly.
    """
    if total < 0:
        raise InputError(f"total must be >= 0, got {total}")
    rng = rng or random.Random()
    cap = max_size or max(total, 1)
    weights = [s ** (-alpha) for s in range(1, cap + 1)]
    sizes: list[int] = []
    remaining = total
    while remaining > 0:
        size = rng.choices(range(1, cap + 1), weights=weights)[0]
        size = min(size, remaining)
        sizes.append(size)
        remaining -= size
    return sizes


def zipf_keys(count: int, key_space: int, s: float = 1.2, rng: random.Random | None = None) -> list[int]:
    """``count`` keys drawn Zipf-distributed from ``{0..key_space-1}``."""
    if key_space <= 0:
        raise InputError(f"key space must be positive, got {key_space}")
    rng = rng or random.Random()
    weights = [1.0 / (rank + 1) ** s for rank in range(key_space)]
    return rng.choices(range(key_space), weights=weights, k=count)
