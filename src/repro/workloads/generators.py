"""Workload generators reproducing the paper's §6 test protocol.

For each size the paper generates ~20 inputs: one inducing n 1x1 groups,
one inducing a single 1xn group, and several with power-law group sizes.
We add the PK-FK workload (the Opaque comparison), Zipf-keyed tables, and
*matched classes* — sets of structurally different inputs with identical
``(n1, n2, m)`` — which are what the §6.1 trace-equality experiments need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import InputError
from .distributions import power_law_sizes, zipf_keys

#: A table is a list of (join value, data value) pairs.
Table = list[tuple[int, int]]


@dataclass(frozen=True)
class Workload:
    """A generated join input with its derived output size."""

    name: str
    left: Table
    right: Table
    m: int

    @property
    def n1(self) -> int:
        return len(self.left)

    @property
    def n2(self) -> int:
        return len(self.right)


def _expected_m(left: Table, right: Table) -> int:
    from collections import Counter

    c1 = Counter(j for j, _ in left)
    c2 = Counter(j for j, _ in right)
    return sum(c1[j] * c2[j] for j in c1.keys() & c2.keys())


def ones_groups(pairs: int, seed: int = 0) -> Workload:
    """``pairs`` 1x1 groups: every key appears once per table (m = pairs)."""
    rng = random.Random(seed)
    left = [(k, rng.randrange(1 << 30)) for k in range(pairs)]
    right = [(k, rng.randrange(1 << 30)) for k in range(pairs)]
    rng.shuffle(left)
    rng.shuffle(right)
    return Workload("ones", left, right, m=pairs)


def single_group(n1: int, n2: int, seed: int = 0) -> Workload:
    """One n1 x n2 group: every row shares the same key (m = n1*n2)."""
    rng = random.Random(seed)
    left = [(0, rng.randrange(1 << 30)) for _ in range(n1)]
    right = [(0, rng.randrange(1 << 30)) for _ in range(n2)]
    return Workload("single_group", left, right, m=n1 * n2)


def power_law_groups(n1: int, n2: int, alpha: float = 2.0, seed: int = 0) -> Workload:
    """Group sizes on both sides drawn from a power law (§6's generator)."""
    rng = random.Random(seed)
    sizes1 = power_law_sizes(n1, alpha=alpha, rng=rng)
    sizes2 = power_law_sizes(n2, alpha=alpha, rng=rng)
    groups = max(len(sizes1), len(sizes2))
    left: Table = []
    right: Table = []
    for key in range(groups):
        if key < len(sizes1):
            left.extend((key, rng.randrange(1 << 30)) for _ in range(sizes1[key]))
        if key < len(sizes2):
            right.extend((key, rng.randrange(1 << 30)) for _ in range(sizes2[key]))
    rng.shuffle(left)
    rng.shuffle(right)
    return Workload("power_law", left, right, m=_expected_m(left, right))


def pk_fk(n_primary: int, n_foreign: int, seed: int = 0, zipf_s: float = 0.0) -> Workload:
    """Primary-foreign key workload (every foreign key has a unique primary).

    With ``zipf_s > 0`` foreign keys are skewed toward low-ranked primaries,
    which is the realistic case Opaque's evaluation uses.
    """
    if n_primary <= 0:
        raise InputError("a PK-FK workload needs at least one primary row")
    rng = random.Random(seed)
    left = [(k, rng.randrange(1 << 30)) for k in range(n_primary)]
    if zipf_s > 0:
        keys = zipf_keys(n_foreign, n_primary, s=zipf_s, rng=rng)
    else:
        keys = [rng.randrange(n_primary) for _ in range(n_foreign)]
    right = [(k, rng.randrange(1 << 30)) for k in keys]
    rng.shuffle(left)
    return Workload("pk_fk", left, right, m=n_foreign)


def uniform_random(n1: int, n2: int, key_space: int, seed: int = 0) -> Workload:
    """Keys uniform over a fixed space — unmatched rows arise naturally."""
    rng = random.Random(seed)
    left = [(rng.randrange(key_space), rng.randrange(1 << 30)) for _ in range(n1)]
    right = [(rng.randrange(key_space), rng.randrange(1 << 30)) for _ in range(n2)]
    return Workload("uniform", left, right, m=_expected_m(left, right))


def balanced_output(n: int, seed: int = 0) -> Workload:
    """The Figure 8 shape: m ~ n1 = n2 = n/2 (1x1 groups, shuffled keys)."""
    return ones_groups(n // 2, seed=seed)


def paper_protocol_suite(n: int, seed: int = 0, power_law_draws: int = 18) -> list[Workload]:
    """The ~20 inputs per size of §6's correctness protocol.

    One all-1x1 input, one single-group input, and ``power_law_draws``
    power-law draws (20 total by default), with ``n1 = n2 = n/2``.
    """
    half = max(n // 2, 1)
    suite = [ones_groups(half, seed=seed), single_group(half, half, seed=seed + 1)]
    for k in range(power_law_draws):
        suite.append(power_law_groups(half, half, seed=seed + 2 + k))
    return suite


def matched_class(n1: int, n2: int, seed: int = 0) -> list[Workload]:
    """Structurally different inputs with identical ``(n1, n2, m)``.

    The §6.1 experiment classes: all members must produce identical traces.
    Members: (a) k 1x1 groups plus unmatched fill, (b) one 2x2 group plus
    unmatched fill (same m when k=4), (c) a relabelled/shuffled copy of (a),
    and (d) (a) with all data values replaced.  Requires n1, n2 >= 4.
    """
    if n1 < 4 or n2 < 4:
        raise InputError("matched_class needs n1, n2 >= 4")
    rng = random.Random(seed)
    target_m = 4

    def fill(table: Table, size: int, base_key: int) -> Table:
        # Pad with keys that never match (disjoint key range).
        return table + [
            (base_key + i, rng.randrange(1 << 30)) for i in range(size - len(table))
        ]

    # (a) four 1x1 groups.
    a_left = [(k, rng.randrange(1 << 30)) for k in range(4)]
    a_right = [(k, rng.randrange(1 << 30)) for k in range(4)]
    a = Workload("class_a", fill(a_left, n1, 1000), fill(a_right, n2, 2000), target_m)

    # (b) one 2x2 group: same m = 4 with different structure.
    b_left = [(7, rng.randrange(1 << 30)), (7, rng.randrange(1 << 30))]
    b_right = [(7, rng.randrange(1 << 30)), (7, rng.randrange(1 << 30))]
    b = Workload("class_b", fill(b_left, n1, 1000), fill(b_right, n2, 2000), target_m)

    # (c) a's structure under a key relabelling and row shuffle.
    c_left = [(k * 13 + 5, d + 1) for k, d in a_left]
    c_right = [(k * 13 + 5, d + 2) for k, d in a_right]
    c_left = fill(c_left, n1, 3000)
    c_right = fill(c_right, n2, 4000)
    rng.shuffle(c_left)
    rng.shuffle(c_right)
    c = Workload("class_c", c_left, c_right, target_m)

    # (d) a's keys with fresh data values.
    d_left = [(k, rng.randrange(1 << 30)) for k, _ in a.left]
    d_right = [(k, rng.randrange(1 << 30)) for k, _ in a.right]
    d = Workload("class_d", d_left, d_right, target_m)
    return [a, b, c, d]
