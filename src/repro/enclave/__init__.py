"""SGX enclave simulation: EPC paging and calibrated runtime prediction."""

from .costmodel import (
    PAPER_OPAQUE_SLOWDOWN,
    PAPER_RUNTIME_AT_1M,
    VARIANTS,
    EnclaveCostModel,
)
from .epc import MIB, EPCModel

__all__ = [
    "PAPER_OPAQUE_SLOWDOWN",
    "PAPER_RUNTIME_AT_1M",
    "VARIANTS",
    "EnclaveCostModel",
    "MIB",
    "EPCModel",
]
