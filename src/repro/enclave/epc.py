"""Enclave Page Cache (EPC) paging model.

SGX enclaves get ~93 MiB of protected memory; when an enclave's working set
exceeds it, pages are (expensively) encrypted and swapped by the kernel.
The paper's §6.2 anticipates "a drop in performance for input sizes where
the EPC size is insufficient"; its measured range (n <= 10^6, ~24 MB of
entries) stays inside the EPC, so Figure 8 shows no knee.  This model
reproduces both regimes: a flat cost inside the EPC and a growing penalty
once the footprint spills.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EnclaveError

MIB = 1024 * 1024


@dataclass(frozen=True)
class EPCModel:
    """Deterministic paging-slowdown model.

    ``penalty`` is the slowdown multiplier for an access that misses the
    EPC.  With a uniformly-touched footprint ``F`` and capacity ``C``, the
    expected multiplier is ``1`` for ``F <= C`` and
    ``1 + penalty * (1 - C/F)`` beyond — the miss probability of a random
    probe into an LRU-resident fraction ``C/F``.
    """

    capacity_bytes: int = 93 * MIB
    page_bytes: int = 4096
    penalty: float = 12.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.page_bytes <= 0:
            raise EnclaveError("EPC capacity and page size must be positive")
        if self.penalty < 0:
            raise EnclaveError("paging penalty cannot be negative")

    def resident_fraction(self, footprint_bytes: int) -> float:
        """Fraction of a uniformly-accessed footprint resident in the EPC."""
        if footprint_bytes <= self.capacity_bytes:
            return 1.0
        return self.capacity_bytes / footprint_bytes

    def slowdown(self, footprint_bytes: int) -> float:
        """Expected per-access multiplier for the given working-set size."""
        if footprint_bytes < 0:
            raise EnclaveError(f"negative footprint: {footprint_bytes}")
        miss = 1.0 - self.resident_fraction(footprint_bytes)
        return 1.0 + self.penalty * miss

    def pages(self, footprint_bytes: int) -> int:
        """Number of EPC pages the footprint occupies."""
        return -(-footprint_bytes // self.page_bytes)
