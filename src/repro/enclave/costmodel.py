"""Calibrated SGX runtime model — the Figure 8 substitute for real hardware.

We have no SGX machine, so the three hardware series of Figure 8 (C++
prototype, SGX version, transformed SGX version) are *simulated*: the
analytic operation counts of :mod:`repro.analysis.counts` are converted to
seconds with per-variant cost factors calibrated against the paper's
measured endpoints at n = 10^6 on an i5-7300U @ 2.6 GHz:

=================  ========  =============================
variant            paper t    derived factor
prototype          2.35 s     ~15.4 cycles / comparison
sgx                5.67 s     2.41x prototype
sgx_transformed    6.30 s     2.68x prototype
insecure merge     0.03 s     ~2.5 cycles / merge step
=================  ========  =============================

Because the model is calibrated at a single point and evaluated across the
sweep, agreement at 10^6 is by construction — the *reproduction content* is
the shape across sizes and the relative ordering of the series, which the
bench compares against the paper's curves at every other size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.counts import (
    sort_merge_operations,
    total_comparisons_exact,
    total_comparisons_paper,
)
from ..errors import EnclaveError
from .epc import EPCModel

#: Paper-reported Figure 8 endpoints at n = 10^6 (m ~ n1 = n2 = n/2).
PAPER_RUNTIME_AT_1M = {
    "prototype": 2.35,
    "sgx": 5.67,
    "sgx_transformed": 6.30,
    "insecure_sort_merge": 0.03,
}

#: Opaque's SGX implementation is reported ~5x slower at n = 10^6 (§6.2).
PAPER_OPAQUE_SLOWDOWN = 5.0

VARIANTS = ("prototype", "sgx", "sgx_transformed")


def _calibrate_cycles_per_comparison(clock_hz: float) -> float:
    n = 10**6
    comparisons = total_comparisons_paper(n)
    return PAPER_RUNTIME_AT_1M["prototype"] * clock_hz / comparisons


@dataclass
class EnclaveCostModel:
    """Predicts wall-clock seconds for each Figure 8 series."""

    clock_hz: float = 2.6e9
    entry_bytes: int = 24
    epc: EPCModel = field(default_factory=EPCModel)
    cycles_per_comparison: float = 0.0
    cycles_per_merge_step: float = 0.0
    variant_factors: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise EnclaveError("clock rate must be positive")
        if not self.cycles_per_comparison:
            self.cycles_per_comparison = _calibrate_cycles_per_comparison(self.clock_hz)
        if not self.cycles_per_merge_step:
            ops = sort_merge_operations(500_000, 500_000, 500_000)
            self.cycles_per_merge_step = (
                PAPER_RUNTIME_AT_1M["insecure_sort_merge"] * self.clock_hz / ops
            )
        if not self.variant_factors:
            base = PAPER_RUNTIME_AT_1M["prototype"]
            self.variant_factors = {
                "prototype": 1.0,
                "sgx": PAPER_RUNTIME_AT_1M["sgx"] / base,
                "sgx_transformed": PAPER_RUNTIME_AT_1M["sgx_transformed"] / base,
            }

    def footprint_bytes(self, n1: int, n2: int, m: int) -> int:
        """§6.2's space bound: ``max(n1, m) + max(n2, m)`` entries."""
        return (max(n1, m) + max(n2, m)) * self.entry_bytes

    def predict_join_seconds(
        self, n1: int, n2: int, m: int, variant: str = "prototype"
    ) -> float:
        """Predicted runtime of the oblivious join for one Figure 8 series.

        SGX variants additionally pay the EPC paging slowdown once the
        §6.2 footprint exceeds the page cache.
        """
        if variant not in self.variant_factors:
            raise EnclaveError(
                f"unknown variant {variant!r}; expected one of {VARIANTS}"
            )
        comparisons = total_comparisons_exact(n1, n2, m)
        seconds = comparisons * self.cycles_per_comparison / self.clock_hz
        seconds *= self.variant_factors[variant]
        if variant != "prototype":
            seconds *= self.epc.slowdown(self.footprint_bytes(n1, n2, m))
        return seconds

    def predict_sort_merge_seconds(self, n1: int, n2: int, m: int) -> float:
        """Predicted runtime of the insecure sort-merge baseline."""
        ops = sort_merge_operations(n1, n2, m)
        return ops * self.cycles_per_merge_step / self.clock_hz

    def figure8_point(self, n: int) -> dict[str, float]:
        """All four series at total input size ``n`` (m ~ n1 = n2 = n/2)."""
        n1 = n2 = m = n // 2
        return {
            "prototype": self.predict_join_seconds(n1, n2, m, "prototype"),
            "sgx": self.predict_join_seconds(n1, n2, m, "sgx"),
            "sgx_transformed": self.predict_join_seconds(n1, n2, m, "sgx_transformed"),
            "insecure_sort_merge": self.predict_sort_merge_seconds(n1, n2, m),
        }

    def figure8_series(self, sizes: list[int]) -> dict[str, list[float]]:
        """The full sweep: variant -> predicted seconds per size."""
        series: dict[str, list[float]] = {
            "prototype": [], "sgx": [], "sgx_transformed": [], "insecure_sort_merge": [],
        }
        for n in sizes:
            point = self.figure8_point(n)
            for key, value in point.items():
                series[key].append(value)
        return series

    def epc_knee_input_size(self) -> int:
        """Smallest total n (m ~ n/2) whose footprint exceeds the EPC."""
        n = 2
        while self.footprint_bytes(n // 2, n // 2, n // 2) <= self.epc.capacity_bytes:
            n *= 2
        return n
