"""Per-phase instrumentation for the join pipeline (feeds Table 3).

The paper's Table 3 breaks the algorithm's cost into four components
(initial sorts on TC, the sorts inside the two oblivious distributions, the
routing passes, and the align sort) and reports both comparison counts and
each component's share of total runtime.  :class:`JoinCounters` collects
exactly that: a :class:`~repro.obliv.network.NetworkStats` per named phase
plus wall-clock time per phase.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..obliv.network import NetworkStats

#: Canonical phase names used by the join pipeline.
PHASE_AUGMENT_SORT1 = "augment_sort1"
PHASE_AUGMENT_SORT2 = "augment_sort2"
PHASE_FILL_DIMS = "fill_dimensions"
PHASE_EXPAND1_SORT = "expand1_sort"
PHASE_EXPAND1_ROUTE = "expand1_route"
PHASE_EXPAND2_SORT = "expand2_sort"
PHASE_EXPAND2_ROUTE = "expand2_route"
PHASE_ALIGN_SORT = "align_sort"
PHASE_LINEAR = "linear_passes"

#: Table 3 groupings: paper row -> contributing phases.
TABLE3_GROUPS = {
    "initial sorts on TC": (PHASE_AUGMENT_SORT1, PHASE_AUGMENT_SORT2),
    "o.d. on T1, T2 (sort)": (PHASE_EXPAND1_SORT, PHASE_EXPAND2_SORT),
    "o.d. on T1, T2 (route)": (PHASE_EXPAND1_ROUTE, PHASE_EXPAND2_ROUTE),
    "align sort on S2": (PHASE_ALIGN_SORT,),
}


@dataclass
class JoinCounters:
    """Comparison counts and wall time, keyed by pipeline phase."""

    stats_by_phase: dict[str, NetworkStats] = field(default_factory=dict)
    seconds_by_phase: dict[str, float] = field(default_factory=dict)

    def stats(self, phase: str) -> NetworkStats:
        """The (auto-created) counter bundle for ``phase``."""
        if phase not in self.stats_by_phase:
            self.stats_by_phase[phase] = NetworkStats()
        return self.stats_by_phase[phase]

    @contextmanager
    def timed(self, phase: str) -> Iterator[None]:
        """Accumulate wall-clock time spent in the block under ``phase``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds_by_phase[phase] = (
                self.seconds_by_phase.get(phase, 0.0) + elapsed
            )

    def comparisons(self, phase: str) -> int:
        stats = self.stats_by_phase.get(phase)
        return stats.comparisons if stats else 0

    @property
    def total_comparisons(self) -> int:
        return sum(s.comparisons for s in self.stats_by_phase.values())

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_phase.values())

    def table3_rows(self) -> list[tuple[str, int, float]]:
        """(component, comparisons, runtime share) rows in Table 3's layout."""
        total_time = self.total_seconds or 1.0
        rows = []
        for label, phases in TABLE3_GROUPS.items():
            comparisons = sum(self.comparisons(p) for p in phases)
            seconds = sum(self.seconds_by_phase.get(p, 0.0) for p in phases)
            rows.append((label, comparisons, seconds / total_time))
        return rows
