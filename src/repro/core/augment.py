"""Algorithm 2: augment both tables with their group dimensions α1, α2.

The two input tables are concatenated (tagged with table ids), sorted by
``(j, tid)`` so each join-value group forms a contiguous block with T1
entries before T2 entries, and the per-group counts are computed in one
forward and one backward linear scan (Figure 2).  A final sort by
``(tid, j, d)`` separates the augmented tables again, each now sorted by
``(j, d)``.

The scans keep only constant state in local memory (the running counters and
the previous entry's attributes) and read/write every cell exactly once, so
their access pattern depends only on ``n1 + n2``.  The output size ``m`` is
accumulated during the backward scan from each group's boundary entry.
"""

from __future__ import annotations

from ..memory.local import LocalContext
from ..memory.public import PublicArray
from ..memory.tracer import Tracer
from ..obliv.bitonic import bitonic_sort
from ..obliv.compare import SortSpec, attr_key
from .entry import Entry
from .stats import PHASE_AUGMENT_SORT1, PHASE_AUGMENT_SORT2, PHASE_FILL_DIMS, JoinCounters

#: Sort that groups join values together, T1 entries before T2 entries.
SPEC_J_TID = SortSpec(attr_key("j"), attr_key("tid"))
#: Sort that separates the tables again, each ordered by (j, d).
SPEC_TID_J_D = SortSpec(attr_key("tid"), attr_key("j"), attr_key("d"))


def fill_dimensions(
    table: PublicArray, local: LocalContext | None = None
) -> int:
    """The two linear scans of Figure 2; returns the output size ``m``.

    ``table`` must be sorted by ``(j, tid)``.  The forward scan stores the
    running per-group counts ``c1, c2`` into each entry; after it, the last
    entry of every group (its *boundary* entry) holds the true dimensions.
    The backward scan propagates boundary values to the whole group and sums
    ``α1·α2`` over boundaries into ``m``.
    """
    local = local or LocalContext()
    n = len(table)
    if n == 0:
        return 0
    with local.slot(2):  # one entry register + the counter bundle
        c1 = 0
        c2 = 0
        prev_j = None
        for i in range(n):
            e = table.read(i).copy()
            if prev_j is None or e.j != prev_j:
                c1 = 0
                c2 = 0
                prev_j = e.j
            if e.tid == 1:
                c1 += 1
            else:
                c2 += 1
            e.a1 = c1
            e.a2 = c2
            table.write(i, e)

        m = 0
        prev_j = None
        final_a1 = 0
        final_a2 = 0
        for i in range(n - 1, -1, -1):
            e = table.read(i).copy()
            if prev_j is None or e.j != prev_j:
                # Boundary entry: its counts are the group's dimensions.
                prev_j = e.j
                final_a1 = e.a1
                final_a2 = e.a2
                m += final_a1 * final_a2
            else:
                e.a1 = final_a1
                e.a2 = final_a2
            table.write(i, e)
    return m


def augment_tables(
    table1: list[Entry],
    table2: list[Entry],
    tracer: Tracer,
    counters: JoinCounters | None = None,
    local: LocalContext | None = None,
) -> tuple[PublicArray, PublicArray, int]:
    """Algorithm 2: returns augmented ``(T1, T2, m)``.

    The returned arrays hold the original entries, each annotated with its
    group's ``(α1, α2)``, sorted lexicographically by ``(j, d)``.
    """
    n1 = len(table1)
    n2 = len(table2)
    n = n1 + n2
    combined = PublicArray(n, name="TC", tracer=tracer)
    for i, entry in enumerate(table1):
        e = entry.copy()
        e.tid = 1
        combined.write(i, e)
    for i, entry in enumerate(table2):
        e = entry.copy()
        e.tid = 2
        combined.write(n1 + i, e)

    counters = counters or JoinCounters()
    with tracer.phase("augment:sort(j,tid)"), counters.timed(PHASE_AUGMENT_SORT1):
        bitonic_sort(combined, SPEC_J_TID, stats=counters.stats(PHASE_AUGMENT_SORT1))
    with tracer.phase("augment:fill_dimensions"), counters.timed(PHASE_FILL_DIMS):
        m = fill_dimensions(combined, local=local)
    with tracer.phase("augment:sort(tid,j,d)"), counters.timed(PHASE_AUGMENT_SORT2):
        bitonic_sort(combined, SPEC_TID_J_D, stats=counters.stats(PHASE_AUGMENT_SORT2))

    out1 = PublicArray(n1, name="T1", tracer=tracer)
    out2 = PublicArray(n2, name="T2", tracer=tracer)
    with tracer.phase("augment:split"):
        for i in range(n1):
            out1.write(i, combined.read(i))
        for i in range(n2):
            out2.write(i, combined.read(n1 + i))
    return out1, out2, m
