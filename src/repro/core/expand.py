"""Algorithm 4: oblivious expansion — duplicate each element g(x) times.

One linear pass computes each element's first-occurrence slot as a running
prefix sum of the counts (elements with ``g(x) = 0`` are marked ∅), the
extended oblivious distribution places every element at that slot, and a
final forward pass fills each ∅ cell with the last real entry seen — all
with access patterns depending only on the input length and the (revealed)
output length ``m = Σ g(x)``.
"""

from __future__ import annotations

from typing import Callable

from ..errors import InputError
from ..memory.local import LocalContext
from ..memory.public import PublicArray
from ..memory.tracer import Tracer
from ..obliv.network import NetworkStats
from .distribute import ext_oblivious_distribute
from .entry import Entry


def assign_first_slots(
    array: PublicArray,
    count_of: Callable[[Entry], int],
    local: LocalContext | None = None,
) -> int:
    """The prefix-sum pass of Algorithm 4 (lines 3-11); returns ``m``.

    Stores each element's first output position in its ``f`` attribute and
    marks elements with a zero count as null.  The running sum ``s`` lives in
    local memory.
    """
    local = local or LocalContext()
    m = 0
    with local.slot(2):
        for i in range(len(array)):
            e = array.read(i).copy()
            g = count_of(e)
            if g < 0:
                raise InputError(f"negative duplication count {g}")
            if g == 0 or e.null:
                e.null = True
                e.f = -1
            else:
                e.f = m
                m += g
            array.write(i, e)
    return m


def fill_down(array: PublicArray, local: LocalContext | None = None) -> None:
    """The fill pass of Algorithm 4 (lines 14-21).

    Each ∅ cell is overwritten with the most recent real entry — after
    distribution those are exactly the ``g(x) - 1`` duplicate slots of the
    element before them.  Every cell is read and written exactly once.
    """
    local = local or LocalContext()
    with local.slot(2):
        previous = Entry.make_null()
        for i in range(len(array)):
            e = array.read(i)
            if e.null:
                e = previous
            else:
                previous = e
            array.write(i, e)


def oblivious_expand(
    array: PublicArray,
    count_of: Callable[[Entry], int],
    tracer: Tracer,
    stats: NetworkStats | None = None,
    route_stats: NetworkStats | None = None,
    local: LocalContext | None = None,
) -> tuple[PublicArray, int]:
    """Expand ``array`` so each element ``x`` appears ``count_of(x)`` times.

    Returns ``(expanded_array, m)``.  Elements appear in input order, each as
    a contiguous run of copies, which is what Align-Table (Alg. 5) assumes.
    """
    with tracer.phase("expand:prefix"):
        m = assign_first_slots(array, count_of, local=local)
    expanded = ext_oblivious_distribute(
        array, m, tracer, stats=stats, route_stats=route_stats, validate=False
    )
    with tracer.phase("expand:fill"):
        fill_down(expanded, local=local)
    return expanded, m
