"""Multi-way equi-joins via cascaded binary oblivious joins (§7).

The paper leaves compound queries as future work; the natural composition —
folding a sequence of binary oblivious joins left to right — is implemented
here.  Each step is the full Algorithm 1, so every intermediate access
pattern stays oblivious; by default what *is* revealed is each intermediate
result size (the same deliberate leak as ``m`` for a single join,
compounded once per step).  ``padding="bounded"|"worst_case"`` removes that
leak: every intermediate is padded to a public bound with tagged dummy rows
(:mod:`repro.core.padding`), the trace becomes a function of the input
sizes and the bounds alone, and only the final compacted output size is
revealed — the paper's "pad upstream" remark, implemented.

Rows are tuples; the payload threaded through the integer-only core engine
is an index into a row catalogue kept in (untraced) client memory, mirroring
how a real deployment would pass opaque record handles through the oblivious
operator while the payload bytes travel alongside them.

The same cascade also runs on the vectorised numpy engine
(:mod:`repro.vector.multiway`); pass ``engine="vector"`` here or go through
:func:`repro.engines.get_engine` to select it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InputError
from ..memory.tracer import Tracer
from .join import JoinResult, oblivious_join
from .padding import check_padding, padded_cascade


@dataclass
class MultiwayResult:
    """Result of a cascade of binary oblivious joins.

    ``intermediate_sizes`` are the true per-step sizes.  Under padded
    execution they are *client-side knowledge only* — the adversary-visible
    trace depends on ``bounds`` instead, and ``rows`` holds the compacted
    (dummy-free) result, bit-identical to the unpadded cascade's.
    """

    rows: list[tuple]
    intermediate_sizes: list[int]
    padding: str = "revealed"
    bounds: tuple[int, ...] | None = None

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def total_padded_rows(self) -> int:
        """Total rows the padded cascade materialises: the sum of every
        step's public bound (0 when unpadded).  This is the compounded
        cost a join tree avoids — it pads the *final* output once."""
        return sum(self.bounds or ())


def encode_handles(rows: list[tuple], key_column: int) -> list[tuple[int, int]]:
    """Project ``rows`` to ``(join_key, row_handle)`` pairs for one join step.

    The handle is the row's index into the client-side catalogue; only these
    two int columns travel through the oblivious operator.
    """
    pairs = []
    for index, row in enumerate(rows):
        key = row[key_column]
        if not isinstance(key, int):
            raise InputError(
                f"join keys must be dictionary-encoded ints, got {type(key).__name__}"
            )
        pairs.append((key, index))
    return pairs


def validate_cascade(tables: list[list[tuple]], keys: list[tuple[int, int]]) -> None:
    """Shared input validation for every multiway-cascade implementation."""
    if len(tables) < 2:
        raise InputError("a multiway join needs at least two tables")
    if len(keys) != len(tables) - 1:
        raise InputError(
            f"{len(tables)} tables need {len(tables) - 1} key specs, got {len(keys)}"
        )


def check_step_columns(
    step: int,
    accumulated: list[tuple],
    next_table: list[tuple],
    left_col: int,
    right_col: int,
) -> None:
    """Validate one cascade step's key columns against the row widths."""
    if accumulated and not 0 <= left_col < len(accumulated[0]):
        raise InputError(f"left key column {left_col} out of range at step {step}")
    if next_table and not 0 <= right_col < len(next_table[0]):
        raise InputError(f"right key column {right_col} out of range at step {step}")


def oblivious_multiway_join(
    tables: list[list[tuple]],
    keys: list[tuple[int, int]],
    tracer: Tracer | None = None,
    engine: str | None = None,
    padding: str | None = None,
    bound=None,
) -> MultiwayResult:
    """Join ``tables[0] ⋈ tables[1] ⋈ ... ⋈ tables[k]`` pairwise.

    Parameters
    ----------
    tables:
        Row tuples per table; every column that serves as a join key must be
        an int (use :class:`repro.db.encoding.DictionaryEncoder` for other
        types).
    keys:
        For each of the ``k`` join steps, ``(left_column, right_column)``:
        ``left_column`` indexes the *accumulated* row (all columns of the
        tables joined so far, concatenated), ``right_column`` indexes the
        next table's row.
    engine:
        ``None``/``"traced"`` runs this reference cascade; any other name is
        resolved through :func:`repro.engines.get_engine` (e.g. ``"vector"``
        for the numpy fast path, which produces bit-identical rows).
    padding / bound:
        ``"revealed"`` (default) reveals every intermediate size;
        ``"bounded"`` pads each intermediate to the public cap(s) in
        ``bound``; ``"worst_case"`` pads to the cross-product bounds.
        Padded cascades return the same compacted rows, but their trace
        depends only on the input sizes and the bounds
        (:mod:`repro.core.padding`, ``docs/leakage.md``).

    Returns
    -------
    MultiwayResult
        Concatenated row tuples plus the (revealed) size after every step.
    """
    if engine not in (None, "traced"):
        from ..engines import get_engine  # deferred: engines imports this module

        return get_engine(engine).multiway_join(
            tables, keys, tracer=tracer, padding=padding, bound=bound
        )
    padding = check_padding(padding)
    validate_cascade(tables, keys)
    tracer = tracer or Tracer()

    if padding != "revealed":
        # The cascade consumes its compiled public plan: the per-step
        # bounds come from the same compiler the CLI `plan` command and
        # the plan-equality tests use (which itself reuses
        # `cascade_bounds`), so artifact and execution cannot drift.
        from ..plan.compile import compile_multiway  # deferred: plan imports core

        plan = compile_multiway(
            [len(t) for t in tables], "traced", padding=padding, bound=bound
        )
        bounds = plan.shape("bounds")

        def run_step(step, left_pairs, right_pairs, target):
            return oblivious_join(
                left_pairs, right_pairs, tracer=tracer, target_m=target
            ).pairs

        rows, sizes = padded_cascade(tables, keys, bounds, run_step)
        return MultiwayResult(
            rows=rows, intermediate_sizes=sizes, padding=padding, bounds=bounds
        )

    accumulated = list(tables[0])
    sizes: list[int] = []
    for step, next_table in enumerate(tables[1:]):
        left_col, right_col = keys[step]
        check_step_columns(step, accumulated, list(next_table), left_col, right_col)
        result: JoinResult = oblivious_join(
            encode_handles(accumulated, left_col),
            encode_handles(list(next_table), right_col),
            tracer=tracer,
        )
        accumulated = [
            accumulated[left_index] + tuple(next_table[right_index])
            for left_index, right_index in result.pairs
        ]
        sizes.append(result.m)
    return MultiwayResult(rows=accumulated, intermediate_sizes=sizes)
