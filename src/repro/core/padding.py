"""Upstream padding for multiway cascades: public bounds, tagged dummies.

The paper's guarantee for a *single* join is that the memory trace depends
only on ``(n1, n2, m)`` — the final output size ``m`` is deliberately
public.  A cascade of joins compounds that leak: every *intermediate* size
becomes public too, and the sharded engine refines it further (per-task
``m_ij`` grids, per-shard partial group counts).  This module closes the
gap by padding every intermediate relation to a *public bound*, so the
whole cascade's trace/schedule is a function of the input sizes and the
bounds alone.  ObliDB pads intermediate operator outputs the same way; the
cost is bounded by how loose the bound is.

Three padding modes, selectable wherever a cascade runs
(``core.multiway``, the engine layer, ``ObliviousEngine``, the CLI):

``"revealed"``
    The historical behaviour: no padding, every intermediate size public.
``"bounded"``
    The caller declares a public cap per step (one int, or one per step).
    Intermediates are padded to ``min(cap, worst_case)``; if a true size
    exceeds its cap, :class:`~repro.errors.BoundError` aborts the cascade —
    which is itself a one-bit leak, documented in ``docs/leakage.md``.
``"worst_case"``
    Bounds are the cross-product worst case ``B_s = B_{s-1} * n_s`` (with
    ``B_0 = n_0``).  Nothing beyond the input sizes is revealed, at
    worst-case cost — the paper's "pad upstream" escape hatch, made real.

Mechanism (shared by all three engines)
---------------------------------------
Padding a join's *output* without leaking its true size ``m`` cannot happen
after the fact — the join's own trace depends on ``m``.  Instead one
**anchor row** is appended to each input (public size ``n + 1``) under a
reserved join key that sorts after every real key.  After Algorithm 2 has
(obliviously) computed ``m``, the anchor's group dimensions are overwritten
— at a fixed public position, with plain value writes that the trace does
not distinguish — so that both expansions produce exactly ``target``
rows: ``m`` real rows in canonical order followed by ``target - m`` tagged
dummy rows.  Every phase then runs at the public size ``target`` and the
join's trace is a function of ``(n1, n2, target)`` only.

Between steps, the dummy tail is *kept* (compacting it would reveal ``m``)
and threaded through the next join: dummy rows are re-keyed with distinct
reserved keys that match nothing, so they contribute zero output rows while
still occupying public input slots.  Only the *final* result is compacted
client-side — revealing the final output size, exactly the leak the paper's
model already accepts.

Key space contract: under any padded mode, real join keys must stay below
:data:`DUMMY_KEY_BASE` (dictionary-encoded keys always do).  Dummy rows are
re-keyed into ``[DUMMY_KEY_BASE, ANCHOR_KEY)`` and the per-join anchor uses
:data:`ANCHOR_KEY` itself.
"""

from __future__ import annotations

from ..errors import BoundError, InputError

#: The padding modes every cascade entry point accepts.
PADDING_MODES = ("revealed", "bounded", "worst_case")

#: Real join keys must stay strictly below this under padded execution.
DUMMY_KEY_BASE = 2**61

#: Reserved join key of the per-join anchor row; sorts after every real and
#: dummy key, so padding always lands *after* the real output.
ANCHOR_KEY = 2**62

#: Handle / data value carried by dummy rows (real handles are >= 0).
DUMMY_HANDLE = -1


def check_padding(padding: str | None) -> str:
    """Validate a padding mode; ``None`` means the default ``"revealed"``."""
    if padding is None:
        return "revealed"
    if padding not in PADDING_MODES:
        raise InputError(
            f"unknown padding mode {padding!r}; expected one of {PADDING_MODES}"
        )
    return padding


def _check_bound(bound) -> int:
    if not isinstance(bound, int) or isinstance(bound, bool) or bound < 0:
        raise InputError(f"padding bounds must be ints >= 0, got {bound!r}")
    return bound


def join_bound(n1: int, n2: int, padding: str | None, bound=None) -> int | None:
    """The public output bound of one binary join, or ``None`` (no padding).

    ``worst_case`` is the full cross product ``n1 * n2``; ``bounded`` clamps
    the caller's cap to it (a padded join can never emit more than the
    cross product, so a looser bound only wastes work).  A per-step bound
    *sequence* (as accepted by :func:`cascade_bounds`) is valid here too: a
    binary join is a one-step cascade, so its first cap applies.
    """
    padding = check_padding(padding)
    if padding == "revealed":
        return None
    worst = n1 * n2
    if padding == "worst_case":
        return worst
    if isinstance(bound, (list, tuple)):
        bound = bound[0] if bound else None
    if bound is None:
        raise InputError('padding="bounded" needs an explicit bound')
    return min(_check_bound(bound), worst)


def cascade_bounds(
    sizes: list[int], padding: str | None, bound=None
) -> tuple[int, ...]:
    """Public per-step output bounds for a cascade over tables of ``sizes``.

    Returns one bound per join step (``len(sizes) - 1`` of them); the empty
    tuple for ``"revealed"``.  Bounds are pure functions of the (public)
    input sizes and the caller's caps — the obliviousness tests pin that the
    padded trace depends on nothing else.  ``bound`` may be a single int
    (the same cap every step) or a sequence of one cap per step.
    """
    padding = check_padding(padding)
    steps = len(sizes) - 1
    if padding == "revealed":
        return ()
    if padding == "worst_case":
        caps = None
    elif bound is None:
        raise InputError('padding="bounded" needs an explicit bound')
    elif isinstance(bound, (list, tuple)):
        if len(bound) != steps:
            raise InputError(
                f"{steps}-step cascade needs {steps} bounds, got {len(bound)}"
            )
        caps = [_check_bound(b) for b in bound]
    else:
        caps = [_check_bound(bound)] * steps
    bounds = []
    previous = sizes[0]
    for step in range(steps):
        worst = previous * sizes[step + 1]
        bounds.append(worst if caps is None else min(caps[step], worst))
        previous = bounds[-1]
    return tuple(bounds)


def check_target_m(target_m, n1: int, n2: int) -> int:
    """Validate a binary join's output bound and clamp it to ``n1 * n2``.

    No join can emit more than the cross product, so clamping (rather than
    over-padding or rejecting) keeps the behaviour identical across all
    engines; the clamp is a function of public values only.
    """
    if not isinstance(target_m, int) or isinstance(target_m, bool) or target_m < 0:
        raise InputError(f"target_m must be an int >= 0, got {target_m!r}")
    return min(target_m, n1 * n2)


def check_anchor_headroom(keys, reserved: int = ANCHOR_KEY) -> None:
    """Reject join keys that collide with the reserved dummy key space.

    A single padded join only reserves :data:`ANCHOR_KEY` itself (incoming
    cascade dummies legitimately occupy ``[DUMMY_KEY_BASE, ANCHOR_KEY)``);
    cascades reserve everything from :data:`DUMMY_KEY_BASE` up.
    """
    if any(key >= reserved for key in keys):
        raise InputError(
            f"padded execution reserves join keys >= {reserved} "
            f"(2^{reserved.bit_length() - 1}) for its dummy rows"
        )


def check_payload_headroom(payloads) -> None:
    """Reject negative payloads under padded execution.

    Dummy output rows are tagged by ``DUMMY_HANDLE`` (-1) payloads — the
    only in-band signal :func:`compact_pairs` and the cascades have — so a
    real negative payload would be silently stripped as padding.  Handle
    -style payloads (row indices, as the db layer and cascades use) are
    always >= 0; reject anything else up front, like reserved keys.
    """
    if any(payload < 0 for payload in payloads):
        raise InputError(
            "padded execution requires non-negative payloads (dummy rows "
            f"are tagged with {DUMMY_HANDLE}); pass row handles instead"
        )


def check_padded_key(key) -> int:
    """Validate one real join key under padded execution."""
    if not isinstance(key, int) or isinstance(key, bool):
        raise InputError(
            f"join keys must be dictionary-encoded ints, got {type(key).__name__}"
        )
    if key >= DUMMY_KEY_BASE:
        raise InputError(
            f"padded execution reserves keys >= 2^61 for dummy rows; got {key}"
        )
    return key


def encode_padded_handles(
    rows: list[tuple], dummy: list[bool] | None, key_column: int
) -> list[tuple[int, int]]:
    """Project ``rows`` to ``(join_key, row_handle)`` pairs, re-keying dummies.

    The dummy-aware twin of :func:`repro.core.multiway.encode_handles`:
    rows flagged in ``dummy`` get a *distinct* reserved key that matches
    nothing downstream (so they join to zero rows), real rows are validated
    against the padded-key contract.  ``dummy=None`` means all rows real.
    """
    pairs = []
    for index, row in enumerate(rows):
        if dummy is not None and dummy[index]:
            pairs.append((DUMMY_KEY_BASE + index, index))
        else:
            pairs.append((check_padded_key(row[key_column]), index))
    return pairs


def encode_tail_handles(
    rows: list[tuple], n_dummies: int, key_column: int
) -> list[tuple[int, int]]:
    """``(join_key, handle)`` pairs for real rows plus an all-dummy tail.

    The fused cascade keeps its catalogue compact — real rows only — and
    carries the dummy padding as a public *count*; this helper re-expands
    the tail into the same ``DUMMY_KEY_BASE + position`` keys
    :func:`encode_padded_handles` would have produced for materialised
    dummy rows, so the engine input (and therefore the schedule) is
    byte-identical to the unfused cascade's.
    """
    pairs = [
        (check_padded_key(row[key_column]), index)
        for index, row in enumerate(rows)
    ]
    base = len(rows)
    pairs.extend(
        (DUMMY_KEY_BASE + base + offset, base + offset)
        for offset in range(n_dummies)
    )
    return pairs


def compact_pairs(pairs):
    """Strip the dummy tail a padded join appends (client-side, final step).

    Real output rows carry handles/data ``>= 0``; dummies carry
    :data:`DUMMY_HANDLE` in every column.  Compacting re-reveals the true
    output size — by design, this is only ever done on *final* results
    (the paper's model treats the final output size as public).
    """
    return [pair for pair in pairs if pair[0] != DUMMY_HANDLE]


def exceeds_bound(true_size: int, target: int) -> None:
    """Raise :class:`BoundError` when a true output overflows its bound."""
    if true_size > target:
        raise BoundError(
            f"true output size {true_size} exceeds the public padding bound "
            f"{target}; raise the bound or use padding='worst_case'"
        )


def padded_cascade(tables, keys, bounds, run_step):
    """The engine-independent padded left-deep cascade, fused.

    ``run_step(step, left_pairs, right_pairs, target)`` executes one padded
    binary join and returns its ``target``-row ``(left_handle,
    right_handle)`` pairs — real rows first (handles >= 0), then dummy rows
    (:data:`DUMMY_HANDLE`).  This helper owns everything around it: the
    dummy tail threaded between steps, re-keying, the client-side row
    catalogue, and the final compaction.  Returns ``(rows, true_sizes)``
    where ``rows`` is bit-identical to the unpadded cascade's output and
    ``true_sizes`` are the *client-side* intermediate sizes (the adversary
    never sees them; the trace reveals only ``bounds``).

    **Fused expand-truncate.**  A dummy row can never survive any later
    step's bound — it joins nothing by construction — so the catalogue
    drops dummy handles the moment a step returns them, *before* merging
    the step's output rows into the catalogue: real rows are accumulated,
    the dummy tail is kept only as a public *count* and re-expanded into
    engine input positions by :func:`encode_tail_handles`.  The engine
    sees byte-identical inputs (same sizes, same reserved keys at the same
    positions — the leakage profile is unchanged) while the client-side
    cost per step falls from ``O(bound * row_width)`` materialised filler
    tuples to ``O(true_size * row_width)`` — the dominant constant of
    ``worst_case`` cascades, whose bounds compound multiplicatively.
    """
    from .multiway import check_step_columns  # deferred: multiway imports us

    accumulated = [tuple(row) for row in tables[0]]
    dummies = 0  # public tail length; accumulated holds real rows only
    # Folded row width, None while no row (real or padding) has ever
    # existed — an empty initial table makes the width unknowable, and the
    # materialised cascade never validated key columns against it either.
    width = len(accumulated[0]) if accumulated else None
    true_sizes: list[int] = []
    for step, table in enumerate(tables[1:]):
        next_table = [tuple(row) for row in table]
        left_col, right_col = keys[step]
        # The catalogue no longer carries filler rows, so validate the left
        # key column against the folded row width explicitly whenever the
        # materialised cascade would have had (real or filler) rows to
        # check against.
        if (
            width is not None
            and (accumulated or dummies)
            and not 0 <= left_col < width
        ):
            raise InputError(
                f"left key column {left_col} out of range at step {step}"
            )
        check_step_columns(step, accumulated, next_table, left_col, right_col)
        pairs = run_step(
            step,
            encode_tail_handles(accumulated, dummies, left_col),
            encode_padded_handles(next_table, None, right_col),
            bounds[step],
        )
        new_accumulated: list[tuple] = []
        for left_index, right_index in pairs:
            if left_index == DUMMY_HANDLE:
                break
            new_accumulated.append(
                accumulated[left_index] + next_table[right_index]
            )
        # Engines contract to emit real rows first; a real handle after the
        # first dummy would silently lose output, so verify the tail.
        if any(
            left_index != DUMMY_HANDLE
            for left_index, _ in pairs[len(new_accumulated) :]
        ):
            raise InputError(
                "padded join emitted a real row after its dummy tail; "
                "engines must return real rows first"
            )
        accumulated = new_accumulated
        dummies = bounds[step] - len(accumulated)
        if width is not None and next_table:
            width += len(next_table[0])
        true_sizes.append(len(accumulated))
    return accumulated, true_sizes
