"""Oblivious grouped aggregation — the §7 "future work" extension.

The paper closes by noting that *"grouping aggregations over joins could be
computed using fewer sorting steps than a full join would require"*.  This
module implements that idea: because every aggregate we support distributes
over a group's Cartesian product, the per-group value is a closed form of
per-table accumulators::

    COUNT(*)      = α1 · α2
    SUM(d1)       = α2 · Σ_{T1 group} d1        (each d1 joins α2 times)
    SUM(d2)       = α1 · Σ_{T2 group} d2
    SUM(d1 · d2)  = (Σ d1) · (Σ d2)
    MIN/MAX(d1)   = MIN/MAX over the T1 group   (when the group joins)

so the whole aggregation needs one `O(n log^2 n)` sort, two linear scans and
one `O(n log n)` compaction — no `O(m)` expansion at all.  Only the number
of joining groups ``g`` is revealed (the analogue of revealing ``m``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.local import LocalContext
from ..memory.public import PublicArray
from ..memory.tracer import Tracer
from ..obliv.bitonic import bitonic_sort
from ..obliv.compact import compact_by_routing
from ..obliv.compare import SortKey, SortSpec
from ..obliv.network import NetworkStats

_NEG_INF = float("-inf")
_POS_INF = float("inf")


@dataclass
class GroupAggregate:
    """Aggregates of one join-value group of ``T1 ⋈ T2``.

    ``count1`` / ``count2`` are the group dimensions α1, α2; the remaining
    fields are aggregates over the group's ``count1 · count2`` joined rows.
    """

    j: int
    count1: int
    count2: int
    sum_d1: int
    sum_d2: int
    min_d1: int
    max_d1: int
    min_d2: int
    max_d2: int

    @property
    def pair_count(self) -> int:
        """COUNT(*) over the joined rows of this group."""
        return self.count1 * self.count2

    @property
    def join_sum_d1(self) -> int:
        """SUM(d1) over the joined rows."""
        return self.sum_d1 * self.count2

    @property
    def join_sum_d2(self) -> int:
        """SUM(d2) over the joined rows."""
        return self.sum_d2 * self.count1

    @property
    def join_sum_product(self) -> int:
        """SUM(d1 · d2) over the joined rows."""
        return self.sum_d1 * self.sum_d2

    @property
    def join_avg_d1(self) -> float:
        """AVG(d1) over the joined rows."""
        return self.sum_d1 / self.count1


class _AggCell:
    """Scratch record for the aggregation scans (one public-memory cell)."""

    __slots__ = ("j", "tid", "d", "c1", "c2", "s1", "s2", "mn1", "mx1", "mn2", "mx2", "null")

    def __init__(self, j: int = 0, tid: int = 0, d: int = 0, null: bool = False) -> None:
        self.j = j
        self.tid = tid
        self.d = d
        self.c1 = 0
        self.c2 = 0
        self.s1 = 0
        self.s2 = 0
        self.mn1 = _POS_INF
        self.mx1 = _NEG_INF
        self.mn2 = _POS_INF
        self.mx2 = _NEG_INF
        self.null = null

    def copy(self) -> "_AggCell":
        clone = _AggCell.__new__(_AggCell)
        for slot in self.__slots__:
            setattr(clone, slot, getattr(self, slot))
        return clone


_SPEC_J_TID = SortSpec(
    SortKey(getter=lambda c: c.j, name="j"),
    SortKey(getter=lambda c: c.tid, name="tid"),
)


def oblivious_join_aggregate(
    left: list[tuple[int, int]],
    right: list[tuple[int, int]],
    tracer: Tracer | None = None,
    stats: NetworkStats | None = None,
    local: LocalContext | None = None,
    engine: str | None = None,
) -> list[GroupAggregate]:
    """Aggregate ``T1 ⋈ T2`` per join value without materialising the join.

    Returns one :class:`GroupAggregate` per join value present in *both*
    tables, ordered by join value.  Runs in `O(n log^2 n)`, independent of
    the join's output size ``m``.  ``engine=None``/``"traced"`` runs this
    reference implementation; any other name (e.g. ``"vector"``) is resolved
    through :func:`repro.engines.get_engine` and produces identical groups.
    ``stats`` and ``local`` apply to the traced implementation only — other
    engines have their own accounting (e.g.
    :class:`repro.vector.aggregate.VectorAggregateStats`) and leave them
    untouched.
    """
    if engine not in (None, "traced"):
        from ..engines import get_engine  # deferred: engines imports this module

        return get_engine(engine).aggregate(left, right, tracer=tracer)
    tracer = tracer or Tracer()
    local = local or LocalContext()
    n = len(left) + len(right)
    if n == 0:
        return []

    cells = PublicArray(n, name="AGG", tracer=tracer)
    for i, (j, d) in enumerate(left):
        cells.write(i, _AggCell(j=j, tid=1, d=d))
    for i, (j, d) in enumerate(right):
        cells.write(len(left) + i, _AggCell(j=j, tid=2, d=d))

    with tracer.phase("aggregate:sort(j,tid)"):
        bitonic_sort(cells, _SPEC_J_TID, stats=stats)

    # Forward scan: running per-group accumulators, reset at group boundary.
    with tracer.phase("aggregate:scan"), local.slot(2):
        running = _AggCell()
        prev_j = None
        for i in range(n):
            e = cells.read(i).copy()
            if prev_j is None or e.j != prev_j:
                prev_j = e.j
                running = _AggCell(j=e.j)
            if e.tid == 1:
                running.c1 += 1
                running.s1 += e.d
                running.mn1 = min(running.mn1, e.d)
                running.mx1 = max(running.mx1, e.d)
            else:
                running.c2 += 1
                running.s2 += e.d
                running.mn2 = min(running.mn2, e.d)
                running.mx2 = max(running.mx2, e.d)
            e.c1, e.c2 = running.c1, running.c2
            e.s1, e.s2 = running.s1, running.s2
            e.mn1, e.mx1 = running.mn1, running.mx1
            e.mn2, e.mx2 = running.mn2, running.mx2
            cells.write(i, e)

    # Backward scan: keep only each group's boundary cell, and only when the
    # group occurs in both tables (inner-join semantics).
    with tracer.phase("aggregate:mark"), local.slot(2):
        prev_j = None
        for i in range(n - 1, -1, -1):
            e = cells.read(i).copy()
            is_boundary = prev_j is None or e.j != prev_j
            prev_j = e.j
            e.null = not (is_boundary and e.c1 > 0 and e.c2 > 0)
            cells.write(i, e)

    with tracer.phase("aggregate:compact"):
        groups = compact_by_routing(cells, lambda c: c.null, stats=stats)

    result = []
    with tracer.phase("aggregate:emit"), local.slot(1):
        for i in range(groups):
            e = cells.read(i)
            result.append(
                GroupAggregate(
                    j=e.j,
                    count1=e.c1,
                    count2=e.c2,
                    sum_d1=e.s1,
                    sum_d2=e.s2,
                    min_d1=e.mn1,
                    max_d1=e.mx1,
                    min_d2=e.mn2,
                    max_d2=e.mx2,
                )
            )
    return result


def oblivious_group_by(
    table: list[tuple[int, int]],
    tracer: Tracer | None = None,
    stats: NetworkStats | None = None,
    engine: str | None = None,
) -> list[GroupAggregate]:
    """Single-table oblivious GROUP BY (count/sum/min/max per join value).

    Implemented as the degenerate case of the join aggregation against a
    table holding one entry per distinct key — but computed directly with
    the same sort + scan + compact shape, in `O(n log^2 n)`.  ``engine``
    selects the implementation as in :func:`oblivious_join_aggregate`;
    ``stats`` applies to the traced implementation only.
    """
    if engine not in (None, "traced"):
        from ..engines import get_engine  # deferred: engines imports this module

        return get_engine(engine).group_by(table, tracer=tracer)
    tracer = tracer or Tracer()
    n = len(table)
    if n == 0:
        return []
    cells = PublicArray(n, name="GB", tracer=tracer)
    for i, (j, d) in enumerate(table):
        cells.write(i, _AggCell(j=j, tid=1, d=d))
    with tracer.phase("groupby:sort"):
        bitonic_sort(cells, _SPEC_J_TID, stats=stats)
    with tracer.phase("groupby:scan"):
        running = _AggCell()
        prev_j = None
        for i in range(n):
            e = cells.read(i).copy()
            if prev_j is None or e.j != prev_j:
                prev_j = e.j
                running = _AggCell(j=e.j)
            running.c1 += 1
            running.s1 += e.d
            running.mn1 = min(running.mn1, e.d)
            running.mx1 = max(running.mx1, e.d)
            e.c1, e.s1, e.mn1, e.mx1 = running.c1, running.s1, running.mn1, running.mx1
            cells.write(i, e)
    with tracer.phase("groupby:mark"):
        prev_j = None
        for i in range(n - 1, -1, -1):
            e = cells.read(i).copy()
            is_boundary = prev_j is None or e.j != prev_j
            prev_j = e.j
            e.null = not is_boundary
            cells.write(i, e)
    with tracer.phase("groupby:compact"):
        groups = compact_by_routing(cells, lambda c: c.null, stats=stats)
    return [
        GroupAggregate(
            j=e.j,
            count1=e.c1,
            count2=0,
            sum_d1=e.s1,
            sum_d2=0,
            min_d1=e.mn1,
            max_d1=e.mx1,
            min_d2=0,
            max_d2=0,
        )
        for e in (cells.read(i) for i in range(groups))
    ]
