"""Algorithm 5: align the expanded S2 with S1.

After expansion, group blocks in S2 hold each T2 entry as ``α1`` contiguous
copies; S1 holds each T1 entry as ``α2`` contiguous copies.  For the final
zip to enumerate every pair of the group's Cartesian product, the k-th copy
of the r-th T2 entry must land at in-block position ``k·α2 + r`` — i.e. the
block is transposed from copy-major to entry-major order.  With ``q`` the
0-based position of an entry inside its block, the destination is::

    ii = floor(q / α1) + (q mod α1) · α2

**Erratum note.** Algorithm 5 in the paper prints the formula with α1 and α2
exchanged (``q/α2`` and ``·α1``); that version mismatches the paper's own
Figure 5 and §5.4 prose (which, as the worked example shows, rename α1 to
mean "the block size of S1" = our α2).  In the α1/α2 convention fixed in
§4.4 — α1 = group count in T1, α2 = group count in T2 — the correct formula
is the one above; ``tests/test_align.py`` pins both the Figure 5 example and
randomized cross-checks against the naive join.

The in-block position ``q`` is a local-memory counter reset at group
boundaries (like the counter of Algorithm 2), and the reorder itself is one
bitonic sort by ``(j, ii)``.
"""

from __future__ import annotations

from ..memory.local import LocalContext
from ..memory.public import PublicArray
from ..memory.tracer import Tracer
from ..obliv.bitonic import bitonic_sort
from ..obliv.compare import SortSpec, attr_key
from ..obliv.network import NetworkStats

#: Final reordering of S2: by join value, then by alignment index.
SPEC_J_II = SortSpec(attr_key("j"), attr_key("ii"))


def compute_alignment_indices(
    table: PublicArray, local: LocalContext | None = None
) -> None:
    """Store each entry's alignment destination in its ``ii`` attribute."""
    local = local or LocalContext()
    with local.slot(2):
        prev_j = None
        q = 0
        for i in range(len(table)):
            e = table.read(i).copy()
            if prev_j is None or e.j != prev_j:
                prev_j = e.j
                q = 0
            else:
                q += 1
            e.ii = (q // e.a1) + (q % e.a1) * e.a2
            table.write(i, e)


def align_table(
    s2: PublicArray,
    tracer: Tracer,
    stats: NetworkStats | None = None,
    local: LocalContext | None = None,
) -> None:
    """Reorder ``s2`` in place so row i matches row i of S1 (Algorithm 5)."""
    with tracer.phase("align:index"):
        compute_alignment_indices(s2, local=local)
    with tracer.phase("align:sort(j,ii)"):
        bitonic_sort(s2, SPEC_J_II, stats=stats)
