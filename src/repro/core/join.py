"""Algorithm 1: the full oblivious binary equi-join.

Pipeline (Figure 1): augment both tables with group dimensions, obliviously
expand ``T1`` by α2 and ``T2`` by α1 into the two m-row tables ``S1`` and
``S2``, align ``S2`` to ``S1``, and zip the data values row by row.

Total cost `O(n log^2 n + m log m)` public-memory operations with a
constant-size local working set; the access trace depends only on
``(n1, n2, m)`` — verified formally in :mod:`repro.typesys` and empirically
in ``tests/test_join_trace_obliviousness.py``.

With ``target_m`` set, the output is padded to that public bound instead:
one anchor row rides along in each input, its group dimensions are rewritten
after augmentation so both expansions produce exactly ``target_m`` rows, and
the trace becomes a function of ``(n1, n2, target_m)`` — ``m`` itself stays
hidden.  See :mod:`repro.core.padding` and ``docs/leakage.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memory.local import LocalContext
from ..memory.public import PublicArray
from ..memory.tracer import Tracer
from .align import align_table
from .augment import augment_tables
from .entry import Entry, entries_from_pairs
from .expand import oblivious_expand
from .padding import (
    ANCHOR_KEY,
    DUMMY_HANDLE,
    check_anchor_headroom,
    check_payload_headroom,
    check_target_m,
    exceeds_bound,
)
from .stats import (
    PHASE_ALIGN_SORT,
    PHASE_EXPAND1_ROUTE,
    PHASE_EXPAND1_SORT,
    PHASE_EXPAND2_ROUTE,
    PHASE_EXPAND2_SORT,
    PHASE_LINEAR,
    JoinCounters,
)


@dataclass
class JoinResult:
    """Output of an oblivious join.

    ``pairs`` lists the joined data values ``(d1, d2)`` grouped by
    ascending join value, each group's cross product row-major over its two
    d-sorted sides (not a lexicographic sort of the triples — duplicate
    left payloads interleave); ``m`` is the (revealed) output size; the
    counters carry the per-phase cost breakdown used by the Table 3 bench.
    """

    pairs: list[tuple[int, int]]
    m: int
    n1: int
    n2: int
    counters: JoinCounters = field(default_factory=JoinCounters)

    def __len__(self) -> int:
        return self.m


def _apply_output_padding(
    t1: PublicArray,
    t2: PublicArray,
    m_augmented: int,
    target_m: int,
    tracer: Tracer,
    local: LocalContext,
) -> None:
    """Rewrite the anchor rows' group dimensions to pad the output.

    The anchors carry :data:`~repro.core.padding.ANCHOR_KEY`, the maximum
    join key, so after augmentation they sit at the *last* cell of each
    table — a fixed public position.  ``m_augmented`` includes the anchor
    group's own ``1 * 1`` contribution; the real join size is one less.
    Setting the left anchor's α2 and the right anchor's α1 to
    ``target_m - m`` makes both expansions total exactly ``target_m``
    (α = 0 simply drops the anchor), with the dummy block landing after
    every real output row.  Two fixed-position read-modify-writes: the
    trace is identical for every ``m``.
    """
    exceeds_bound(m_augmented - 1, target_m)
    pad = target_m - (m_augmented - 1)
    with tracer.phase("pad:anchors"), local.slot(1):
        anchor1 = t1.read(len(t1) - 1).copy()
        anchor1.a2 = pad
        t1.write(len(t1) - 1, anchor1)
        anchor2 = t2.read(len(t2) - 1).copy()
        anchor2.a1 = pad
        t2.write(len(t2) - 1, anchor2)


def oblivious_join_arrays(
    table1: list[Entry],
    table2: list[Entry],
    tracer: Tracer,
    counters: JoinCounters | None = None,
    local: LocalContext | None = None,
    target_m: int | None = None,
) -> tuple[PublicArray, int, JoinCounters]:
    """Algorithm 1 over entry lists; returns ``(TD, m, counters)``.

    ``TD`` is the m-cell output array whose cells are ``(d1, d2)`` tuples.
    With ``target_m``, the inputs must already carry their anchor entries
    (as :func:`oblivious_join` appends them) and the output is exactly
    ``target_m`` cells — real rows first, ``(DUMMY_HANDLE, DUMMY_HANDLE)``
    padding after.
    """
    counters = counters or JoinCounters()
    local = local or LocalContext()

    t1, t2, _m = augment_tables(table1, table2, tracer, counters=counters, local=local)
    if target_m is not None:
        _apply_output_padding(t1, t2, _m, target_m, tracer, local)
        _m = target_m

    with tracer.phase("expand:S1"), counters.timed("expand1"):
        s1, m1 = oblivious_expand(
            t1,
            lambda e: e.a2,
            tracer,
            stats=counters.stats(PHASE_EXPAND1_SORT),
            route_stats=counters.stats(PHASE_EXPAND1_ROUTE),
            local=local,
        )
    with tracer.phase("expand:S2"), counters.timed("expand2"):
        s2, m2 = oblivious_expand(
            t2,
            lambda e: e.a1,
            tracer,
            stats=counters.stats(PHASE_EXPAND2_SORT),
            route_stats=counters.stats(PHASE_EXPAND2_ROUTE),
            local=local,
        )
    assert m1 == m2 == _m, "expansion sizes must agree with the group-dimension sum"

    with counters.timed(PHASE_ALIGN_SORT):
        align_table(s2, tracer, stats=counters.stats(PHASE_ALIGN_SORT), local=local)

    output = PublicArray(_m, name="TD", tracer=tracer)
    with tracer.phase("zip"), counters.timed(PHASE_LINEAR), local.slot(2):
        for i in range(_m):
            e1 = s1.read(i)
            e2 = s2.read(i)
            output.write(i, (e1.d, e2.d))
    return output, _m, counters


def oblivious_join(
    left: list[tuple[int, int]],
    right: list[tuple[int, int]],
    tracer: Tracer | None = None,
    counters: JoinCounters | None = None,
    target_m: int | None = None,
) -> JoinResult:
    """Compute the equi-join of two tables of ``(j, d)`` pairs obliviously.

    This is the library's top-level entry point for the paper's problem
    statement (§4.1): ``T1 ⋈ T2 = {(d1, d2) | (j, d1) ∈ T1, (j, d2) ∈ T2}``.

    Parameters
    ----------
    left / right:
        The input tables as lists of ``(join_value, data_value)`` int pairs.
    tracer:
        Optional tracer whose sink observes every public-memory access; pass
        a :class:`~repro.memory.tracer.HashSink`-backed tracer to reproduce
        the paper's §6.1 experiments.
    counters:
        Optional per-phase cost accumulator (Table 3).
    target_m:
        Optional public output bound, clamped to the cross product
        ``n1 * n2`` (uniformly across engines; the clamp is a public
        function).  The result is padded to exactly that many pairs — the
        true ``m`` real pairs in canonical order, then
        ``(DUMMY_HANDLE, DUMMY_HANDLE)`` dummies — and the access trace
        depends on ``(n1, n2, target_m)`` only.  Raises
        :class:`~repro.errors.BoundError` if the true output exceeds the
        bound (itself a one-bit leak; see :mod:`repro.core.padding`).

    Returns
    -------
    JoinResult
        With ``pairs`` sorted lexicographically by join value, then data
        values — the order induced by the algorithm itself.
    """
    tracer = tracer or Tracer()
    counters = counters or JoinCounters()
    t1 = entries_from_pairs(left, tid=1)
    t2 = entries_from_pairs(right, tid=2)
    if target_m is not None:
        target_m = check_target_m(target_m, len(left), len(right))
        for table in (t1, t2):
            check_anchor_headroom(e.j for e in table)
            check_payload_headroom(e.d for e in table)
            table.append(Entry(j=ANCHOR_KEY, d=DUMMY_HANDLE))
    output, m, counters = oblivious_join_arrays(
        t1, t2, tracer, counters=counters, target_m=target_m
    )
    return JoinResult(pairs=output.snapshot(), m=m, n1=len(left), n2=len(right), counters=counters)
