"""The paper's core contribution: the oblivious equi-join and its stages."""

from .aggregate import GroupAggregate, oblivious_group_by, oblivious_join_aggregate
from .align import align_table, compute_alignment_indices
from .augment import augment_tables, fill_dimensions
from .distribute import (
    ext_oblivious_distribute,
    oblivious_distribute,
    probabilistic_distribute,
)
from .entry import Entry, EntryCodec, entries_from_pairs, pairs_from_entries
from .expand import assign_first_slots, fill_down, oblivious_expand
from .join import JoinResult, oblivious_join, oblivious_join_arrays
from .multiway import MultiwayResult, oblivious_multiway_join
from .padding import (
    ANCHOR_KEY,
    DUMMY_KEY_BASE,
    PADDING_MODES,
    cascade_bounds,
    check_padding,
    compact_pairs,
    join_bound,
    padded_cascade,
)
from .stats import TABLE3_GROUPS, JoinCounters

__all__ = [
    "GroupAggregate",
    "oblivious_group_by",
    "oblivious_join_aggregate",
    "align_table",
    "compute_alignment_indices",
    "augment_tables",
    "fill_dimensions",
    "ext_oblivious_distribute",
    "oblivious_distribute",
    "probabilistic_distribute",
    "Entry",
    "EntryCodec",
    "entries_from_pairs",
    "pairs_from_entries",
    "assign_first_slots",
    "fill_down",
    "oblivious_expand",
    "JoinResult",
    "oblivious_join",
    "oblivious_join_arrays",
    "MultiwayResult",
    "oblivious_multiway_join",
    "ANCHOR_KEY",
    "DUMMY_KEY_BASE",
    "PADDING_MODES",
    "cascade_bounds",
    "check_padding",
    "compact_pairs",
    "join_bound",
    "padded_cascade",
    "TABLE3_GROUPS",
    "JoinCounters",
]
