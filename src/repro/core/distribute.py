"""Algorithm 3: oblivious distribution (and its §5.2 probabilistic variant).

``Oblivious-Distribute`` stores each element ``x`` of an n-element input at
index ``f(x)`` of an m-cell array (``f`` injective, m >= n): sort by ``f``,
then route through the deterministic power-of-two hop network
(:func:`repro.obliv.routing.route_forward`), whose correctness is Theorem 1.

``Ext-Oblivious-Distribute`` (Algorithm 4, lines 24-31) additionally accepts
inputs already marked null — needed when some elements are dropped
(``g(x) = 0`` during expansion, filtered rows, ...) — by sorting nulls past
the end and truncating.

The probabilistic variant writes each element straight to ``π(f(x))`` for a
pseudorandom permutation π and then sorts by ``π⁻¹(index)``; its trace is a
uniformly random n-subset of cells followed by a fixed sorting network, i.e.
oblivious in distribution rather than deterministically.
"""

from __future__ import annotations

from ..errors import CapacityError, InjectivityError
from ..memory.public import PublicArray
from ..memory.tracer import Tracer
from ..obliv.bitonic import bitonic_sort
from ..obliv.compare import SortSpec, attr_key, SortKey
from ..obliv.network import NetworkStats
from ..obliv.permute import FeistelPRP
from ..obliv.routing import route_forward
from .entry import Entry

#: Order null entries last, real entries by destination index.
SPEC_NULL_F = SortSpec(
    SortKey(getter=lambda e: 1 if e.null else 0, name="isnull"),
    attr_key("f"),
)


def _target_of(entry: Entry) -> int:
    """Routing target: the stored ``f`` for real entries, -1 for nulls."""
    return -1 if entry.null else entry.f


def _check_targets(entries: list[Entry], m: int) -> int:
    """Validate injectivity / range of the non-null targets; returns count."""
    seen: set[int] = set()
    for e in entries:
        if e.null:
            continue
        if not 0 <= e.f < m:
            raise CapacityError(f"destination index {e.f} outside [0, {m})")
        if e.f in seen:
            raise InjectivityError(f"duplicate destination index {e.f}")
        seen.add(e.f)
    return len(seen)


def ext_oblivious_distribute(
    array: PublicArray,
    m: int,
    tracer: Tracer,
    stats: NetworkStats | None = None,
    route_stats: NetworkStats | None = None,
    validate: bool = True,
) -> PublicArray:
    """Distribute the non-null entries of ``array`` to their ``f`` targets.

    Returns a new m-cell array where each non-null entry ``x`` sits at index
    ``x.f`` and every other cell is null.  The number of non-null entries
    must not exceed ``m``.  ``validate`` runs an (untraced) precondition
    check; disable it only in hot paths that construct ``f`` themselves.
    """
    n = len(array)
    if validate:
        count = _check_targets(array.snapshot(), m)
        if count > m:
            raise CapacityError(f"{count} elements cannot fit in {m} cells")

    size = max(n, m)
    out = PublicArray(size, name=f"{array.name}#dist", tracer=tracer)
    with tracer.phase("distribute:load"):
        for i in range(n):
            out.write(i, array.read(i))
        for i in range(n, size):
            out.write(i, Entry.make_null())
    with tracer.phase("distribute:sort(f)"):
        bitonic_sort(out, SPEC_NULL_F, stats=stats)
    with tracer.phase("distribute:route"):
        route_forward(out, _target_of, m, stats=route_stats if route_stats is not None else stats)
    if size == m:
        return out
    trimmed = PublicArray(m, name=f"{array.name}#distm", tracer=tracer)
    with tracer.phase("distribute:trim"):
        for i in range(m):
            trimmed.write(i, out.read(i))
    return trimmed


def oblivious_distribute(
    array: PublicArray,
    m: int,
    tracer: Tracer,
    stats: NetworkStats | None = None,
    validate: bool = True,
) -> PublicArray:
    """Algorithm 3 proper: all entries real, ``m >= n`` required."""
    if validate and m < len(array):
        raise CapacityError(
            f"destination array of size {m} cannot hold {len(array)} elements"
        )
    return ext_oblivious_distribute(array, m, tracer, stats=stats, validate=validate)


def probabilistic_distribute(
    array: PublicArray,
    m: int,
    tracer: Tracer,
    prp: FeistelPRP | None = None,
    stats: NetworkStats | None = None,
    validate: bool = True,
) -> PublicArray:
    """§5.2's randomised distribution: scatter through a PRP, then sort.

    The adversary observes writes at ``π(f(x_1)), ..., π(f(x_n))`` — a
    uniformly random n-subset of {0..m-1} because ``f`` is injective and π
    pseudorandom — then the fixed access pattern of a bitonic sort.  Output
    matches :func:`ext_oblivious_distribute` exactly.
    """
    n = len(array)
    if validate:
        count = _check_targets(array.snapshot(), m)
        if count > m:
            raise CapacityError(f"{count} elements cannot fit in {m} cells")
    prp = prp or FeistelPRP(m)

    out = PublicArray(m, name=f"{array.name}#pdist", tracer=tracer)
    with tracer.phase("pdistribute:scatter"):
        for i in range(m):
            out.write(i, Entry.make_null())
        for i in range(n):
            e = array.read(i)
            if not e.null:
                out.write(prp.forward(e.f), e)
    # Tag each cell with the unmasked destination of its slot, then sort:
    # the element at slot π(f(x)) gets key π⁻¹(π(f(x))) = f(x).
    with tracer.phase("pdistribute:key"):
        for i in range(m):
            e = out.read(i).copy()
            e.ii = prp.inverse(i)
            out.write(i, e)
    with tracer.phase("pdistribute:sort"):
        bitonic_sort(out, SortSpec(attr_key("ii")), stats=stats)
    return out
